//! # quickstore-recovery — facade crate
//!
//! A from-scratch Rust reproduction of **White & DeWitt, "Implementing
//! Crash Recovery in QuickStore: A Performance Study" (SIGMOD 1995)**.
//!
//! This crate re-exports the whole workspace so examples and downstream
//! users can depend on one name:
//!
//! * [`types`] — ids, page constants, errors (`qs-types`).
//! * [`storage`] — slotted pages, volumes, stable media (`qs-storage`).
//! * [`wal`] — log records + circular log manager (`qs-wal`).
//! * [`esm`] — the EXODUS Storage Manager substrate: client/server page
//!   shipping, buffer pools, locks, ARIES & WPL restart (`qs-esm`).
//! * [`vmem`] — the software MMU (`qs-vmem`).
//! * [`core`] — QuickStore itself: descriptor table, recovery buffer,
//!   diffing, and the six recovery schemes (`quickstore`).
//! * [`oo7`] — the OO7 benchmark database and traversals (`qs-oo7`).
//! * [`sim`] — the 1995 hardware model and MVA solver (`qs-sim`).
//! * [`trace`] — simulated-time tracing: spans, histograms, and the
//!   crash flight recorder (`qs-trace`).
//! * [`prng`] — the seedable PRNG behind every randomized component
//!   (`qs-prng`); the workspace uses no external crates.
//!
//! See `README.md` for a tour and `examples/` for runnable programs.

pub use qs_esm as esm;
pub use qs_oo7 as oo7;
pub use qs_prng as prng;
pub use qs_sim as sim;
pub use qs_storage as storage;
pub use qs_trace as trace;
pub use qs_types as types;
pub use qs_vmem as vmem;
pub use qs_wal as wal;
pub use quickstore as core;

use qs_esm::{ClientConn, Server, ServerConfig};
use qs_sim::Meter;
use qs_types::{ClientId, QsResult};
use quickstore::{Store, SystemConfig};
use std::sync::Arc;

/// Convenience: a single-client QuickStore on a fresh in-memory server,
/// ready for `begin`/`allocate`/`commit`. Used by the quickstart example
/// and tests; production setups build [`esm::Server`] and [`core::Store`]
/// explicitly.
pub fn open_single_client(cfg: SystemConfig) -> QsResult<(Store, Arc<Server>)> {
    cfg.validate()?;
    let meter = Meter::new();
    let server = Arc::new(Server::format(
        ServerConfig::new(cfg.flavor).with_pool_mb(8.0).with_volume_pages(2048).with_log_mb(32.0),
        Arc::clone(&meter),
    )?);
    let client = ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
    Ok((Store::new(client, cfg)?, server))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_opens_every_scheme() {
        for cfg in [
            SystemConfig::pd_esm().with_memory(2.0, 0.5),
            SystemConfig::sd_esm().with_memory(2.0, 0.5),
            SystemConfig::sl_esm().with_memory(2.0, 0.5),
            SystemConfig::pd_redo().with_memory(2.0, 0.5),
            SystemConfig::wpl().with_memory(2.0, 0.0),
        ] {
            let (mut store, _server) = open_single_client(cfg).unwrap();
            store.begin().unwrap();
            let oid = store.allocate(b"facade smoke test").unwrap();
            store.commit().unwrap();
            store.begin().unwrap();
            assert_eq!(store.read(oid).unwrap(), b"facade smoke test");
            store.commit().unwrap();
        }
    }
}
