#!/usr/bin/env sh
# Tier-1 verification for the hermetic workspace: build + tests fully
# offline, then audit that no manifest declares a non-path dependency.
# Exits non-zero on any failure. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release --offline =="
cargo build --release --offline --workspace

echo "== cargo test -q --offline =="
cargo test -q --offline --workspace

echo "== dependency audit: path-only =="
# Any bare `name = "x.y"` or `{ version = ... }` entry in a [dependencies]
# block is an external (registry) dependency and fails the audit. Internal
# deps always carry `path = ...` (directly or via `workspace = true`
# resolving to a path entry in the root manifest).
audit_failed=0
# The glob must actually cover every workspace crate; spot-check one that
# was added after the audit was written (a silent glob miss would pass
# vacuously).
audit_saw_trace=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    [ "$manifest" = "crates/trace/Cargo.toml" ] && audit_saw_trace=1
    bad=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies\]$/) }
        in_deps && /^[A-Za-z0-9_-]+[ \t]*=/ {
            if ($0 !~ /path[ \t]*=/ && $0 !~ /workspace[ \t]*=[ \t]*true/) print
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "FAIL: non-path dependency in $manifest:"
        echo "$bad" | sed 's/^/    /'
        audit_failed=1
    fi
done
# Belt and braces: the named crates the refactor removed must not return.
if grep -RE '^(rand|proptest|criterion|crossbeam|parking_lot|bytes|serde)[ \t]*=' \
        Cargo.toml crates/*/Cargo.toml; then
    echo "FAIL: removed external crate reappeared in a manifest"
    audit_failed=1
fi
if [ "$audit_saw_trace" -ne 1 ]; then
    echo "FAIL: dep audit glob never visited crates/trace/Cargo.toml"
    audit_failed=1
fi
[ "$audit_failed" -eq 0 ] || exit 1
echo "dependency audit: OK (all dependencies are internal path deps)"

echo "== clippy (whole workspace), warnings are errors =="
cargo clippy -q --offline --workspace -- -D warnings

echo "== concurrency tests under a deadlock watchdog =="
# The multi-client / group-commit / shard-independence / parallel-restart
# tests exercise the decomposed server's locking across real threads; a
# lock-order bug shows up as a hang, not a failure. `timeout` turns a
# hang into a hard FAIL. The runtime_* suites add the reactor: admission
# sheds, park/resume lock waits, and direct-vs-reactor equivalence; the
# lock_property suite drives seeded random histories through the
# granularity hierarchy (flat-manager oracle, slot independence, mixed
# page/record deadlocks) and record_granularity pins the zero-wait
# distinct-slot contention win through the reactor.
# ckpt_fuzzy and ckpt_concurrent add the non-quiescent checkpointer:
# two-phase fuzzy protocol equivalence against the quiesced oracle for
# all six schemes, and reactor clients hammering hot pages while the
# background flusher checkpoints in a loop (zero maintenance sheds).
# adaptive_equivalence crashes a seeded mixed-scheme workload at several
# commit points and requires the serial and parallel (1/2/4-worker)
# restarts of the interleaved PD/SD/WPL/RLOG log to be byte-identical.
for t in multi_client group_commit shard_independence restart_equivalence \
         runtime_admission runtime_equivalence lock_property \
         record_granularity ckpt_fuzzy ckpt_concurrent \
         adaptive_equivalence; do
    if ! timeout 120 cargo test -q --offline --test "$t"; then
        echo "FAIL: --test $t did not finish within 120s (possible deadlock)" \
             "or failed; see output above"
        exit 1
    fi
done

echo "== RedoLogical (PD-RLOG) crash/restart smoke =="
# The sixth scheme's full cycle — generate, committed traversals, crash,
# REDO-only restart (no undo phase), byte-identical object state vs every
# other scheme. scheme_equivalence derives its list from
# SystemConfig::all_schemes(), so PD-RLOG is covered by construction and
# this run fails if the shared list ever loses it.
if ! timeout 180 cargo test -q --offline --test scheme_equivalence; then
    echo "FAIL: --test scheme_equivalence did not finish within 180s or failed"
    exit 1
fi

echo "== trace binary smoke run =="
cargo run --release --offline -p qs-bench --bin trace > /dev/null

echo "== micro benchmark smoke run =="
# --smoke shrinks the batches so this is a harness/JSON regression check,
# not a measurement; --validate asserts BENCH_micro.json parses and covers
# every expected benchmark name.
micro_dir=$(mktemp -d)
(cd "$micro_dir" && "$OLDPWD/target/release/micro" --smoke > /dev/null)
cargo run --release --offline -p qs-bench --bin micro -- \
    --validate "$micro_dir/BENCH_micro.json"
rm -rf "$micro_dir"

echo "== restart benchmark smoke run =="
# Crashes a small OO7 workload and restarts it at every worker count with
# the phase-count cross-check enabled; --validate asserts the JSON covers
# every scheme × worker count.
restart_dir=$(mktemp -d)
(cd "$restart_dir" && "$OLDPWD/target/release/restart_bench" --smoke > /dev/null)
cargo run --release --offline -p qs-bench --bin restart_bench -- \
    --validate "$restart_dir/BENCH_restart.json"
rm -rf "$restart_dir"

echo "== scale benchmark smoke run =="
# Runs the full mode × client-count matrix (reactor included, up to 1024
# simulated clients) at tiny sizes, with the workload-applied and
# commit-count assertions live; --validate asserts the JSON covers every
# mode at every client count.
scale_dir=$(mktemp -d)
(cd "$scale_dir" && "$OLDPWD/target/release/scale" --smoke > /dev/null)
cargo run --release --offline -p qs-bench --bin scale -- \
    --validate "$scale_dir/BENCH_scale.json"
rm -rf "$scale_dir"

echo "== checkpoint benchmark smoke run =="
# Quiesced vs concurrent checkpointing with the crash + restart + value
# re-assertions live in both modes; --validate asserts the JSON shape
# (the p99_ratio acceptance bar is skipped for smoke files).
ckpt_dir=$(mktemp -d)
(cd "$ckpt_dir" && "$OLDPWD/target/release/ckpt_bench" --smoke > /dev/null)
cargo run --release --offline -p qs-bench --bin ckpt_bench -- \
    --validate "$ckpt_dir/BENCH_ckpt.json"
rm -rf "$ckpt_dir"

echo "== adaptive benchmark smoke run =="
# Per-transaction scheme election vs every fixed scheme on three
# workloads, each run ending in a crash with serial-vs-parallel restart
# equivalence asserted; --validate asserts the JSON covers every
# workload × scheme (the 1.05×/1.3× acceptance bars are skipped for
# smoke files).
adaptive_dir=$(mktemp -d)
(cd "$adaptive_dir" && "$OLDPWD/target/release/adaptive_bench" --smoke > /dev/null)
cargo run --release --offline -p qs-bench --bin adaptive_bench -- \
    --validate "$adaptive_dir/BENCH_adaptive.json"
rm -rf "$adaptive_dir"

echo "== verify: all green =="
