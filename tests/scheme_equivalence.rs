//! The strongest cross-crate invariant: a deterministic OO7 workload must
//! leave byte-identical object state no matter which recovery scheme ran
//! it — before AND after a crash/restart cycle.

use qs_repro::core::{Store, SystemConfig};
use qs_repro::esm::{ClientConn, Server, ServerConfig};
use qs_repro::oo7::{gen, params::Oo7Params, traversal, T2Mode};
use qs_repro::sim::Meter;
use qs_repro::types::{ClientId, PageId};
use std::sync::Arc;

fn server_cfg(cfg: &SystemConfig) -> ServerConfig {
    ServerConfig::new(cfg.flavor).with_pool_mb(2.0).with_volume_pages(2048).with_log_mb(32.0)
}

/// Run T2A, T2B, T2C (one committed transaction each) on a tiny OO7
/// module, crash, restart, quiesce, and dump all object bytes.
fn run_and_dump(cfg: SystemConfig) -> (String, Vec<Vec<u8>>) {
    let name = cfg.name();
    let meter = Meter::new();
    let server = Arc::new(Server::format(server_cfg(&cfg), Arc::clone(&meter)).unwrap());
    let mut params = Oo7Params::tiny();
    params.num_modules = 1;
    let db = gen::generate(&server, &params, 2024).unwrap();
    let pages = db.total_pages;
    let client = ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
    let mut store = Store::new(client, cfg).unwrap();
    for mode in [T2Mode::A, T2Mode::B, T2Mode::C] {
        store.begin().unwrap();
        traversal::t2(&mut store, &db.modules[0], mode).unwrap();
        store.commit().unwrap();
    }
    drop(store);
    let server = Arc::try_unwrap(server).ok().expect("sole owner");
    let parts = server.crash();
    let restarted = Server::restart(parts, server_cfg_from_name(&name), Meter::new()).unwrap();
    restarted.quiesce().unwrap();
    let mut dump = Vec::new();
    for pid in 0..pages as u32 {
        let page = restarted.read_page_for_test(PageId(pid)).unwrap();
        // Object bytes only (pageLSN headers legitimately differ by scheme).
        let mut objs = Vec::new();
        for (_slot, off, len) in page.live_objects() {
            objs.extend_from_slice(&page.bytes()[off..off + len]);
        }
        dump.push(objs);
    }
    (name, dump)
}

fn server_cfg_from_name(name: &str) -> ServerConfig {
    let cfg = config_by_name(name);
    server_cfg(&cfg)
}

fn config_by_name(name: &str) -> SystemConfig {
    // The shared Table 3 list is the source of truth: a scheme added
    // there is covered here automatically.
    SystemConfig::by_name(name).unwrap_or_else(|| panic!("unknown {name}")).with_memory(2.0, 0.5)
}

#[test]
fn all_schemes_produce_identical_databases_after_crash() {
    let names: Vec<String> =
        SystemConfig::all_schemes().iter().map(|(cfg, _)| cfg.name()).collect();
    assert!(names.len() >= 6, "shared list covers every scheme");
    let mut dumps = Vec::new();
    for n in &names {
        dumps.push(run_and_dump(config_by_name(n)));
    }
    let (ref_name, ref_dump) = &dumps[0];
    for (name, dump) in &dumps[1..] {
        assert_eq!(ref_dump.len(), dump.len(), "{ref_name} vs {name}: page counts");
        for (i, (a, b)) in ref_dump.iter().zip(dump).enumerate() {
            assert_eq!(a, b, "page {i} differs: {ref_name} vs {name}");
        }
    }
}

#[test]
fn traversal_counts_scale_with_constrained_memory() {
    // A store whose client pool is smaller than the module: traversals
    // still complete with identical update counts, just more slowly
    // (paging) — the big-database experiments' mechanism in miniature.
    let roomy = SystemConfig::pd_esm().with_memory(2.0, 0.5);
    // The tiny module spans only a handful of pages; a 3-page pool is
    // guaranteed to page on it.
    let page_mb = 8192.0 / (1024.0 * 1024.0);
    let mut tight = SystemConfig::pd_esm();
    tight.client_memory_mb = 5.0 * page_mb;
    tight.recovery_buffer_mb = 2.0 * page_mb;

    let mut results = Vec::new();
    for cfg in [roomy, tight] {
        let meter = Meter::new();
        let server = Arc::new(Server::format(server_cfg(&cfg), Arc::clone(&meter)).unwrap());
        let mut params = Oo7Params::tiny();
        params.num_modules = 1;
        let db = gen::generate(&server, &params, 7).unwrap();
        let client = ClientConn::new(
            ClientId(0),
            Arc::clone(&server),
            cfg.client_pool_pages(),
            Arc::clone(&meter),
        );
        let mut store = Store::new(client, cfg).unwrap();
        store.begin().unwrap();
        let updates = traversal::t2(&mut store, &db.modules[0], T2Mode::B).unwrap();
        store.commit().unwrap();
        results.push((updates, meter.snapshot().client_evictions));
    }
    assert_eq!(results[0].0, results[1].0, "same logical work");
    assert_eq!(results[0].1, 0, "roomy pool must not page");
    assert!(results[1].1 > 0, "tight pool must page");
}
