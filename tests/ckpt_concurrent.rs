//! Seeded concurrent checkpointing: N reactor clients hammer their hot
//! pages (each page re-dirtied every round — permanently claimable) while
//! the background flusher takes fuzzy checkpoints in a loop. Maintenance
//! must never cost a client an admission slot (zero `Overloaded` sheds —
//! the committer only *queues* a flusher wakeup), and the state recovered
//! after a crash must equal the quiesced-path oracle: every client's last
//! committed value, independent of the flusher knob used at restart.
//! Runs under the deadlock watchdog in `scripts/verify.sh`.

use qs_repro::core::{Store, SystemConfig};
use qs_repro::esm::{ClientConn, Reactor, RecoveryFlavor, Server, ServerConfig, StableParts};
use qs_repro::sim::Meter;
use qs_repro::storage::{MemDisk, Page, StableMedia};
use qs_repro::types::{ClientId, Oid};
use std::sync::Arc;

const CLIENTS: usize = 4;
const SLOTS: usize = 4;
const ROUNDS: u8 = 20;

fn server_cfg(cfg: &SystemConfig) -> ServerConfig {
    ServerConfig::new(cfg.flavor)
        .with_pool_mb(1.0)
        .with_volume_pages(256)
        .with_log_mb(8.0)
        .with_background_flusher(true)
        .with_runtime_workers(2)
}

fn image(media: &Arc<dyn StableMedia>) -> Vec<u8> {
    let mut buf = vec![0u8; media.len()];
    media.read_at(0, &mut buf).unwrap();
    buf
}

fn disk_from(bytes: &[u8]) -> Arc<dyn StableMedia> {
    let d = MemDisk::new(bytes.len());
    d.write_at(0, bytes).unwrap();
    Arc::new(d)
}

/// Client `i` owns page `i` (the paper's private-module design) and
/// writes slot `r % SLOTS` on round `r`, so the final value of every
/// slot is interleaving-independent: the last round that hit it.
fn expected_value(slot: usize) -> Vec<u8> {
    let last = (1..=ROUNDS).filter(|r| (*r as usize) % SLOTS == slot).max().unwrap();
    vec![last; 32]
}

#[test]
fn concurrent_flusher_checkpoints_never_shed_and_recover_exactly() {
    for (cfg, _) in SystemConfig::all_schemes() {
        let cfg = cfg.with_memory(1.0, 0.25);
        let name = cfg.name();
        let meter = Meter::new();
        let server = Arc::new(Server::format(server_cfg(&cfg), Arc::clone(&meter)).unwrap());
        let pids = server.bulk_allocate(CLIENTS).unwrap();
        let mut oids = Vec::new();
        for &pid in &pids {
            let mut p = Page::new();
            for _ in 0..SLOTS {
                oids.push(Oid::new(pid, p.insert(pid, &[0u8; 100]).unwrap()));
            }
            server.bulk_write(pid, &p).unwrap();
        }
        server.bulk_sync().unwrap();

        // Starting the reactor also starts the flusher thread (the knob
        // is on), so maintenance leaves the committer immediately.
        let reactor = Reactor::start(&server);
        let before = server.checkpoints_taken();
        std::thread::scope(|s| {
            for i in 0..CLIENTS {
                let reactor = &reactor;
                let cfg = &cfg;
                let oids = &oids;
                s.spawn(move || {
                    let client = ClientConn::via_reactor(
                        ClientId(i as u16),
                        reactor,
                        cfg.client_pool_pages(),
                        Meter::new(),
                    );
                    let mut store = Store::new(client, cfg.clone()).unwrap();
                    for round in 1..=ROUNDS {
                        let slot = (round as usize) % SLOTS;
                        store.begin().unwrap();
                        store.modify(oids[i * SLOTS + slot], 0, &[round; 32]).unwrap();
                        store.commit().unwrap();
                    }
                });
            }
            // The checkpoint loop, concurrent with the hammering: every
            // request rides the flusher thread, below the log watermark.
            let mut queued = 0;
            for _ in 0..40 {
                if server.request_checkpoint() {
                    queued += 1;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert!(queued > 0, "{name}: no checkpoint request ever reached the flusher");
        });
        let stats = reactor.stats();
        reactor.stop();
        drop(reactor);
        // Maintenance rides the flusher thread and the committer only
        // enqueues a wakeup — admission never sheds because of it.
        assert_eq!(stats.shed_budget, 0, "{name}: budget sheds during concurrent checkpoints");
        assert_eq!(stats.shed_queue, 0, "{name}: queue sheds during concurrent checkpoints");

        // Let any in-flight flusher pass finish, then prove checkpoints
        // actually ran concurrently with the traffic.
        server.stop_flusher();
        assert!(
            server.checkpoints_taken() > before,
            "{name}: the flusher never completed a checkpoint"
        );

        let parts = Arc::try_unwrap(server).ok().expect("sole owner").crash();
        let (data, log) = (image(&parts.data_media), image(&parts.log_media));

        // Recovery: every client's last committed value, under both the
        // fuzzy-aware config and the plain quiesced oracle config — the
        // knob must not change what restart reads from the media.
        for fuzzy in [true, false] {
            let scfg = ServerConfig::new(cfg.flavor)
                .with_pool_mb(1.0)
                .with_volume_pages(256)
                .with_log_mb(8.0)
                .with_background_flusher(fuzzy);
            let parts = StableParts {
                data_media: disk_from(&data),
                log_media: disk_from(&log),
                flight: None,
            };
            let restarted = Server::restart(parts, scfg, Meter::new()).unwrap();
            assert_eq!(restarted.active_txns(), 0, "{name}: txns leaked through restart");
            for (i, &pid) in pids.iter().enumerate() {
                let page = restarted.read_page_for_test(pid).unwrap();
                for slot in 0..SLOTS {
                    let got = page.object(pid, oids[i * SLOTS + slot].slot).unwrap();
                    assert_eq!(
                        &got[..32],
                        &expected_value(slot)[..],
                        "{name}: client {i} slot {slot} lost a committed value (fuzzy={fuzzy})"
                    );
                }
            }
            if cfg.flavor == RecoveryFlavor::Wpl {
                restarted.quiesce().unwrap();
            }
            drop(restarted.crash());
        }
    }
}
