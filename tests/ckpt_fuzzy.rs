//! Two-phase fuzzy checkpoint equivalence: with the background-flusher
//! knob on, `checkpoint()` becomes begin record → incremental drain →
//! end record, taken *without* quiescing — including mid-transaction,
//! with an uncommitted loser active and shipped. For every one of the
//! six schemes, a crash after fuzzy checkpoints must recover exactly
//! the state the quiesced-checkpoint oracle recovers: same committed
//! values, same undone/skipped losers, and the fuzzy media must restart
//! bit-identically under the serial and the parallel engines.

use qs_repro::core::{Store, SystemConfig};
use qs_repro::esm::{ClientConn, RecoveryFlavor, Server, ServerConfig, StableParts};
use qs_repro::sim::Meter;
use qs_repro::storage::{MemDisk, Page, StableMedia};
use qs_repro::types::{ClientId, Lsn, Oid};
use qs_repro::wal::LogRecord;
use std::sync::Arc;

fn server_cfg(cfg: &SystemConfig, fuzzy: bool) -> ServerConfig {
    ServerConfig::new(cfg.flavor)
        .with_pool_mb(1.0)
        .with_volume_pages(256)
        .with_log_mb(8.0)
        .with_background_flusher(fuzzy)
}

/// Byte image of a stable medium.
fn image(media: &Arc<dyn StableMedia>) -> Vec<u8> {
    let mut buf = vec![0u8; media.len()];
    media.read_at(0, &mut buf).unwrap();
    buf
}

/// A fresh medium holding the given image.
fn disk_from(bytes: &[u8]) -> Arc<dyn StableMedia> {
    let d = MemDisk::new(bytes.len());
    d.write_at(0, bytes).unwrap();
    Arc::new(d)
}

fn value_at(server: &Server, oid: Oid) -> Vec<u8> {
    server.read_page_for_test(oid.page).unwrap().object(oid.page, oid.slot).unwrap().to_vec()
}

/// The restart_equivalence crash scenario, parameterized on the
/// checkpoint protocol: a committed burst, an uncommitted loser shipped
/// to the server, a checkpoint taken *while the loser is active* (the
/// mid-transaction case the fuzzy protocol must get right), a second
/// committed burst, an in-flight transaction, crash.
fn crashed_images(cfg: &SystemConfig, fuzzy: bool) -> (Vec<u8>, Vec<u8>, Vec<Oid>) {
    let meter = Meter::new();
    let server = Arc::new(Server::format(server_cfg(cfg, fuzzy), Arc::clone(&meter)).unwrap());
    let pids = server.bulk_allocate(10).unwrap();
    let mut oids = Vec::new();
    for &pid in &pids {
        let mut p = Page::new();
        for _ in 0..4 {
            oids.push(Oid::new(pid, p.insert(pid, &[0u8; 100]).unwrap()));
        }
        server.bulk_write(pid, &p).unwrap();
    }
    server.bulk_sync().unwrap();

    let client = ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
    let mut store = Store::new(client, cfg.clone()).unwrap();
    for round in 1..=6u8 {
        store.begin().unwrap();
        store.modify(oids[round as usize], 0, &[round; 32]).unwrap();
        store.modify(oids[0], 40, &[round; 32]).unwrap();
        store.commit().unwrap();
    }
    drop(store);

    // The loser: uncommitted, on pages the bursts avoid (6..9), shipped
    // and made durable by the checkpoint below.
    let loser = server.begin();
    for &pid in &pids[6..9] {
        server.lock_page(loser, pid, qs_repro::esm::LockMode::X).unwrap();
    }
    match cfg.flavor {
        RecoveryFlavor::Wpl => {
            for &pid in &pids[6..9] {
                let mut p = server.read_page_for_test(pid).unwrap();
                p.object_mut(pid, 0).unwrap()[..16].copy_from_slice(&[0xEE; 16]);
                server.receive_dirty_page(loser, pid, p).unwrap();
            }
        }
        RecoveryFlavor::RedoLogical => {
            let recs: Vec<LogRecord> = pids[6..9]
                .iter()
                .flat_map(|&pid| {
                    (0..10u8).map(move |i| LogRecord::UpdateLogical {
                        txn: loser,
                        prev: Lsn::NULL,
                        page: pid,
                        slot: (i % 4) as u16,
                        offset: (i as u16 % 3) * 20,
                        after: vec![0xE0 + i; 20],
                    })
                })
                .collect();
            server.receive_log_records(loser, recs).unwrap();
        }
        _ => {
            let recs: Vec<LogRecord> = pids[6..9]
                .iter()
                .flat_map(|&pid| {
                    (0..10u8).map(move |i| LogRecord::Update {
                        txn: loser,
                        prev: Lsn::NULL,
                        page: pid,
                        slot: (i % 4) as u16,
                        offset: (i as u16 % 3) * 20,
                        before: vec![0u8; 20],
                        after: vec![0xE0 + i; 20],
                    })
                })
                .collect();
            server.receive_log_records(loser, recs).unwrap();
        }
    }
    // Mid-transaction checkpoint: quiesced sharp/aged under the oracle
    // config, two-phase fuzzy (begin → drain → end, no quiesce) under
    // the flusher config. Either way it must carry the loser in its
    // transaction-table snapshot.
    server.checkpoint().unwrap();

    // Burst B: committed work after the checkpoint, then one in-flight
    // transaction whose unforced tail dies with the crash.
    let client =
        ClientConn::new(ClientId(1), Arc::clone(&server), cfg.client_pool_pages(), Meter::new());
    let mut store = Store::new(client, cfg.clone()).unwrap();
    for round in 7..=12u8 {
        store.begin().unwrap();
        store.modify(oids[(round as usize) % 20], 0, &[round; 32]).unwrap();
        store.modify(oids[(round as usize) % 20 + 1], 36, &[round; 24]).unwrap();
        store.commit().unwrap();
    }
    store.begin().unwrap();
    store.modify(oids[2], 0, &[0xDD; 16]).unwrap();
    drop(store);

    let parts = Arc::try_unwrap(server).ok().expect("sole owner").crash();
    (image(&parts.data_media), image(&parts.log_media), oids)
}

/// Everything observable about one restart.
#[derive(PartialEq, Debug)]
struct Observed {
    values: Vec<Vec<u8>>,
    active_txns: usize,
    data_image: Vec<u8>,
    log_image: Vec<u8>,
}

fn restart_observed(
    data: &[u8],
    log: &[u8],
    oids: &[Oid],
    scfg: ServerConfig,
    workers: usize,
) -> Observed {
    let scfg = scfg.with_redo_workers(workers);
    let parts =
        StableParts { data_media: disk_from(data), log_media: disk_from(log), flight: None };
    let server = Server::restart(parts, scfg, Meter::new()).unwrap();
    let values = oids.iter().map(|&o| value_at(&server, o)).collect();
    let active_txns = server.active_txns();
    server.quiesce().unwrap();
    let parts = server.crash();
    Observed {
        values,
        active_txns,
        data_image: image(&parts.data_media),
        log_image: image(&parts.log_media),
    }
}

/// For every scheme: the fuzzy-checkpoint crash recovers the same logical
/// state as the quiesced-checkpoint oracle (committed values identical,
/// loser gone), and the fuzzy media restart identically under serial and
/// parallel engines. The media images themselves differ between the two
/// protocols (different checkpoint records), so the comparison is on
/// recovered state, not raw bytes.
#[test]
fn fuzzy_checkpoint_recovers_like_the_quiesced_oracle() {
    for (cfg, _) in SystemConfig::all_schemes() {
        let cfg = cfg.with_memory(1.0, 0.25);
        let name = cfg.name();

        let (odata, olog, oids) = crashed_images(&cfg, false);
        let oracle = restart_observed(&odata, &olog, &oids, server_cfg(&cfg, false), 1);

        let (fdata, flog, foids) = crashed_images(&cfg, true);
        assert_eq!(oids, foids, "{name}: scenario divergence");
        let fuzzy = restart_observed(&fdata, &flog, &foids, server_cfg(&cfg, true), 1);

        assert_eq!(
            fuzzy.values, oracle.values,
            "{name}: fuzzy-checkpoint recovery diverged from the quiesced oracle"
        );
        assert_eq!(fuzzy.active_txns, 0, "{name}: loser survived fuzzy recovery");

        // Serial vs parallel restart of the *same* fuzzy media must be
        // bit-identical, begin/end anchoring included.
        for workers in [2, 4, 8] {
            let got = restart_observed(&fdata, &flog, &foids, server_cfg(&cfg, true), workers);
            assert_eq!(got, fuzzy, "{name}: workers={workers} diverged on fuzzy media");
        }
    }
}

/// The fuzzy drain must actually write data pages outside any quiesce:
/// dirty pages claimed at begin are on disk before the end record, so a
/// crash *immediately* after a fuzzy checkpoint replays only the log
/// tail. Sanity-checks the elevator batches really ran for the
/// page-shipping schemes (WPL drains via reclaim, not the checkpoint).
#[test]
fn fuzzy_drain_flushes_claimed_pages() {
    for (cfg, _) in SystemConfig::all_schemes() {
        let cfg = cfg.with_memory(1.0, 0.25);
        if cfg.flavor == RecoveryFlavor::Wpl || cfg.flavor == RecoveryFlavor::RedoLogical {
            // WPL claims nothing; RLOG's aged claim is empty on the first
            // checkpoint (nothing predates a null previous checkpoint).
            continue;
        }
        let name = cfg.name();
        let meter = Meter::new();
        let server = Arc::new(Server::format(server_cfg(&cfg, true), Arc::clone(&meter)).unwrap());
        let pids = server.bulk_allocate(8).unwrap();
        let mut oids = Vec::new();
        for &pid in &pids {
            let mut p = Page::new();
            oids.push(Oid::new(pid, p.insert(pid, &[0u8; 100]).unwrap()));
            server.bulk_write(pid, &p).unwrap();
        }
        server.bulk_sync().unwrap();
        let client =
            ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
        let mut store = Store::new(client, cfg.clone()).unwrap();
        for (i, &oid) in oids.iter().enumerate() {
            store.begin().unwrap();
            store.modify(oid, 0, &[i as u8 + 1; 32]).unwrap();
            store.commit().unwrap();
        }
        drop(store);
        server.checkpoint().unwrap();
        let (batches, pages) = server.flusher_stats();
        assert!(batches > 0, "{name}: fuzzy checkpoint drained no batches");
        assert!(pages >= 8, "{name}: fuzzy checkpoint drained {pages} pages, expected >= 8");
        drop(Arc::try_unwrap(server).ok().expect("sole owner").crash());
    }
}
