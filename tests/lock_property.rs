//! Seeded property tests for the hierarchical lock manager.
//!
//! The manager grew record granularity (DESIGN.md §6e); these histories
//! check the three load-bearing claims of that refactor:
//!
//! 1. **Page-mode compatibility** — a history that only ever takes page
//!    `S`/`X` locks behaves bit-identically to the old flat page-lock
//!    manager: same grant/deny outcome at every step, no waiting on any
//!    granted request, same lock-table population. The old manager's
//!    semantics are reimplemented here as an in-test oracle and the two
//!    are driven side by side from the same seeded sequence.
//! 2. **Slot independence** — record locks on *distinct* slots of one
//!    page never conflict and never wait, under any interleaving.
//! 3. **Mixed-granularity deadlocks** — a waits-for cycle spanning page
//!    and record resources is detected at queue time and the cycle
//!    closer is denied with `LockConflict`.
//!
//! No external crates: randomness is a hand-rolled LCG (same constants
//! as `qs-prng`), so every failure reproduces from its printed seed.

use qs_repro::esm::{AsyncLockOutcome, LockManager, LockMode, Resource};
use qs_repro::types::{PageId, QsError, TxnId};
use std::collections::HashMap;

/// Minimal LCG (Knuth's MMIX constants); deterministic per seed.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

// ---------------------------------------------------------------------
// 1. Page-mode histories match the old flat manager
// ---------------------------------------------------------------------

/// In-test oracle: the pre-hierarchy page-lock manager. Flat `S`/`X`
/// modes, re-entrant grants, sole-compatible upgrades, whole-table
/// release — exactly what `LockManager` did before [`Resource`] and the
/// intention modes existed. Single-threaded histories never queue, so
/// holder-set logic is the entire observable behavior.
#[derive(Default)]
struct FlatOracle {
    /// page -> (txn -> mode); an entry disappears with its last holder.
    locks: HashMap<u32, HashMap<u64, LockMode>>,
}

impl FlatOracle {
    /// Would the old manager grant `mode` on `pid` to `txn` right now?
    /// Mutates the table on grant; leaves it untouched on deny.
    fn try_acquire(&mut self, txn: u64, pid: u32, mode: LockMode) -> bool {
        let entry = self.locks.entry(pid).or_default();
        let granted = match entry.get(&txn) {
            Some(&held) => {
                let goal = if held == LockMode::X || held == mode { held } else { LockMode::X };
                let ok = entry
                    .iter()
                    .all(|(&h, &hm)| h == txn || (hm == LockMode::S && goal == LockMode::S));
                if ok {
                    entry.insert(txn, goal);
                }
                ok
            }
            None => {
                let ok = entry.iter().all(|(_, &hm)| hm == LockMode::S && mode == LockMode::S);
                if ok {
                    entry.insert(txn, mode);
                }
                ok
            }
        };
        if entry.is_empty() {
            self.locks.remove(&pid);
        }
        granted
    }

    fn release_all(&mut self, txn: u64) {
        self.locks.retain(|_, holders| {
            holders.remove(&txn);
            !holders.is_empty()
        });
    }

    fn entries(&self) -> usize {
        self.locks.len()
    }
}

#[test]
fn page_mode_histories_match_the_flat_manager() {
    for seed in 0..24u64 {
        let mut rng = Lcg::new(seed);
        let lm = LockManager::new();
        let mut oracle = FlatOracle::default();
        // The full observable history: (txn, page, mode, granted) per
        // request — collected from both managers and compared whole, so
        // a divergence reports the exact step and seed.
        let mut got: Vec<(u64, u32, bool, bool)> = Vec::new();
        let mut want: Vec<(u64, u32, bool, bool)> = Vec::new();

        for step in 0..400 {
            if rng.below(10) == 0 {
                let txn = 1 + rng.below(4);
                oracle.release_all(txn);
                lm.release_all(TxnId(txn));
            } else {
                let txn = 1 + rng.below(4);
                let pid = rng.below(6) as u32;
                let exclusive = rng.below(2) == 0;
                let mode = if exclusive { LockMode::X } else { LockMode::S };
                let res = Resource::Page(PageId(pid));

                let expect = oracle.try_acquire(txn, pid, mode);
                let granted = if expect && rng.below(2) == 0 {
                    // Exercise the blocking entry point too: a request the
                    // flat manager grants must be granted *without waiting*
                    // by the hierarchical one (identical grant order).
                    let waited = lm.lock_observing(TxnId(txn), res, mode).unwrap();
                    assert!(!waited, "seed {seed} step {step}: page-mode grant waited");
                    true
                } else {
                    match lm.try_lock(TxnId(txn), res, mode) {
                        Ok(()) => true,
                        Err(QsError::LockConflict { .. }) => false,
                        Err(e) => panic!("seed {seed} step {step}: unexpected {e:?}"),
                    }
                };
                got.push((txn, pid, exclusive, granted));
                want.push((txn, pid, exclusive, expect));

                // A granted mode is held (and deny leaves prior holds
                // intact) — spot-check through the public probe.
                assert_eq!(
                    lm.holds(TxnId(txn), res, mode),
                    oracle
                        .locks
                        .get(&pid)
                        .and_then(|h| h.get(&txn))
                        .map(|&held| { held == mode || held == LockMode::X })
                        == Some(true),
                    "seed {seed} step {step}: holds() diverged"
                );
            }
            assert_eq!(
                lm.locked_resources(),
                oracle.entries(),
                "seed {seed} step {step}: lock-table population diverged"
            );
        }
        assert_eq!(got, want, "seed {seed}: grant history diverged from the flat manager");
    }
}

// ---------------------------------------------------------------------
// 2. Distinct slots of one page never conflict
// ---------------------------------------------------------------------

#[test]
fn distinct_slot_record_locks_never_conflict() {
    for seed in 0..24u64 {
        let mut rng = Lcg::new(100 + seed);
        let lm = LockManager::new();
        let pid = PageId(7);
        // Four transactions; txn t owns slots ≡ t (mod 4) — distinct by
        // construction no matter the interleaving.
        for step in 0..300 {
            let txn = rng.below(4);
            if rng.below(8) == 0 {
                lm.release_all(TxnId(txn));
                continue;
            }
            let slot = (txn + 4 * rng.below(8)) as u16;
            let mode = if rng.below(2) == 0 { LockMode::X } else { LockMode::S };
            let waited =
                lm.lock_resource(TxnId(txn), Resource::Record(pid, slot), mode).unwrap_or_else(
                    |e| panic!("seed {seed} step {step}: distinct-slot lock denied: {e:?}"),
                );
            assert!(!waited, "seed {seed} step {step}: distinct-slot lock waited");
            let intent = if mode == LockMode::X { LockMode::IX } else { LockMode::IS };
            assert!(lm.holds(TxnId(txn), Resource::Page(pid), intent), "intent missing");
        }
        for txn in 0..4 {
            lm.release_all(TxnId(txn));
        }
        assert_eq!(lm.locked_resources(), 0, "seed {seed}: table did not drain");
    }
}

// ---------------------------------------------------------------------
// 3. Mixed-granularity deadlock cycles are detected
// ---------------------------------------------------------------------

#[test]
fn mixed_granularity_deadlock_closer_is_denied() {
    // Randomize the granularity at both ends of the cycle: each of r1/r2
    // is independently a whole page or one record, so all four page/record
    // combinations (including the mixed ones the flat manager could never
    // see) are covered across seeds.
    for seed in 0..32u64 {
        let mut rng = Lcg::new(200 + seed);
        let lm = LockManager::new();
        let (t1, t2) = (TxnId(1), TxnId(2));
        let res = |pid: u32, record: bool, slot: u16| {
            if record {
                Resource::Record(PageId(pid), slot)
            } else {
                Resource::Page(PageId(pid))
            }
        };
        let r1 = res(10, rng.below(2) == 0, rng.below(16) as u16);
        let r2 = res(20, rng.below(2) == 0, rng.below(16) as u16);

        assert!(!lm.lock_resource(t1, r1, LockMode::X).unwrap());
        assert!(!lm.lock_resource(t2, r2, LockMode::X).unwrap());
        // T1 queues behind T2 (async, so one thread can build the cycle).
        assert_eq!(
            lm.lock_resource_async(t1, r2, LockMode::X).unwrap(),
            AsyncLockOutcome::Queued,
            "seed {seed}: X vs X must queue ({r1:?} / {r2:?})"
        );
        // T2 closing the cycle on r1 must be denied, not queued: the
        // waits-for graph is keyed by transaction, so the page/record mix
        // is invisible to the cycle check.
        assert!(
            matches!(
                lm.lock_resource_async(t2, r1, LockMode::X),
                Err(QsError::LockConflict { .. })
            ),
            "seed {seed}: cycle closer was not denied ({r1:?} / {r2:?})"
        );
        // The survivor's queued request is granted once T2 releases.
        lm.release_all(t2);
        lm.release_all(t1);
        assert_eq!(lm.locked_resources(), 0, "seed {seed}: table did not drain");
    }
}
