//! Cross-crate crash-recovery integration tests: scripted crashes at every
//! interesting point of the protocol, for every software version.

use qs_repro::core::{Store, SystemConfig};
use qs_repro::esm::{ClientConn, Server, ServerConfig, StableParts};
use qs_repro::sim::Meter;
use qs_repro::storage::Page;
use qs_repro::types::{ClientId, Oid, QsResult};
use std::sync::Arc;

fn server_cfg(cfg: &SystemConfig) -> ServerConfig {
    ServerConfig::new(cfg.flavor).with_pool_mb(1.0).with_volume_pages(256).with_log_mb(8.0)
}

fn all_configs() -> Vec<SystemConfig> {
    vec![
        SystemConfig::pd_esm().with_memory(1.0, 0.25),
        SystemConfig::sd_esm().with_memory(1.0, 0.25),
        SystemConfig::sl_esm().with_memory(1.0, 0.25),
        SystemConfig::pd_redo().with_memory(1.0, 0.25),
        SystemConfig::wpl().with_memory(1.0, 0.25),
    ]
}

fn build(cfg: &SystemConfig) -> QsResult<(Store, Arc<Server>, Vec<Oid>)> {
    let meter = Meter::new();
    let server = Arc::new(Server::format(server_cfg(cfg), Arc::clone(&meter))?);
    let pids = server.bulk_allocate(10)?;
    let mut oids = Vec::new();
    for &pid in &pids {
        let mut p = Page::new();
        for _ in 0..4 {
            oids.push(Oid::new(pid, p.insert(pid, &[0u8; 100])?));
        }
        server.bulk_write(pid, &p)?;
    }
    server.bulk_sync()?;
    let client = ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
    Ok((Store::new(client, cfg.clone())?, server, oids))
}

fn crash(store: Store, server: Arc<Server>) -> StableParts {
    drop(store);
    Arc::try_unwrap(server).ok().expect("sole owner").crash()
}

fn value_at(server: &Server, oid: Oid) -> Vec<u8> {
    server.read_page_for_test(oid.page).unwrap().object(oid.page, oid.slot).unwrap().to_vec()
}

#[test]
fn crash_between_commits_keeps_exactly_committed_state() {
    for cfg in all_configs() {
        let name = cfg.name();
        let (mut store, server, oids) = build(&cfg).unwrap();
        // Ten committed transactions, each updating two objects.
        for round in 1..=10u8 {
            store.begin().unwrap();
            store.modify(oids[(round as usize) % oids.len()], 0, &[round; 20]).unwrap();
            store.modify(oids[0], 50, &[round; 20]).unwrap();
            store.commit().unwrap();
        }
        // One in-flight transaction at crash time.
        store.begin().unwrap();
        store.modify(oids[3], 0, &[0xEE; 20]).unwrap();

        let parts = crash(store, server);
        let restarted = Server::restart(parts, server_cfg(&cfg), Meter::new()).unwrap();
        assert_eq!(value_at(&restarted, oids[0])[50..70], [10u8; 20], "{name}");
        assert_eq!(value_at(&restarted, oids[10])[0..20], [10u8; 20], "{name}");
        // oids[3] was committed in round 3 (value 3) and dirtied by the
        // loser; the loser's bytes must be gone.
        assert_eq!(value_at(&restarted, oids[3])[0..20], [3u8; 20], "{name}");
    }
}

#[test]
fn double_crash_is_idempotent() {
    // Crash, restart, crash again immediately (before any new work), and
    // restart again: recovery must be stable under repetition.
    for cfg in all_configs() {
        let name = cfg.name();
        let (mut store, server, oids) = build(&cfg).unwrap();
        store.begin().unwrap();
        store.modify(oids[7], 0, &[42u8; 32]).unwrap();
        store.commit().unwrap();
        let parts = crash(store, server);
        let r1 = Server::restart(parts, server_cfg(&cfg), Meter::new()).unwrap();
        let parts = r1.crash();
        let r2 = Server::restart(parts, server_cfg(&cfg), Meter::new()).unwrap();
        assert_eq!(value_at(&r2, oids[7])[0..32], [42u8; 32], "{name}");
        assert_eq!(r2.active_txns(), 0, "{name}");
    }
}

#[test]
fn wpl_crash_with_unreclaimed_log_then_workload_continues() {
    // Commit many transactions under WPL so the log holds multiple
    // generations of the same pages, crash without quiescing, restart, and
    // keep working — the reconstructed WPL table must serve reads and the
    // reclaim machinery must still drain it.
    let cfg = SystemConfig::wpl().with_memory(1.0, 0.25);
    let (mut store, server, oids) = build(&cfg).unwrap();
    for round in 1..=20u8 {
        store.begin().unwrap();
        store.modify(oids[0], 0, &[round; 16]).unwrap();
        store.modify(oids[4], 0, &[round; 16]).unwrap();
        store.commit().unwrap();
    }
    let parts = crash(store, server);
    let restarted = Arc::new(Server::restart(parts, server_cfg(&cfg), Meter::new()).unwrap());
    assert!(restarted.wpl_table_len() > 0, "entries reconstructed");
    assert_eq!(value_at(&restarted, oids[0])[0..16], [20u8; 16]);

    // Continue transacting on the restarted server.
    let client =
        ClientConn::new(ClientId(1), Arc::clone(&restarted), cfg.client_pool_pages(), Meter::new());
    let mut store = Store::new(client, cfg.clone()).unwrap();
    store.begin().unwrap();
    store.modify(oids[0], 0, &[99u8; 16]).unwrap();
    store.commit().unwrap();
    restarted.quiesce().unwrap();
    assert_eq!(restarted.wpl_table_len(), 0);
    assert_eq!(value_at(&restarted, oids[0])[0..16], [99u8; 16]);
}

#[test]
fn client_paging_mid_transaction_then_crash() {
    // Tiny client pool forces mid-transaction eviction (log records and
    // pages ship early); a crash right after commit must still recover all
    // of it, under every scheme.
    let page_mb = 8192.0 / (1024.0 * 1024.0);
    for mut cfg in all_configs() {
        // Every scheme ends up with an 8-page client pool (< the 10-page
        // working set): diffing schemes get 12 pages minus a 4-page
        // recovery buffer, WPL gets 8 pages outright.
        if cfg.flavor == qs_repro::esm::RecoveryFlavor::Wpl {
            cfg.client_memory_mb = 8.0 * page_mb;
            cfg.recovery_buffer_mb = 0.0;
        } else {
            cfg.client_memory_mb = 12.0 * page_mb;
            cfg.recovery_buffer_mb = 4.0 * page_mb;
        }
        let name = cfg.name();
        let (mut store, server, oids) = build(&cfg).unwrap();
        store.begin().unwrap();
        // Touch all 10 pages (pool holds ~8): paging guaranteed.
        for (i, &oid) in oids.iter().enumerate() {
            store.modify(oid, 0, &[(i + 1) as u8; 24]).unwrap();
        }
        store.commit().unwrap();
        assert!(store.meter().snapshot().client_evictions > 0, "{name}: no paging happened");
        let parts = crash(store, server);
        let restarted = Server::restart(parts, server_cfg(&cfg), Meter::new()).unwrap();
        for (i, &oid) in oids.iter().enumerate() {
            assert_eq!(value_at(&restarted, oid)[0..24], [(i + 1) as u8; 24], "{name} oid {i}");
        }
    }
}

#[test]
fn oo7_update_traversal_crash_matrix() {
    // The paper's crash scenario over the full matrix of software versions:
    // load a (tiny) OO7 database, commit a few T2A update traversals, then
    // crash with a further update traversal still in flight. After restart
    // every page must hold exactly the committed state — which we obtain
    // from a reference server that ran only the committed work and was
    // cleanly quiesced. Generation and traversal order are deterministic,
    // so the two volumes must agree on all logical content.
    use qs_repro::oo7::{self, Oo7Params, T2Mode};
    use qs_repro::types::PageId;

    let oo7_server_cfg = |cfg: &SystemConfig| {
        ServerConfig::new(cfg.flavor).with_pool_mb(2.0).with_volume_pages(2048).with_log_mb(16.0)
    };
    let committed_rounds = 2;

    for cfg in [
        SystemConfig::pd_esm().with_memory(2.0, 0.5),
        SystemConfig::sd_esm().with_memory(2.0, 0.5),
        SystemConfig::sl_esm().with_memory(2.0, 0.5),
        SystemConfig::pd_redo().with_memory(2.0, 0.5),
        SystemConfig::wpl().with_memory(2.0, 0.0),
    ] {
        let name = cfg.name();

        // Victim: committed rounds, plus an uncommitted traversal, crash.
        let meter = Meter::new();
        let server = Arc::new(Server::format(oo7_server_cfg(&cfg), Arc::clone(&meter)).unwrap());
        let db = oo7::generate(&server, &Oo7Params::tiny(), 11).unwrap();
        let client =
            ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
        let mut store = Store::new(client, cfg.clone()).unwrap();
        for _ in 0..committed_rounds {
            store.begin().unwrap();
            oo7::t2(&mut store, &db.modules[0], T2Mode::A).unwrap();
            store.commit().unwrap();
        }
        store.begin().unwrap();
        oo7::t2(&mut store, &db.modules[0], T2Mode::B).unwrap(); // in flight
        let parts = crash(store, server);
        let restarted = Server::restart(parts, oo7_server_cfg(&cfg), Meter::new()).unwrap();

        // Reference: only the committed rounds, cleanly quiesced.
        let meter = Meter::new();
        let ref_server =
            Arc::new(Server::format(oo7_server_cfg(&cfg), Arc::clone(&meter)).unwrap());
        let ref_db = oo7::generate(&ref_server, &Oo7Params::tiny(), 11).unwrap();
        assert_eq!(db.total_pages, ref_db.total_pages, "{name}");
        let client =
            ClientConn::new(ClientId(0), Arc::clone(&ref_server), cfg.client_pool_pages(), meter);
        let mut ref_store = Store::new(client, cfg.clone()).unwrap();
        for _ in 0..committed_rounds {
            ref_store.begin().unwrap();
            oo7::t2(&mut ref_store, &ref_db.modules[0], T2Mode::A).unwrap();
            ref_store.commit().unwrap();
        }
        drop(ref_store);
        ref_server.quiesce().unwrap();

        for pid in 0..db.total_pages as u32 {
            let got = restarted.read_page_for_test(PageId(pid)).unwrap();
            let want = ref_server.read_page_for_test(PageId(pid)).unwrap();
            // Logical content only: the pageLSN header word legitimately
            // differs between a crashed-and-restarted and a quiesced server.
            assert_eq!(got.bytes()[16..], want.bytes()[16..], "{name}: page {pid}");
        }
        assert_eq!(restarted.active_txns(), 0, "{name}: loser rolled back");
    }
}

#[test]
fn log_wraparound_under_sustained_load() {
    // A log far smaller than the total write volume: watermark maintenance
    // (checkpoints / WPL reclaim) must keep the circular log usable forever.
    for cfg in
        [SystemConfig::pd_esm().with_memory(1.0, 0.25), SystemConfig::wpl().with_memory(1.0, 0.25)]
    {
        let name = cfg.name();
        let mut scfg = server_cfg(&cfg);
        scfg.log_bytes = 96 * 8192; // 96 log pages
        let meter = Meter::new();
        let server = Arc::new(Server::format(scfg.clone(), Arc::clone(&meter)).unwrap());
        let pids = server.bulk_allocate(4).unwrap();
        let mut oids = Vec::new();
        for &pid in &pids {
            let mut p = Page::new();
            oids.push(Oid::new(pid, p.insert(pid, &[0u8; 100]).unwrap()));
            server.bulk_write(pid, &p).unwrap();
        }
        server.bulk_sync().unwrap();
        let client =
            ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
        let mut store = Store::new(client, cfg.clone()).unwrap();
        for round in 0..200u32 {
            store.begin().unwrap();
            for &oid in &oids {
                store.modify(oid, 0, &[(round % 251) as u8; 64]).unwrap();
            }
            store.commit().unwrap();
        }
        // Total logged volume far exceeds 96 pages → wraparound happened.
        let parts = crash(store, server);
        let restarted = Server::restart(parts, scfg, Meter::new()).unwrap();
        assert_eq!(value_at(&restarted, oids[0])[0..64], [199u8; 64], "{name}");
    }
}
