//! Direct-call vs reactor equivalence: the event-driven runtime is a
//! scheduling change, never an observable behavior change. The same OO7
//! workload — generate, committed T2 traversals, one transaction left in
//! flight — is run through direct `ClientConn` calls and through reactor
//! ports with 1, 2, and 4 workers. The pre-crash meter snapshot, the
//! crashed media images, the restart report's phase counts, and the
//! post-quiesce media images must all be identical.
//!
//! Why this holds: a client has one outstanding request at a time, so
//! multi-worker routing cannot reorder its operations; a single client
//! gives the committer batches of exactly one, which meters like a
//! direct `commit`; and every client-side `net`/`meter` call sits at the
//! same place in both wirings.

use qs_repro::core::{Store, SystemConfig};
use qs_repro::esm::{ClientConn, Reactor, RecoveryFlavor, Server, ServerConfig};
use qs_repro::oo7::{self, Oo7Params, T2Mode};
use qs_repro::sim::{Meter, MeterSnapshot};
use qs_repro::storage::{MemDisk, StableMedia};
use qs_repro::types::ClientId;
use std::sync::Arc;

fn server_cfg(cfg: &SystemConfig) -> ServerConfig {
    ServerConfig::new(cfg.flavor).with_pool_mb(2.0).with_volume_pages(2048).with_log_mb(16.0)
}

/// Byte image of a stable medium.
fn image(media: &Arc<dyn StableMedia>) -> Vec<u8> {
    let mut buf = vec![0u8; media.len()];
    media.read_at(0, &mut buf).unwrap();
    buf
}

/// A fresh medium holding the given image.
fn disk_from(bytes: &[u8]) -> Arc<dyn StableMedia> {
    let d = MemDisk::new(bytes.len());
    d.write_at(0, bytes).unwrap();
    Arc::new(d)
}

/// Everything observable about one run, for comparison across wirings.
#[derive(PartialEq, Debug)]
struct Observed {
    /// Every meter field at crash time — network messages and bytes, log
    /// forces, lock acquisitions, disk I/O… If the reactor metered
    /// anything differently the figures pipeline would drift.
    pre_meter: MeterSnapshot,
    pre_data: Vec<u8>,
    pre_log: Vec<u8>,
    phases: Vec<(&'static str, u64, u64, u64, u64)>,
    active_txns: usize,
    wpl_entries: usize,
    post_data: Vec<u8>,
    post_log: Vec<u8>,
}

/// Run the workload through direct calls (`workers == None`) or through
/// a reactor with that many workers, crash, restart on copies of the
/// media, and collect everything observable.
fn observed(cfg: &SystemConfig, workers: Option<usize>) -> Observed {
    let meter = Meter::new();
    let mut scfg = server_cfg(cfg);
    if let Some(w) = workers {
        scfg = scfg.with_runtime_workers(w);
    }
    let server = Arc::new(Server::format(scfg, Arc::clone(&meter)).unwrap());
    let db = oo7::generate(&server, &Oo7Params::tiny(), 11).unwrap();

    let reactor = workers.map(|_| Reactor::start(&server));
    let client = match &reactor {
        None => ClientConn::new(
            ClientId(0),
            Arc::clone(&server),
            cfg.client_pool_pages(),
            meter.clone(),
        ),
        Some(r) => ClientConn::via_reactor(ClientId(0), r, cfg.client_pool_pages(), meter.clone()),
    };
    let mut store = Store::new(client, cfg.clone()).unwrap();
    for round in 0..4 {
        store.begin().unwrap();
        oo7::t2(&mut store, &db.modules[0], if round % 2 == 0 { T2Mode::A } else { T2Mode::B })
            .unwrap();
        store.commit().unwrap();
    }
    // In flight at crash time: begun and traversed, never committed.
    store.begin().unwrap();
    oo7::t2(&mut store, &db.modules[0], T2Mode::A).unwrap();
    drop(store);

    let pre_meter = meter.snapshot();
    if let Some(r) = reactor {
        r.stop();
        drop(r);
    }
    let parts = Arc::try_unwrap(server).ok().expect("sole owner").crash();
    let (pre_data, pre_log) = (image(&parts.data_media), image(&parts.log_media));

    // Restart on copies with a default (direct) config: recovery itself
    // is out of scope here; what matters is that both wirings handed it
    // identical media.
    let rparts = qs_repro::esm::StableParts {
        data_media: disk_from(&pre_data),
        log_media: disk_from(&pre_log),
        flight: None,
    };
    let restarted = Server::restart(rparts, server_cfg(cfg), Meter::new()).unwrap();
    let report = restarted.restart_report().unwrap();
    let phases = report
        .phases
        .iter()
        .map(|p| (p.name, p.records, p.pages_read, p.data_reads, p.data_writes))
        .collect();
    let active_txns = restarted.active_txns();
    let wpl_entries = restarted.wpl_table_len();
    restarted.quiesce().unwrap();
    let parts = restarted.crash();
    Observed {
        pre_meter,
        pre_data,
        pre_log,
        phases,
        active_txns,
        wpl_entries,
        post_data: image(&parts.data_media),
        post_log: image(&parts.log_media),
    }
}

#[test]
fn reactor_runs_are_bit_equivalent_to_direct_calls() {
    for cfg in [
        SystemConfig::pd_esm().with_memory(2.0, 0.5),
        SystemConfig::pd_redo().with_memory(2.0, 0.5),
        SystemConfig::pd_rlog().with_memory(2.0, 0.5),
        SystemConfig::wpl().with_memory(2.0, 0.0),
    ] {
        let name = cfg.name();
        let direct = observed(&cfg, None);

        // The scenario must leave real work behind: committed traversals
        // in the log and an uncommitted transaction at crash time.
        assert!(direct.phases[0].1 > 0, "{name}: crash left no log to scan");
        assert!(direct.pre_meter.log_forces > 0, "{name}: no commit ever forced the log");
        if cfg.flavor == RecoveryFlavor::Wpl {
            assert_eq!(direct.active_txns, 0, "{name}: in-flight txn survived restart");
        }

        for workers in [1, 2, 4] {
            let got = observed(&cfg, Some(workers));
            assert_eq!(
                got.pre_meter, direct.pre_meter,
                "{name}: reactor({workers}) metered differently than direct calls"
            );
            assert_eq!(got, direct, "{name}: reactor({workers}) diverged from direct calls");
        }
    }
}
