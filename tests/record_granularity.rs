//! Record- vs page-granularity locking under real contention: two reactor
//! clients repeatedly update *distinct records of the same page*. With
//! page locks their exclusive locks collide every round; with record
//! locks the page carries only compatible `IX` intents, so neither client
//! ever waits. Asserted via the tracer's `TraceCat::LockWait` events
//! (one is emitted per transaction-lock request that had to queue),
//! the same instrument `shard_independence.rs` uses for subsystem locks.

use qs_repro::core::SystemConfig;
use qs_repro::esm::{ClientConn, Reactor, RecoveryFlavor, Server, ServerConfig};
use qs_repro::sim::{HardwareModel, Meter};
use qs_repro::storage::Page;
use qs_repro::trace::{TraceCat, Tracer};
use qs_repro::types::{ClientId, Lsn, PageId};
use qs_repro::wal::LogRecord;
use std::sync::{Arc, Barrier};

const ROUNDS: u8 = 50;
const RING: usize = 1 << 16;

/// Run the contended workload and return the number of transaction-lock
/// waits the tracer saw. `record_locks` picks the client's granularity;
/// everything else — schedule, updates, commits — is identical.
fn contended_updates(record_locks: bool) -> (u64, Page, PageId, [u16; 2]) {
    let scfg = ServerConfig::new(RecoveryFlavor::RedoLogical)
        .with_pool_mb(1.0)
        .with_volume_pages(64)
        .with_log_mb(8.0)
        .with_runtime_workers(2);
    let meter = Meter::new();
    let tracer = Tracer::flight(Arc::clone(&meter), HardwareModel::paper_1995(), RING);
    let server =
        Arc::new(Server::format_traced(scfg, Arc::clone(&meter), Arc::clone(&tracer)).unwrap());

    // One shared page, one record per client.
    let pid = server.bulk_allocate(1).unwrap()[0];
    let mut p = Page::new();
    let slots = [p.insert(pid, &[0u8; 64]).unwrap(), p.insert(pid, &[0u8; 64]).unwrap()];
    server.bulk_write(pid, &p).unwrap();
    server.bulk_sync().unwrap();

    let reactor = Reactor::start(&server);
    let pool_pages = SystemConfig::pd_rlog().with_memory(1.0, 0.25).client_pool_pages();
    // Released together at the top of every round, the two clients race
    // to lock the same page at the same moment, round after round.
    let barrier = Barrier::new(2);

    std::thread::scope(|s| {
        for (c, &slot) in slots.iter().enumerate() {
            let reactor = &reactor;
            let barrier = &barrier;
            let server = &server;
            s.spawn(move || {
                let mut client =
                    ClientConn::via_reactor(ClientId(c as u16), reactor, pool_pages, Meter::new());
                for _ in 0..ROUNDS {
                    barrier.wait();
                    let txn = client.begin().unwrap();
                    if record_locks {
                        client.x_lock_record(pid, slot).unwrap();
                    } else {
                        client.x_lock(pid).unwrap();
                    }
                    // A logical after-image for this client's own record
                    // (RLOG: the server defers it until commit).
                    client
                        .add_log_records(
                            pid,
                            vec![LogRecord::UpdateLogical {
                                txn,
                                prev: Lsn::NULL,
                                page: pid,
                                slot,
                                offset: 0,
                                after: vec![0xA0 + c as u8; 16],
                            }],
                        )
                        .unwrap();
                    client.finish_commit().unwrap();
                }
                let _ = server;
            });
        }
    });
    reactor.stop();

    let waits =
        tracer.flight_snapshot(RING).iter().filter(|e| e.cat == TraceCat::LockWait).count() as u64;
    let page = server.read_page_for_test(pid).unwrap();
    (waits, page, pid, slots)
}

#[test]
fn distinct_record_updates_on_one_page_proceed_without_waits() {
    let (page_waits, page_img, pid, slots) = contended_updates(false);
    let (record_waits, record_img, rpid, rslots) = contended_updates(true);

    // Page granularity: the two clients' X locks on the shared page
    // collide — the tracer must have seen queued lock requests.
    assert!(page_waits > 0, "page-granularity clients never contended on the shared page");
    // Record granularity: IX intents coexist and the slots are distinct,
    // so not a single lock request may queue.
    assert_eq!(record_waits, 0, "record-granularity clients waited despite distinct slots");

    // Both runs did the same real work: every client's last committed
    // after-image is on the page.
    for (img, pid, slots) in [(&page_img, pid, slots), (&record_img, rpid, rslots)] {
        for (c, &slot) in slots.iter().enumerate() {
            assert_eq!(
                img.object(pid, slot).unwrap()[..16],
                [0xA0 + c as u8; 16],
                "client {c}'s committed update missing"
            );
        }
    }
}
