//! Serial-vs-parallel restart equivalence: for every recovery scheme,
//! crash the same server mid-burst, then restart the same media image
//! with `redo_workers` ∈ {1, 2, 4, 8} (and pathological chunk sizes).
//! The recovered volume, the log, the restart report's phase counts, and
//! every post-restart read must be byte-identical to the serial
//! (`redo_workers = 1`) baseline — the parallel engine is an
//! optimization, never an observable behavior change.

use qs_repro::core::{Store, SystemConfig};
use qs_repro::esm::{ClientConn, RecoveryFlavor, Server, ServerConfig, StableParts};
use qs_repro::sim::Meter;
use qs_repro::storage::{MemDisk, Page, StableMedia};
use qs_repro::types::{ClientId, Lsn, Oid};
use qs_repro::wal::LogRecord;
use std::sync::Arc;

fn server_cfg(cfg: &SystemConfig) -> ServerConfig {
    ServerConfig::new(cfg.flavor).with_pool_mb(1.0).with_volume_pages(256).with_log_mb(8.0)
}

/// Byte image of a stable medium.
fn image(media: &Arc<dyn StableMedia>) -> Vec<u8> {
    let mut buf = vec![0u8; media.len()];
    media.read_at(0, &mut buf).unwrap();
    buf
}

/// A fresh medium holding the given image.
fn disk_from(bytes: &[u8]) -> Arc<dyn StableMedia> {
    let d = MemDisk::new(bytes.len());
    d.write_at(0, bytes).unwrap();
    Arc::new(d)
}

fn value_at(server: &Server, oid: Oid) -> Vec<u8> {
    server.read_page_for_test(oid.page).unwrap().object(oid.page, oid.slot).unwrap().to_vec()
}

/// Build a server with 10 pages × 4 objects and run a crash scenario with
/// work in every restart phase: a committed burst, an *uncommitted* loser
/// made durable by a checkpoint, a second committed burst after the
/// checkpoint (analysis + redo work), and an in-flight transaction at
/// crash time. Returns the crashed media images and all object ids.
fn crashed_images(cfg: &SystemConfig) -> (Vec<u8>, Vec<u8>, Vec<Oid>) {
    let meter = Meter::new();
    let server = Arc::new(Server::format(server_cfg(cfg), Arc::clone(&meter)).unwrap());
    let pids = server.bulk_allocate(10).unwrap();
    let mut oids = Vec::new();
    for &pid in &pids {
        let mut p = Page::new();
        for _ in 0..4 {
            oids.push(Oid::new(pid, p.insert(pid, &[0u8; 100]).unwrap()));
        }
        server.bulk_write(pid, &p).unwrap();
    }
    server.bulk_sync().unwrap();

    // Burst A: committed work before the checkpoint.
    let client = ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
    let mut store = Store::new(client, cfg.clone()).unwrap();
    for round in 1..=6u8 {
        store.begin().unwrap();
        store.modify(oids[round as usize], 0, &[round; 32]).unwrap();
        store.modify(oids[0], 40, &[round; 32]).unwrap();
        store.commit().unwrap();
    }
    drop(store);

    // The loser: an uncommitted transaction on pages the bursts avoid
    // (pages 6..9 — bursts touch only oids on pages 0..5), shipped to the
    // server and made durable by the checkpoint below. Restart must undo
    // it (ARIES) or skip its uncommitted images (WPL).
    let loser = server.begin();
    for &pid in &pids[6..9] {
        server.lock_page(loser, pid, qs_repro::esm::LockMode::X).unwrap();
    }
    match cfg.flavor {
        RecoveryFlavor::Wpl => {
            for &pid in &pids[6..9] {
                let mut p = server.read_page_for_test(pid).unwrap();
                p.object_mut(pid, 0).unwrap()[..16].copy_from_slice(&[0xEE; 16]);
                server.receive_dirty_page(loser, pid, p).unwrap();
            }
        }
        RecoveryFlavor::RedoLogical => {
            // RLOG losers ship logical (after-only) records; restart must
            // drop them in analysis rather than undo them.
            let recs: Vec<LogRecord> = pids[6..9]
                .iter()
                .flat_map(|&pid| {
                    (0..10u8).map(move |i| LogRecord::UpdateLogical {
                        txn: loser,
                        prev: Lsn::NULL,
                        page: pid,
                        slot: (i % 4) as u16,
                        offset: (i as u16 % 3) * 20,
                        after: vec![0xE0 + i; 20],
                    })
                })
                .collect();
            server.receive_log_records(loser, recs).unwrap();
        }
        _ => {
            let recs: Vec<LogRecord> = pids[6..9]
                .iter()
                .flat_map(|&pid| {
                    (0..10u8).map(move |i| LogRecord::Update {
                        txn: loser,
                        prev: Lsn::NULL,
                        page: pid,
                        slot: (i % 4) as u16,
                        offset: (i as u16 % 3) * 20,
                        before: vec![0u8; 20],
                        after: vec![0xE0 + i; 20],
                    })
                })
                .collect();
            server.receive_log_records(loser, recs).unwrap();
        }
    }
    // Checkpoint: forces the loser's records durable and seeds the
    // checkpoint's transaction table / WPL table snapshot with them.
    server.checkpoint().unwrap();

    // Burst B: committed work *after* the checkpoint — this is what
    // analysis scans and redo repeats.
    let client =
        ClientConn::new(ClientId(1), Arc::clone(&server), cfg.client_pool_pages(), Meter::new());
    let mut store = Store::new(client, cfg.clone()).unwrap();
    for round in 7..=12u8 {
        store.begin().unwrap();
        store.modify(oids[(round as usize) % 20], 0, &[round; 32]).unwrap();
        store.modify(oids[(round as usize) % 20 + 1], 36, &[round; 24]).unwrap();
        store.commit().unwrap();
    }
    // In flight at crash time (its unforced tail is lost with the crash).
    store.begin().unwrap();
    store.modify(oids[2], 0, &[0xDD; 16]).unwrap();

    drop(store);
    let parts = Arc::try_unwrap(server).ok().expect("sole owner").crash();
    (image(&parts.data_media), image(&parts.log_media), oids)
}

/// Everything observable about one restart, for comparison across
/// worker counts.
#[derive(PartialEq, Debug)]
struct Observed {
    phases: Vec<(&'static str, u64, u64, u64, u64)>,
    values: Vec<Vec<u8>>,
    active_txns: usize,
    wpl_entries: usize,
    data_image: Vec<u8>,
    log_image: Vec<u8>,
}

fn restart_observed(
    data: &[u8],
    log: &[u8],
    oids: &[Oid],
    mut scfg: ServerConfig,
    workers: usize,
    chunk_bytes: Option<usize>,
) -> Observed {
    scfg = scfg.with_redo_workers(workers);
    if let Some(cb) = chunk_bytes {
        scfg.restart.chunk_bytes = cb;
    }
    let parts =
        StableParts { data_media: disk_from(data), log_media: disk_from(log), flight: None };
    let server = Server::restart(parts, scfg, Meter::new()).unwrap();
    let report = server.restart_report().unwrap();
    let phases = report
        .phases
        .iter()
        .map(|p| (p.name, p.records, p.pages_read, p.data_reads, p.data_writes))
        .collect();
    let values = oids.iter().map(|&o| value_at(&server, o)).collect();
    let active_txns = server.active_txns();
    let wpl_entries = server.wpl_table_len();
    // Quiesce drains the WPL table to permanent locations (and flushes
    // ARIES dirty pages), so the media comparison covers the restored
    // table state too.
    server.quiesce().unwrap();
    let parts = server.crash();
    Observed {
        phases,
        values,
        active_txns,
        wpl_entries,
        data_image: image(&parts.data_media),
        log_image: image(&parts.log_media),
    }
}

#[test]
fn parallel_restart_is_bit_equivalent_to_serial() {
    for cfg in [
        SystemConfig::pd_esm().with_memory(1.0, 0.25),
        SystemConfig::pd_redo().with_memory(1.0, 0.25),
        SystemConfig::pd_rlog().with_memory(1.0, 0.25),
        SystemConfig::wpl().with_memory(1.0, 0.25),
    ] {
        let name = cfg.name();
        let (data, log, oids) = crashed_images(&cfg);
        let scfg = server_cfg(&cfg);
        let baseline = restart_observed(&data, &log, &oids, scfg.clone(), 1, None);

        // The scenario must exercise the engine: scan/analysis work
        // always, undo work for the ARIES flavors.
        assert!(baseline.phases[0].1 > 0, "{name}: no scan work");
        match cfg.flavor {
            RecoveryFlavor::Wpl => {
                assert!(baseline.wpl_entries > 0, "{name}: no WPL entries restored");
            }
            RecoveryFlavor::RedoLogical => {
                assert_eq!(baseline.phases.len(), 2, "{name}: REDO-only restart has no undo");
                assert!(baseline.phases.iter().all(|p| p.0 != "undo"), "{name}: undo phase ran");
                assert!(baseline.phases[1].1 > 0, "{name}: no redo work");
                // The loser's after-images (0xE0..) were dropped in
                // analysis, never applied: its target objects stay zero.
                for oid in &oids[24..36] {
                    let v = &baseline.values[oids.iter().position(|o| o == oid).unwrap()];
                    assert!(v.iter().all(|&b| b == 0), "{name}: loser bytes leaked into {oid:?}");
                }
            }
            _ => {
                assert_eq!(
                    baseline.phases[2].1, 30,
                    "{name}: the loser's 30 updates must be undone"
                );
                assert!(baseline.phases[1].1 > 0, "{name}: no redo work");
            }
        }
        assert_eq!(baseline.active_txns, 0, "{name}: loser still active");

        for (workers, chunk) in [(2, None), (4, None), (8, None), (4, Some(8192)), (3, Some(29))] {
            let got = restart_observed(&data, &log, &oids, scfg.clone(), workers, chunk);
            assert_eq!(
                got, baseline,
                "{name}: workers={workers} chunk={chunk:?} diverged from serial"
            );
        }
    }
}

/// Crash injected *between* a begin-checkpoint and its end record, for
/// all six schemes: the header checkpoint only advances once the end
/// record is durable, so restart must anchor on the previous *complete*
/// checkpoint and recover exactly what a run without the orphaned begin
/// recovers — under the serial and the parallel engines alike.
#[test]
fn crash_between_begin_and_end_checkpoint_falls_back() {
    for (cfg, _) in SystemConfig::all_schemes() {
        let cfg = cfg.with_memory(1.0, 0.25);
        let name = cfg.name();

        // Two runs of the same committed workload under the fuzzy
        // protocol; `orphan` leaves a begin-checkpoint record with no end
        // just before the crash.
        let run = |orphan: bool| -> (Vec<u8>, Vec<u8>, Vec<Oid>) {
            let meter = Meter::new();
            let scfg = server_cfg(&cfg).with_background_flusher(true);
            let server = Arc::new(Server::format(scfg, Arc::clone(&meter)).unwrap());
            let pids = server.bulk_allocate(8).unwrap();
            let mut oids = Vec::new();
            for &pid in &pids {
                let mut p = Page::new();
                for _ in 0..2 {
                    oids.push(Oid::new(pid, p.insert(pid, &[0u8; 100]).unwrap()));
                }
                server.bulk_write(pid, &p).unwrap();
            }
            server.bulk_sync().unwrap();
            let client =
                ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
            let mut store = Store::new(client, cfg.clone()).unwrap();
            for round in 1..=4u8 {
                store.begin().unwrap();
                store.modify(oids[round as usize], 0, &[round; 32]).unwrap();
                store.commit().unwrap();
            }
            drop(store);
            // The previous complete (fuzzy) checkpoint — the anchor
            // restart must fall back to.
            server.checkpoint().unwrap();
            let client = ClientConn::new(
                ClientId(1),
                Arc::clone(&server),
                cfg.client_pool_pages(),
                Meter::new(),
            );
            let mut store = Store::new(client, cfg.clone()).unwrap();
            for round in 5..=9u8 {
                store.begin().unwrap();
                store.modify(oids[round as usize], 0, &[round; 32]).unwrap();
                store.commit().unwrap();
            }
            drop(store);
            if orphan {
                // Begin record appended and forced; no drain, no end
                // record, header still on the previous checkpoint.
                server.begin_checkpoint_for_test().unwrap();
            }
            let parts = Arc::try_unwrap(server).ok().expect("sole owner").crash();
            (image(&parts.data_media), image(&parts.log_media), oids)
        };

        let (bdata, blog, boids) = run(false);
        let scfg = server_cfg(&cfg).with_background_flusher(true);
        let baseline = restart_observed(&bdata, &blog, &boids, scfg.clone(), 1, None);

        let (odata, olog, ooids) = run(true);
        assert_eq!(boids, ooids, "{name}: scenario divergence");
        let orphaned = restart_observed(&odata, &olog, &ooids, scfg.clone(), 1, None);

        // Same recovered state as the run without the orphan: every
        // committed value intact, nothing left active.
        assert_eq!(
            orphaned.values, baseline.values,
            "{name}: orphaned begin-checkpoint changed recovered values"
        );
        assert_eq!(orphaned.active_txns, 0, "{name}: phantom txn after fallback");

        // And the orphaned media itself restarts bit-identically under
        // the parallel engine (anchor selection must agree).
        for workers in [2, 4] {
            let got = restart_observed(&odata, &olog, &ooids, scfg.clone(), workers, None);
            assert_eq!(got, orphaned, "{name}: workers={workers} diverged on orphaned media");
        }
    }
}

/// Same comparison for a crash with *no* checkpoint and with whole-page
/// records in the ARIES log (freshly allocated pages), covering the
/// null-checkpoint scan window and whole-page redo routing.
#[test]
fn parallel_restart_equivalence_without_checkpoint() {
    for cfg in [
        SystemConfig::pd_esm().with_memory(1.0, 0.25),
        SystemConfig::pd_rlog().with_memory(1.0, 0.25),
        SystemConfig::wpl().with_memory(1.0, 0.25),
    ] {
        let name = cfg.name();
        let meter = Meter::new();
        let server = Arc::new(Server::format(server_cfg(&cfg), Arc::clone(&meter)).unwrap());
        let pids = server.bulk_allocate(4).unwrap();
        let mut oids = Vec::new();
        for &pid in &pids {
            let mut p = Page::new();
            oids.push(Oid::new(pid, p.insert(pid, &[0u8; 100]).unwrap()));
            server.bulk_write(pid, &p).unwrap();
        }
        server.bulk_sync().unwrap();
        let client =
            ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
        let mut store = Store::new(client, cfg.clone()).unwrap();
        for round in 1..=8u8 {
            store.begin().unwrap();
            for &oid in &oids {
                store.modify(oid, 0, &[round; 48]).unwrap();
            }
            // Allocating objects touches fresh pages → whole-page /
            // page-alloc records in the log.
            store.allocate(&[round; 64]).unwrap();
            store.commit().unwrap();
        }
        drop(store);
        let parts = Arc::try_unwrap(server).ok().expect("sole owner").crash();
        let (data, log) = (image(&parts.data_media), image(&parts.log_media));

        let scfg = server_cfg(&cfg);
        let baseline = restart_observed(&data, &log, &oids, scfg.clone(), 1, None);
        for workers in [2, 4, 8] {
            let got = restart_observed(&data, &log, &oids, scfg.clone(), workers, None);
            assert_eq!(got, baseline, "{name}: workers={workers} diverged from serial");
        }
    }
}
