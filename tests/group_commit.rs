//! Group commit under concurrency: K clients committing at once must
//! produce at least one and at most K real log forces (the group committer
//! batches them), and every commit must be durable across a crash — for
//! every recovery flavor.

use qs_repro::esm::{LockMode, RecoveryFlavor, Server, ServerConfig, StableParts};
use qs_repro::sim::Meter;
use qs_repro::storage::{MemDisk, Page, Volume};
use qs_repro::types::{Lsn, QsResult};
use qs_repro::wal::{LogManager, LogRecord};
use std::sync::Arc;
use std::time::Duration;

/// Concurrent committers.
const K: usize = 6;

fn cfg(flavor: RecoveryFlavor) -> ServerConfig {
    ServerConfig::new(flavor)
        .with_pool_mb(1.0)
        .with_volume_pages(256)
        .with_log_mb(8.0)
        .with_pool_shards(4)
        .with_group_commit(true)
}

/// Media where a log sync costs real wall time, so concurrent commits pile
/// up behind the leader's sync and the batching is observable.
fn parts_with_slow_log(c: &ServerConfig) -> StableParts {
    StableParts {
        data_media: Arc::new(MemDisk::new(Volume::required_bytes(c.volume_pages))),
        log_media: Arc::new(MemDisk::with_sync_latency(
            LogManager::required_bytes(c.log_bytes),
            Duration::from_micros(500),
        )),
        flight: None,
    }
}

fn commit_one(
    server: &Server,
    flavor: RecoveryFlavor,
    pid: qs_repro::types::PageId,
    val: u8,
) -> QsResult<()> {
    let txn = server.begin();
    server.lock_page(txn, pid, LockMode::X)?;
    let mut page = server.fetch_page(txn, pid)?;
    page.object_mut(pid, 0)?.fill(val);
    match flavor {
        RecoveryFlavor::Wpl => server.receive_dirty_page(txn, pid, page)?,
        _ => {
            let rec = LogRecord::Update {
                txn,
                prev: Lsn::NULL,
                page: pid,
                slot: 0,
                offset: 0,
                before: vec![0u8; 64],
                after: vec![val; 64],
            };
            server.receive_log_records(txn, vec![rec])?;
            if flavor == RecoveryFlavor::EsmAries {
                server.receive_dirty_page(txn, pid, page)?;
            }
        }
    }
    server.commit(txn).map(|_| ())
}

fn run_flavor(flavor: RecoveryFlavor) {
    let c = cfg(flavor);
    let meter = Meter::new();
    let server = Arc::new(
        Server::format_on(parts_with_slow_log(&c), c.clone(), Arc::clone(&meter)).unwrap(),
    );
    let pids = server.bulk_allocate(K).unwrap();
    for &pid in &pids {
        let mut p = Page::new();
        p.insert(pid, &[0u8; 64]).unwrap();
        server.bulk_write(pid, &p).unwrap();
    }
    server.bulk_sync().unwrap();

    let before = meter.snapshot();
    std::thread::scope(|s| {
        for (i, &pid) in pids.iter().enumerate() {
            let server = Arc::clone(&server);
            s.spawn(move || commit_one(&server, flavor, pid, (i + 1) as u8).unwrap());
        }
    });

    // Nothing else forces in this workload (pool big enough that no
    // eviction steals, log far below the maintenance watermark), so the
    // force counters are exactly the commit path's.
    let d = meter.snapshot().since(&before);
    assert_eq!(d.commits, K as u64);
    assert!(d.log_forces >= 1, "the last committer cannot be absorbed");
    assert!(d.log_forces <= K as u64, "never more forces than commits");
    assert_eq!(
        d.log_forces + d.log_forces_noop,
        K as u64,
        "every commit meters exactly one force outcome (real or absorbed)"
    );
    let (calls, forces) = server.group_commit_stats();
    assert_eq!(calls, K as u64, "every commit went through the group committer");
    assert_eq!(forces, d.log_forces, "group committer and meter agree on real forces");

    // Crash; every committed value must survive restart.
    let parts = Arc::try_unwrap(server).ok().expect("threads joined; sole owner").crash();
    let s2 = Server::restart(parts, c, Meter::new()).unwrap();
    assert_eq!(s2.active_txns(), 0, "restart left no loser transactions");
    for (i, &pid) in pids.iter().enumerate() {
        let page = s2.read_page_for_test(pid).unwrap();
        assert_eq!(
            page.object(pid, 0).unwrap(),
            &[(i + 1) as u8; 64][..],
            "commit by thread {i} survived the crash under {flavor:?}"
        );
    }
}

#[test]
fn concurrent_commits_are_batched_and_durable_esm() {
    run_flavor(RecoveryFlavor::EsmAries);
}

#[test]
fn concurrent_commits_are_batched_and_durable_redo() {
    run_flavor(RecoveryFlavor::RedoAtServer);
}

#[test]
fn concurrent_commits_are_batched_and_durable_wpl() {
    run_flavor(RecoveryFlavor::Wpl);
}
