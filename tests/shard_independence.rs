//! Buffer-pool shard independence: two clients whose working sets live in
//! different shards never block on each other's shard lock. Asserted via
//! the lock-hold/lock-wait trace histograms (`Tracer::set_lock_stats`).

use qs_repro::esm::{LockMode, RecoveryFlavor, Server, ServerConfig};
use qs_repro::sim::{HardwareModel, Meter};
use qs_repro::storage::Page;
use qs_repro::trace::Tracer;
use qs_repro::types::PageId;
use std::collections::BTreeMap;
use std::sync::Arc;

#[test]
fn disjoint_working_sets_never_contend_on_buffer_shards() {
    let cfg = ServerConfig::new(RecoveryFlavor::EsmAries)
        .with_pool_mb(1.0)
        .with_volume_pages(256)
        .with_log_mb(8.0)
        .with_pool_shards(8);
    let meter = Meter::new();
    let tracer = Tracer::flight(Arc::clone(&meter), HardwareModel::paper_1995(), 256);
    tracer.set_lock_stats(true);
    let server =
        Arc::new(Server::format_traced(cfg, Arc::clone(&meter), Arc::clone(&tracer)).unwrap());

    let pids = server.bulk_allocate(32).unwrap();
    for &pid in &pids {
        let mut p = Page::new();
        p.insert(pid, &[0u8; 64]).unwrap();
        server.bulk_write(pid, &p).unwrap();
    }
    server.bulk_sync().unwrap();

    // Partition the pages by owning shard and give each thread a working
    // set confined to one shard — disjoint by construction.
    let mut by_shard: BTreeMap<usize, Vec<PageId>> = BTreeMap::new();
    for &pid in &pids {
        by_shard.entry(server.shard_of(pid)).or_default().push(pid);
    }
    let mut groups: Vec<Vec<PageId>> = by_shard.into_values().collect();
    assert!(groups.len() >= 2, "32 pages hash into at least two of 8 shards");
    let set_b = groups.pop().unwrap();
    let set_a = groups.pop().unwrap();

    std::thread::scope(|s| {
        for set in [set_a, set_b] {
            let server = Arc::clone(&server);
            s.spawn(move || {
                let txn = server.begin();
                for &pid in &set {
                    server.lock_page(txn, pid, LockMode::S).unwrap();
                }
                for _ in 0..300 {
                    for &pid in &set {
                        server.fetch_page(txn, pid).unwrap();
                    }
                }
                server.commit(txn).unwrap();
            });
        }
    });

    let sums = tracer.summaries();
    let holds = sums
        .iter()
        .find(|(n, _)| n.as_str() == "lock_hold:pool_shard")
        .map(|(_, s)| s.count)
        .unwrap_or(0);
    assert!(holds > 0, "shard lock holds were traced ({holds})");
    assert!(
        !sums.iter().any(|(n, _)| n.as_str() == "lock_wait:pool_shard"),
        "threads with shard-disjoint working sets never waited on a buffer shard"
    );
}
