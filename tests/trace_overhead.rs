//! Satellite regression test: tracing is free when it is off, and — more
//! importantly — *never counted* even when it is on.
//!
//! The tracer's contract (DESIGN.md "Observability") is that it only
//! READS the shared meter: installing a flight recorder must not change a
//! single counter of the workload it observes, so every `results/*.txt`
//! figure is byte-identical whether or not a trace is being taken. This
//! test reruns the determinism-test workload per scheme three ways —
//! untraced, untraced again, and traced — and asserts all three produce
//! the same `MeterSnapshot`.

use qs_repro::core::{Store, SystemConfig};
use qs_repro::esm::{ClientConn, Server, ServerConfig};
use qs_repro::oo7::{self, Oo7Params, T2Mode};
use qs_repro::sim::{HardwareModel, Meter, MeterSnapshot};
use qs_repro::trace::Tracer;
use qs_repro::types::ClientId;
use std::sync::Arc;

fn server_cfg(cfg: &SystemConfig) -> ServerConfig {
    ServerConfig::new(cfg.flavor).with_pool_mb(2.0).with_volume_pages(2048).with_log_mb(16.0)
}

fn all_configs() -> Vec<SystemConfig> {
    vec![
        SystemConfig::pd_esm().with_memory(2.0, 0.5),
        SystemConfig::sd_esm().with_memory(2.0, 0.5),
        SystemConfig::sl_esm().with_memory(2.0, 0.5),
        SystemConfig::pd_redo().with_memory(2.0, 0.5),
        SystemConfig::wpl().with_memory(2.0, 0.0),
    ]
}

/// Run the determinism-test workload and return the final meter snapshot.
/// With `traced`, a flight-recorder tracer is installed on the server (and
/// therefore inherited by the client, store, and MMU).
fn run_workload(cfg: &SystemConfig, seed: u64, traced: bool) -> MeterSnapshot {
    let meter = Meter::new();
    let server = if traced {
        let tracer = Tracer::flight(Arc::clone(&meter), HardwareModel::paper_1995(), 256);
        Server::format_traced(server_cfg(cfg), Arc::clone(&meter), tracer).unwrap()
    } else {
        Server::format(server_cfg(cfg), Arc::clone(&meter)).unwrap()
    };
    let server = Arc::new(server);
    let db = oo7::generate(&server, &Oo7Params::tiny(), seed).unwrap();
    let client = ClientConn::new(
        ClientId(0),
        Arc::clone(&server),
        cfg.client_pool_pages(),
        Arc::clone(&meter),
    );
    let mut store = Store::new(client, cfg.clone()).unwrap();
    for mode in [T2Mode::A, T2Mode::B] {
        store.begin().unwrap();
        oo7::t2(&mut store, &db.modules[0], mode).unwrap();
        store.commit().unwrap();
    }
    drop(store);
    server.quiesce().unwrap();
    if traced {
        assert!(server.tracer().events_recorded() > 0, "{}: tracer saw no traffic", cfg.name());
    }
    meter.snapshot()
}

#[test]
fn disabled_tracer_runs_are_deterministic() {
    for cfg in all_configs() {
        let a = run_workload(&cfg, 7, false);
        let b = run_workload(&cfg, 7, false);
        assert_eq!(a, b, "{}: two untraced runs diverged", cfg.name());
    }
}

#[test]
fn flight_recorder_adds_zero_counted_work() {
    for cfg in all_configs() {
        let off = run_workload(&cfg, 7, false);
        let on = run_workload(&cfg, 7, true);
        assert_eq!(off, on, "{}: tracing changed the meter", cfg.name());
    }
}
