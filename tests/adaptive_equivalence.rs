//! Crash-recovery equivalence for the adaptive scheme (§6g): a seeded
//! mixed workload under `SystemConfig::adaptive()` elects a different
//! recovery scheme per transaction, so the crashed log interleaves
//! physical Update records, whole-page images, and logical after-only
//! records — all tagged by per-transaction TxnScheme marks. Restart of
//! that mixed log must be deterministic: the serial engine and the
//! parallel engine (workers 1/2/4) must recover byte-identical media,
//! and every committed value must survive regardless of which scheme
//! its transaction elected.

use qs_repro::core::{Store, SystemConfig};
use qs_repro::esm::{ClientConn, Server, ServerConfig, StableParts};
use qs_repro::sim::Meter;
use qs_repro::storage::{MemDisk, Page, StableMedia};
use qs_repro::types::{ClientId, Oid};
use std::sync::Arc;

fn server_cfg(cfg: &SystemConfig) -> ServerConfig {
    ServerConfig::new(cfg.flavor).with_pool_mb(1.0).with_volume_pages(256).with_log_mb(8.0)
}

fn image(media: &Arc<dyn StableMedia>) -> Vec<u8> {
    let mut buf = vec![0u8; media.len()];
    media.read_at(0, &mut buf).unwrap();
    buf
}

fn disk_from(bytes: &[u8]) -> Arc<dyn StableMedia> {
    let d = MemDisk::new(bytes.len());
    d.write_at(0, bytes).unwrap();
    Arc::new(d)
}

/// Tiny deterministic PRNG (xorshift64*) — the workload must be seeded,
/// never random per run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Objects per page and their size: 3 × 2400 B fills most of a page, so
/// a full rewrite of a page's objects makes the page genuinely dense.
const OBJS: usize = 3;
const OBJ_LEN: usize = 2400;

/// One seeded mixed transaction: sparse (a few small scattered writes,
/// the RLOG-shaped case), dense-narrow (every object on 2 pages fully
/// rewritten, the WPL-shaped case), or dense-wide (every object on 12
/// pages rewritten — the pending-page residency penalty makes physical
/// PD cheapest). The mix forces the elector through genuinely different
/// choices within one log.
fn run_txn(store: &mut Store, oids: &[Oid], rng: &mut Rng, round: u8) {
    store.begin().unwrap();
    match rng.below(3) {
        0 => {
            // Sparse: 2–4 writes of 8 bytes at scattered offsets.
            for _ in 0..(2 + rng.below(3)) {
                let oid = oids[rng.below(oids.len() as u64) as usize];
                let off = (rng.below(100) * 23) as usize;
                store.modify(oid, off, &[round; 8]).unwrap();
            }
        }
        1 => {
            // Dense-narrow: rewrite every object on 2 pages.
            let base = (rng.below(14) as usize) * OBJS;
            for oid in &oids[base..base + 2 * OBJS] {
                store.modify(*oid, 0, &[round ^ 0x55; OBJ_LEN]).unwrap();
            }
        }
        _ => {
            // Dense-wide: rewrite every object on 12 pages.
            let base = (rng.below(4) as usize) * OBJS;
            for oid in &oids[base..base + 12 * OBJS] {
                store.modify(*oid, 0, &[round ^ 0xAA; OBJ_LEN]).unwrap();
            }
        }
    }
    store.commit().unwrap();
}

/// Run `commits` seeded mixed transactions under the adaptive config and
/// crash, leaving one transaction in flight. Returns the crashed media,
/// the object ids, and the committed rounds' expected survivability
/// witness (the per-scheme election counts, to prove the mix was real).
fn crashed_images(cfg: &SystemConfig, seed: u64, commits: usize) -> (Vec<u8>, Vec<u8>, Vec<Oid>) {
    let meter = Meter::new();
    let server = Arc::new(Server::format(server_cfg(cfg), Arc::clone(&meter)).unwrap());
    let pids = server.bulk_allocate(16).unwrap();
    let mut oids = Vec::new();
    for &pid in &pids {
        let mut p = Page::new();
        for _ in 0..OBJS {
            oids.push(Oid::new(pid, p.insert(pid, &[0u8; OBJ_LEN]).unwrap()));
        }
        server.bulk_write(pid, &p).unwrap();
    }
    server.bulk_sync().unwrap();

    let client =
        ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter.clone());
    let mut store = Store::new(client, cfg.clone()).unwrap();
    // A small pending-page budget sharpens the residency penalty so the
    // dense-wide transactions deterministically elect physical PD.
    store.elector_mut().unwrap().pending_page_budget = 4;
    let mut rng = Rng(seed | 1);
    for i in 0..commits {
        run_txn(&mut store, &oids, &mut rng, (i % 251) as u8 + 1);
        if i == commits / 2 {
            // A mid-run checkpoint so restart has a real anchor.
            server.checkpoint().unwrap();
        }
    }
    // The in-flight loser at crash time.
    store.begin().unwrap();
    store.modify(oids[3], 0, &[0xDD; 16]).unwrap();
    drop(store);

    // The workload must actually exercise the elector with more than one
    // scheme — otherwise this test degenerates to scheme_equivalence.
    let snap = meter.snapshot();
    let elected: [u64; 4] = [snap.txns_pd, snap.txns_sd, snap.txns_wpl, snap.txns_rlog];
    let kinds = elected.iter().filter(|&&n| n > 0).count();
    assert!(kinds >= 2, "seed {seed}: only {kinds} scheme(s) elected ({elected:?})");

    let parts = Arc::try_unwrap(server).ok().expect("sole owner").crash();
    (image(&parts.data_media), image(&parts.log_media), oids)
}

#[derive(PartialEq, Debug)]
struct Observed {
    phases: Vec<(&'static str, u64, u64)>,
    values: Vec<Vec<u8>>,
    active_txns: usize,
    data_image: Vec<u8>,
    log_image: Vec<u8>,
}

fn restart_observed(data: &[u8], log: &[u8], oids: &[Oid], workers: usize) -> Observed {
    let scfg = server_cfg(&SystemConfig::adaptive()).with_redo_workers(workers);
    let parts =
        StableParts { data_media: disk_from(data), log_media: disk_from(log), flight: None };
    let server = Server::restart(parts, scfg, Meter::new()).unwrap();
    let report = server.restart_report().unwrap();
    let phases = report.phases.iter().map(|p| (p.name, p.records, p.pages_read)).collect();
    let values = oids
        .iter()
        .map(|&o| {
            server.read_page_for_test(o.page).unwrap().object(o.page, o.slot).unwrap().to_vec()
        })
        .collect();
    let active_txns = server.active_txns();
    server.quiesce().unwrap();
    let parts = server.crash();
    Observed {
        phases,
        values,
        active_txns,
        data_image: image(&parts.data_media),
        log_image: image(&parts.log_media),
    }
}

/// The tentpole equivalence claim: crash the mixed-scheme workload after
/// every k-th commit (several crash points per seed), restart serially,
/// then with 2 and 4 redo workers — all three recoveries must be
/// byte-identical, with no transaction left active.
#[test]
fn adaptive_mixed_log_restart_is_bit_equivalent() {
    let cfg = SystemConfig::adaptive().with_memory(1.0, 0.25);
    for (seed, commits) in [(0xA11CE, 6), (0xA11CE, 13), (0xBEEF, 20), (0xC0FFEE, 27)] {
        let (data, log, oids) = crashed_images(&cfg, seed, commits);
        let baseline = restart_observed(&data, &log, &oids, 1);
        assert!(baseline.phases[0].1 > 0, "seed {seed:#x}: no scan work");
        assert_eq!(baseline.active_txns, 0, "seed {seed:#x}: loser still active");
        // The loser's in-flight bytes must not have been redone.
        assert!(
            baseline.values[3][..16] != [0xDD; 16],
            "seed {seed:#x}: uncommitted loser bytes survived restart"
        );
        for workers in [2, 4] {
            let got = restart_observed(&data, &log, &oids, workers);
            assert_eq!(
                got, baseline,
                "seed {seed:#x} commits={commits}: workers={workers} diverged from serial"
            );
        }
    }
}

/// Committed values survive the crash no matter which scheme their
/// transaction elected: replay the same seeded workload against a
/// never-crashed server and compare object values after recovery.
#[test]
fn adaptive_recovers_exactly_the_committed_state() {
    let cfg = SystemConfig::adaptive().with_memory(1.0, 0.25);
    let (seed, commits) = (0xFEED_u64, 17);

    // Ground truth: same workload, no crash, read back directly.
    let meter = Meter::new();
    let server = Arc::new(Server::format(server_cfg(&cfg), Arc::clone(&meter)).unwrap());
    let pids = server.bulk_allocate(16).unwrap();
    let mut oids = Vec::new();
    for &pid in &pids {
        let mut p = Page::new();
        for _ in 0..OBJS {
            oids.push(Oid::new(pid, p.insert(pid, &[0u8; OBJ_LEN]).unwrap()));
        }
        server.bulk_write(pid, &p).unwrap();
    }
    server.bulk_sync().unwrap();
    let client = ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
    let mut store = Store::new(client, cfg.clone()).unwrap();
    // A small pending-page budget sharpens the residency penalty so the
    // dense-wide transactions deterministically elect physical PD.
    store.elector_mut().unwrap().pending_page_budget = 4;
    let mut rng = Rng(seed | 1);
    for i in 0..commits {
        run_txn(&mut store, &oids, &mut rng, (i % 251) as u8 + 1);
        if i == commits / 2 {
            server.checkpoint().unwrap();
        }
    }
    drop(store);
    server.quiesce().unwrap();
    let truth: Vec<Vec<u8>> = oids
        .iter()
        .map(|&o| {
            server.read_page_for_test(o.page).unwrap().object(o.page, o.slot).unwrap().to_vec()
        })
        .collect();
    drop(server);

    // Crashed twin of the same workload, recovered serially and in
    // parallel: every committed value must match the ground truth.
    let (data, log, oids2) = crashed_images(&cfg, seed, commits);
    assert_eq!(oids, oids2, "scenario divergence");
    for workers in [1, 4] {
        let got = restart_observed(&data, &log, &oids, workers);
        assert_eq!(got.values, truth, "workers={workers}: recovered values diverge from truth");
    }
}
