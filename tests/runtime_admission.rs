//! Admission control and backpressure for the event-driven runtime:
//! the in-flight budget is enforced, sheds are always typed `Overloaded`
//! replies (never silent drops), the shed counters match what clients
//! saw, and no client starves on a hot page. Runs under the deadlock
//! watchdog in `scripts/verify.sh`.

use qs_repro::esm::{
    LockMode, Reactor, RecoveryFlavor, Request, Response, RuntimeConfig, Server, ServerConfig,
    StableParts,
};
use qs_repro::sim::Meter;
use qs_repro::storage::{MemDisk, Page, Volume};
use qs_repro::trace::Tracer;
use qs_repro::types::{ClientId, Lsn, Oid, PageId, QsError, TxnId};
use qs_repro::wal::{LogManager, LogRecord};
use std::sync::Arc;
use std::time::Duration;

/// A small loaded server with the given runtime knobs and (optionally) a
/// real per-sync log-disk latency to hold commits in flight.
fn make_server(
    runtime: RuntimeConfig,
    sync_latency: Option<Duration>,
    pages: usize,
) -> (Arc<Server>, Vec<Oid>) {
    let cfg = ServerConfig::new(RecoveryFlavor::EsmAries)
        .with_pool_mb(2.0)
        .with_volume_pages(1024)
        .with_log_mb(32.0)
        .with_runtime(runtime);
    let parts = StableParts {
        data_media: Arc::new(MemDisk::new(Volume::required_bytes(cfg.volume_pages))),
        log_media: Arc::new(match sync_latency {
            Some(lat) => MemDisk::with_sync_latency(LogManager::required_bytes(cfg.log_bytes), lat),
            None => MemDisk::new(LogManager::required_bytes(cfg.log_bytes)),
        }),
        flight: None,
    };
    let server =
        Arc::new(Server::format_on_traced(parts, cfg, Meter::new(), Tracer::disabled()).unwrap());
    let pids = server.bulk_allocate(pages).unwrap();
    let mut oids = Vec::new();
    for &pid in &pids {
        let mut p = Page::new();
        for _ in 0..4 {
            oids.push(Oid::new(pid, p.insert(pid, &[0u8; 80]).unwrap()));
        }
        server.bulk_write(pid, &p).unwrap();
    }
    server.bulk_sync().unwrap();
    (server, oids)
}

fn update_rec(txn: TxnId, pid: PageId, slot: u16, before: u64, after: u64) -> LogRecord {
    LogRecord::Update {
        txn,
        prev: Lsn::NULL,
        page: pid,
        slot,
        offset: 0,
        before: before.to_le_bytes().to_vec(),
        after: after.to_le_bytes().to_vec(),
    }
}

fn expect_began(resp: Response) -> TxnId {
    match resp {
        Response::Began(t) => t,
        other => panic!("expected Began, got {}", other.kind()),
    }
}

fn expect_page(resp: Response) -> Box<Page> {
    match resp {
        Response::Page(p) => p,
        other => panic!("expected Page, got {}", other.kind()),
    }
}

fn expect_ok(resp: Response) {
    match resp {
        Response::Ok => {}
        other => panic!("expected Ok, got {}", other.kind()),
    }
}

fn expect_committed(resp: Response) {
    match resp {
        Response::Committed(_) => {}
        other => panic!("expected Committed, got {}", other.kind()),
    }
}

/// Budget of 1: while one commit is being forced (the log disk carries a
/// real 400 ms sync), a second client's submission is deterministically
/// shed with `Overloaded` — and succeeds once the commit drains. The
/// sync is deliberately long: the shed is guaranteed unless this thread
/// is preempted for the whole sync between the two `submit` calls, and
/// 400 ms keeps that window comfortably beyond scheduler jitter when the
/// suite's tests run on oversubscribed cores.
#[test]
fn inflight_budget_sheds_with_typed_reply() {
    let runtime = RuntimeConfig { workers: 1, inflight_budget: 1, ..RuntimeConfig::default() };
    let (server, oids) = make_server(runtime, Some(Duration::from_millis(400)), 2);
    let reactor = Reactor::start(&server);
    let a = reactor.connect(ClientId(0));
    let b = reactor.connect(ClientId(1));

    // Client A builds up log work directly (setup, not under test), then
    // submits its commit through the runtime: the force holds A's
    // admission slot for >= 100 ms.
    let pid = oids[0].page;
    let txn_a = expect_began(a.call(Request::Begin));
    server.lock_page(txn_a, pid, LockMode::X).unwrap();
    server.receive_log_records(txn_a, vec![update_rec(txn_a, pid, 0, 0, 7)]).unwrap();
    a.submit(Request::Commit { txn: txn_a });

    // The slot was taken synchronously at submit, so B's very next
    // submission must shed — a typed reply, not silence.
    b.submit(Request::Begin);
    match b.recv() {
        Response::Overloaded => {}
        other => panic!("expected Overloaded while the budget is full, got {}", other.kind()),
    }
    assert_eq!(reactor.stats().shed_budget, 1, "the shed was counted");

    // A's commit completes; the slot frees; B gets through.
    expect_committed(a.recv());
    let txn_b = expect_began(b.call(Request::Begin));
    expect_ok(b.call(Request::Abort { txn: txn_b }));
    assert_eq!(reactor.stats().admitted, 4, "begin-A, commit-A, begin-B, abort-B admitted");

    reactor.stop();
}

/// `queue_depth_max = 0` sheds every submission with `Overloaded` and
/// counts each one — proof that queue-depth shedding replies rather than
/// dropping.
#[test]
fn queue_depth_sheds_are_counted_and_replied() {
    let runtime = RuntimeConfig { workers: 2, queue_depth_max: 0, ..RuntimeConfig::default() };
    let (server, _) = make_server(runtime, None, 2);
    let reactor = Reactor::start(&server);
    let port = reactor.connect(ClientId(0));

    for i in 0..10 {
        port.submit(Request::Begin);
        match port.recv() {
            Response::Overloaded => {}
            other => panic!("submission {i}: expected Overloaded, got {}", other.kind()),
        }
    }
    let stats = reactor.stats();
    assert_eq!(stats.shed_queue, 10, "every shed counted");
    assert_eq!(stats.admitted, 0, "nothing slipped past the depth gate");
    reactor.stop();
}

/// Eight clients hammer one page with X locks through a tiny admission
/// budget: strict 2PL serializes them through the park/resume path, no
/// update is lost, no client starves, and the shed counters agree with
/// what the clients observed.
#[test]
fn hot_page_no_starvation_under_tiny_budget() {
    let runtime = RuntimeConfig {
        workers: 2,
        inflight_budget: 3,
        queue_depth_max: 64,
        ..RuntimeConfig::default()
    };
    let (server, oids) = make_server(runtime, None, 2);
    let reactor = Arc::new(Reactor::start(&server));
    let target = oids[0];

    const THREADS: usize = 8;
    const TXNS: usize = 25;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let port = reactor.connect(ClientId(t as u16));
        handles.push(std::thread::spawn(move || {
            for _ in 0..TXNS {
                let txn = expect_began(port.call(Request::Begin));
                let mut page = expect_page(port.call(Request::FetchLocked {
                    txn,
                    pid: target.page,
                    mode: LockMode::X,
                }));
                let obj = page.object_mut(target.page, target.slot).unwrap();
                let old = u64::from_le_bytes(obj[0..8].try_into().unwrap());
                let newv = old + 1;
                obj[0..8].copy_from_slice(&newv.to_le_bytes());
                expect_ok(port.call(Request::NoteLogged { txn, pid: target.page }));
                expect_ok(port.call(Request::LogBytes {
                    txn,
                    bytes: update_rec(txn, target.page, target.slot, old, newv).encode(),
                }));
                expect_ok(port.call(Request::DirtyPage { txn, pid: target.page, page }));
                expect_committed(port.call(Request::Commit { txn }));
            }
            port.sheds_seen()
        }));
    }
    let client_sheds: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    let page = server.read_page_for_test(target.page).unwrap();
    let v = u64::from_le_bytes(
        page.object(target.page, target.slot).unwrap()[0..8].try_into().unwrap(),
    );
    assert_eq!(v, (THREADS * TXNS) as u64, "every increment survived serialization");

    let stats = reactor.stats();
    assert_eq!(
        client_sheds,
        stats.shed_budget + stats.shed_queue,
        "every shed the runtime counted was a typed reply some client absorbed"
    );
    assert_eq!(stats.commit_calls, (THREADS * TXNS) as u64);
    assert_eq!(reactor.parked_waiters(), 0, "no request left parked");
    reactor.stop();
}

/// A deadlock between two reactor clients is detected at queue time: the
/// request that would close the cycle gets a typed `LockConflict` reply,
/// the victim aborts, and the parked survivor is granted and completes.
#[test]
fn queue_time_deadlock_denies_the_closer_and_resumes_the_survivor() {
    let runtime = RuntimeConfig { workers: 2, ..RuntimeConfig::default() };
    let (server, oids) = make_server(runtime, None, 2);
    let reactor = Reactor::start(&server);
    let a = reactor.connect(ClientId(0));
    let b = reactor.connect(ClientId(1));
    let (p1, p2) = (oids[0].page, oids[4].page);
    assert_ne!(p1, p2);

    let txn_a = expect_began(a.call(Request::Begin));
    let txn_b = expect_began(b.call(Request::Begin));
    expect_page(a.call(Request::FetchLocked { txn: txn_a, pid: p1, mode: LockMode::X }));
    expect_page(b.call(Request::FetchLocked { txn: txn_b, pid: p2, mode: LockMode::X }));

    // A asks for B's page and parks (no reply yet, no worker blocked).
    a.submit(Request::FetchLocked { txn: txn_a, pid: p2, mode: LockMode::X });
    while reactor.parked_waiters() != 1 {
        std::thread::yield_now();
    }

    // B asking for A's page would close the cycle: denied at queue time
    // with a typed conflict, not a hang.
    match b.call(Request::FetchLocked { txn: txn_b, pid: p1, mode: LockMode::X }) {
        Response::Err(QsError::LockConflict { .. }) => {}
        other => panic!("expected LockConflict for the cycle closer, got {}", other.kind()),
    }

    // The victim aborts; the survivor's parked request is granted.
    expect_ok(b.call(Request::Abort { txn: txn_b }));
    expect_page(a.recv());
    expect_committed(a.call(Request::Commit { txn: txn_a }));

    let stats = reactor.stats();
    assert!(stats.lock_parks >= 1, "A's second fetch parked");
    assert!(stats.lock_resumes >= 1, "A's parked fetch was resumed");
    assert_eq!(reactor.parked_waiters(), 0);
    reactor.stop();
}
