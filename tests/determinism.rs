//! Whole-system determinism: with every randomized component driven by
//! `qs-prng` under a fixed seed, an identical run must produce an
//! identical database — byte-for-byte within a scheme, logically across
//! schemes. This is the property the hermetic (no external crates)
//! refactor has to preserve: it is what makes the paper's experiments
//! replayable.

use qs_repro::core::{Store, SystemConfig};
use qs_repro::esm::{ClientConn, Server, ServerConfig};
use qs_repro::oo7::{self, Oo7Params, T2Mode};
use qs_repro::sim::Meter;
use qs_repro::types::{ClientId, PageId};
use std::sync::Arc;

fn server_cfg(cfg: &SystemConfig) -> ServerConfig {
    ServerConfig::new(cfg.flavor).with_pool_mb(2.0).with_volume_pages(2048).with_log_mb(16.0)
}

fn all_configs() -> Vec<SystemConfig> {
    vec![
        SystemConfig::pd_esm().with_memory(2.0, 0.5),
        SystemConfig::sd_esm().with_memory(2.0, 0.5),
        SystemConfig::sl_esm().with_memory(2.0, 0.5),
        SystemConfig::pd_redo().with_memory(2.0, 0.5),
        SystemConfig::wpl().with_memory(2.0, 0.0),
    ]
}

/// Load a tiny OO7 database under `seed`, commit one T2A and one T2B
/// traversal, quiesce, and return the quiesced server plus its page count.
fn run_workload(cfg: &SystemConfig, seed: u64) -> (Arc<Server>, usize) {
    let meter = Meter::new();
    let server = Arc::new(Server::format(server_cfg(cfg), Arc::clone(&meter)).unwrap());
    let db = oo7::generate(&server, &Oo7Params::tiny(), seed).unwrap();
    let client = ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
    let mut store = Store::new(client, cfg.clone()).unwrap();
    for mode in [T2Mode::A, T2Mode::B] {
        store.begin().unwrap();
        oo7::t2(&mut store, &db.modules[0], mode).unwrap();
        store.commit().unwrap();
    }
    drop(store);
    server.quiesce().unwrap();
    (server, db.total_pages)
}

/// FNV-1a over the given byte range of every volume page.
fn volume_checksum(server: &Server, pages: usize, skip_header: bool) -> u64 {
    let from = if skip_header { 16 } else { 0 };
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for pid in 0..pages as u32 {
        let page = server.read_page_for_test(PageId(pid)).unwrap();
        for &b in &page.bytes()[from..] {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[test]
fn same_seed_same_scheme_is_byte_identical() {
    for cfg in all_configs() {
        let name = cfg.name();
        let (s1, pages1) = run_workload(&cfg, 0xD5EED);
        let (s2, pages2) = run_workload(&cfg, 0xD5EED);
        assert_eq!(pages1, pages2, "{name}");
        // Full bytes, pageLSN included: two identical runs of the same
        // scheme must agree on *everything* that reaches stable storage.
        assert_eq!(
            volume_checksum(&s1, pages1, false),
            volume_checksum(&s2, pages2, false),
            "{name}: volume checksums diverged under a fixed seed"
        );
    }
}

#[test]
fn different_seeds_produce_different_volumes() {
    let cfg = SystemConfig::pd_esm().with_memory(2.0, 0.5);
    let (s1, pages) = run_workload(&cfg, 1);
    let (s2, _) = run_workload(&cfg, 2);
    assert_ne!(
        volume_checksum(&s1, pages, false),
        volume_checksum(&s2, pages, false),
        "seed must actually steer the generator"
    );
}

#[test]
fn same_seed_across_schemes_is_logically_identical() {
    // The five software versions differ in *how* updates become durable,
    // never in *what* the database contains: under one seed they must all
    // quiesce to the same logical pages (the pageLSN header word is the
    // one legitimate difference).
    let runs: Vec<(String, Arc<Server>, usize)> = all_configs()
        .into_iter()
        .map(|cfg| {
            let name = cfg.name();
            let (server, pages) = run_workload(&cfg, 0xD5EED);
            (name, server, pages)
        })
        .collect();
    let (ref_name, ref_server, ref_pages) = &runs[0];
    let ref_sum = volume_checksum(ref_server, *ref_pages, true);
    for (name, server, pages) in &runs[1..] {
        assert_eq!(pages, ref_pages, "{ref_name} vs {name}");
        assert_eq!(
            volume_checksum(server, *pages, true),
            ref_sum,
            "{ref_name} vs {name}: logical content diverged"
        );
    }
}
