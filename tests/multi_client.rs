//! Multi-client integration: private modules over one server (the paper's
//! setup), plus genuinely conflicting clients exercising the lock manager
//! from real threads.

use qs_repro::core::{Store, SystemConfig};
use qs_repro::esm::{ClientConn, LockMode, RecoveryFlavor, Server, ServerConfig};
use qs_repro::sim::Meter;
use qs_repro::storage::Page;
use qs_repro::types::{ClientId, Oid, PageId, TxnId};
use std::sync::Arc;

fn make_server(flavor: RecoveryFlavor, pages: usize) -> (Arc<Server>, Vec<Oid>) {
    let meter = Meter::new();
    let server = Arc::new(
        Server::format(
            ServerConfig::new(flavor).with_pool_mb(2.0).with_volume_pages(1024).with_log_mb(32.0),
            meter,
        )
        .unwrap(),
    );
    let pids = server.bulk_allocate(pages).unwrap();
    let mut oids = Vec::new();
    for &pid in &pids {
        let mut p = Page::new();
        for _ in 0..4 {
            oids.push(Oid::new(pid, p.insert(pid, &[0u8; 80]).unwrap()));
        }
        server.bulk_write(pid, &p).unwrap();
    }
    server.bulk_sync().unwrap();
    (server, oids)
}

#[test]
fn private_working_sets_interleaved() {
    // Four clients, disjoint page ranges, transactions interleaved
    // round-robin — the paper's conflict-free design. All updates must land.
    for flavor in [
        RecoveryFlavor::EsmAries,
        RecoveryFlavor::RedoAtServer,
        RecoveryFlavor::RedoLogical,
        RecoveryFlavor::Wpl,
        RecoveryFlavor::Adaptive,
    ] {
        let (server, oids) = make_server(flavor, 16);
        let cfg_for = |_c: usize| match flavor {
            RecoveryFlavor::EsmAries => SystemConfig::pd_esm().with_memory(1.0, 0.25),
            RecoveryFlavor::RedoAtServer => SystemConfig::pd_redo().with_memory(1.0, 0.25),
            RecoveryFlavor::RedoLogical => SystemConfig::pd_rlog().with_memory(1.0, 0.25),
            RecoveryFlavor::Wpl => SystemConfig::wpl().with_memory(1.0, 0.25),
            RecoveryFlavor::Adaptive => SystemConfig::adaptive().with_memory(1.0, 0.25),
        };
        let mut stores: Vec<Store> = (0..4)
            .map(|c| {
                let cfg = cfg_for(c);
                Store::new(
                    ClientConn::new(
                        ClientId(c as u16),
                        Arc::clone(&server),
                        cfg.client_pool_pages(),
                        Meter::new(),
                    ),
                    cfg,
                )
                .unwrap()
            })
            .collect();
        for round in 1..=5u8 {
            for (c, store) in stores.iter_mut().enumerate() {
                store.begin().unwrap();
                for k in 0..16 {
                    let oid = oids[c * 16 + k];
                    store.modify(oid, 0, &[round * 10 + c as u8; 16]).unwrap();
                }
                store.commit().unwrap();
            }
        }
        for (c, store) in stores.iter_mut().enumerate() {
            store.begin().unwrap();
            for k in 0..16 {
                let v = store.read(oids[c * 16 + k]).unwrap();
                assert_eq!(v[0..16], [50 + c as u8; 16], "{flavor:?} client {c}");
            }
            store.commit().unwrap();
        }
    }
}

#[test]
fn conflicting_threads_serialize_through_locks() {
    // Eight real threads hammer the same page with X locks via raw server
    // calls; strict 2PL must serialize them with no lost updates.
    let (server, oids) = make_server(RecoveryFlavor::EsmAries, 2);
    let target = oids[0];
    let mut handles = Vec::new();
    for t in 0..8 {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            for _ in 0..25 {
                let txn = server.begin();
                server.lock_page(txn, target.page, LockMode::X).unwrap();
                let mut page = server.fetch_page(txn, target.page).unwrap();
                let obj = page.object_mut(target.page, target.slot).unwrap();
                let old = u64::from_le_bytes(obj[0..8].try_into().unwrap());
                let newv = old + 1;
                obj[0..8].copy_from_slice(&newv.to_le_bytes());
                let rec = qs_repro::wal::LogRecord::Update {
                    txn,
                    prev: qs_repro::types::Lsn::NULL,
                    page: target.page,
                    slot: target.slot,
                    offset: 0,
                    before: old.to_le_bytes().to_vec(),
                    after: newv.to_le_bytes().to_vec(),
                };
                server.receive_log_records(txn, vec![rec]).unwrap();
                server.receive_dirty_page(txn, target.page, page).unwrap();
                server.commit(txn).unwrap();
            }
            let _ = t;
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let page = server.read_page_for_test(target.page).unwrap();
    let v = u64::from_le_bytes(
        page.object(target.page, target.slot).unwrap()[0..8].try_into().unwrap(),
    );
    assert_eq!(v, 8 * 25, "every increment survived serialization");
}

#[test]
fn reader_blocks_until_writer_commits() {
    let (server, oids) = make_server(RecoveryFlavor::EsmAries, 2);
    let pid: PageId = oids[0].page;
    let writer: TxnId = server.begin();
    server.lock_page(writer, pid, LockMode::X).unwrap();

    let server2 = Arc::clone(&server);
    let reader = std::thread::spawn(move || {
        let txn = server2.begin();
        // Blocks until the writer commits.
        server2.lock_page(txn, pid, LockMode::S).unwrap();
        let page = server2.fetch_page(txn, pid).unwrap();
        let v = page.object(pid, 0).unwrap()[0];
        server2.commit(txn).unwrap();
        v
    });
    std::thread::sleep(std::time::Duration::from_millis(30));
    // Commit the writer (no updates — just releases the lock).
    server.commit(writer).unwrap();
    assert_eq!(reader.join().unwrap(), 0);
}
