//! Quickstart: create a store, persist objects, update them in place,
//! crash the server, restart, and verify recovery — the whole lifecycle in
//! one page of code.
//!
//! Run: `cargo run --release --example quickstart`

use qs_repro::core::{Store, SystemConfig};
use qs_repro::esm::{ClientConn, Server, ServerConfig};
use qs_repro::sim::Meter;
use qs_repro::types::ClientId;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A QuickStore software version: page diffing over ESM's ARIES-style
    // recovery, 2 MB of client memory split 1.5 MB pool / 0.5 MB recovery
    // buffer (see Table 3 of the paper for the naming).
    let cfg = SystemConfig::pd_esm().with_memory(2.0, 0.5);
    println!("system under test: {}", cfg.name());

    let meter = Meter::new();
    let server_cfg =
        ServerConfig::new(cfg.flavor).with_pool_mb(4.0).with_volume_pages(1024).with_log_mb(16.0);
    let server = Arc::new(Server::format(server_cfg.clone(), Arc::clone(&meter))?);
    let client = ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
    let mut store = Store::new(client, cfg)?;

    // Create persistent objects.
    store.begin()?;
    let hello = store.allocate(b"hello, persistent world")?;
    let counter = store.allocate(&0u64.to_le_bytes())?;
    store.commit()?;
    println!("allocated {hello:?} and {counter:?}");

    // Update in place: the first write to the page write-faults, the fault
    // handler copies the page into the recovery buffer, and at commit the
    // diff becomes one small log record.
    for round in 1..=3u64 {
        store.begin()?;
        store.modify(counter, 0, &round.to_le_bytes())?;
        store.commit()?;
    }
    store.begin()?;
    let v = u64::from_le_bytes(store.read(counter)?.try_into().unwrap());
    store.commit()?;
    println!("counter after three transactions: {v}");
    assert_eq!(v, 3);

    // Crash the server (drop all volatile state) and restart from the
    // stable media. ARIES analysis/redo/undo brings the database back.
    drop(store);
    let server = Arc::try_unwrap(server).ok().expect("sole owner");
    let parts = server.crash();
    println!("server crashed; restarting…");
    let server = Server::restart(parts, server_cfg, Meter::new())?;

    let page = server.read_page_for_test(counter.page)?;
    let v = u64::from_le_bytes(page.object(counter.page, counter.slot)?.try_into().unwrap());
    println!("counter after crash + restart: {v}");
    assert_eq!(v, 3);
    let page = server.read_page_for_test(hello.page)?;
    assert_eq!(page.object(hello.page, hello.slot)?, b"hello, persistent world");
    println!("all committed state recovered ✓");
    Ok(())
}
