//! Generate a small OO7 module and run the paper's update traversals under
//! one chosen recovery scheme, printing the protocol traffic each one
//! produces — a miniature of the experiments in §5.
//!
//! Run: `cargo run --release --example oo7_traversal [PD-ESM|SD-ESM|SL-ESM|PD-REDO|WPL]`

use qs_repro::core::{Store, SystemConfig};
use qs_repro::esm::{ClientConn, Server, ServerConfig};
use qs_repro::oo7::{gen, params::Oo7Params, traversal, T2Mode};
use qs_repro::sim::Meter;
use qs_repro::types::ClientId;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "PD-ESM".to_string());
    let cfg = match which.as_str() {
        "PD-ESM" => SystemConfig::pd_esm(),
        "SD-ESM" => SystemConfig::sd_esm(),
        "SL-ESM" => SystemConfig::sl_esm(),
        "PD-REDO" => SystemConfig::pd_redo(),
        "WPL" => SystemConfig::wpl(),
        other => {
            eprintln!("unknown system {other}; use PD-ESM|SD-ESM|SL-ESM|PD-REDO|WPL");
            std::process::exit(2);
        }
    }
    .with_memory(12.0, 4.0);
    println!("system: {}", cfg.name());

    let meter = Meter::new();
    let server = Arc::new(Server::format(
        ServerConfig::new(cfg.flavor).with_pool_mb(36.0).with_volume_pages(2048).with_log_mb(64.0),
        Arc::clone(&meter),
    )?);
    let mut params = Oo7Params::small();
    params.num_modules = 1;
    println!("generating one small OO7 module…");
    let db = gen::generate(&server, &params, 1995)?;
    println!("module: {:.1} MB across {} pages", db.module_mb(), db.modules[0].pages);

    let client =
        ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter.clone());
    let mut store = Store::new(client, cfg)?;

    for mode in [T2Mode::A, T2Mode::B, T2Mode::C] {
        // Warm-up transaction, then a measured one.
        store.begin()?;
        traversal::t2(&mut store, &db.modules[0], mode)?;
        store.commit()?;
        let before = meter.snapshot();
        store.begin()?;
        let updates = traversal::t2(&mut store, &db.modules[0], mode)?;
        store.commit()?;
        let w = meter.snapshot().since(&before);
        println!(
            "\n{}: {updates} updates\n  write faults {:<6} update-fn calls {:<8} bytes copied {:<9} bytes diffed {}\n  log records {:<7} log pages shipped {:<4} dirty pages shipped {}",
            mode.name(),
            w.write_faults,
            w.update_fn_calls,
            w.bytes_copied,
            w.bytes_diffed,
            w.log_records_generated,
            w.log_record_pages_shipped,
            w.dirty_pages_shipped,
        );
    }
    Ok(())
}
