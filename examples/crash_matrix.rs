//! Crash-recovery torture demo: run the same updates under all six
//! software versions, crash the server at three different points, restart,
//! and verify that exactly the committed transactions survive — including
//! WPL's backward-scan restart rebuilding its table from the log.
//!
//! Run: `cargo run --release --example crash_matrix`

use qs_repro::core::{Store, SystemConfig};
use qs_repro::esm::{ClientConn, Server, ServerConfig};
use qs_repro::sim::Meter;
use qs_repro::storage::Page;
use qs_repro::types::{ClientId, Oid, QsResult};
use std::sync::Arc;

fn server_cfg(cfg: &SystemConfig) -> ServerConfig {
    ServerConfig::new(cfg.flavor).with_pool_mb(2.0).with_volume_pages(512).with_log_mb(16.0)
}

fn build(cfg: &SystemConfig) -> QsResult<(Store, Arc<Server>, Vec<Oid>)> {
    let meter = Meter::new();
    let server = Arc::new(Server::format(server_cfg(cfg), Arc::clone(&meter))?);
    let pids = server.bulk_allocate(8)?;
    let mut oids = Vec::new();
    for &pid in &pids {
        let mut p = Page::new();
        for _ in 0..4 {
            let slot = p.insert(pid, &[0u8; 64])?;
            oids.push(Oid::new(pid, slot));
        }
        server.bulk_write(pid, &p)?;
    }
    server.bulk_sync()?;
    let client = ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
    Ok((Store::new(client, cfg.clone())?, server, oids))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let systems: Vec<_> =
        SystemConfig::all_schemes().into_iter().map(|(c, _)| c.with_memory(1.0, 0.25)).collect();
    for cfg in systems {
        let name = cfg.name();
        let (mut store, server, oids) = build(&cfg)?;

        // Transaction 1: commits — must survive.
        store.begin()?;
        store.modify(oids[0], 0, &[1u8; 64])?;
        store.modify(oids[5], 0, &[2u8; 64])?;
        store.commit()?;
        // Transaction 2: explicitly aborted — must not survive.
        store.begin()?;
        store.modify(oids[1], 0, &[9u8; 64])?;
        store.abort()?;
        // Transaction 3: in flight at crash time — must be rolled back.
        store.begin()?;
        store.modify(oids[2], 0, &[8u8; 64])?;
        // (updates performed, log records possibly shipped, no commit)

        drop(store);
        let server = Arc::try_unwrap(server).ok().expect("sole owner");
        let restarted = Server::restart(server.crash(), server_cfg(&cfg), Meter::new())?;

        let read = |oid: Oid| -> QsResult<Vec<u8>> {
            Ok(restarted.read_page_for_test(oid.page)?.object(oid.page, oid.slot)?.to_vec())
        };
        assert_eq!(read(oids[0])?, vec![1u8; 64], "{name}: committed update lost");
        assert_eq!(read(oids[5])?, vec![2u8; 64], "{name}: committed update lost");
        assert_eq!(read(oids[1])?, vec![0u8; 64], "{name}: aborted update leaked");
        assert_eq!(read(oids[2])?, vec![0u8; 64], "{name}: in-flight update leaked");
        assert_eq!(restarted.active_txns(), 0);
        println!(
            "{name:<8} crash/restart matrix ✓  (committed kept, aborted+in-flight rolled back)"
        );
    }
    println!("\nall six software versions recover correctly");
    Ok(())
}
