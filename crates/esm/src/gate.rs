//! [`VolumeGate`]: the data-disk subsystem lock.
//!
//! The paper's server has one database disk (the Sun1.3G); all data-page
//! I/O serializes on its arm. The gate models that as one traced mutex
//! around the [`Volume`], so data reads/writes from different subsystems
//! (shard misses, evictions, checkpoint flushes, WPL reclaim) queue here —
//! and only here — instead of under one server-wide lock.

use qs_storage::{Page, Volume};
use qs_trace::{TracedGuard, TracedMutex, Tracer};
use qs_types::{PageId, QsResult};

/// The independently locked data-volume subsystem.
pub struct VolumeGate {
    inner: TracedMutex<Volume>,
}

impl VolumeGate {
    pub fn new(volume: Volume) -> VolumeGate {
        VolumeGate { inner: TracedMutex::new("volume", volume) }
    }

    /// Acquire the disk. The guard derefs to [`Volume`].
    pub fn lock<'a>(&'a self, tracer: &'a Tracer) -> TracedGuard<'a, Volume> {
        self.inner.lock(tracer)
    }

    /// Write a batch of page images under one gate acquisition, in the
    /// ascending-page-id order the caller sorted them into (elevator order:
    /// one sweep of the disk arm instead of a seek per page). The batch must
    /// already be sorted; debug builds assert it.
    pub fn write_sorted(&self, tracer: &Tracer, batch: &[(PageId, Page)]) -> QsResult<()> {
        debug_assert!(
            batch.windows(2).all(|w| w[0].0 < w[1].0),
            "elevator batch must be sorted by ascending page id"
        );
        let vol = self.inner.lock(tracer);
        for (pid, page) in batch {
            vol.write_page(*pid, page)?;
        }
        Ok(())
    }
}
