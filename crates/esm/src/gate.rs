//! [`VolumeGate`]: the data-disk subsystem lock.
//!
//! The paper's server has one database disk (the Sun1.3G); all data-page
//! I/O serializes on its arm. The gate models that as one traced mutex
//! around the [`Volume`], so data reads/writes from different subsystems
//! (shard misses, evictions, checkpoint flushes, WPL reclaim) queue here —
//! and only here — instead of under one server-wide lock.

use qs_storage::Volume;
use qs_trace::{TracedGuard, TracedMutex, Tracer};

/// The independently locked data-volume subsystem.
pub struct VolumeGate {
    inner: TracedMutex<Volume>,
}

impl VolumeGate {
    pub fn new(volume: Volume) -> VolumeGate {
        VolumeGate { inner: TracedMutex::new("volume", volume) }
    }

    /// Acquire the disk. The guard derefs to [`Volume`].
    pub fn lock<'a>(&'a self, tracer: &'a Tracer) -> TracedGuard<'a, Volume> {
        self.inner.lock(tracer)
    }
}
