//! Parallel, pipelined restart: the engine behind
//! `RestartConfig::redo_workers > 1`.
//!
//! Both ARIES restart and the WPL backward-scan restart partition their
//! per-page work by page id, using the same Fibonacci hash as the sharded
//! buffer pool: every record touching a given page is routed to exactly
//! one worker, so each worker applies its pages' records in LSN order
//! with no cross-worker coordination. That invariant is all after-image
//! redo needs — records for *different* pages commute, and within one
//! page the worker sees log order (see DESIGN.md "Parallel restart
//! pipeline").
//!
//! The pipeline has three stages, connected by bounded channels:
//!
//! 1. a reader thread streams the log in large aligned chunks
//!    ([`qs_wal::stream_chunks`]), replacing the per-record
//!    `scan_forward` — one lock acquisition and one media pass per chunk;
//! 2. the router (the restart thread itself) walks each chunk's frames
//!    using the cheap frame accessors — no decoding — and fans the
//!    page-bearing frames out to workers;
//! 3. N workers apply their frames straight out of the shared chunk
//!    buffer to privately-owned page images, with no `LogRecord`
//!    materialization and no per-record allocation.
//!
//! Each frame is checksum-verified exactly once per restart (the serial
//! path verifies twice, once per scan): small frames during analysis,
//! whole-page frames at the point of use — ARIES redo verifies the ones
//! it applies, and the WPL merge verifies the images that win their page
//! (every image the scan walks past gets its framing checked, but only
//! installed images pay the 8 KB checksum).
//!
//! Workers return their resident sets and [`PhaseStat`] tallies, merged
//! in worker-index order (and page-sorted for pool installation), so the
//! recovered volume image, the restart report counts, and everything
//! downstream are byte-identical for any worker count — `redo_workers = 1`
//! runs the original serial modules instead, pinning the baseline.

use crate::aries::{self, AdaptiveAnalysis, Analysis, RlogAnalysis};
use crate::server::{InnerView, Server};
use crate::shard::shard_index;
use crate::txn::TxnTable;
use qs_storage::{Page, Volume};
use qs_trace::PhaseStat;
use qs_types::{Lsn, PageId, QsResult, TxnId, PAGE_SIZE};
use qs_wal::record::{self, tag};
use qs_wal::{stream_chunks, CheckpointBody, FrameRef, LogRecord};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;

/// Bounded depth of the chunk and per-worker channels: deep enough to
/// overlap reading, routing, and applying; shallow enough to cap memory
/// at a few chunks per stage.
const DEPTH: usize = 4;

/// One batch of routed work: frames for one worker, all within `buf`.
type WorkBatch = (Arc<Vec<u8>>, Vec<FrameRef>);

/// Parallel ARIES restart (ESM / REDO flavors): streamed analysis,
/// page-partitioned redo, then the shared undo pass. Phase counts and all
/// recovered state match [`crate::aries::restart`] exactly.
pub(crate) fn aries_restart(server: &Server, workers: usize) -> QsResult<Vec<PhaseStat>> {
    let mut ph_analysis = PhaseStat { name: "analysis", ..PhaseStat::default() };
    let mut ph_redo = PhaseStat { name: "redo", ..PhaseStat::default() };
    let mut ph_undo = PhaseStat { name: "undo", ..PhaseStat::default() };
    let chunk_bytes = server.config().restart.chunk_bytes;

    let analysis =
        server.with_quiesced(|view| streamed_analysis(view, chunk_bytes, &mut ph_analysis))?;
    server
        .with_quiesced(|view| parallel_redo(view, &analysis, workers, chunk_bytes, &mut ph_redo))?;
    aries::undo_and_finish(server, analysis.att, analysis.max_txn, &mut ph_undo)?;
    Ok(vec![ph_analysis, ph_redo, ph_undo])
}

/// Analysis over streamed chunks: same bookkeeping as the serial pass,
/// but reading whole chunks and using the frame accessors instead of
/// decoding every record. Whole-page frames (8 KB bodies) skip the
/// checksum here — the redo workers decode every one of them (each lands
/// in the DPT via its own page entry), so corruption still surfaces.
fn streamed_analysis(
    view: &mut InnerView<'_>,
    chunk_bytes: usize,
    ph: &mut PhaseStat,
) -> QsResult<Analysis> {
    let ck = view.log.checkpoint_lsn();
    let scan_from = if ck.is_null() { view.log.start_lsn() } else { ck };
    let end = view.log.tail_lsn();
    ph.pages_read = end.0.saturating_sub(scan_from.0).div_ceil(PAGE_SIZE as u64);

    let mut a = Analysis { max_txn: TxnId::INVALID, ..Analysis::default() };
    if !ck.is_null() {
        // Sharp `Checkpoint` or completed fuzzy pair's `BeginCheckpoint` —
        // the header never points at an orphaned begin (it only advances
        // once the matching end record is durable).
        let body = match view.log.read_record(ck)?.0 {
            LogRecord::Checkpoint { body } | LogRecord::BeginCheckpoint { body } => body,
            _ => {
                return Err(qs_types::QsError::RecoveryFailed {
                    detail: format!("no checkpoint record at {ck}"),
                });
            }
        };
        for (t, l) in body.active_txns {
            a.att.insert(t, l);
        }
        for (p, l) in body.dirty_pages {
            a.dpt.insert(p, l);
        }
        a.max_alloc = body.allocated_pages;
    }

    let log = view.log;
    std::thread::scope(|s| -> QsResult<()> {
        for chunk in stream_chunks(s, log, scan_from, end, chunk_bytes, DEPTH) {
            let chunk = chunk?;
            for r in &chunk.frames {
                let bytes = chunk.frame(r);
                let t = record::frame_tag(bytes);
                if t != tag::WHOLE_PAGE {
                    record::frame_verify(bytes)?;
                }
                ph.records += 1;
                let txn = record::frame_txn(bytes);
                if txn != TxnId::INVALID {
                    if a.max_txn == TxnId::INVALID || txn.0 > a.max_txn.0 {
                        a.max_txn = txn;
                    }
                    match t {
                        tag::COMMIT | tag::ABORT => {
                            a.att.remove(&txn);
                        }
                        _ => {
                            a.att.insert(txn, r.lsn);
                        }
                    }
                }
                if let Some(page) = record::frame_page(bytes) {
                    a.dpt.entry(page).or_insert(r.lsn);
                    a.max_alloc = a.max_alloc.max(page.0 as u64 + 1);
                }
            }
        }
        Ok(())
    })?;
    view.volume.ensure_allocated(a.max_alloc as usize)?;
    Ok(a)
}

/// What one redo worker produced: its phase tallies and its partition's
/// redone pages, sorted by page id.
struct RedoOutcome {
    stats: PhaseStat,
    resident: Vec<(PageId, Page)>,
}

/// Page-partitioned redo: route every page-bearing frame in
/// `[redo_from, tail)` to `shard_index(page, workers)`, let each worker
/// repeat history on its own pages, then install the merged resident set
/// into the pool exactly as the serial loop does.
fn parallel_redo(
    view: &mut InnerView<'_>,
    analysis: &Analysis,
    workers: usize,
    chunk_bytes: usize,
    ph: &mut PhaseStat,
) -> QsResult<()> {
    let Some(&redo_from) = analysis.dpt.values().min() else {
        return Ok(());
    };
    // Clamp exactly as the serial redo does: fuzzy begin-checkpoint bodies
    // may carry recLSNs older than the truncated log start.
    let redo_from = redo_from.max(view.log.start_lsn());
    let end = view.log.tail_lsn();
    ph.pages_read = end.0.saturating_sub(redo_from.0).div_ceil(PAGE_SIZE as u64);

    let log = view.log;
    let volume = view.volume;
    let dpt = &analysis.dpt;
    let outcomes = std::thread::scope(|s| -> QsResult<Vec<RedoOutcome>> {
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = sync_channel::<WorkBatch>(DEPTH);
            txs.push(tx);
            handles.push(s.spawn(move || redo_worker(rx, dpt, volume)));
        }
        let mut routed: Vec<Vec<FrameRef>> = vec![Vec::new(); workers];
        let mut route_err = None;
        'chunks: for chunk in stream_chunks(s, log, redo_from, end, chunk_bytes, DEPTH) {
            let chunk = match chunk {
                Ok(c) => c,
                Err(e) => {
                    route_err = Some(e);
                    break;
                }
            };
            for r in &chunk.frames {
                if let Some(pid) = record::frame_page(chunk.frame(r)) {
                    routed[shard_index(pid, workers)].push(*r);
                }
            }
            for (w, refs) in routed.iter_mut().enumerate() {
                if refs.is_empty() {
                    continue;
                }
                if txs[w].send((Arc::clone(&chunk.buf), std::mem::take(refs))).is_err() {
                    break 'chunks; // worker bailed with an error; join below
                }
            }
        }
        drop(txs);
        let mut outs = Vec::with_capacity(workers);
        for h in handles {
            outs.push(h.join().expect("redo worker panicked")?);
        }
        match route_err {
            Some(e) => Err(e),
            None => Ok(outs),
        }
    })?;

    // Merge in worker-index order; install page-sorted so pool state and
    // eviction write-backs are identical for every worker count.
    let mut resident: Vec<(PageId, Page)> = Vec::new();
    for o in outcomes {
        ph.absorb(&o.stats);
        resident.extend(o.resident);
    }
    resident.sort_by_key(|&(pid, _)| pid.0);
    for (pid, page) in resident {
        let ev = view.pool.insert(pid, page, true)?;
        if let Some(ev) = ev {
            if ev.dirty {
                view.volume.write_page(ev.page_id, &ev.page)?;
                ph.data_writes += 1;
            }
        }
        view.dpt.insert(pid, redo_from);
    }
    Ok(())
}

/// One redo worker: repeat history on this partition's pages with the
/// same DPT / recLSN / pageLSN filters as the serial loop, applying
/// after-images straight from the shared chunk buffer — no `LogRecord`
/// materialization, no per-record allocation. Small frames were already
/// checksum-verified by the streamed analysis pass; whole-page frames
/// (which analysis skips) are verified here, so every frame is verified
/// exactly once per restart.
fn redo_worker(
    rx: Receiver<WorkBatch>,
    dpt: &HashMap<PageId, Lsn>,
    volume: &Volume,
) -> QsResult<RedoOutcome> {
    let mut stats = PhaseStat { name: "redo", ..PhaseStat::default() };
    let mut resident: HashMap<PageId, Page> = HashMap::new();
    for (buf, refs) in rx {
        for r in refs {
            let bytes = &buf[r.offset as usize..(r.offset + r.len) as usize];
            let pid = record::frame_page(bytes).expect("router only sends page-bearing frames");
            let Some(&rec_lsn) = dpt.get(&pid) else { continue };
            if r.lsn < rec_lsn {
                continue;
            }
            let page = match resident.entry(pid) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => {
                    stats.data_reads += 1;
                    e.insert(volume.read_page(pid)?)
                }
            };
            if page.lsn() >= r.lsn {
                continue; // effect already on disk image
            }
            stats.records += 1;
            if record::frame_tag(bytes) == tag::WHOLE_PAGE {
                record::frame_verify(bytes)?;
                *page = Page::from_bytes(record::frame_whole_page_image(bytes)?)?;
            } else if let Some((slot, offset, after)) = record::frame_redo_slice(bytes)? {
                let obj = page.object_mut(pid, slot)?;
                let off = offset as usize;
                obj[off..off + after.len()].copy_from_slice(after);
            }
            page.set_lsn(r.lsn);
        }
    }
    let mut resident: Vec<(PageId, Page)> = resident.into_iter().collect();
    resident.sort_by_key(|&(pid, _)| pid.0);
    Ok(RedoOutcome { stats, resident })
}

/// Parallel `RedoLogical` restart: streamed analysis over the whole
/// retained log, then page-partitioned redo of committed transactions'
/// records only — the router consults the committed set before fanning a
/// frame out, so the workers never see loser frames and there is no undo
/// stage at all. Phase counts and recovered state match
/// [`crate::aries::rlog_restart`] exactly.
pub(crate) fn rlog_restart(server: &Server, workers: usize) -> QsResult<Vec<PhaseStat>> {
    let mut ph_analysis = PhaseStat { name: "analysis", ..PhaseStat::default() };
    let mut ph_redo = PhaseStat { name: "redo", ..PhaseStat::default() };
    let chunk_bytes = server.config().restart.chunk_bytes;

    let analysis =
        server.with_quiesced(|view| streamed_rlog_analysis(view, chunk_bytes, &mut ph_analysis))?;
    server.with_quiesced(|view| {
        parallel_rlog_redo(view, &analysis, workers, chunk_bytes, &mut ph_redo)
    })?;
    aries::rlog_finish(server, analysis.max_txn)?;
    Ok(vec![ph_analysis, ph_redo])
}

/// `RedoLogical` analysis over streamed chunks: same bookkeeping as the
/// serial pass in [`crate::aries::rlog_restart`] — committed set,
/// commit-gated DPT merge, id high-water marks — using the frame
/// accessors instead of decoding every record.
fn streamed_rlog_analysis(
    view: &mut InnerView<'_>,
    chunk_bytes: usize,
    ph: &mut PhaseStat,
) -> QsResult<RlogAnalysis> {
    let scan_from = view.log.start_lsn();
    let end = view.log.tail_lsn();
    ph.pages_read = end.0.saturating_sub(scan_from.0).div_ceil(PAGE_SIZE as u64);

    let mut a = RlogAnalysis { max_txn: TxnId::INVALID, ..RlogAnalysis::default() };
    let mut pending: HashMap<TxnId, HashMap<PageId, Lsn>> = HashMap::new();
    let log = view.log;
    std::thread::scope(|s| -> QsResult<()> {
        for chunk in stream_chunks(s, log, scan_from, end, chunk_bytes, DEPTH) {
            let chunk = chunk?;
            for r in &chunk.frames {
                let bytes = chunk.frame(r);
                let t = record::frame_tag(bytes);
                if t != tag::WHOLE_PAGE {
                    record::frame_verify(bytes)?;
                }
                ph.records += 1;
                let txn = record::frame_txn(bytes);
                a.note_txn(txn);
                match t {
                    tag::COMMIT => {
                        a.committed.insert(txn);
                        if let Some(pages) = pending.remove(&txn) {
                            a.merge_committed(pages);
                        }
                    }
                    tag::ABORT => {
                        pending.remove(&txn);
                    }
                    tag::CHECKPOINT | tag::BEGIN_CHECKPOINT => match LogRecord::decode(bytes)? {
                        LogRecord::Checkpoint { body } | LogRecord::BeginCheckpoint { body } => {
                            a.max_alloc = a.max_alloc.max(body.allocated_pages);
                        }
                        _ => {}
                    },
                    _ => {
                        if let Some(page) = record::frame_page(bytes) {
                            pending.entry(txn).or_default().entry(page).or_insert(r.lsn);
                            a.max_alloc = a.max_alloc.max(page.0 as u64 + 1);
                        }
                    }
                }
            }
        }
        Ok(())
    })?;
    view.volume.ensure_allocated(a.max_alloc as usize)?;
    Ok(a)
}

/// Page-partitioned `RedoLogical` redo: identical to [`parallel_redo`]
/// except the router drops frames of uncommitted transactions before
/// routing — REDO-only recovery never replays a loser.
fn parallel_rlog_redo(
    view: &mut InnerView<'_>,
    analysis: &RlogAnalysis,
    workers: usize,
    chunk_bytes: usize,
    ph: &mut PhaseStat,
) -> QsResult<()> {
    let committed = &analysis.committed;
    let skip = |txn: TxnId| !committed.contains(&txn);
    parallel_filtered_redo(view, &analysis.dpt, &skip, workers, chunk_bytes, ph)
}

/// Shared body of the filtered parallel redos (`RedoLogical` and
/// `Adaptive`): route every page-bearing frame whose transaction survives
/// `skip` to `shard_index(page, workers)`, let each worker repeat history
/// on its own pages, then install the merged resident set into the pool
/// exactly as the serial loops do. The filter runs on the router thread,
/// so it needs no synchronization.
fn parallel_filtered_redo(
    view: &mut InnerView<'_>,
    dpt: &HashMap<PageId, Lsn>,
    skip: &dyn Fn(TxnId) -> bool,
    workers: usize,
    chunk_bytes: usize,
    ph: &mut PhaseStat,
) -> QsResult<()> {
    let Some(&redo_from) = dpt.values().min() else {
        return Ok(());
    };
    let end = view.log.tail_lsn();
    ph.pages_read = end.0.saturating_sub(redo_from.0).div_ceil(PAGE_SIZE as u64);

    let log = view.log;
    let volume = view.volume;
    let outcomes = std::thread::scope(|s| -> QsResult<Vec<RedoOutcome>> {
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = sync_channel::<WorkBatch>(DEPTH);
            txs.push(tx);
            handles.push(s.spawn(move || redo_worker(rx, dpt, volume)));
        }
        let mut routed: Vec<Vec<FrameRef>> = vec![Vec::new(); workers];
        let mut route_err = None;
        'chunks: for chunk in stream_chunks(s, log, redo_from, end, chunk_bytes, DEPTH) {
            let chunk = match chunk {
                Ok(c) => c,
                Err(e) => {
                    route_err = Some(e);
                    break;
                }
            };
            for r in &chunk.frames {
                let bytes = chunk.frame(r);
                if skip(record::frame_txn(bytes)) {
                    continue;
                }
                if let Some(pid) = record::frame_page(bytes) {
                    routed[shard_index(pid, workers)].push(*r);
                }
            }
            for (w, refs) in routed.iter_mut().enumerate() {
                if refs.is_empty() {
                    continue;
                }
                if txs[w].send((Arc::clone(&chunk.buf), std::mem::take(refs))).is_err() {
                    break 'chunks; // worker bailed with an error; join below
                }
            }
        }
        drop(txs);
        let mut outs = Vec::with_capacity(workers);
        for h in handles {
            outs.push(h.join().expect("redo worker panicked")?);
        }
        match route_err {
            Some(e) => Err(e),
            None => Ok(outs),
        }
    })?;

    // Merge in worker-index order; install page-sorted so pool state and
    // eviction write-backs are identical for every worker count.
    let mut resident: Vec<(PageId, Page)> = Vec::new();
    for o in outcomes {
        ph.absorb(&o.stats);
        resident.extend(o.resident);
    }
    resident.sort_by_key(|&(pid, _)| pid.0);
    for (pid, page) in resident {
        let ev = view.pool.insert(pid, page, true)?;
        if let Some(ev) = ev {
            if ev.dirty {
                view.volume.write_page(ev.page_id, &ev.page)?;
                ph.data_writes += 1;
            }
        }
        view.dpt.insert(pid, redo_from);
    }
    Ok(())
}

/// Parallel `Adaptive` restart: streamed mixed-scheme analysis (shared
/// [`AdaptiveAnalysis`] bookkeeping), page-partitioned redo with the
/// logically-elected losers filtered at the router, then the shared undo
/// pass over the physically-elected losers only. Phase counts and all
/// recovered state match [`crate::aries::adaptive_restart`] exactly.
pub(crate) fn adaptive_restart(server: &Server, workers: usize) -> QsResult<Vec<PhaseStat>> {
    let mut ph_analysis = PhaseStat { name: "analysis", ..PhaseStat::default() };
    let mut ph_redo = PhaseStat { name: "redo", ..PhaseStat::default() };
    let mut ph_undo = PhaseStat { name: "undo", ..PhaseStat::default() };
    let chunk_bytes = server.config().restart.chunk_bytes;

    let analysis = server
        .with_quiesced(|view| streamed_adaptive_analysis(view, chunk_bytes, &mut ph_analysis))?;
    server.with_quiesced(|view| {
        let skip = |txn: TxnId| analysis.redo_skips(txn);
        parallel_filtered_redo(view, &analysis.dpt, &skip, workers, chunk_bytes, &mut ph_redo)
    })?;
    let physical_losers: HashMap<TxnId, Lsn> = analysis
        .att
        .iter()
        .filter(|(t, _)| !analysis.is_logical(**t))
        .map(|(t, l)| (*t, *l))
        .collect();
    aries::undo_and_finish(server, physical_losers, analysis.max_txn, &mut ph_undo)?;
    Ok(vec![ph_analysis, ph_redo, ph_undo])
}

/// `Adaptive` analysis over streamed chunks: same bookkeeping as the
/// serial pass — the shared [`AdaptiveAnalysis::observe`] classifies every
/// record, so the two engines cannot drift. A transaction's `TxnScheme`
/// record precedes its page records in the log, so forward order
/// classifies each page-bearing frame correctly at first sight.
fn streamed_adaptive_analysis(
    view: &mut InnerView<'_>,
    chunk_bytes: usize,
    ph: &mut PhaseStat,
) -> QsResult<AdaptiveAnalysis> {
    let scan_from = view.log.start_lsn();
    let end = view.log.tail_lsn();
    ph.pages_read = end.0.saturating_sub(scan_from.0).div_ceil(PAGE_SIZE as u64);

    let mut a = AdaptiveAnalysis { max_txn: TxnId::INVALID, ..AdaptiveAnalysis::default() };
    let log = view.log;
    std::thread::scope(|s| -> QsResult<()> {
        for chunk in stream_chunks(s, log, scan_from, end, chunk_bytes, DEPTH) {
            let chunk = chunk?;
            for r in &chunk.frames {
                let bytes = chunk.frame(r);
                let t = record::frame_tag(bytes);
                if t != tag::WHOLE_PAGE {
                    record::frame_verify(bytes)?;
                }
                ph.records += 1;
                match t {
                    tag::CHECKPOINT | tag::BEGIN_CHECKPOINT => match LogRecord::decode(bytes)? {
                        LogRecord::Checkpoint { body } | LogRecord::BeginCheckpoint { body } => {
                            a.max_alloc = a.max_alloc.max(body.allocated_pages);
                        }
                        _ => {}
                    },
                    _ => a.observe(
                        r.lsn,
                        t,
                        record::frame_txn(bytes),
                        record::frame_page(bytes),
                        record::frame_scheme(bytes),
                    ),
                }
            }
        }
        Ok(())
    })?;
    view.volume.ensure_allocated(a.max_alloc as usize)?;
    Ok(a)
}

/// One whole-page image sighting: where it is (a shared chunk buffer
/// keeps the frame bytes alive) and who wrote it. Checksum verification
/// is deferred until the candidate actually wins its page — see
/// [`wpl_restart`].
struct ImageCandidate {
    pid: PageId,
    lsn: Lsn,
    txn: TxnId,
    buf: Arc<Vec<u8>>,
    offset: u32,
    len: u32,
}

impl ImageCandidate {
    fn bytes(&self) -> &[u8] {
        &self.buf[self.offset as usize..(self.offset + self.len) as usize]
    }
}

/// What one WPL image worker produced: its partition's image candidates
/// plus the id high-water marks it observed.
struct WplOutcome {
    images: Vec<ImageCandidate>,
    max_txn: TxnId,
    max_page: Option<u32>,
}

/// Parallel WPL restart (§3.4.3): one *forward* streamed pass over
/// `[checkpoint, durable)` replaces the serial backward scan. The router
/// collects the committed-transactions list and the oldest in-range
/// checkpoint body; workers report image candidates, and the merge
/// checksums only the winners (see the module docs). "Newest committed
/// image wins" is decided per page at merge time — which is exactly what
/// the backward scan's first-wins rule computes, because a transaction's
/// commit record always follows its page images in the log.
pub(crate) fn wpl_restart(server: &Server, workers: usize) -> QsResult<Vec<PhaseStat>> {
    let mut scan = PhaseStat { name: "backward_scan", ..PhaseStat::default() };
    let mut rebuild = PhaseStat { name: "table_rebuild", ..PhaseStat::default() };
    let chunk_bytes = server.config().restart.chunk_bytes;
    server.with_quiesced(|view| -> QsResult<()> {
        let end = view.log.durable_lsn();
        let ck = view.log.checkpoint_lsn();
        let stop = if ck.is_null() { view.log.start_lsn() } else { ck };
        scan.pages_read = end.0.saturating_sub(stop.0).div_ceil(PAGE_SIZE as u64);

        let mut ctl: HashSet<TxnId> = HashSet::new();
        let mut max_txn = TxnId::INVALID;
        let mut max_page: Option<u32> = None;
        // The serial backward scan ends on the *oldest* in-range
        // checkpoint (each visit overwrites); forward order makes that
        // first-wins.
        let mut checkpoint_body: Option<CheckpointBody> = None;

        let log = view.log;
        let outcomes = std::thread::scope(|s| -> QsResult<Vec<WplOutcome>> {
            let mut txs = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (tx, rx) = sync_channel::<WorkBatch>(DEPTH);
                txs.push(tx);
                handles.push(s.spawn(move || image_worker(rx)));
            }
            let mut routed: Vec<Vec<FrameRef>> = vec![Vec::new(); workers];
            let mut route_err = None;
            'chunks: for chunk in stream_chunks(s, log, stop, end, chunk_bytes, DEPTH) {
                let chunk = match chunk {
                    Ok(c) => c,
                    Err(e) => {
                        route_err = Some(e);
                        break;
                    }
                };
                for r in &chunk.frames {
                    let bytes = chunk.frame(r);
                    scan.records += 1;
                    if record::frame_tag(bytes) == tag::WHOLE_PAGE {
                        let pid = record::frame_page(bytes).expect("whole-page frame");
                        routed[shard_index(pid, workers)].push(*r);
                        continue;
                    }
                    match record::frame_verify(bytes).and_then(|()| {
                        let txn = record::frame_txn(bytes);
                        if txn != TxnId::INVALID && (max_txn == TxnId::INVALID || txn.0 > max_txn.0)
                        {
                            max_txn = txn;
                        }
                        match record::frame_tag(bytes) {
                            tag::COMMIT => {
                                ctl.insert(txn);
                            }
                            // Forward scan: first in-range record wins —
                            // the same anchor the serial backward scan's
                            // last-overwrite-wins rule lands on.
                            tag::CHECKPOINT | tag::BEGIN_CHECKPOINT
                                if checkpoint_body.is_none() =>
                            {
                                match LogRecord::decode(bytes)? {
                                    LogRecord::Checkpoint { body }
                                    | LogRecord::BeginCheckpoint { body } => {
                                        checkpoint_body = Some(body);
                                    }
                                    _ => {}
                                }
                            }
                            _ => {}
                        }
                        Ok(())
                    }) {
                        Ok(()) => {}
                        Err(e) => {
                            route_err = Some(e);
                            break 'chunks;
                        }
                    }
                }
                for (w, refs) in routed.iter_mut().enumerate() {
                    if refs.is_empty() {
                        continue;
                    }
                    if txs[w].send((Arc::clone(&chunk.buf), std::mem::take(refs))).is_err() {
                        break 'chunks; // worker bailed with an error; join below
                    }
                }
            }
            drop(txs);
            let mut outs = Vec::with_capacity(workers);
            for h in handles {
                outs.push(h.join().expect("image worker panicked")?);
            }
            match route_err {
                Some(e) => Err(e),
                None => Ok(outs),
            }
        })?;

        // The serial scan's random backward record reads each billed one
        // log-page read to the meter; bill the same total at once.
        server.meter().log_pages_read.fetch_add(scan.records, Ordering::Relaxed);

        // Merge: newest committed image per page. Only the winners get
        // their 8 KB checksums verified — on a scan where pages were
        // re-imaged many times, that skips the dominant cost of the
        // serial scan (which decodes, and therefore checksums, every
        // image it walks past) while still verifying everything restart
        // actually installs.
        let mut newest: HashMap<PageId, ImageCandidate> = HashMap::new();
        for o in outcomes {
            if o.max_txn != TxnId::INVALID && (max_txn == TxnId::INVALID || o.max_txn.0 > max_txn.0)
            {
                max_txn = o.max_txn;
            }
            if let Some(mp) = o.max_page {
                max_page = Some(max_page.unwrap_or(0).max(mp));
            }
            for cand in o.images {
                if !ctl.contains(&cand.txn) {
                    continue;
                }
                match newest.entry(cand.pid) {
                    Entry::Vacant(e) => {
                        e.insert(cand);
                    }
                    Entry::Occupied(mut e) => {
                        if cand.lsn > e.get().lsn {
                            e.insert(cand);
                        }
                    }
                }
            }
        }
        let mut claimed: HashSet<PageId> = HashSet::new();
        let mut restored: Vec<ImageCandidate> = newest.into_values().collect();
        restored.sort_by_key(|c| c.pid.0);
        for c in restored {
            record::frame_verify(c.bytes())?;
            claimed.insert(c.pid);
            view.wpl.insert_restored(c.pid, c.lsn, c.txn);
        }

        // The checkpoint record sits exactly at `stop` when one exists.
        if !ck.is_null() && checkpoint_body.is_none() {
            match view.log.read_record(ck)?.0 {
                LogRecord::Checkpoint { body } | LogRecord::BeginCheckpoint { body } => {
                    server.meter().log_pages_read.fetch_add(1, Ordering::Relaxed);
                    rebuild.pages_read += 1;
                    checkpoint_body = Some(body);
                }
                _ => {}
            }
        }
        if let Some(body) = checkpoint_body {
            for e in &body.wpl_entries {
                if (e.committed || ctl.contains(&e.txn)) && claimed.insert(e.page) {
                    view.wpl.insert_restored(e.page, e.lsn, e.txn);
                }
                rebuild.records += 1;
                max_page = Some(max_page.unwrap_or(0).max(e.page.0 + 1));
            }
            view.volume.ensure_allocated(body.allocated_pages as usize)?;
        }
        if let Some(mp) = max_page {
            view.volume.ensure_allocated(mp as usize)?;
        }
        *view.txns = TxnTable::resuming_after(max_txn);
        Ok(())
    })?;
    Ok(vec![scan, rebuild])
}

/// One WPL image worker: check each routed whole-page frame's framing
/// (length prefix vs trailer echo — catches torn frames) and report it as
/// an [`ImageCandidate`] without materializing or checksumming the 8 KB
/// body; the merge verifies the winners. Restored pages are served
/// straight from the log by the WPL table, exactly as in normal running.
fn image_worker(rx: Receiver<WorkBatch>) -> QsResult<WplOutcome> {
    let mut out = WplOutcome { images: Vec::new(), max_txn: TxnId::INVALID, max_page: None };
    for (buf, refs) in rx {
        for r in refs {
            let bytes = &buf[r.offset as usize..(r.offset + r.len) as usize];
            let len = bytes.len();
            if bytes[len - 4..] != bytes[0..4] {
                return Err(qs_types::QsError::LogCorrupt {
                    detail: "whole-page frame trailer mismatch".into(),
                });
            }
            let pid = record::frame_page(bytes).expect("whole-page frame");
            let txn = record::frame_txn(bytes);
            if txn != TxnId::INVALID && (out.max_txn == TxnId::INVALID || txn.0 > out.max_txn.0) {
                out.max_txn = txn;
            }
            out.max_page = Some(out.max_page.unwrap_or(0).max(pid.0 + 1));
            out.images.push(ImageCandidate {
                pid,
                lsn: r.lsn,
                txn,
                buf: Arc::clone(&buf),
                offset: r.offset,
                len: r.len,
            });
        }
    }
    Ok(out)
}
