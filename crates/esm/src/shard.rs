//! The sharded server buffer pool: N independently locked [`BufferPool`]
//! shards, keyed by a `PageId` hash.
//!
//! Sharding exists so that clients with disjoint working sets never
//! serialize on one pool mutex. Each shard is a full LRU pool of
//! `total/n` pages; a page lives in exactly one shard, so the dirty-page
//! eviction protocol (force log → write volume) runs entirely under that
//! page's shard lock. With one shard (the default), the pool is a single
//! `BufferPool` behind a single lock — bit-for-bit the pre-decomposition
//! behavior, which is what keeps single-client figures byte-identical.

use crate::buffer::{BufferPool, Evicted};
use qs_storage::Page;
use qs_trace::{TracedGuard, TracedMutex, Tracer};
use qs_types::{PageId, QsResult};

/// Which shard a page belongs to: Fibonacci hash of the page id. With one
/// shard this degenerates to 0 with no multiply in the way of reasoning.
pub(crate) fn shard_index(pid: PageId, n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        ((pid.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n
    }
}

/// N independently locked buffer-pool shards.
pub struct ShardedPool {
    shards: Vec<TracedMutex<BufferPool>>,
}

impl ShardedPool {
    /// `total_pages` split evenly across `n` shards (each at least 1 page).
    pub fn new(total_pages: usize, n: usize) -> ShardedPool {
        let n = n.max(1);
        let per_shard = (total_pages / n).max(1);
        ShardedPool {
            shards: (0..n)
                .map(|_| TracedMutex::new("pool_shard", BufferPool::new(per_shard)))
                .collect(),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Index of the shard that owns `pid`.
    pub fn shard_of(&self, pid: PageId) -> usize {
        shard_index(pid, self.shards.len())
    }

    /// Lock the shard that owns `pid`.
    pub fn lock<'a>(&'a self, pid: PageId, tracer: &'a Tracer) -> TracedGuard<'a, BufferPool> {
        self.shards[self.shard_of(pid)].lock(tracer)
    }

    /// Lock one shard by index. The background flusher claims its batches
    /// this way — one shard at a time, never the whole pool — so foreground
    /// traffic on other shards proceeds while a claim is in progress.
    pub fn lock_shard<'a>(&'a self, idx: usize, tracer: &'a Tracer) -> TracedGuard<'a, BufferPool> {
        self.shards[idx].lock(tracer)
    }

    /// Lock every shard, in ascending index order (the lock-order rule for
    /// whole-pool operations: checkpoint, reclaim, restart, undo).
    pub fn lock_all<'a>(&'a self, tracer: &'a Tracer) -> Vec<TracedGuard<'a, BufferPool>> {
        self.shards.iter().map(|s| s.lock(tracer)).collect()
    }
}

/// A whole-pool view over all shards at once, held by quiesced operations.
/// Routes every call to the owning shard; `dirty_pages` concatenates in
/// shard order (identical to the single pool when there is one shard).
pub(crate) struct PoolView<'a> {
    shards: Vec<&'a mut BufferPool>,
}

impl<'a> PoolView<'a> {
    pub(crate) fn new(shards: Vec<&'a mut BufferPool>) -> PoolView<'a> {
        PoolView { shards }
    }

    fn shard(&mut self, pid: PageId) -> &mut BufferPool {
        let i = shard_index(pid, self.shards.len());
        self.shards[i]
    }

    pub(crate) fn contains(&self, pid: PageId) -> bool {
        self.shards[shard_index(pid, self.shards.len())].contains(pid)
    }

    pub(crate) fn get(&mut self, pid: PageId) -> Option<&Page> {
        self.shard(pid).get(pid)
    }

    pub(crate) fn get_mut(&mut self, pid: PageId) -> Option<&mut Page> {
        self.shard(pid).get_mut(pid)
    }

    pub(crate) fn peek(&self, pid: PageId) -> Option<&Page> {
        self.shards[shard_index(pid, self.shards.len())].peek(pid)
    }

    pub(crate) fn insert(
        &mut self,
        pid: PageId,
        page: Page,
        dirty: bool,
    ) -> QsResult<Option<Evicted>> {
        self.shard(pid).insert(pid, page, dirty)
    }

    pub(crate) fn remove(&mut self, pid: PageId) -> Option<Evicted> {
        self.shard(pid).remove(pid)
    }

    pub(crate) fn mark_dirty(&mut self, pid: PageId) {
        self.shard(pid).mark_dirty(pid);
    }

    pub(crate) fn clear_dirty(&mut self, pid: PageId) {
        self.shard(pid).clear_dirty(pid);
    }

    pub(crate) fn dirty_pages(&self) -> Vec<PageId> {
        self.shards.iter().flat_map(|s| s.dirty_pages()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shard_is_identity_routing() {
        for pid in [0u32, 1, 17, u32::MAX] {
            assert_eq!(shard_index(PageId(pid), 1), 0);
        }
    }

    #[test]
    fn multi_shard_routing_is_stable_and_in_range() {
        let n = 8;
        for pid in 0..1000u32 {
            let s = shard_index(PageId(pid), n);
            assert!(s < n);
            assert_eq!(s, shard_index(PageId(pid), n), "deterministic");
        }
        // The hash actually spreads pages across shards.
        let hit: std::collections::HashSet<usize> =
            (0..1000u32).map(|p| shard_index(PageId(p), n)).collect();
        assert_eq!(hit.len(), n, "all shards used by 1000 consecutive pages");
    }

    #[test]
    fn sharded_pool_partitions_capacity() {
        let pool = ShardedPool::new(64, 4);
        assert_eq!(pool.shard_count(), 4);
        let tracer = Tracer::disabled();
        for g in pool.lock_all(&tracer) {
            assert_eq!(g.capacity(), 16);
        }
        // A page's shard is where its lock routes.
        let pid = PageId(123);
        let idx = pool.shard_of(pid);
        assert!(idx < 4);
        let mut g = pool.lock(pid, &tracer);
        g.insert(pid, Page::new(), false).unwrap();
        drop(g);
        let mut all = pool.lock_all(&tracer);
        let shards: Vec<&mut BufferPool> = all.iter_mut().map(|g| &mut **g).collect();
        let view = PoolView::new(shards);
        assert!(view.contains(pid));
    }
}
