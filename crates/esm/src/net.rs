//! Simulated network: message-size accounting for the shared Ethernet.
//!
//! Clients and the server communicate by direct method calls; what makes it
//! a "network" for the performance model is that every crossing meters one
//! message of a realistic size on the shared [`qs_sim::Meter`]. The paper's
//! testbed was an isolated 10 Mb/s Ethernet; the byte counts below follow
//! RPC framing of that era (small fixed headers around page-sized payloads).

use qs_sim::Meter;
use qs_types::PAGE_SIZE;

/// Bytes of the full RPC message header: transport framing plus the
/// request word (opcode, transaction id, page address, payload length).
/// 64 bytes matches the mid-90s RPC stacks the paper's testbed ran — a
/// control message is nothing *but* this header.
pub const MSG_HEADER_BYTES: u64 = 64;

/// Bytes of the reduced header on a *continuation* frame: the trailing
/// partial page of a log-record batch rides the connection state set up by
/// the preceding full frames, so it omits the page-address/request half of
/// the header and keeps only transport framing plus the payload length.
/// Asymmetric on purpose — see [`partial_upload`].
pub const PARTIAL_MSG_HEADER_BYTES: u64 = 32;

/// Bytes of a small control message (page request, lock request, ack…).
pub const CONTROL_MSG_BYTES: u64 = MSG_HEADER_BYTES;
/// Bytes of a message carrying one 8 KB page (payload + framing).
pub const PAGE_MSG_BYTES: u64 = PAGE_SIZE as u64 + MSG_HEADER_BYTES;

/// Meter a control round trip (request + reply).
pub fn control_round_trip(meter: &Meter) {
    meter.net(CONTROL_MSG_BYTES);
    meter.net(CONTROL_MSG_BYTES);
}

/// Meter a page fetch: control request out, page back.
pub fn page_fetch(meter: &Meter) {
    meter.net(CONTROL_MSG_BYTES);
    meter.net(PAGE_MSG_BYTES);
}

/// Meter a page-sized upload (dirty page or a page of log records) + ack.
pub fn page_upload(meter: &Meter) {
    meter.net(PAGE_MSG_BYTES);
    meter.net(CONTROL_MSG_BYTES);
}

/// Meter an upload of `bytes` that is smaller than a page (final partial
/// log-record batch) + ack. Payload plus framing is clamped to a full page
/// message: a partial upload can never cost more on the wire than shipping
/// the whole page would.
pub fn partial_upload(meter: &Meter, bytes: u64) {
    meter.net((bytes + PARTIAL_MSG_HEADER_BYTES).min(PAGE_MSG_BYTES));
    meter.net(CONTROL_MSG_BYTES);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_fetch_moves_a_page_plus_control() {
        let m = Meter::new();
        page_fetch(&m);
        let s = m.snapshot();
        assert_eq!(s.net_msgs, 2);
        assert_eq!(s.net_bytes, CONTROL_MSG_BYTES + PAGE_MSG_BYTES);
    }

    #[test]
    fn uploads_and_control() {
        let m = Meter::new();
        control_round_trip(&m);
        page_upload(&m);
        partial_upload(&m, 500);
        let s = m.snapshot();
        assert_eq!(s.net_msgs, 6);
        assert_eq!(
            s.net_bytes,
            2 * CONTROL_MSG_BYTES
                + (PAGE_MSG_BYTES + CONTROL_MSG_BYTES)
                + (532 + CONTROL_MSG_BYTES)
        );
    }

    #[test]
    fn partial_upload_never_exceeds_a_full_page_message() {
        let m = Meter::new();
        // Payload so large that payload + framing would exceed a page
        // message: the charge clamps to exactly PAGE_MSG_BYTES.
        partial_upload(&m, PAGE_MSG_BYTES + 1000);
        let s = m.snapshot();
        assert_eq!(s.net_bytes, PAGE_MSG_BYTES + CONTROL_MSG_BYTES);
    }
}
