//! Event-driven server runtime: reactor workers, per-client mailboxes,
//! and admission control.
//!
//! The paper's ESM server is a blocking RPC loop — every client owns a
//! server-side thread that parks on `Condvar`s inside the lock manager and
//! the log tower. That shape caps scaling at a few dozen clients. This
//! module replaces it with a small fixed pool of *reactor workers* that
//! drain per-shard run queues of typed [`Request`] messages and deliver
//! typed [`Response`]s through bounded per-client mailboxes, so a thousand
//! simulated clients need a thousand cheap [`ClientPort`]s, not a thousand
//! OS threads.
//!
//! The three places a worker thread would otherwise block are each made
//! asynchronous:
//!
//! * **Locks** — workers call [`Server::lock_resource_async`]; a conflicting
//!   request *parks* (releasing its admission slot) and the lock manager's
//!   [`LockEvents`] sink re-enqueues it as a `Resume` job when the grant
//!   promotion walk reaches it. Queue-time deadlocks surface as a typed
//!   `LockConflict` reply, exactly like the blocking path.
//! * **Commit forces** — workers only append the commit record; a single
//!   *committer* thread drains a commit queue, forces once per batch
//!   ([`Server::commit_force_batch`] keeps the `forces + noops == commits`
//!   metering invariant), and posts each rider's completion to its
//!   mailbox. This is the group-commit idea applied at the runtime layer.
//! * **Admission** — [`Shared::submit`] sheds with a typed
//!   [`Response::Overloaded`] (never a silent drop) when the global
//!   in-flight budget or a worker's queue depth is exceeded. Parked lock
//!   waiters give their admission slot back, so a budget's worth of
//!   conflicting requests can never wedge the runtime: the lock holder's
//!   commit always finds an admission slot eventually.
//!
//! Requests are routed to workers by the same Fibonacci hash the sharded
//! pool uses (`shard::shard_index`), keyed by page where the request names
//! one — so all traffic for a page serializes through one queue — and by
//! transaction id otherwise.
//!
//! Nothing here runs unless a [`Reactor`] is started explicitly; the
//! default [`RuntimeConfig`] (1 worker, direct-call clients) leaves every
//! committed figure byte-identical. `tests/runtime_equivalence.rs` proves
//! that equivalence end-to-end.

use crate::client::ClientConn;
use crate::lock::{AsyncLockOutcome, LockEvents, LockMode, Resource};
use crate::server::Server;
use crate::shard::shard_index;
use qs_sim::Meter;
use qs_storage::Page;
use qs_trace::TraceCat;
use qs_types::sync::Mutex;
use qs_types::{ClientId, Lsn, PageId, QsError, QsResult, TxnId};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Weak};
use std::time::Instant;

/// Knobs for the event-driven runtime. Stored in `ServerConfig::runtime`;
/// only read when a [`Reactor`] is started, so the defaults are inert for
/// every direct-call client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Reactor worker threads (run-queue shards). 1 reproduces the
    /// direct-call execution order for a single client.
    pub workers: usize,
    /// Global admission budget: requests in flight (admitted but not yet
    /// replied to) before new submissions are shed with `Overloaded`.
    /// Parked lock waiters do not count — they hold no worker and return
    /// their slot until the grant arrives.
    pub inflight_budget: usize,
    /// Per-worker run-queue depth before submissions routed to that
    /// worker are shed with `Overloaded`.
    pub queue_depth_max: usize,
    /// Bound on each client's response mailbox. A synchronous client has
    /// at most one outstanding reply, so this only matters for pipelined
    /// submitters.
    pub mailbox_depth: usize,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            workers: 1,
            inflight_budget: 1024,
            queue_depth_max: 4096,
            mailbox_depth: 16,
        }
    }
}

/// A typed request from a client to the server — the unit the run queues
/// carry. `Clone` so a shed request can be resubmitted verbatim.
#[derive(Clone)]
pub enum Request {
    /// Begin a transaction → [`Response::Began`].
    Begin,
    /// Acquire a lock on a page or record resource (the control-message
    /// lock path) → `Ok`. The wire verb carries the full [`Resource`], so
    /// record-granularity requests route and park like page ones.
    Lock { txn: TxnId, resource: Resource, mode: LockMode },
    /// Lock and fetch in one round trip (the page-fault path) →
    /// [`Response::Page`].
    FetchLocked { txn: TxnId, pid: PageId, mode: LockMode },
    /// Allocate a fresh page → [`Response::Allocated`].
    Allocate { txn: TxnId },
    /// Declare `pid` logged-or-log-free this transaction → `Ok`.
    NoteLogged { txn: TxnId, pid: PageId },
    /// A shipped page of encoded log-record frames → `Ok`.
    LogBytes { txn: TxnId, bytes: Vec<u8> },
    /// A shipped dirty page (boxed: keep the queue entries small) → `Ok`.
    DirtyPage { txn: TxnId, pid: PageId, page: Box<Page> },
    /// Commit; the reply arrives from the committer after the force → `Ok`.
    Commit { txn: TxnId },
    /// Abort → `Ok`.
    Abort { txn: TxnId },
}

/// A typed reply, delivered through the client's mailbox.
pub enum Response {
    /// Unit success.
    Ok,
    Began(TxnId),
    Page(Box<Page>),
    Allocated(PageId),
    /// Commit acknowledgement, carrying the server's log-pressure signal
    /// (the 4-byte piggyback adaptive clients feed their cost model).
    Committed(qs_wal::LogPressure),
    /// Admission control shed the request; resubmit after backoff. Never
    /// delivered for an *admitted* request.
    Overloaded,
    Err(QsError),
}

impl Response {
    /// Variant name, for protocol-mismatch error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Ok => "ok",
            Response::Began(_) => "began",
            Response::Page(_) => "page",
            Response::Allocated(_) => "allocated",
            Response::Committed(_) => "committed",
            Response::Overloaded => "overloaded",
            Response::Err(_) => "err",
        }
    }
}

/// Route `key` with the same Fibonacci multiplier `shard_index` uses.
fn route_u64(key: u64, n: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n
}

/// Pick the worker for a request: by page where the request names one (all
/// traffic for a page serializes through one run queue), by transaction
/// otherwise, by client for `Begin`.
fn route(req: &Request, client: ClientId, n: usize) -> usize {
    match req {
        Request::Lock { resource, .. } => shard_index(resource.page(), n),
        Request::FetchLocked { pid, .. }
        | Request::NoteLogged { pid, .. }
        | Request::DirtyPage { pid, .. } => shard_index(*pid, n),
        Request::Begin => route_u64(client.0 as u64, n),
        Request::Allocate { txn }
        | Request::LogBytes { txn, .. }
        | Request::Commit { txn }
        | Request::Abort { txn } => route_u64(txn.0, n),
    }
}

enum Job {
    /// A freshly admitted request (`enq` set when tracing, for queue-wait
    /// histograms).
    Req {
        client: ClientId,
        req: Request,
        enq: Option<Instant>,
    },
    /// A parked lock request whose grant arrived; skips admission.
    Resume {
        client: ClientId,
        req: Request,
    },
    Stop,
}

struct CommitJob {
    client: ClientId,
    txn: TxnId,
    lsn: Lsn,
}

struct WorkerHandle {
    tx: Sender<Job>,
    depth: Arc<AtomicUsize>,
}

struct Mailbox {
    tx: SyncSender<Response>,
    depth: Arc<AtomicUsize>,
}

struct Parked {
    client: ClientId,
    req: Request,
}

#[derive(Default)]
struct Counters {
    admitted: AtomicU64,
    shed_budget: AtomicU64,
    shed_queue: AtomicU64,
    lock_parks: AtomicU64,
    lock_resumes: AtomicU64,
    commit_calls: AtomicU64,
    commit_forces: AtomicU64,
}

/// Runtime counters, snapshotted by [`Reactor::stats`]. These live outside
/// the [`Meter`] (whose field set is pinned by the committed figures) —
/// they describe the runtime, not the storage system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeStats {
    pub admitted: u64,
    pub shed_budget: u64,
    pub shed_queue: u64,
    pub lock_parks: u64,
    pub lock_resumes: u64,
    pub commit_calls: u64,
    pub commit_forces: u64,
}

struct Shared {
    server: Arc<Server>,
    cfg: RuntimeConfig,
    workers: Vec<WorkerHandle>,
    /// `None` once the reactor is stopping; closing the channel is what
    /// terminates the committer thread.
    commit_tx: Mutex<Option<Sender<CommitJob>>>,
    mailboxes: Mutex<HashMap<u16, Mailbox>>,
    /// Lock requests waiting for a grant, keyed by transaction (locks are
    /// requested one at a time per transaction). Entries are inserted
    /// *before* `lock_resource_async` so a grant racing the park cannot be
    /// lost.
    parked: Mutex<HashMap<TxnId, Parked>>,
    inflight: AtomicUsize,
    stats: Counters,
}

impl Shared {
    /// Admission control + enqueue. Every submission gets exactly one
    /// reply: `Overloaded` when shed, the request's reply otherwise.
    fn submit(&self, client: ClientId, req: Request) {
        let inflight = self.inflight.load(Ordering::Acquire);
        if inflight >= self.cfg.inflight_budget {
            self.stats.shed_budget.fetch_add(1, Ordering::Relaxed);
            self.server.tracer().event(TraceCat::Shed, "budget", client.0 as u64, inflight as u64);
            self.post(client, Response::Overloaded);
            return;
        }
        let w = route(&req, client, self.workers.len());
        let depth = self.workers[w].depth.load(Ordering::Acquire);
        if depth >= self.cfg.queue_depth_max {
            self.stats.shed_queue.fetch_add(1, Ordering::Relaxed);
            self.server.tracer().event(TraceCat::Shed, "queue", client.0 as u64, depth as u64);
            self.post(client, Response::Overloaded);
            return;
        }
        self.inflight.fetch_add(1, Ordering::AcqRel);
        self.stats.admitted.fetch_add(1, Ordering::Relaxed);
        let d = self.workers[w].depth.fetch_add(1, Ordering::AcqRel) + 1;
        let tracer = self.server.tracer();
        let enq = if tracer.is_enabled() {
            tracer.record("runtime_queue_depth", d as u64);
            tracer.event(TraceCat::Queue, "enqueue", w as u64, d as u64);
            Some(Instant::now())
        } else {
            None
        };
        if self.workers[w].tx.send(Job::Req { client, req, enq }).is_err() {
            self.workers[w].depth.fetch_sub(1, Ordering::AcqRel);
            self.finish(client, Response::Err(stopped()));
        }
    }

    /// Deliver the reply for an admitted request and release its slot.
    fn finish(&self, client: ClientId, resp: Response) {
        self.post(client, resp);
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Deliver a reply without touching the admission budget (sheds, and
    /// parked requests whose slot was already released).
    fn post(&self, client: ClientId, resp: Response) {
        let (tx, depth) = {
            let boxes = self.mailboxes.lock();
            match boxes.get(&client.0) {
                Some(mb) => (mb.tx.clone(), Arc::clone(&mb.depth)),
                None => return, // client disconnected; drop the reply
            }
        };
        let d = depth.fetch_add(1, Ordering::AcqRel) + 1;
        let tracer = self.server.tracer();
        if tracer.is_enabled() {
            tracer.record("runtime_mailbox_depth", d as u64);
        }
        if tx.send(resp).is_err() {
            depth.fetch_sub(1, Ordering::AcqRel);
        }
    }

    fn unit(&self, client: ClientId, r: QsResult<()>) {
        match r {
            Ok(()) => self.finish(client, Response::Ok),
            Err(e) => self.finish(client, Response::Err(e)),
        }
    }

    /// Take (or re-take, on resume) the lock for a `Lock`/`FetchLocked`
    /// request. Returns `false` when the request parked — the caller must
    /// not reply; the grant callback re-enqueues it. Failures are replied
    /// to here.
    fn acquire(
        &self,
        client: ClientId,
        req: &Request,
        txn: TxnId,
        res: Resource,
        mode: LockMode,
        resumed: bool,
    ) -> bool {
        if resumed && matches!(res, Resource::Page(_)) {
            // The lock manager granted (and recorded) the page lock during
            // its promotion walk; only the metering is left.
            self.server.note_async_lock_granted(txn, res);
            return true;
        }
        // Park-before-request: the grant callback looks this entry up, so
        // it must be visible before the waiter can possibly be queued.
        self.parked.lock().insert(txn, Parked { client, req: req.clone() });
        let outcome = if resumed {
            // Record resource: the promotion walk may have granted only the
            // page *intention* step. Re-run the whole two-step request —
            // the completed step re-grants re-entrantly — unmetered here;
            // the grant is metered once below.
            self.server.locks().lock_resource_async(txn, res, mode)
        } else {
            self.server.lock_resource_async(txn, res, mode)
        };
        match outcome {
            Ok(AsyncLockOutcome::Granted) => {
                self.parked.lock().remove(&txn);
                if resumed {
                    self.server.note_async_lock_granted(txn, res);
                }
                true
            }
            Ok(AsyncLockOutcome::Queued) => {
                // Give the admission slot back while parked: a full
                // budget of waiters must never be able to shed the very
                // commit that would release them.
                self.stats.lock_parks.fetch_add(1, Ordering::Relaxed);
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                false
            }
            Err(e) => {
                self.parked.lock().remove(&txn);
                self.finish(client, Response::Err(e));
                false
            }
        }
    }

    fn process(&self, client: ClientId, req: Request, resumed: bool) {
        match req {
            Request::Begin => self.finish(client, Response::Began(self.server.begin())),
            Request::Lock { txn, resource, mode } => {
                let r = Request::Lock { txn, resource, mode };
                if self.acquire(client, &r, txn, resource, mode, resumed) {
                    self.finish(client, Response::Ok);
                }
            }
            Request::FetchLocked { txn, pid, mode } => {
                let r = Request::FetchLocked { txn, pid, mode };
                if self.acquire(client, &r, txn, Resource::Page(pid), mode, resumed) {
                    match self.server.fetch_page(txn, pid) {
                        Ok(p) => self.finish(client, Response::Page(Box::new(p))),
                        Err(e) => self.finish(client, Response::Err(e)),
                    }
                }
            }
            Request::Allocate { txn } => match self.server.allocate_page(txn) {
                Ok(pid) => self.finish(client, Response::Allocated(pid)),
                Err(e) => self.finish(client, Response::Err(e)),
            },
            Request::NoteLogged { txn, pid } => {
                self.unit(client, self.server.note_page_logged(txn, pid));
            }
            Request::LogBytes { txn, bytes } => {
                self.unit(client, self.server.receive_log_bytes(txn, &bytes));
            }
            Request::DirtyPage { txn, pid, page } => {
                self.unit(client, self.server.receive_dirty_page(txn, pid, *page));
            }
            Request::Abort { txn } => self.unit(client, self.server.abort(txn)),
            Request::Commit { txn } => match self.server.commit_append(txn) {
                Ok(lsn) => {
                    let tx = self.commit_tx.lock().clone();
                    let sent = match tx {
                        Some(tx) => tx.send(CommitJob { client, txn, lsn }).is_ok(),
                        None => false,
                    };
                    if !sent {
                        self.finish(client, Response::Err(stopped()));
                    }
                }
                Err(e) => self.finish(client, Response::Err(e)),
            },
        }
    }
}

fn stopped() -> QsError {
    QsError::Protocol { detail: "runtime stopped".into() }
}

fn worker_loop(shared: Arc<Shared>, idx: usize, rx: Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Req { client, req, enq } => {
                shared.workers[idx].depth.fetch_sub(1, Ordering::AcqRel);
                if let Some(t) = enq {
                    shared
                        .server
                        .tracer()
                        .record("runtime_queue_wait_ns", t.elapsed().as_nanos() as u64);
                }
                shared.process(client, req, false);
            }
            Job::Resume { client, req } => shared.process(client, req, true),
            Job::Stop => {
                // Fail whatever is still queued behind the stop marker so
                // no client blocks on a reply that will never come.
                while let Ok(job) = rx.try_recv() {
                    match job {
                        Job::Req { client, .. } => {
                            shared.workers[idx].depth.fetch_sub(1, Ordering::AcqRel);
                            shared.finish(client, Response::Err(stopped()));
                        }
                        Job::Resume { client, .. } => {
                            shared.finish(client, Response::Err(stopped()));
                        }
                        Job::Stop => {}
                    }
                }
                break;
            }
        }
    }
}

fn committer_loop(shared: Arc<Shared>, rx: Receiver<CommitJob>) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while let Ok(j) = rx.try_recv() {
            batch.push(j);
        }
        shared.stats.commit_calls.fetch_add(batch.len() as u64, Ordering::Relaxed);
        shared.stats.commit_forces.fetch_add(1, Ordering::Relaxed);
        shared.server.tracer().record("reactor_commit_batch", batch.len() as u64);
        let max_lsn = batch.iter().map(|j| j.lsn).max().expect("non-empty batch");
        match shared.server.commit_force_batch(max_lsn, batch.len()) {
            Ok(()) => {
                for j in batch {
                    match shared.server.commit_finish(j.txn) {
                        Ok(pressure) => shared.finish(j.client, Response::Committed(pressure)),
                        Err(e) => shared.finish(j.client, Response::Err(e)),
                    }
                }
                // Maintenance is the committer's job now, once per batch —
                // never billed to (or blocking) a victim client's commit.
                // With the flusher enabled this only enqueues a wakeup.
                // There is no client to surface a failure to; trace it.
                if shared.server.maybe_maintain().is_err() {
                    shared.server.tracer().event(
                        qs_trace::TraceCat::Checkpoint,
                        "committer_maintain_error",
                        0,
                        0,
                    );
                }
            }
            Err(e) => {
                let msg = format!("commit force failed: {e}");
                for j in batch {
                    shared
                        .finish(j.client, Response::Err(QsError::Protocol { detail: msg.clone() }));
                }
            }
        }
    }
}

/// The lock manager's grant sink: turns a parked request's grant into a
/// `Resume` job on the owning worker's queue (re-taking an admission
/// slot), and a queue-time deadlock denial into an error reply.
struct GrantHook {
    shared: Weak<Shared>,
}

impl LockEvents for GrantHook {
    fn lock_done(&self, txn: TxnId, _res: Resource, result: QsResult<()>) {
        let Some(shared) = self.shared.upgrade() else { return };
        let Some(p) = shared.parked.lock().remove(&txn) else { return };
        match result {
            Ok(()) => {
                shared.stats.lock_resumes.fetch_add(1, Ordering::Relaxed);
                shared.inflight.fetch_add(1, Ordering::AcqRel);
                let w = route(&p.req, p.client, shared.workers.len());
                if shared.workers[w].tx.send(Job::Resume { client: p.client, req: p.req }).is_err()
                {
                    shared.finish(p.client, Response::Err(stopped()));
                }
            }
            // The slot was released when the request parked, so this is a
            // post (not a finish).
            Err(e) => shared.post(p.client, Response::Err(e)),
        }
    }
}

/// The running event-driven runtime: worker threads, the committer, and
/// the shared routing/admission state. Dropping it stops everything.
pub struct Reactor {
    shared: Arc<Shared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Reactor {
    /// Spawn workers and the committer per `server.config().runtime` and
    /// install the lock-grant sink. The server keeps working for
    /// direct-call clients at the same time — the reactor is a front end,
    /// not a replacement.
    pub fn start(server: &Arc<Server>) -> Reactor {
        let mut cfg = server.config().runtime;
        cfg.workers = cfg.workers.max(1);
        let mut handles = Vec::with_capacity(cfg.workers);
        let mut rxs = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let (tx, rx) = channel();
            handles.push(WorkerHandle { tx, depth: Arc::new(AtomicUsize::new(0)) });
            rxs.push(rx);
        }
        let (commit_tx, commit_rx) = channel();
        let shared = Arc::new(Shared {
            server: Arc::clone(server),
            cfg,
            workers: handles,
            commit_tx: Mutex::new(Some(commit_tx)),
            mailboxes: Mutex::new(HashMap::new()),
            parked: Mutex::new(HashMap::new()),
            inflight: AtomicUsize::new(0),
            stats: Counters::default(),
        });
        server.locks().set_events(Some(Arc::new(GrantHook { shared: Arc::downgrade(&shared) })));
        // No-op unless `cfg.flusher.enabled`: maintenance then runs on the
        // background flusher thread instead of inline in the committer.
        server.start_flusher();
        let mut threads = Vec::with_capacity(cfg.workers + 1);
        for (i, rx) in rxs.into_iter().enumerate() {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("qs-reactor-{i}"))
                    .spawn(move || worker_loop(sh, i, rx))
                    .expect("spawn reactor worker"),
            );
        }
        let sh = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("qs-committer".into())
                .spawn(move || committer_loop(sh, commit_rx))
                .expect("spawn committer"),
        );
        Reactor { shared, threads: Mutex::new(threads) }
    }

    pub fn server(&self) -> &Arc<Server> {
        &self.shared.server
    }

    /// Open a mailbox for client `id` and hand back its port. One port per
    /// client id; a second connect for the same id replaces the mailbox.
    pub fn connect(&self, id: ClientId) -> ClientPort {
        let depth = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = sync_channel(self.shared.cfg.mailbox_depth.max(2));
        self.shared.mailboxes.lock().insert(id.0, Mailbox { tx, depth: Arc::clone(&depth) });
        ClientPort { shared: Arc::clone(&self.shared), id, rx, depth, sheds: Cell::new(0) }
    }

    /// Lock requests currently parked awaiting a grant.
    pub fn parked_waiters(&self) -> usize {
        self.shared.parked.lock().len()
    }

    pub fn stats(&self) -> RuntimeStats {
        let c = &self.shared.stats;
        RuntimeStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            shed_budget: c.shed_budget.load(Ordering::Relaxed),
            shed_queue: c.shed_queue.load(Ordering::Relaxed),
            lock_parks: c.lock_parks.load(Ordering::Relaxed),
            lock_resumes: c.lock_resumes.load(Ordering::Relaxed),
            commit_calls: c.commit_calls.load(Ordering::Relaxed),
            commit_forces: c.commit_forces.load(Ordering::Relaxed),
        }
    }

    /// Stop the runtime: uninstall the grant sink, drain and join every
    /// thread, and fail any still-parked request. Call when the attached
    /// clients are quiescent; in-flight requests get `Err("runtime
    /// stopped")` replies, never silence.
    pub fn stop(&self) {
        self.shared.server.locks().set_events(None);
        for w in &self.shared.workers {
            let _ = w.tx.send(Job::Stop);
        }
        *self.shared.commit_tx.lock() = None;
        let mut threads = self.threads.lock();
        for t in threads.drain(..) {
            let _ = t.join();
        }
        let parked: Vec<Parked> = self.shared.parked.lock().drain().map(|(_, p)| p).collect();
        for p in parked {
            // Their slots were released at park time: post, not finish.
            self.shared.post(p.client, Response::Err(stopped()));
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A client's handle on the reactor: submit requests, receive replies
/// from a bounded private mailbox. Cheap — a thousand ports is a thousand
/// channels, not a thousand threads. Not `Sync`: one port serves one
/// simulated client.
pub struct ClientPort {
    shared: Arc<Shared>,
    pub id: ClientId,
    rx: Receiver<Response>,
    depth: Arc<AtomicUsize>,
    sheds: Cell<u64>,
}

impl ClientPort {
    /// Fire-and-forget submit; the reply (possibly `Overloaded`) arrives
    /// in the mailbox.
    pub fn submit(&self, req: Request) {
        self.shared.submit(self.id, req);
    }

    /// Non-blocking mailbox poll.
    pub fn try_recv(&self) -> Option<Response> {
        match self.rx.try_recv() {
            Ok(r) => {
                self.depth.fetch_sub(1, Ordering::AcqRel);
                Some(r)
            }
            Err(_) => None,
        }
    }

    /// Blocking mailbox read.
    pub fn recv(&self) -> Response {
        match self.rx.recv() {
            Ok(r) => {
                self.depth.fetch_sub(1, Ordering::AcqRel);
                r
            }
            Err(_) => Response::Err(stopped()),
        }
    }

    /// Synchronous round trip with shed-retry: resubmits on `Overloaded`
    /// after a short backoff (spin first, then sleep — capped at ~2 ms so
    /// a shed client keeps probing rather than stampeding).
    pub fn call(&self, req: Request) -> Response {
        let mut attempt = 0u32;
        loop {
            self.submit(req.clone());
            match self.recv() {
                Response::Overloaded => {
                    self.sheds.set(self.sheds.get() + 1);
                    if attempt < 4 {
                        std::thread::yield_now();
                    } else {
                        let us = 50u64.saturating_mul(1 << (attempt - 4).min(6));
                        std::thread::sleep(std::time::Duration::from_micros(us.min(2000)));
                    }
                    attempt += 1;
                }
                r => return r,
            }
        }
    }

    /// `Overloaded` replies this port has absorbed in [`ClientPort::call`].
    pub fn sheds_seen(&self) -> u64 {
        self.sheds.get()
    }
}

impl Drop for ClientPort {
    fn drop(&mut self) {
        self.shared.mailboxes.lock().remove(&self.id.0);
    }
}

/// Convenience: a [`ClientConn`] whose wire is this reactor (the
/// page-shipping client protocol over messages instead of direct calls).
pub fn connect_client(
    reactor: &Reactor,
    id: ClientId,
    pool_pages: usize,
    meter: Arc<Meter>,
) -> ClientConn {
    ClientConn::via_reactor(id, reactor, pool_pages, meter)
}
