//! The ESM client: the workstation side of the page-shipping protocol.
//!
//! A [`ClientConn`] owns a client buffer pool (pages cached across
//! transaction boundaries, §3.1), buffers outgoing log records and ships
//! them *a page at a time* ("Log records are collected and sent from a
//! client to the server a page-at-a-time"), and enforces the ordering rule
//! that a page's log records always precede the page itself on the wire.
//!
//! The QuickStore runtime sits on top: it decides *what* log records to
//! generate (diffing, sub-page copying, nothing at all under WPL) and calls
//! down here to move bytes. Eviction from the client pool is surfaced to
//! the caller ([`ClientConn::ensure_room`]) because the recovery scheme
//! must act *before* a dirty page can leave client memory.

use crate::buffer::{BufferPool, Evicted};
use crate::lock::{LockMode, Resource};
use crate::net;
use crate::runtime::{ClientPort, Reactor, Request, Response};
use crate::server::{RecoveryFlavor, Server};
use qs_sim::Meter;
use qs_storage::Page;
use qs_trace::{TraceCat, Tracer};
use qs_types::{ClientId, Lsn, PageId, QsError, QsResult, TxnId, PAGE_SIZE};
use qs_wal::{record, LogPressure, LogRecord, RecordWriter, SchemeCode};
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// How a [`ClientConn`] reaches the server: direct method calls on the
/// caller's thread (the seed behavior, byte-identical figures), or typed
/// messages through a [`Reactor`]'s run queues. The transport carries the
/// same operations in the same order, so the client-side network metering
/// below is identical in both modes.
enum Wire {
    Direct,
    Reactor(ClientPort),
}

/// One client workstation's connection to the server.
pub struct ClientConn {
    pub id: ClientId,
    server: Arc<Server>,
    pool: BufferPool,
    meter: Arc<Meter>,
    txn: Option<TxnId>,
    /// Outgoing log buffer (ESM/REDO flavors): already-encoded record
    /// frames, built in place by the QuickStore commit path and shipped
    /// page-at-a-time. Reused across transactions, so steady-state
    /// commits never allocate here.
    log_buf: Vec<u8>,
    /// Pages this transaction has generated (or declared) log records for.
    pages_logged: HashSet<PageId>,
    /// Adaptive flavor: the scheme this transaction elected (its
    /// `TxnScheme` record has been queued). `None` otherwise.
    scheme: Option<SchemeCode>,
    /// Most recent server log-pressure signal, piggybacked on the last
    /// commit acknowledgement. Starts at zero pressure.
    last_pressure: LogPressure,
    /// Shared with the server: a traced server's clients trace too.
    tracer: Arc<Tracer>,
    /// Transport to the server (direct calls or reactor messages).
    wire: Wire,
}

/// Unwrap an unexpected reply: a typed error passes through, anything
/// else is a protocol violation.
fn reply_err(op: &str, resp: Response) -> QsError {
    match resp {
        Response::Err(e) => e,
        other => QsError::Protocol { detail: format!("unexpected {} reply to {op}", other.kind()) },
    }
}

fn expect_unit(op: &str, resp: Response) -> QsResult<()> {
    match resp {
        Response::Ok => Ok(()),
        other => Err(reply_err(op, other)),
    }
}

impl ClientConn {
    /// `pool_pages`: the client buffer pool size (e.g. 8 MB → 1024 pages).
    pub fn new(id: ClientId, server: Arc<Server>, pool_pages: usize, meter: Arc<Meter>) -> Self {
        let tracer = Arc::clone(server.tracer());
        ClientConn {
            id,
            server,
            pool: BufferPool::new(pool_pages),
            meter,
            txn: None,
            log_buf: Vec::new(),
            pages_logged: HashSet::new(),
            scheme: None,
            last_pressure: LogPressure::default(),
            tracer,
            wire: Wire::Direct,
        }
    }

    /// Like [`ClientConn::new`], but every server operation travels as a
    /// typed message through the reactor's run queues instead of a direct
    /// call on this thread.
    pub fn via_reactor(
        id: ClientId,
        reactor: &Reactor,
        pool_pages: usize,
        meter: Arc<Meter>,
    ) -> Self {
        let server = Arc::clone(reactor.server());
        let tracer = Arc::clone(server.tracer());
        ClientConn {
            id,
            server,
            pool: BufferPool::new(pool_pages),
            meter,
            txn: None,
            log_buf: Vec::new(),
            pages_logged: HashSet::new(),
            scheme: None,
            last_pressure: LogPressure::default(),
            tracer,
            wire: Wire::Reactor(reactor.connect(id)),
        }
    }

    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    pub fn flavor(&self) -> RecoveryFlavor {
        self.server.flavor()
    }

    pub fn meter(&self) -> &Arc<Meter> {
        &self.meter
    }

    /// The running transaction, if any.
    pub fn txn(&self) -> QsResult<TxnId> {
        self.txn.ok_or(QsError::Protocol { detail: "no transaction in progress".into() })
    }

    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Begin a transaction (one control round trip).
    pub fn begin(&mut self) -> QsResult<TxnId> {
        if self.txn.is_some() {
            return Err(QsError::Protocol { detail: "transaction already in progress".into() });
        }
        net::control_round_trip(&self.meter);
        let t = match &self.wire {
            Wire::Direct => self.server.begin(),
            Wire::Reactor(port) => match port.call(Request::Begin) {
                Response::Began(t) => t,
                other => return Err(reply_err("begin", other)),
            },
        };
        self.txn = Some(t);
        Ok(t)
    }

    // -- client buffer pool ------------------------------------------------

    pub fn cached(&self, pid: PageId) -> bool {
        self.pool.contains(pid)
    }

    pub fn page(&mut self, pid: PageId) -> Option<&Page> {
        self.pool.get(pid)
    }

    /// Mutable access to a cached page — this is the memory an application
    /// frame is mapped onto; QuickStore writes objects through it.
    pub fn page_mut(&mut self, pid: PageId) -> Option<&mut Page> {
        self.pool.get_mut(pid)
    }

    pub fn peek(&self, pid: PageId) -> Option<&Page> {
        self.pool.peek(pid)
    }

    pub fn mark_dirty(&mut self, pid: PageId) {
        self.pool.mark_dirty(pid);
    }

    pub fn is_dirty(&self, pid: PageId) -> bool {
        self.pool.is_dirty(pid)
    }

    pub fn dirty_pages(&self) -> Vec<PageId> {
        self.pool.dirty_pages()
    }

    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    pub fn pool_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Make room for one incoming page. Returns the evicted frame if an
    /// eviction was necessary: the caller (QuickStore) must unmap its frame
    /// and, if it is dirty, run the recovery scheme's eviction path
    /// (generate+ship log records, ship the page) *before* fetching more.
    pub fn ensure_room(&mut self) -> Option<Evicted> {
        if self.pool.len() < self.pool.capacity() {
            return None;
        }
        // Evict via a dummy probe: BufferPool evicts on insert, so reuse its
        // LRU logic by asking it directly.
        let ev = self.pool_evict_lru();
        if ev.is_some() {
            self.meter.client_evictions.fetch_add(1, Ordering::Relaxed);
        }
        ev
    }

    fn pool_evict_lru(&mut self) -> Option<Evicted> {
        let victim = self.pool.lru_victim()?;
        self.pool.remove(victim)
    }

    /// Fetch a page from the server into the cache (the caller must have
    /// called [`ClientConn::ensure_room`] until it returned `None`).
    /// Acquires the page lock at the server as part of the request.
    pub fn fetch_page(&mut self, pid: PageId, mode: LockMode) -> QsResult<()> {
        let txn = self.txn()?;
        assert!(
            self.pool.len() < self.pool.capacity(),
            "fetch_page without room; call ensure_room first"
        );
        let page = match &self.wire {
            Wire::Direct => {
                self.server.lock_page(txn, pid, mode)?;
                self.server.fetch_page(txn, pid)?
            }
            // One message does lock + fetch: the page-fault path is a
            // single round trip in both modes.
            Wire::Reactor(port) => match port.call(Request::FetchLocked { txn, pid, mode }) {
                Response::Page(p) => *p,
                other => return Err(reply_err("fetch", other)),
            },
        };
        net::page_fetch(&self.meter);
        self.meter.page_requests.fetch_add(1, Ordering::Relaxed);
        let ev = self.pool.insert(pid, page, false)?;
        debug_assert!(ev.is_none(), "room was ensured");
        Ok(())
    }

    /// Acquire a shared lock on a page that is already cached (the
    /// first-touch-per-transaction path: pages are cached across
    /// transactions, locks are not — §3.1). One control round trip.
    pub fn s_lock(&mut self, pid: PageId) -> QsResult<()> {
        self.lock_remote(Resource::Page(pid), LockMode::S)
    }

    /// Upgrade to an exclusive lock (write-fault path; one control round
    /// trip to the server's lock manager).
    pub fn x_lock(&mut self, pid: PageId) -> QsResult<()> {
        self.lock_remote(Resource::Page(pid), LockMode::X)
    }

    /// Record-granularity locks: lock one slot of a page instead of the
    /// whole page. The server takes the page *intention* mode and then the
    /// record lock, so two clients on distinct slots of one hot page no
    /// longer serialize. Same single control round trip as a page lock.
    pub fn s_lock_record(&mut self, pid: PageId, slot: u16) -> QsResult<()> {
        self.lock_remote(Resource::Record(pid, slot), LockMode::S)
    }

    /// Exclusive record lock (see [`ClientConn::s_lock_record`]).
    pub fn x_lock_record(&mut self, pid: PageId, slot: u16) -> QsResult<()> {
        self.lock_remote(Resource::Record(pid, slot), LockMode::X)
    }

    fn lock_remote(&mut self, resource: Resource, mode: LockMode) -> QsResult<()> {
        let txn = self.txn()?;
        net::control_round_trip(&self.meter);
        match &self.wire {
            Wire::Direct => self.server.lock_resource(txn, resource, mode),
            Wire::Reactor(port) => {
                expect_unit("lock", port.call(Request::Lock { txn, resource, mode }))
            }
        }
    }

    /// Allocate a fresh page inside the current transaction (logged at the
    /// server). The new page is not cached here yet; install it with
    /// [`ClientConn::install_new_page`].
    pub fn allocate_page(&mut self) -> QsResult<PageId> {
        let txn = self.txn()?;
        net::control_round_trip(&self.meter);
        match &self.wire {
            Wire::Direct => self.server.allocate_page(txn),
            Wire::Reactor(port) => match port.call(Request::Allocate { txn }) {
                Response::Allocated(pid) => Ok(pid),
                other => Err(reply_err("allocate", other)),
            },
        }
    }

    /// Install a locally created page image into the cache as dirty.
    pub fn install_new_page(&mut self, pid: PageId, page: Page) -> QsResult<()> {
        assert!(
            self.pool.len() < self.pool.capacity(),
            "install_new_page without room; call ensure_room first"
        );
        let ev = self.pool.insert(pid, page, true)?;
        debug_assert!(ev.is_none());
        Ok(())
    }

    // -- log-record shipping (ESM / REDO flavors) ---------------------------

    /// Queue a batch of already-encoded log records describing updates to
    /// `pid` (the allocation-free path: the QuickStore commit path builds
    /// `batch` with `qs_wal::RecordWriter` in a reused scratch buffer).
    /// Ships full pages of records as the buffer fills.
    pub fn add_encoded_records(&mut self, pid: PageId, batch: &[u8]) -> QsResult<()> {
        let txn = self.txn()?;
        if self.flavor() == RecoveryFlavor::Wpl {
            return Err(QsError::Protocol { detail: "WPL generates no client log records".into() });
        }
        self.pages_logged.insert(pid);
        self.note_logged_remote(txn, pid)?;
        let mut at = 0usize;
        while at < batch.len() {
            let len = record::frame_len(&batch[at..])?;
            let frame = &batch[at..at + len];
            self.meter.log_records_generated.fetch_add(1, Ordering::Relaxed);
            if matches!(record::frame_tag(frame), 1 | 8) {
                self.meter
                    .log_image_bytes
                    .fetch_add(record::frame_update_image_bytes(frame), Ordering::Relaxed);
            }
            self.log_buf.extend_from_slice(frame);
            if self.log_buf.len() >= PAGE_SIZE {
                self.ship_log_page(false)?;
            }
            at += len;
        }
        Ok(())
    }

    /// Queue log records describing updates to `pid` (struct-level
    /// convenience over [`ClientConn::add_encoded_records`]; tests and
    /// non-hot-path callers).
    pub fn add_log_records(&mut self, pid: PageId, records: Vec<LogRecord>) -> QsResult<()> {
        let mut enc = Vec::new();
        for r in &records {
            enc.extend_from_slice(&r.encode());
        }
        self.add_encoded_records(pid, &enc)
    }

    // -- adaptive scheme election -------------------------------------------

    /// Elect the logging scheme for the current transaction (adaptive
    /// flavor). Queues the `TxnScheme` record, which must precede every
    /// page-bearing record of the transaction, so election is only legal
    /// before any records have been generated or declared.
    pub fn elect_scheme(&mut self, scheme: SchemeCode) -> QsResult<()> {
        let txn = self.txn()?;
        if self.flavor() != RecoveryFlavor::Adaptive {
            return Err(QsError::Protocol {
                detail: "scheme election is only legal under the adaptive flavor".into(),
            });
        }
        if self.scheme.is_some() {
            return Err(QsError::Protocol {
                detail: "transaction already elected a scheme".into(),
            });
        }
        if !self.pages_logged.is_empty() || !self.log_buf.is_empty() {
            return Err(QsError::Protocol {
                detail: "scheme election must precede the transaction's log records".into(),
            });
        }
        self.scheme = Some(scheme);
        // The TxnScheme record names no page: queue it directly (the server
        // rechains `prev` on receipt, as it does for every client record).
        RecordWriter::new(&mut self.log_buf).scheme_mark(txn, Lsn::NULL, scheme);
        self.meter.log_records_generated.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The scheme the running transaction elected, if any.
    pub fn elected_scheme(&self) -> Option<SchemeCode> {
        self.scheme
    }

    /// Whether the running transaction elected a *logical* (deferred-apply)
    /// scheme; such transactions never ship dirty pages.
    fn elected_logical(&self) -> bool {
        self.scheme.map(|s| s.is_logical()).unwrap_or(false)
    }

    /// The log-pressure signal piggybacked on the most recent commit
    /// acknowledgement (zero before the first commit).
    pub fn last_pressure(&self) -> LogPressure {
        self.last_pressure
    }

    fn ship_log_page(&mut self, partial: bool) -> QsResult<()> {
        let txn = self.txn()?;
        if self.log_buf.is_empty() {
            return Ok(());
        }
        // Take record frames summing to ≤ one page (at least one record),
        // then ship that prefix and drain it in one pass.
        let mut count = 0usize;
        let mut bytes = 0usize;
        while bytes < self.log_buf.len() {
            let rl = record::frame_len(&self.log_buf[bytes..])?;
            if count > 0 && bytes + rl > PAGE_SIZE {
                break;
            }
            bytes += rl;
            count += 1;
            if !partial && bytes >= PAGE_SIZE {
                break;
            }
        }
        if partial && bytes < PAGE_SIZE {
            net::partial_upload(&self.meter, bytes as u64);
        } else {
            net::page_upload(&self.meter);
        }
        self.meter.log_record_pages_shipped.fetch_add(1, Ordering::Relaxed);
        self.tracer.event(TraceCat::Ship, "log_page", txn.0, bytes as u64);
        match &self.wire {
            Wire::Direct => self.server.receive_log_bytes(txn, &self.log_buf[..bytes])?,
            Wire::Reactor(port) => expect_unit(
                "log_bytes",
                port.call(Request::LogBytes { txn, bytes: self.log_buf[..bytes].to_vec() }),
            )?,
        }
        self.log_buf.drain(..bytes);
        Ok(())
    }

    /// Flush every buffered log record (ships the final partial page).
    pub fn flush_log(&mut self) -> QsResult<()> {
        while self.log_buf.len() >= PAGE_SIZE {
            self.ship_log_page(false)?;
        }
        if !self.log_buf.is_empty() {
            self.ship_log_page(true)?;
        }
        Ok(())
    }

    /// Declare that `pid` needs no log records this transaction (the diff
    /// found nothing). Keeps the log-before-page rule satisfiable.
    pub fn note_page_logged(&mut self, pid: PageId) -> QsResult<()> {
        let txn = self.txn()?;
        self.pages_logged.insert(pid);
        self.note_logged_remote(txn, pid)
    }

    fn note_logged_remote(&self, txn: TxnId, pid: PageId) -> QsResult<()> {
        match &self.wire {
            Wire::Direct => self.server.note_page_logged(txn, pid),
            Wire::Reactor(port) => {
                expect_unit("note_logged", port.call(Request::NoteLogged { txn, pid }))
            }
        }
    }

    // -- dirty-page shipping -------------------------------------------------

    /// Ship a dirty page to the server (or drop it, under REDO). The page's
    /// log records must already have been generated and queued/shipped;
    /// this flushes the log buffer first so the ordering rule holds.
    pub fn ship_dirty_page(&mut self, pid: PageId, page: Page) -> QsResult<()> {
        let txn = self.txn()?;
        match self.flavor() {
            RecoveryFlavor::RedoAtServer | RecoveryFlavor::RedoLogical => {
                // Log records carry everything; the page itself stays home.
                self.flush_log()?;
                Ok(())
            }
            RecoveryFlavor::EsmAries => {
                self.flush_log()?;
                net::page_upload(&self.meter);
                self.meter.dirty_pages_shipped.fetch_add(1, Ordering::Relaxed);
                self.tracer.event(TraceCat::Ship, "dirty_page", txn.0, pid.0 as u64);
                self.ship_page_remote(txn, pid, page)
            }
            RecoveryFlavor::Wpl => {
                net::page_upload(&self.meter);
                self.meter.dirty_pages_shipped.fetch_add(1, Ordering::Relaxed);
                self.tracer.event(TraceCat::Ship, "dirty_page", txn.0, pid.0 as u64);
                self.ship_page_remote(txn, pid, page)
            }
            RecoveryFlavor::Adaptive => {
                // Physical elections follow the ESM protocol (log, then ship
                // the page); logical elections leave the page home — the
                // records carry everything and apply at commit.
                self.flush_log()?;
                if self.elected_logical() {
                    return Ok(());
                }
                net::page_upload(&self.meter);
                self.meter.dirty_pages_shipped.fetch_add(1, Ordering::Relaxed);
                self.tracer.event(TraceCat::Ship, "dirty_page", txn.0, pid.0 as u64);
                self.ship_page_remote(txn, pid, page)
            }
        }
    }

    fn ship_page_remote(&self, txn: TxnId, pid: PageId, page: Page) -> QsResult<()> {
        match &self.wire {
            Wire::Direct => self.server.receive_dirty_page(txn, pid, page),
            Wire::Reactor(port) => expect_unit(
                "dirty_page",
                port.call(Request::DirtyPage { txn, pid, page: Box::new(page) }),
            ),
        }
    }

    /// Ship a *still-cached* dirty page (commit path) and mark it clean in
    /// the client cache (it stays cached across the transaction boundary).
    pub fn ship_cached_dirty_page(&mut self, pid: PageId) -> QsResult<()> {
        let page = self
            .pool
            .peek(pid)
            .ok_or(QsError::Protocol { detail: format!("ship of uncached page {pid}") })?
            .clone();
        self.ship_dirty_page(pid, page)?;
        self.pool.clear_dirty(pid);
        Ok(())
    }

    /// Finish the commit protocol: flush remaining log records, commit at
    /// the server, release client transaction state. The caller has already
    /// generated log records and shipped dirty pages for every dirty page
    /// (QuickStore's `Store::commit` drives that loop).
    pub fn finish_commit(&mut self) -> QsResult<()> {
        let txn = self.txn()?;
        self.flush_log()?;
        let deferred =
            matches!(self.flavor(), RecoveryFlavor::RedoAtServer | RecoveryFlavor::RedoLogical)
                || (self.flavor() == RecoveryFlavor::Adaptive && self.elected_logical());
        debug_assert!(
            self.pool.dirty_pages().is_empty() || deferred,
            "dirty pages remain at commit"
        );
        net::control_round_trip(&self.meter);
        self.last_pressure = match &self.wire {
            Wire::Direct => self.server.commit(txn)?,
            Wire::Reactor(port) => match port.call(Request::Commit { txn }) {
                Response::Committed(p) => p,
                other => return Err(reply_err("commit", other)),
            },
        };
        if deferred {
            // Pages were never shipped; they are clean *locally* now in the
            // sense that recovery no longer depends on this copy.
            for pid in self.pool.dirty_pages() {
                self.pool.clear_dirty(pid);
            }
        }
        self.txn = None;
        self.pages_logged.clear();
        self.scheme = None;
        Ok(())
    }

    /// Abort: throw away buffered log records and locally dirty pages (their
    /// contents are uncommitted), then abort at the server.
    pub fn abort(&mut self) -> QsResult<()> {
        let txn = self.txn()?;
        self.log_buf.clear();
        for pid in self.pool.dirty_pages() {
            self.pool.remove(pid);
        }
        net::control_round_trip(&self.meter);
        match &self.wire {
            Wire::Direct => self.server.abort(txn)?,
            Wire::Reactor(port) => expect_unit("abort", port.call(Request::Abort { txn }))?,
        }
        self.txn = None;
        self.pages_logged.clear();
        self.scheme = None;
        Ok(())
    }

    /// Resize the client buffer pool between transactions (the adaptive
    /// memory-split extension). Returns evicted frames — all clean at a
    /// transaction boundary — so the caller can unmap them.
    pub fn set_pool_capacity(&mut self, pages: usize) -> QsResult<Vec<Evicted>> {
        if self.txn.is_some() {
            return Err(QsError::Protocol {
                detail: "pool resize only between transactions".into(),
            });
        }
        self.pool.set_capacity(pages)
    }

    /// Drop the whole client cache (tests: cold-cache runs).
    pub fn flush_cache(&mut self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;

    fn setup(flavor: RecoveryFlavor, pool_pages: usize) -> (ClientConn, Vec<PageId>) {
        let cfg = ServerConfig {
            flavor,
            pool_pages: 128,
            volume_pages: 512,
            log_bytes: 8 * 1024 * 1024,
            log_high_watermark: 0.6,
            log_low_watermark: 0.3,
            pool_shards: 1,
            group_commit: false,
            restart: crate::server::RestartConfig::default(),
            runtime: crate::runtime::RuntimeConfig::default(),
            flusher: crate::flusher::FlusherConfig::default(),
        };
        let meter = Meter::new();
        let server = Arc::new(Server::format(cfg, Arc::clone(&meter)).unwrap());
        let pids = server.bulk_allocate(16).unwrap();
        for &pid in &pids {
            let mut p = Page::new();
            p.insert(pid, &[0u8; 128]).unwrap();
            server.bulk_write(pid, &p).unwrap();
        }
        server.bulk_sync().unwrap();
        (ClientConn::new(ClientId(0), server, pool_pages, meter), pids)
    }

    #[test]
    fn fetch_and_cache() {
        let (mut c, pids) = setup(RecoveryFlavor::EsmAries, 8);
        c.begin().unwrap();
        assert!(c.ensure_room().is_none());
        c.fetch_page(pids[0], LockMode::S).unwrap();
        assert!(c.cached(pids[0]));
        assert_eq!(c.page(pids[0]).unwrap().object(pids[0], 0).unwrap(), &[0u8; 128][..]);
        assert_eq!(c.meter().snapshot().page_requests, 1);
    }

    #[test]
    fn eviction_surfaces_to_caller() {
        let (mut c, pids) = setup(RecoveryFlavor::EsmAries, 2);
        c.begin().unwrap();
        for &pid in &pids[0..2] {
            assert!(c.ensure_room().is_none());
            c.fetch_page(pid, LockMode::S).unwrap();
        }
        let ev = c.ensure_room().expect("pool full → eviction");
        assert_eq!(ev.page_id, pids[0], "LRU evicted");
        assert!(!ev.dirty);
        c.fetch_page(pids[2], LockMode::S).unwrap();
        assert_eq!(c.pool_len(), 2);
    }

    #[test]
    fn full_esm_update_commit_cycle() {
        let (mut c, pids) = setup(RecoveryFlavor::EsmAries, 8);
        let pid = pids[0];
        c.begin().unwrap();
        c.fetch_page(pid, LockMode::S).unwrap();
        c.x_lock(pid).unwrap();
        // Update in place (what a mapped frame write does).
        let before = c.page(pid).unwrap().object(pid, 0).unwrap().to_vec();
        c.page_mut(pid).unwrap().object_mut(pid, 0).unwrap().fill(7);
        c.mark_dirty(pid);
        // Generate one log record (PD would diff; here we hand-roll it).
        let txn = c.txn().unwrap();
        let rec = LogRecord::Update {
            txn,
            prev: qs_types::Lsn::NULL,
            page: pid,
            slot: 0,
            offset: 0,
            before,
            after: vec![7u8; 128],
        };
        c.add_log_records(pid, vec![rec]).unwrap();
        c.ship_cached_dirty_page(pid).unwrap();
        c.finish_commit().unwrap();

        // Crash the server; committed value must survive.
        let server = Arc::try_unwrap(c.server).ok().expect("sole owner").crash();
        let cfg = ServerConfig {
            flavor: RecoveryFlavor::EsmAries,
            pool_pages: 128,
            volume_pages: 512,
            log_bytes: 8 * 1024 * 1024,
            log_high_watermark: 0.6,
            log_low_watermark: 0.3,
            pool_shards: 1,
            group_commit: false,
            restart: crate::server::RestartConfig::default(),
            runtime: crate::runtime::RuntimeConfig::default(),
            flusher: crate::flusher::FlusherConfig::default(),
        };
        let s2 = Server::restart(server, cfg, Meter::new()).unwrap();
        let page = s2.read_page_for_test(pid).unwrap();
        assert_eq!(page.object(pid, 0).unwrap(), &[7u8; 128][..]);
    }

    #[test]
    fn redo_ships_no_pages() {
        let (mut c, pids) = setup(RecoveryFlavor::RedoAtServer, 8);
        let pid = pids[0];
        c.begin().unwrap();
        c.fetch_page(pid, LockMode::S).unwrap();
        c.x_lock(pid).unwrap();
        c.page_mut(pid).unwrap().object_mut(pid, 0).unwrap().fill(9);
        c.mark_dirty(pid);
        let txn = c.txn().unwrap();
        c.add_log_records(
            pid,
            vec![LogRecord::Update {
                txn,
                prev: qs_types::Lsn::NULL,
                page: pid,
                slot: 0,
                offset: 0,
                before: vec![0u8; 128],
                after: vec![9u8; 128],
            }],
        )
        .unwrap();
        c.ship_cached_dirty_page(pid).unwrap();
        c.finish_commit().unwrap();
        let s = c.meter().snapshot();
        assert_eq!(s.dirty_pages_shipped, 0, "REDO never ships pages");
        assert!(s.log_record_pages_shipped >= 1);
        // Server applied the redo to its own copy.
        let page = c.server().read_page_for_test(pid).unwrap();
        assert_eq!(page.object(pid, 0).unwrap(), &[9u8; 128][..]);
        assert_eq!(s.redo_applies, 1);
    }

    #[test]
    fn wpl_ships_pages_not_records() {
        let (mut c, pids) = setup(RecoveryFlavor::Wpl, 8);
        let pid = pids[0];
        c.begin().unwrap();
        c.fetch_page(pid, LockMode::S).unwrap();
        c.x_lock(pid).unwrap();
        c.page_mut(pid).unwrap().object_mut(pid, 0).unwrap().fill(3);
        c.mark_dirty(pid);
        c.ship_cached_dirty_page(pid).unwrap();
        c.finish_commit().unwrap();
        let s = c.meter().snapshot();
        assert_eq!(s.dirty_pages_shipped, 1);
        assert_eq!(s.log_records_generated, 0);
        assert!(c.server().wpl_table_len() >= 1);
    }

    #[test]
    fn log_records_batch_page_at_a_time() {
        let (mut c, pids) = setup(RecoveryFlavor::EsmAries, 8);
        let pid = pids[0];
        c.begin().unwrap();
        c.fetch_page(pid, LockMode::X).unwrap();
        let txn = c.txn().unwrap();
        // ~90 records × ~114 bytes ≈ 10 KB → at least one full page ships
        // before commit.
        let recs: Vec<LogRecord> = (0..90)
            .map(|i| LogRecord::Update {
                txn,
                prev: qs_types::Lsn::NULL,
                page: pid,
                slot: 0,
                offset: (i % 96) as u16,
                before: vec![0; 32],
                after: vec![1; 32],
            })
            .collect();
        c.add_log_records(pid, recs).unwrap();
        assert!(c.meter().snapshot().log_record_pages_shipped >= 1);
        c.note_page_logged(pid).unwrap();
        c.flush_log().unwrap();
        let shipped = c.meter().snapshot().log_record_pages_shipped;
        assert!(shipped >= 2, "partial page flushed too (got {shipped})");
        c.finish_commit().unwrap();
    }

    #[test]
    fn abort_drops_dirty_cache() {
        let (mut c, pids) = setup(RecoveryFlavor::EsmAries, 8);
        let pid = pids[0];
        c.begin().unwrap();
        c.fetch_page(pid, LockMode::X).unwrap();
        c.page_mut(pid).unwrap().object_mut(pid, 0).unwrap().fill(5);
        c.mark_dirty(pid);
        c.abort().unwrap();
        assert!(!c.cached(pid), "dirty page dropped on abort");
        // Re-fetch sees the old committed value.
        c.begin().unwrap();
        c.fetch_page(pid, LockMode::S).unwrap();
        assert_eq!(c.page(pid).unwrap().object(pid, 0).unwrap(), &[0u8; 128][..]);
    }

    #[test]
    fn begin_twice_rejected() {
        let (mut c, _) = setup(RecoveryFlavor::EsmAries, 4);
        c.begin().unwrap();
        assert!(c.begin().is_err());
    }
}
