//! ARIES-style restart for the ESM and REDO flavors ([Frank92]'s
//! client-server adaptation of [Mohan92]): analysis from the most recent
//! checkpoint, redo of all logged work, undo of loser transactions with
//! CLRs. Page-level locking only, exactly like ESM.
//!
//! Because the diffing schemes log *after-images* (not operation deltas),
//! redo is naturally idempotent; the pageLSN test merely avoids wasted
//! work. Whole-page records (ESM's treatment of newly created pages) redo
//! by image replacement.
//!
//! This module is the serial engine; `restart_par` runs the same
//! algorithm with streamed log reads and page-partitioned redo workers
//! when `RestartConfig::redo_workers > 1`, sharing [`Analysis`],
//! [`apply_redo`], and [`undo_and_finish`] so the two paths cannot drift.

use crate::server::Server;
use crate::txn::TxnTable;
use qs_storage::Page;
use qs_trace::PhaseStat;
use qs_types::{Lsn, PageId, QsResult, TxnId, PAGE_SIZE};
use qs_wal::{LogReadCache, LogRecord};
use std::collections::HashMap;

/// What analysis learned from the log.
#[derive(Debug, Default)]
pub(crate) struct Analysis {
    /// Loser candidates: txn → last LSN seen.
    pub(crate) att: HashMap<TxnId, Lsn>,
    /// Dirty-page table: page → recovery LSN.
    pub(crate) dpt: HashMap<PageId, Lsn>,
    /// Highest transaction id seen (id assignment resumes above it).
    pub(crate) max_txn: TxnId,
    /// Highest page id + 1 implied by allocation records.
    pub(crate) max_alloc: u64,
}

/// Apply one redoable record to a page image and stamp the pageLSN.
/// Shared by the serial redo loop and the parallel redo workers.
pub(crate) fn apply_redo(page: &mut Page, pid: PageId, rec: &LogRecord, lsn: Lsn) -> QsResult<()> {
    match rec {
        LogRecord::Update { slot, offset, after, .. }
        | LogRecord::Clr { slot, offset, after, .. }
        | LogRecord::UpdateLogical { slot, offset, after, .. } => {
            let obj = page.object_mut(pid, *slot)?;
            let off = *offset as usize;
            obj[off..off + after.len()].copy_from_slice(after);
        }
        LogRecord::WholePage { image, .. } => {
            *page = Page::from_bytes(image)?;
        }
        _ => {}
    }
    page.set_lsn(lsn);
    Ok(())
}

/// Run restart recovery. Called by [`Server::restart`] with a freshly
/// opened volume and log. Returns raw (unpriced) per-phase work counts
/// (analysis / redo / undo) for the restart report.
pub fn restart(server: &Server) -> QsResult<Vec<PhaseStat>> {
    let mut ph_analysis = PhaseStat { name: "analysis", ..PhaseStat::default() };
    let mut ph_redo = PhaseStat { name: "redo", ..PhaseStat::default() };
    let mut ph_undo = PhaseStat { name: "undo", ..PhaseStat::default() };

    let analysis = server.with_quiesced(|inner| -> QsResult<Analysis> {
        let ck = inner.log.checkpoint_lsn();
        let scan_from = if ck.is_null() { inner.log.start_lsn() } else { ck };
        ph_analysis.pages_read =
            inner.log.tail_lsn().0.saturating_sub(scan_from.0).div_ceil(PAGE_SIZE as u64);

        let mut a = Analysis { max_txn: TxnId::INVALID, ..Analysis::default() };

        // Seed from the checkpoint record (sharp checkpoints leave the DPT
        // empty, but the code stays general).
        if !ck.is_null() {
            // The anchor is a sharp `Checkpoint` (quiesced path) or the
            // `BeginCheckpoint` of a completed fuzzy pair — the header only
            // advances once the matching end record is durable, so an
            // orphaned begin is never the anchor.
            let body = match inner.log.read_record(ck)?.0 {
                LogRecord::Checkpoint { body } | LogRecord::BeginCheckpoint { body } => body,
                _ => {
                    return Err(qs_types::QsError::RecoveryFailed {
                        detail: format!("no checkpoint record at {ck}"),
                    });
                }
            };
            for (t, l) in body.active_txns {
                a.att.insert(t, l);
            }
            for (p, l) in body.dirty_pages {
                a.dpt.insert(p, l);
            }
            a.max_alloc = body.allocated_pages;
        }

        // Forward analysis pass.
        for item in inner.log.scan_forward(scan_from) {
            let (lsn, rec) = item?;
            ph_analysis.records += 1;
            let txn = rec.txn();
            if txn != TxnId::INVALID {
                if a.max_txn == TxnId::INVALID || txn.0 > a.max_txn.0 {
                    a.max_txn = txn;
                }
                match &rec {
                    LogRecord::Commit { .. } | LogRecord::Abort { .. } => {
                        a.att.remove(&txn);
                    }
                    _ => {
                        a.att.insert(txn, lsn);
                    }
                }
            }
            if let Some(page) = rec.page() {
                a.dpt.entry(page).or_insert(lsn);
                a.max_alloc = a.max_alloc.max(page.0 as u64 + 1);
            }
            if let LogRecord::PageAlloc { page, .. } = rec {
                a.max_alloc = a.max_alloc.max(page.0 as u64 + 1);
            }
        }
        inner.volume.ensure_allocated(a.max_alloc as usize)?;
        Ok(a)
    })?;

    // Redo pass: repeat history from the earliest recovery LSN.
    server.with_quiesced(|inner| -> QsResult<()> {
        let Some(&redo_from) = analysis.dpt.values().min() else {
            return Ok(());
        };
        // A fuzzy begin-checkpoint body can carry recLSNs that predate the
        // truncated log start (their pages were flushed by the drain, which
        // is what allowed truncation); those updates are on disk and the
        // pageLSN test would skip them anyway, so clamp the scan.
        let redo_from = redo_from.max(inner.log.start_lsn());
        ph_redo.pages_read =
            inner.log.tail_lsn().0.saturating_sub(redo_from.0).div_ceil(PAGE_SIZE as u64);
        let mut resident: HashMap<PageId, Page> = HashMap::new();
        for item in inner.log.scan_forward(redo_from) {
            let (lsn, rec) = item?;
            let Some(pid) = rec.page() else { continue };
            let Some(&rec_lsn) = analysis.dpt.get(&pid) else { continue };
            if lsn < rec_lsn {
                continue;
            }
            let page = match resident.entry(pid) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    ph_redo.data_reads += 1;
                    e.insert(inner.volume.read_page(pid)?)
                }
            };
            if page.lsn() >= lsn {
                continue; // effect already on disk image
            }
            ph_redo.records += 1;
            apply_redo(page, pid, &rec, lsn)?;
        }
        // Install redone pages into the pool as dirty so undo sees them and
        // the post-restart checkpoint flushes them.
        for (pid, page) in resident {
            let ev = inner.pool.insert(pid, page, true)?;
            if let Some(ev) = ev {
                // Restart pools are sized like production pools; eviction
                // during redo writes through (WAL is satisfied: everything
                // in the durable log already).
                if ev.dirty {
                    inner.volume.write_page(ev.page_id, &ev.page)?;
                    ph_redo.data_writes += 1;
                }
            }
            inner.dpt.insert(pid, redo_from);
        }
        Ok(())
    })?;

    undo_and_finish(server, analysis.att, analysis.max_txn, &mut ph_undo)?;
    Ok(vec![ph_analysis, ph_redo, ph_undo])
}

/// What a `RedoLogical` analysis pass learned from the log: the
/// committed-transactions set (only their records replay), the merged
/// dirty-page table, and the id high-water marks. Shared by the serial
/// and parallel engines.
#[derive(Debug, Default)]
pub(crate) struct RlogAnalysis {
    pub(crate) committed: std::collections::HashSet<TxnId>,
    pub(crate) dpt: HashMap<PageId, Lsn>,
    pub(crate) max_txn: TxnId,
    pub(crate) max_alloc: u64,
}

impl RlogAnalysis {
    pub(crate) fn note_txn(&mut self, txn: TxnId) {
        if txn != TxnId::INVALID && (self.max_txn == TxnId::INVALID || txn.0 > self.max_txn.0) {
            self.max_txn = txn;
        }
    }

    /// Merge one committed transaction's page → first-LSN map into the
    /// global DPT, keeping the earliest recovery LSN per page.
    pub(crate) fn merge_committed(&mut self, pages: HashMap<PageId, Lsn>) {
        for (p, l) in pages {
            let e = self.dpt.entry(p).or_insert(l);
            if l < *e {
                *e = l;
            }
        }
    }
}

/// REDO-only restart for the `RedoLogical` flavor: analysis over the whole
/// retained log (fuzzy checkpoints mean committed work may precede the
/// checkpoint; the truncation rule `keep = min(ck, min active first-LSN,
/// min DPT recLSN)` guarantees the retained log covers everything
/// unapplied), then a forward redo of *committed* transactions' logical
/// records. No-steal means no uncommitted data ever reached the volume, so
/// there is no undo phase at all — losers are simply never replayed.
pub fn rlog_restart(server: &Server) -> QsResult<Vec<PhaseStat>> {
    let mut ph_analysis = PhaseStat { name: "analysis", ..PhaseStat::default() };
    let mut ph_redo = PhaseStat { name: "redo", ..PhaseStat::default() };

    let analysis = server.with_quiesced(|inner| -> QsResult<RlogAnalysis> {
        let scan_from = inner.log.start_lsn();
        ph_analysis.pages_read =
            inner.log.tail_lsn().0.saturating_sub(scan_from.0).div_ceil(PAGE_SIZE as u64);

        let mut a = RlogAnalysis { max_txn: TxnId::INVALID, ..RlogAnalysis::default() };
        // Loser candidates: txn → page → first LSN, merged into the DPT
        // only if the commit record shows up.
        let mut pending: HashMap<TxnId, HashMap<PageId, Lsn>> = HashMap::new();
        for item in inner.log.scan_forward(scan_from) {
            let (lsn, rec) = item?;
            ph_analysis.records += 1;
            a.note_txn(rec.txn());
            match &rec {
                LogRecord::Commit { txn, .. } => {
                    a.committed.insert(*txn);
                    if let Some(pages) = pending.remove(txn) {
                        a.merge_committed(pages);
                    }
                }
                LogRecord::Abort { txn, .. } => {
                    pending.remove(txn);
                }
                LogRecord::Checkpoint { body } | LogRecord::BeginCheckpoint { body } => {
                    a.max_alloc = a.max_alloc.max(body.allocated_pages);
                }
                _ => {
                    if let Some(page) = rec.page() {
                        pending.entry(rec.txn()).or_default().entry(page).or_insert(lsn);
                        a.max_alloc = a.max_alloc.max(page.0 as u64 + 1);
                    }
                }
            }
        }
        inner.volume.ensure_allocated(a.max_alloc as usize)?;
        Ok(a)
    })?;

    // Redo pass: repeat committed history only.
    server.with_quiesced(|inner| -> QsResult<()> {
        let Some(&redo_from) = analysis.dpt.values().min() else {
            return Ok(());
        };
        ph_redo.pages_read =
            inner.log.tail_lsn().0.saturating_sub(redo_from.0).div_ceil(PAGE_SIZE as u64);
        let mut resident: HashMap<PageId, Page> = HashMap::new();
        for item in inner.log.scan_forward(redo_from) {
            let (lsn, rec) = item?;
            let Some(pid) = rec.page() else { continue };
            if !analysis.committed.contains(&rec.txn()) {
                continue;
            }
            let Some(&rec_lsn) = analysis.dpt.get(&pid) else { continue };
            if lsn < rec_lsn {
                continue;
            }
            let page = match resident.entry(pid) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    ph_redo.data_reads += 1;
                    e.insert(inner.volume.read_page(pid)?)
                }
            };
            if page.lsn() >= lsn {
                continue; // effect already on disk image
            }
            ph_redo.records += 1;
            apply_redo(page, pid, &rec, lsn)?;
        }
        for (pid, page) in resident {
            let ev = inner.pool.insert(pid, page, true)?;
            if let Some(ev) = ev {
                if ev.dirty {
                    inner.volume.write_page(ev.page_id, &ev.page)?;
                    ph_redo.data_writes += 1;
                }
            }
            inner.dpt.insert(pid, redo_from);
        }
        Ok(())
    })?;

    rlog_finish(server, analysis.max_txn)?;
    Ok(vec![ph_analysis, ph_redo])
}

/// What an `Adaptive` analysis pass learned from the log. A mixed-scheme
/// log carries physically-logged transactions (PD/SD elections: before/
/// after-image updates, stolen pages, CLR undo) and logically-logged ones
/// (WPL/RLOG elections: deferred-apply, no-steal, REDO-only) side by side;
/// each transaction's `TxnScheme` record — always the first record of its
/// chain — says which rules apply. Shared by the serial and parallel
/// engines so the two classifications cannot drift.
///
/// Truncation keeps `min(checkpoint, min active first-LSN)`, so every
/// *active* transaction's chain is retained whole, `TxnScheme` included: a
/// transaction whose scheme record is missing (truncated) is provably
/// committed, and treating it as physical (DPT path) is correct for
/// committed work — `apply_redo` replays `UpdateLogical` records too, and
/// the pageLSN test skips whatever the pre-crash apply already flushed.
#[derive(Debug, Default)]
pub(crate) struct AdaptiveAnalysis {
    /// Loser candidates: txn → last LSN seen (physical losers undo from
    /// here; logical losers are dropped without undo).
    pub(crate) att: HashMap<TxnId, Lsn>,
    pub(crate) committed: std::collections::HashSet<TxnId>,
    /// Elected scheme per transaction, from `TxnScheme` records.
    pub(crate) scheme: HashMap<TxnId, qs_wal::SchemeCode>,
    pub(crate) dpt: HashMap<PageId, Lsn>,
    pub(crate) max_txn: TxnId,
    pub(crate) max_alloc: u64,
    /// Logically-elected transactions' page → first-LSN maps, merged into
    /// the DPT only when their commit record shows up (rlog rule).
    pub(crate) pending: HashMap<TxnId, HashMap<PageId, Lsn>>,
}

impl AdaptiveAnalysis {
    pub(crate) fn note_txn(&mut self, txn: TxnId) {
        if txn != TxnId::INVALID && (self.max_txn == TxnId::INVALID || txn.0 > self.max_txn.0) {
            self.max_txn = txn;
        }
    }

    /// Did `txn` elect a logical (deferred-apply, no-steal) scheme?
    pub(crate) fn is_logical(&self, txn: TxnId) -> bool {
        self.scheme.get(&txn).map(|s| s.is_logical()).unwrap_or(false)
    }

    /// Must redo skip `txn`'s records? Only known-logical losers: their
    /// deferred ops never reached any page, and replaying them (via a
    /// shared page's DPT entry from another transaction) would install
    /// uncommitted data that nothing can undo.
    pub(crate) fn redo_skips(&self, txn: TxnId) -> bool {
        self.is_logical(txn) && !self.committed.contains(&txn)
    }

    /// Observe one record of the forward analysis scan, given the facts
    /// both engines can supply (the serial one from a decoded `LogRecord`,
    /// the parallel one from frame accessors). Checkpoint-body handling
    /// (`max_alloc`) stays with the caller.
    pub(crate) fn observe(
        &mut self,
        lsn: Lsn,
        tag: u8,
        txn: TxnId,
        page: Option<PageId>,
        scheme: Option<qs_wal::SchemeCode>,
    ) {
        self.note_txn(txn);
        match tag {
            qs_wal::record::tag::TXN_SCHEME => {
                if let Some(s) = scheme {
                    self.scheme.insert(txn, s);
                }
                self.att.insert(txn, lsn);
            }
            qs_wal::record::tag::COMMIT => {
                self.committed.insert(txn);
                self.att.remove(&txn);
                if let Some(pages) = self.pending.remove(&txn) {
                    for (p, l) in pages {
                        let e = self.dpt.entry(p).or_insert(l);
                        if l < *e {
                            *e = l;
                        }
                    }
                }
            }
            qs_wal::record::tag::ABORT => {
                self.att.remove(&txn);
                self.pending.remove(&txn);
            }
            _ => {
                if txn != TxnId::INVALID {
                    self.att.insert(txn, lsn);
                }
                if let Some(page) = page {
                    self.max_alloc = self.max_alloc.max(page.0 as u64 + 1);
                    if self.is_logical(txn) {
                        self.pending.entry(txn).or_default().entry(page).or_insert(lsn);
                    } else {
                        self.dpt.entry(page).or_insert(lsn);
                    }
                }
            }
        }
    }
}

/// Mixed-scheme restart for the `Adaptive` flavor: one forward analysis
/// pass over the whole retained log classifies every transaction via its
/// `TxnScheme` record, redo repeats history with the pageLSN test while
/// skipping logically-elected losers, and undo rolls back only the
/// physically-elected losers (logical losers never reached shared state —
/// same no-steal argument as `rlog_restart`).
pub fn adaptive_restart(server: &Server) -> QsResult<Vec<PhaseStat>> {
    let mut ph_analysis = PhaseStat { name: "analysis", ..PhaseStat::default() };
    let mut ph_redo = PhaseStat { name: "redo", ..PhaseStat::default() };
    let mut ph_undo = PhaseStat { name: "undo", ..PhaseStat::default() };

    let analysis = server.with_quiesced(|inner| -> QsResult<AdaptiveAnalysis> {
        let scan_from = inner.log.start_lsn();
        ph_analysis.pages_read =
            inner.log.tail_lsn().0.saturating_sub(scan_from.0).div_ceil(PAGE_SIZE as u64);

        let mut a = AdaptiveAnalysis { max_txn: TxnId::INVALID, ..AdaptiveAnalysis::default() };
        for item in inner.log.scan_forward(scan_from) {
            let (lsn, rec) = item?;
            ph_analysis.records += 1;
            match &rec {
                LogRecord::Checkpoint { body } | LogRecord::BeginCheckpoint { body } => {
                    a.max_alloc = a.max_alloc.max(body.allocated_pages);
                }
                _ => {
                    let scheme = match &rec {
                        LogRecord::TxnScheme { scheme, .. } => Some(*scheme),
                        _ => None,
                    };
                    a.observe(lsn, rec.tag(), rec.txn(), rec.page(), scheme);
                }
            }
        }
        inner.volume.ensure_allocated(a.max_alloc as usize)?;
        Ok(a)
    })?;

    // Redo pass: repeat history, minus logically-elected losers.
    server.with_quiesced(|inner| -> QsResult<()> {
        let Some(&redo_from) = analysis.dpt.values().min() else {
            return Ok(());
        };
        let redo_from = redo_from.max(inner.log.start_lsn());
        ph_redo.pages_read =
            inner.log.tail_lsn().0.saturating_sub(redo_from.0).div_ceil(PAGE_SIZE as u64);
        let mut resident: HashMap<PageId, Page> = HashMap::new();
        for item in inner.log.scan_forward(redo_from) {
            let (lsn, rec) = item?;
            let Some(pid) = rec.page() else { continue };
            if analysis.redo_skips(rec.txn()) {
                continue;
            }
            let Some(&rec_lsn) = analysis.dpt.get(&pid) else { continue };
            if lsn < rec_lsn {
                continue;
            }
            let page = match resident.entry(pid) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    ph_redo.data_reads += 1;
                    e.insert(inner.volume.read_page(pid)?)
                }
            };
            if page.lsn() >= lsn {
                continue; // effect already on disk image
            }
            ph_redo.records += 1;
            apply_redo(page, pid, &rec, lsn)?;
        }
        for (pid, page) in resident {
            let ev = inner.pool.insert(pid, page, true)?;
            if let Some(ev) = ev {
                if ev.dirty {
                    inner.volume.write_page(ev.page_id, &ev.page)?;
                    ph_redo.data_writes += 1;
                }
            }
            inner.dpt.insert(pid, redo_from);
        }
        Ok(())
    })?;

    // Undo only the physically-elected losers; logical losers are dropped
    // (their deferred ops died with the crash).
    let physical_losers: HashMap<TxnId, Lsn> = analysis
        .att
        .iter()
        .filter(|(t, _)| !analysis.is_logical(**t))
        .map(|(t, l)| (*t, *l))
        .collect();
    undo_and_finish(server, physical_losers, analysis.max_txn, &mut ph_undo)?;
    Ok(vec![ph_analysis, ph_redo, ph_undo])
}

/// Restart epilogue shared by the serial and parallel `RedoLogical`
/// engines: resume txn-id assignment, make the recovered state durable
/// and truncate the log. No undo — there are no losers to roll back.
pub(crate) fn rlog_finish(server: &Server, max_txn: TxnId) -> QsResult<()> {
    server.with_quiesced(|inner| {
        *inner.txns = TxnTable::resuming_after(max_txn);
    });
    server.checkpoint()
}

/// Undo pass plus restart epilogue, shared by the serial and parallel
/// engines: roll back losers with CLRs, resume txn-id assignment, make the
/// recovered state durable and truncate the log.
pub(crate) fn undo_and_finish(
    server: &Server,
    att: HashMap<TxnId, Lsn>,
    max_txn: TxnId,
    ph_undo: &mut PhaseStat,
) -> QsResult<()> {
    let losers: Vec<(TxnId, Lsn)> = {
        let mut l: Vec<_> = att.into_iter().collect();
        // Undo in reverse order of recency, mirroring ARIES' single
        // backward pass over all losers.
        l.sort_by_key(|&(_, lsn)| std::cmp::Reverse(lsn));
        l
    };
    server.with_quiesced(|inner| -> QsResult<()> {
        for &(txn, last) in &losers {
            inner.txns.restore(txn, last);
        }
        Ok(())
    })?;
    // One page cache across every loser chain: the random chain reads stop
    // re-hitting the log disk per record, and the report counts distinct
    // log pages actually fetched rather than one page per record undone.
    let mut cache = LogReadCache::new();
    for (txn, last) in losers {
        server.with_quiesced(|inner| -> QsResult<()> {
            let undone = server.undo_chain(inner, txn, last, &mut cache)?;
            ph_undo.records += undone;
            let prev = inner.txns.get(txn)?.last_lsn;
            inner.log.append(&LogRecord::Abort { txn, prev })?;
            inner.txns.remove(txn);
            Ok(())
        })?;
    }
    ph_undo.pages_read = cache.pages_fetched();

    // Resume id assignment above everything seen, then make the recovered
    // state durable and truncate the log.
    server.with_quiesced(|inner| {
        let resumed = TxnTable::resuming_after(max_txn);
        // Preserve whichever is higher (restore() may already have bumped).
        if inner.txns.is_empty() {
            *inner.txns = resumed;
        }
    });
    server.checkpoint()?;
    Ok(())
}
