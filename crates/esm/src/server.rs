//! The ESM server: page shipping, STEAL/NO-FORCE buffering, logging,
//! commit/abort, checkpointing, crash and restart.
//!
//! One [`Server`] instance plays the paper's Sun IPX: it owns the data
//! volume, the log disk, the lock manager, the transaction table, the
//! ARIES dirty-page table, and (under whole-page logging) the WPL table.
//! Clients call its methods directly; every call that would cross the wire
//! is metered by the *client* side (`qs-esm::client`), while the server
//! meters its own CPU/disk events.
//!
//! # Concurrency architecture
//!
//! The server is decomposed into independently synchronized subsystems
//! instead of one big mutex (see DESIGN.md "Server concurrency
//! architecture" for the full protocol):
//!
//! * [`crate::shard::ShardedPool`] — N buffer-pool shards, each its own lock;
//! * [`crate::tower::LogTower`] — the WAL (internally synchronized) plus
//!   optional group commit for the commit-path force;
//! * [`crate::gate::VolumeGate`] — the one data disk;
//! * small dedicated locks for the transaction table, the ARIES dirty-page
//!   table, and the WPL table;
//! * the [`LockManager`] (already internally synchronized).
//!
//! Lock order: txn table → pool shards (ascending) → WPL table → DPT →
//! volume; the log is lock-free at this level and always last. Hot paths
//! hold at most one shard lock plus short single-statement acquisitions of
//! the others, and never take the txn-table lock while holding a shard.
//! Whole-server operations (checkpoint, reclaim, abort/undo, restart) run
//! under [`Server::with_quiesced`], which acquires everything in order and
//! exposes the old single-lock view ([`InnerView`]).
//!
//! With the default configuration (one shard, group commit off) every code
//! path performs the same operations in the same order as the original
//! single-lock server, so all single-client figures are byte-identical.
//!
//! A simulated crash ([`Server::crash`]) consumes the server and returns
//! only the stable media; [`Server::restart`] rebuilds a consistent server
//! from them, running the flavor-appropriate restart algorithm
//! ([`crate::aries::restart`] or the WPL backward scan in [`Server::wpl_restart`]).

use crate::flusher::{FlusherConfig, FlusherHandle, FlusherMsg, SnapshotPool};
use crate::gate::VolumeGate;
use crate::lock::{AsyncLockOutcome, LockManager, LockMode, Resource};
use crate::runtime::RuntimeConfig;
use crate::shard::{PoolView, ShardedPool};
use crate::tower::LogTower;
use crate::txn::{TxnStatus, TxnTable};
use crate::wpl::WplTable;
use qs_sim::{HardwareModel, Meter};
use qs_storage::{MemDisk, Page, StableMedia, Volume};
use qs_trace::{FlightRecording, PhaseStat, RestartReport, TraceCat, TracedMutex, Tracer};
use qs_types::sync::Mutex;
use qs_types::{Lsn, PageId, QsError, QsResult, TxnId, PAGE_SIZE};
use qs_wal::{record, CheckpointBody, LogManager, LogPressure, LogRecord};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Which underlying recovery strategy the server runs (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryFlavor {
    /// ESM's ARIES-style scheme: clients ship log records *and* dirty
    /// pages; only log records are forced at commit (§3.1).
    EsmAries,
    /// Redo-at-server: clients ship log records only; the server applies
    /// the redo information to its copy of each page (§3.5).
    RedoAtServer,
    /// Whole-page logging: clients ship dirty pages only; the server
    /// appends them to the log and tracks them in the WPL table (§3.4).
    Wpl,
    /// REDO-only logical recovery (post-paper contender; Sauer & Härder,
    /// Lomet et al.): clients ship slot-level logical records only, the
    /// server defers applying them until commit (no-steal — uncommitted
    /// data never reaches pool or disk), so restart has no undo phase.
    RedoLogical,
    /// Per-transaction adaptive logging: the client captures PD-style
    /// before-images but elects the cheapest record format per commit
    /// (physical PD/SD diffs, a whole-page image, or logical REDO-only
    /// records), declaring the choice in a leading `TxnScheme` record
    /// (qs-wal tag 11). Physically-elected transactions run the EsmAries
    /// protocol (page ship, steal, CLR undo); logically-elected ones run
    /// the RedoLogical deferred-apply protocol (no-steal, no undo). One
    /// log legally interleaves both families; restart is polymorphic per
    /// transaction.
    Adaptive,
}

impl RecoveryFlavor {
    pub fn name(self) -> &'static str {
        match self {
            RecoveryFlavor::EsmAries => "ESM",
            RecoveryFlavor::RedoAtServer => "REDO",
            RecoveryFlavor::Wpl => "WPL",
            RecoveryFlavor::RedoLogical => "RLOG",
            RecoveryFlavor::Adaptive => "ADAPT",
        }
    }
}

/// Server sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    pub flavor: RecoveryFlavor,
    /// Server buffer pool, in pages. Paper: 36 MB of the IPX's 48 MB.
    pub pool_pages: usize,
    /// Data volume capacity, in pages.
    pub volume_pages: usize,
    /// Circular log body capacity, in bytes.
    pub log_bytes: usize,
    /// Start maintenance (checkpoint / WPL reclaim) when the log is fuller
    /// than this fraction.
    pub log_high_watermark: f64,
    /// Maintenance drives log usage back below this fraction.
    pub log_low_watermark: f64,
    /// Buffer-pool shards. 1 (the default) reproduces the single-lock
    /// pool exactly; the multi-client benchmarks use more.
    pub pool_shards: usize,
    /// Batch concurrent commit forces through the group committer. Off by
    /// default: the figure runs are single-client and must stay
    /// byte-identical.
    pub group_commit: bool,
    /// Restart-engine knobs (see [`RestartConfig`]).
    pub restart: RestartConfig,
    /// Background-flusher knobs (see [`FlusherConfig`]). Off by default:
    /// maintenance runs the original quiesced paths and every committed
    /// figure stays byte-identical. On, `checkpoint()` becomes a
    /// two-phase fuzzy protocol whose drain runs incrementally, and
    /// watermark maintenance moves to the flusher thread once
    /// [`Server::start_flusher`] is called.
    pub flusher: FlusherConfig,
    /// Event-driven runtime knobs (see [`RuntimeConfig`]). The default is
    /// inert: clients built with `ClientConn::new` keep calling the
    /// server directly on their own thread, so every committed figure
    /// stays byte-identical. Only `crate::runtime::Reactor::start` reads
    /// these.
    pub runtime: RuntimeConfig,
}

/// Restart-engine configuration.
///
/// `redo_workers = 1` (the default) runs the original serial restart
/// algorithms verbatim; any higher count runs the streamed,
/// page-partitioned engine in [`crate::restart_par`], which recovers a
/// byte-identical volume image and reports identical phase counts for any
/// worker count (`tests/restart_equivalence.rs` pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartConfig {
    /// Worker threads for ARIES redo and the WPL image scan.
    pub redo_workers: usize,
    /// Bytes per streamed log read (clamped up to at least one frame).
    pub chunk_bytes: usize,
}

impl Default for RestartConfig {
    fn default() -> RestartConfig {
        RestartConfig { redo_workers: 1, chunk_bytes: 64 * PAGE_SIZE }
    }
}

impl ServerConfig {
    pub fn new(flavor: RecoveryFlavor) -> ServerConfig {
        ServerConfig {
            flavor,
            pool_pages: 36 * 1024 * 1024 / PAGE_SIZE,
            volume_pages: 24 * 1024, // 192 MB
            log_bytes: 192 * 1024 * 1024,
            log_high_watermark: 0.60,
            log_low_watermark: 0.30,
            pool_shards: 1,
            group_commit: false,
            restart: RestartConfig::default(),
            flusher: FlusherConfig::default(),
            runtime: RuntimeConfig::default(),
        }
    }

    pub fn with_pool_mb(mut self, mb: f64) -> ServerConfig {
        self.pool_pages = qs_types::mb_to_pages(mb).max(1);
        self
    }

    pub fn with_volume_pages(mut self, pages: usize) -> ServerConfig {
        self.volume_pages = pages;
        self
    }

    pub fn with_log_mb(mut self, mb: f64) -> ServerConfig {
        self.log_bytes = (mb * 1024.0 * 1024.0) as usize;
        self
    }

    pub fn with_pool_shards(mut self, shards: usize) -> ServerConfig {
        self.pool_shards = shards.max(1);
        self
    }

    pub fn with_group_commit(mut self, on: bool) -> ServerConfig {
        self.group_commit = on;
        self
    }

    pub fn with_redo_workers(mut self, workers: usize) -> ServerConfig {
        self.restart.redo_workers = workers.max(1);
        self
    }

    /// Enable the background flusher / two-phase fuzzy checkpointing.
    pub fn with_background_flusher(mut self, on: bool) -> ServerConfig {
        self.flusher.enabled = on;
        self
    }

    /// Pages per flusher claim batch (implies nothing unless the flusher
    /// knob is on).
    pub fn with_flusher_batch_pages(mut self, pages: usize) -> ServerConfig {
        self.flusher.batch_pages = pages.max(1);
        self
    }

    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> ServerConfig {
        self.runtime = runtime;
        self
    }

    pub fn with_runtime_workers(mut self, workers: usize) -> ServerConfig {
        self.runtime.workers = workers.max(1);
        self
    }
}

/// How many trailing flight-recorder events [`Server::crash`] snapshots
/// into the stable parts.
const FLIGHT_EVENTS: usize = 64;

/// The crash-surviving pieces: what a reboot finds on the machine.
pub struct StableParts {
    pub data_media: Arc<dyn StableMedia>,
    pub log_media: Arc<dyn StableMedia>,
    /// The crashed server's flight recording (its tracer ring's last
    /// events), when it was tracing. Strictly observability — restart
    /// recovery never reads it; it is carried across the crash so the
    /// restarting server can report what the system was doing when it died.
    pub flight: Option<FlightRecording>,
}

/// One deferred operation of an uncommitted `RedoLogical` transaction (or
/// a logically-elected `Adaptive` one). Under those protocols the server
/// is no-steal: updates are stashed here at receive time and applied to
/// the pool only after the commit force, so the pool (and therefore the
/// volume) only ever holds committed data.
enum PendingOp {
    /// A slot-level logical after-image (`LogRecord::UpdateLogical`).
    Logical { page: PageId, slot: u16, offset: u16, after: Vec<u8>, lsn: Lsn },
    /// A whole-page image (newly created pages, §3.6 treatment).
    Image { page: PageId, image: Vec<u8>, lsn: Lsn },
}

impl PendingOp {
    fn page(&self) -> PageId {
        match self {
            PendingOp::Logical { page, .. } | PendingOp::Image { page, .. } => *page,
        }
    }

    fn lsn(&self) -> Lsn {
        match self {
            PendingOp::Logical { lsn, .. } | PendingOp::Image { lsn, .. } => *lsn,
        }
    }
}

/// The old single-lock `Inner`, reconstructed on demand: a whole-server
/// view with every subsystem lock held (see [`Server::with_quiesced`]).
/// Field names match the pre-decomposition struct so the algorithms that
/// genuinely need global consistency (checkpoint, reclaim, undo, restart)
/// read exactly as they used to.
pub(crate) struct InnerView<'a> {
    pub(crate) volume: &'a Volume,
    pub(crate) log: &'a LogManager,
    pub(crate) pool: PoolView<'a>,
    pub(crate) txns: &'a mut TxnTable,
    /// ARIES dirty-page table: page → recovery LSN.
    pub(crate) dpt: &'a mut HashMap<PageId, Lsn>,
    pub(crate) wpl: &'a mut WplTable,
}

/// The ESM server.
pub struct Server {
    cfg: ServerConfig,
    /// Data-disk subsystem (its own lock).
    volume: VolumeGate,
    /// Log subsystem: WAL + group-commit policy (internally synchronized).
    log: LogTower,
    /// Sharded buffer pool (one lock per shard).
    pool: ShardedPool,
    /// Transaction table, behind its own small lock.
    txns: TracedMutex<TxnTable>,
    /// ARIES dirty-page table, behind its own small lock.
    dpt: TracedMutex<HashMap<PageId, Lsn>>,
    /// WPL table, behind its own small lock.
    wpl: TracedMutex<WplTable>,
    /// `RedoLogical` only: deferred (not-yet-applied) operations of
    /// uncommitted transactions, txn → ops in log order. Never nested
    /// inside any other subsystem lock: every path takes it alone and
    /// releases it before touching the pool, txn table, or volume.
    pending: TracedMutex<HashMap<TxnId, Vec<PendingOp>>>,
    locks: LockManager,
    meter: Arc<Meter>,
    data_media: Arc<dyn StableMedia>,
    log_media: Arc<dyn StableMedia>,
    /// Checkpoints taken (stat for tests/harness).
    checkpoints: AtomicU64,
    /// WPL images reclaimed (flushed or superseded).
    reclaimed: AtomicU64,
    /// Serializes maintenance passes: checkpoints and reclaims from the
    /// flusher thread and from inline callers never interleave. Taken
    /// alone, before any subsystem lock.
    ckpt_serial: Mutex<()>,
    /// The background flusher thread, once [`Server::start_flusher`] ran.
    flusher: Mutex<Option<FlusherHandle>>,
    /// A maintenance request is already queued at the flusher (dedupe).
    maint_pending: AtomicBool,
    /// Pooled page buffers for fuzzy-checkpoint claim snapshots.
    snapshots: SnapshotPool,
    /// Fuzzy-drain stats: elevator batches written, pages in them.
    flusher_batches: AtomicU64,
    flusher_pages: AtomicU64,
    /// Observability hook (disabled by default: one branch per event).
    tracer: Arc<Tracer>,
    /// Per-phase breakdown of the restart that built this server, if it
    /// was built by [`Server::restart`].
    restart_report: Mutex<Option<RestartReport>>,
}

impl Server {
    /// Create a fresh server on fresh in-memory media.
    pub fn format(cfg: ServerConfig, meter: Arc<Meter>) -> QsResult<Server> {
        Self::format_traced(cfg, meter, Tracer::disabled())
    }

    /// [`Server::format`] with tracing installed from birth.
    pub fn format_traced(
        cfg: ServerConfig,
        meter: Arc<Meter>,
        tracer: Arc<Tracer>,
    ) -> QsResult<Server> {
        let data_media: Arc<dyn StableMedia> =
            Arc::new(MemDisk::new(Volume::required_bytes(cfg.volume_pages)));
        let log_media: Arc<dyn StableMedia> =
            Arc::new(MemDisk::new(LogManager::required_bytes(cfg.log_bytes)));
        Self::format_on_traced(
            StableParts { data_media, log_media, flight: None },
            cfg,
            meter,
            tracer,
        )
    }

    /// Create a fresh server on the given media (formats them).
    pub fn format_on(parts: StableParts, cfg: ServerConfig, meter: Arc<Meter>) -> QsResult<Server> {
        Self::format_on_traced(parts, cfg, meter, Tracer::disabled())
    }

    /// [`Server::format_on`] with tracing installed from birth.
    pub fn format_on_traced(
        parts: StableParts,
        cfg: ServerConfig,
        meter: Arc<Meter>,
        tracer: Arc<Tracer>,
    ) -> QsResult<Server> {
        let volume = Volume::format(Arc::clone(&parts.data_media), cfg.volume_pages)?;
        let mut log = LogManager::format(Arc::clone(&parts.log_media), cfg.log_bytes)?;
        log.set_tracer(Arc::clone(&tracer));
        Ok(Server {
            volume: VolumeGate::new(volume),
            log: LogTower::new(log, cfg.group_commit),
            pool: ShardedPool::new(cfg.pool_pages, cfg.pool_shards),
            txns: TracedMutex::new("txns", TxnTable::new()),
            dpt: TracedMutex::new("dpt", HashMap::new()),
            wpl: TracedMutex::new("wpl", WplTable::new()),
            pending: TracedMutex::new("pending", HashMap::new()),
            locks: LockManager::new(),
            meter,
            data_media: parts.data_media,
            log_media: parts.log_media,
            checkpoints: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            ckpt_serial: Mutex::new(()),
            flusher: Mutex::new(None),
            maint_pending: AtomicBool::new(false),
            snapshots: SnapshotPool::new(),
            flusher_batches: AtomicU64::new(0),
            flusher_pages: AtomicU64::new(0),
            tracer,
            restart_report: Mutex::new(None),
            cfg,
        })
    }

    /// Simulate a crash: all volatile state is lost; only media survive.
    /// A tracing server also snapshots its flight recorder's most recent
    /// events into the parts — the "black box" a reboot recovers.
    pub fn crash(self) -> StableParts {
        let flight = if self.tracer.is_enabled() {
            Some(FlightRecording { events: self.tracer.flight_snapshot(FLIGHT_EVENTS) })
        } else {
            None
        };
        StableParts { data_media: self.data_media, log_media: self.log_media, flight }
    }

    /// Clone handles to the stable media (e.g. to image the disks in tests).
    pub fn stable_parts(&self) -> StableParts {
        StableParts {
            data_media: Arc::clone(&self.data_media),
            log_media: Arc::clone(&self.log_media),
            flight: None,
        }
    }

    /// Rebuild a server from crashed media, running restart recovery.
    pub fn restart(parts: StableParts, cfg: ServerConfig, meter: Arc<Meter>) -> QsResult<Server> {
        Self::restart_traced(parts, cfg, meter, Tracer::disabled())
    }

    /// [`Server::restart`] with tracing: besides recovering, the server
    /// emits per-phase `Restart` events and keeps a [`RestartReport`]
    /// (available from [`Server::restart_report`]) breaking the restart
    /// into its phases with simulated per-phase times.
    ///
    /// The phase counts are tallied locally and priced directly with the
    /// hardware model — they never touch the shared meter, so figure
    /// outputs are identical with tracing on or off.
    pub fn restart_traced(
        parts: StableParts,
        cfg: ServerConfig,
        meter: Arc<Meter>,
        tracer: Arc<Tracer>,
    ) -> QsResult<Server> {
        let volume = Volume::open(Arc::clone(&parts.data_media))?;
        let mut log = LogManager::open(Arc::clone(&parts.log_media))?;
        log.set_tracer(Arc::clone(&tracer));
        let flight = parts.flight.unwrap_or_default();
        let server = Server {
            volume: VolumeGate::new(volume),
            log: LogTower::new(log, cfg.group_commit),
            pool: ShardedPool::new(cfg.pool_pages, cfg.pool_shards),
            txns: TracedMutex::new("txns", TxnTable::new()),
            dpt: TracedMutex::new("dpt", HashMap::new()),
            wpl: TracedMutex::new("wpl", WplTable::new()),
            pending: TracedMutex::new("pending", HashMap::new()),
            locks: LockManager::new(),
            meter,
            data_media: parts.data_media,
            log_media: parts.log_media,
            checkpoints: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            ckpt_serial: Mutex::new(()),
            flusher: Mutex::new(None),
            maint_pending: AtomicBool::new(false),
            snapshots: SnapshotPool::new(),
            flusher_batches: AtomicU64::new(0),
            flusher_pages: AtomicU64::new(0),
            tracer,
            restart_report: Mutex::new(None),
            cfg,
        };
        // One worker runs the original serial algorithms verbatim (the
        // bit-exact baseline); more run the streamed parallel engine.
        let workers = server.cfg.restart.redo_workers.max(1);
        let phases = match (server.cfg.flavor, workers) {
            (RecoveryFlavor::Wpl, 1) => server.wpl_restart()?,
            (RecoveryFlavor::Wpl, _) => crate::restart_par::wpl_restart(&server, workers)?,
            (RecoveryFlavor::RedoLogical, 1) => crate::aries::rlog_restart(&server)?,
            (RecoveryFlavor::RedoLogical, _) => crate::restart_par::rlog_restart(&server, workers)?,
            (RecoveryFlavor::Adaptive, 1) => crate::aries::adaptive_restart(&server)?,
            (RecoveryFlavor::Adaptive, _) => {
                crate::restart_par::adaptive_restart(&server, workers)?
            }
            (_, 1) => crate::aries::restart(&server)?,
            (_, _) => crate::restart_par::aries_restart(&server, workers)?,
        };
        // Price the raw phase counts on the same hardware the tracer's
        // clock uses (the paper's testbed when no clock is installed).
        let default_hw = HardwareModel::paper_1995();
        let hw = server.tracer.hardware().unwrap_or(&default_hw).clone();
        let phases: Vec<PhaseStat> = phases.into_iter().map(|p| p.priced(&hw)).collect();
        for p in &phases {
            server.tracer.event(TraceCat::Restart, p.name, p.records, p.pages_read);
        }
        let report = RestartReport { flavor: server.cfg.flavor.name(), phases, flight };
        *server.restart_report.lock() = Some(report);
        Ok(server)
    }

    pub fn flavor(&self) -> RecoveryFlavor {
        self.cfg.flavor
    }

    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    pub fn meter(&self) -> &Arc<Meter> {
        &self.meter
    }

    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The per-phase breakdown of the restart that built this server
    /// (`None` for servers built by `format`/`format_on`).
    pub fn restart_report(&self) -> Option<RestartReport> {
        self.restart_report.lock().clone()
    }

    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    pub fn wpl_images_reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::Relaxed)
    }

    /// Which buffer-pool shard owns `pid` (shard-independence tests).
    pub fn shard_of(&self, pid: PageId) -> usize {
        self.pool.shard_of(pid)
    }

    /// `(commit-force calls, real log forces)` through the group
    /// committer; their ratio is the mean group-commit batch size.
    pub fn group_commit_stats(&self) -> (u64, u64) {
        self.log.group_stats()
    }

    /// Acquire every subsystem lock in the canonical order — txn table,
    /// pool shards (ascending), WPL table, DPT, volume — and run `f` over
    /// the resulting whole-server view. This is the quiesced world the
    /// pre-decomposition `Mutex<Inner>` provided implicitly; checkpoint,
    /// reclaim, abort/undo, and both restart algorithms run under it.
    pub(crate) fn with_quiesced<R>(&self, f: impl FnOnce(&mut InnerView<'_>) -> R) -> R {
        let mut txns = self.txns.lock(&self.tracer);
        let mut shards = self.pool.lock_all(&self.tracer);
        let mut wpl = self.wpl.lock(&self.tracer);
        let mut dpt = self.dpt.lock(&self.tracer);
        let volume = self.volume.lock(&self.tracer);
        let mut view = InnerView {
            volume: &volume,
            log: self.log.wal(),
            pool: PoolView::new(shards.iter_mut().map(|g| &mut **g).collect()),
            txns: &mut txns,
            dpt: &mut dpt,
            wpl: &mut wpl,
        };
        f(&mut view)
    }

    // ---------------------------------------------------------------------
    // Bulk load (logging bypassed — database generation utility)
    // ---------------------------------------------------------------------

    /// Allocate `n` fresh pages without logging (bulk loader only).
    pub fn bulk_allocate(&self, n: usize) -> QsResult<Vec<PageId>> {
        let volume = self.volume.lock(&self.tracer);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(volume.allocate()?);
        }
        Ok(out)
    }

    /// Write a page directly to the volume without logging (bulk loader).
    pub fn bulk_write(&self, pid: PageId, page: &Page) -> QsResult<()> {
        self.volume.lock(&self.tracer).write_page(pid, page)
    }

    /// Make the bulk load durable.
    pub fn bulk_sync(&self) -> QsResult<()> {
        self.volume.lock(&self.tracer).sync_header()
    }

    /// Pages currently allocated on the volume.
    pub fn allocated_pages(&self) -> usize {
        self.volume.lock(&self.tracer).allocated()
    }

    // ---------------------------------------------------------------------
    // Transactions
    // ---------------------------------------------------------------------

    pub fn begin(&self) -> TxnId {
        self.txns.lock(&self.tracer).begin()
    }

    /// Acquire a page lock on behalf of `txn` (the paper's "obtains an
    /// exclusive lock on the page from ESM"). Blocking; deadlocks abort the
    /// requester with `LockConflict`.
    pub fn lock_page(&self, txn: TxnId, pid: PageId, mode: LockMode) -> QsResult<()> {
        self.lock_resource(txn, Resource::Page(pid), mode)
    }

    /// Acquire a lock on any [`Resource`] — a whole page or one record. A
    /// record lock first takes the intention mode on its page (two-step;
    /// both steps block and both feed the waits-for graph). Lock-wait
    /// trace events carry [`Resource::trace_code`], so record-level waits
    /// are attributable to their slot.
    pub fn lock_resource(&self, txn: TxnId, res: Resource, mode: LockMode) -> QsResult<()> {
        let waited = self.locks.lock_resource(txn, res, mode)?;
        if waited {
            self.tracer.event(TraceCat::LockWait, "granted", txn.0, res.trace_code());
        }
        self.meter.locks_acquired.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Non-blocking variant of [`Server::lock_resource`] for reactor
    /// workers: either the lock is granted now (metered exactly like a
    /// no-wait `lock_resource`) or the request parks and the grant arrives
    /// later via the [`crate::lock::LockEvents`] sink — the worker thread
    /// never blocks. Queue-time deadlocks surface as `Err(LockConflict)`.
    pub(crate) fn lock_resource_async(
        &self,
        txn: TxnId,
        res: Resource,
        mode: LockMode,
    ) -> QsResult<AsyncLockOutcome> {
        let outcome = self.locks.lock_resource_async(txn, res, mode)?;
        if outcome == AsyncLockOutcome::Granted {
            self.meter.locks_acquired.fetch_add(1, Ordering::Relaxed);
        }
        Ok(outcome)
    }

    /// Meter a parked async lock request whose grant just arrived — the
    /// same trace event and counter bump a blocking `lock_resource`
    /// performs when its wait ends.
    pub(crate) fn note_async_lock_granted(&self, txn: TxnId, res: Resource) {
        self.tracer.event(TraceCat::LockWait, "granted", txn.0, res.trace_code());
        self.meter.locks_acquired.fetch_add(1, Ordering::Relaxed);
    }

    /// The lock manager, for the reactor to install its grant sink.
    pub(crate) fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Allocate a page inside a transaction (logged, recoverable).
    pub fn allocate_page(&self, txn: TxnId) -> QsResult<PageId> {
        let pid = self.volume.lock(&self.tracer).allocate()?;
        let mut txns = self.txns.lock(&self.tracer);
        let prev = txns.active_mut(txn)?.last_lsn;
        let lsn = self.log.wal().append(&LogRecord::PageAlloc { txn, prev, page: pid })?;
        txns.active_mut(txn)?.note_logged(lsn);
        drop(txns);
        self.locks.lock(txn, Resource::Page(pid), LockMode::X)?;
        self.meter.locks_acquired.fetch_add(1, Ordering::Relaxed);
        Ok(pid)
    }

    /// Serve a page to a client. The caller must already hold a lock
    /// (QuickStore acquires S on read-fault, X on write-fault).
    pub fn fetch_page(&self, txn: TxnId, pid: PageId) -> QsResult<Page> {
        self.txns.lock(&self.tracer).active_mut(txn)?; // validate
        let mut page = self.read_page_hot(Some(txn), pid)?;
        if matches!(self.cfg.flavor, RecoveryFlavor::RedoLogical | RecoveryFlavor::Adaptive) {
            // No-steal: the pool copy is committed-only, so a transaction
            // re-fetching a page it already updated (client-side eviction)
            // would see stale bytes. Overlay its own deferred ops onto the
            // served copy; the pool copy stays clean. (Physically-elected
            // adaptive transactions have no pending ops — a no-op.)
            self.overlay_pending(txn, pid, &mut page)?;
        }
        Ok(page)
    }

    /// Re-apply `txn`'s own pending (deferred, uncommitted) operations on
    /// `pid` to a served page copy. `RedoLogical` and `Adaptive` only.
    fn overlay_pending(&self, txn: TxnId, pid: PageId, page: &mut Page) -> QsResult<()> {
        let pending = self.pending.lock(&self.tracer);
        let Some(ops) = pending.get(&txn) else { return Ok(()) };
        for op in ops.iter().filter(|op| op.page() == pid) {
            Self::apply_pending_op(page, pid, op)?;
        }
        Ok(())
    }

    /// Apply one deferred op to a page image and stamp the pageLSN — the
    /// logical twin of [`crate::aries::apply_redo`].
    fn apply_pending_op(page: &mut Page, pid: PageId, op: &PendingOp) -> QsResult<()> {
        match op {
            PendingOp::Logical { slot, offset, after, lsn, .. } => {
                let obj = page.object_mut(pid, *slot)?;
                let off = *offset as usize;
                if off + after.len() > obj.len() {
                    return Err(QsError::RecoveryFailed {
                        detail: format!("logical redo range past object end on {pid}"),
                    });
                }
                obj[off..off + after.len()].copy_from_slice(after);
                page.set_lsn(*lsn);
            }
            PendingOp::Image { image, lsn, .. } => {
                *page = Page::from_bytes(image)?;
                page.set_lsn(*lsn);
            }
        }
        Ok(())
    }

    /// Shared read path, hot variant: holds only `pid`'s shard lock (plus
    /// single-statement takes of WPL/volume/DPT). Pool → (WPL table → log)
    /// → volume. Holding the shard across the miss-fill-evict sequence
    /// blocks whole-pool maintenance (which needs every shard), so the WPL
    /// entry and the log region it points at cannot be reclaimed mid-read,
    /// and the evicted victim — same shard by construction — cannot be
    /// re-read from the volume before its write-back lands.
    fn read_page_hot(&self, reader: Option<TxnId>, pid: PageId) -> QsResult<Page> {
        let mut pool = self.pool.lock(pid, &self.tracer);
        if let Some(p) = pool.get(pid) {
            return Ok(p.clone());
        }
        self.meter.server_pool_misses.fetch_add(1, Ordering::Relaxed);
        let page = if self.cfg.flavor == RecoveryFlavor::Wpl {
            match self.wpl.lock(&self.tracer).newest(pid).cloned() {
                // The newest logged image is authoritative. Page locking
                // guarantees an uncommitted image is only ever re-read by
                // its own transaction (X lock held), which the paper relies
                // on too ("read from the log if it is reaccessed during the
                // same transaction").
                Some(v) if v.committed || reader == Some(v.txn) => {
                    self.meter.log_pages_read.fetch_add(1, Ordering::Relaxed);
                    Self::page_image_from_log(self.log.wal(), v.lsn, pid)?
                }
                Some(v) => {
                    return Err(QsError::Protocol {
                        detail: format!(
                            "page {pid} has uncommitted logged image of {} but is read by {reader:?}",
                            v.txn
                        ),
                    });
                }
                None => {
                    self.meter.data_reads.fetch_add(1, Ordering::Relaxed);
                    self.volume.lock(&self.tracer).read_page(pid)?
                }
            }
        } else {
            self.meter.data_reads.fetch_add(1, Ordering::Relaxed);
            self.volume.lock(&self.tracer).read_page(pid)?
        };
        let evicted = pool.insert(pid, page.clone(), false)?;
        if let Some(ev) = evicted {
            self.evict_dirty_hot(ev)?;
        }
        Ok(page)
    }

    /// Shared read path over a quiesced view (undo, reclaim, restart).
    fn read_page_view(
        &self,
        view: &mut InnerView<'_>,
        reader: Option<TxnId>,
        pid: PageId,
    ) -> QsResult<Page> {
        if let Some(p) = view.pool.get(pid) {
            return Ok(p.clone());
        }
        self.meter.server_pool_misses.fetch_add(1, Ordering::Relaxed);
        let page = if self.cfg.flavor == RecoveryFlavor::Wpl {
            match view.wpl.newest(pid) {
                Some(v) if v.committed || reader == Some(v.txn) => {
                    let lsn = v.lsn;
                    self.meter.log_pages_read.fetch_add(1, Ordering::Relaxed);
                    Self::page_image_from_log(view.log, lsn, pid)?
                }
                Some(v) => {
                    return Err(QsError::Protocol {
                        detail: format!(
                            "page {pid} has uncommitted logged image of {} but is read by {reader:?}",
                            v.txn
                        ),
                    });
                }
                None => {
                    self.meter.data_reads.fetch_add(1, Ordering::Relaxed);
                    view.volume.read_page(pid)?
                }
            }
        } else {
            self.meter.data_reads.fetch_add(1, Ordering::Relaxed);
            view.volume.read_page(pid)?
        };
        let evicted = view.pool.insert(pid, page.clone(), false)?;
        if let Some(ev) = evicted {
            self.evict_dirty_view(view, ev)?;
        }
        Ok(page)
    }

    fn page_image_from_log(log: &LogManager, lsn: Lsn, pid: PageId) -> QsResult<Page> {
        match log.read_record(lsn)?.0 {
            LogRecord::WholePage { page, image, .. } if page == pid => Page::from_bytes(&image),
            other => Err(QsError::RecoveryFailed {
                detail: format!("expected WholePage for {pid} at {lsn}, found {other:?}"),
            }),
        }
    }

    /// STEAL handling, hot variant: a dirty page left a shard whose lock
    /// the caller still holds (the victim is in the same shard, so no one
    /// can re-read it from the volume before the write-back below).
    fn evict_dirty_hot(&self, ev: crate::buffer::Evicted) -> QsResult<()> {
        if !ev.dirty {
            return Ok(());
        }
        match self.cfg.flavor {
            RecoveryFlavor::Wpl => {
                // The image is already in the log (it was appended on
                // receipt); the permanent location must NOT be overwritten
                // before commit. Drop the copy — re-reads go to the log.
                Ok(())
            }
            _ => {
                // WAL: force the log up to the page's LSN, then steal.
                let stats = self.log.wal().force(ev.page.lsn())?;
                self.meter_force(stats);
                self.volume.lock(&self.tracer).write_page(ev.page_id, &ev.page)?;
                self.meter.data_writes.fetch_add(1, Ordering::Relaxed);
                self.dpt.lock(&self.tracer).remove(&ev.page_id);
                Ok(())
            }
        }
    }

    /// STEAL handling over a quiesced view.
    fn evict_dirty_view(
        &self,
        view: &mut InnerView<'_>,
        ev: crate::buffer::Evicted,
    ) -> QsResult<()> {
        if !ev.dirty {
            return Ok(());
        }
        match self.cfg.flavor {
            RecoveryFlavor::Wpl => Ok(()),
            _ => {
                let stats = view.log.force(ev.page.lsn())?;
                self.meter_force(stats);
                view.volume.write_page(ev.page_id, &ev.page)?;
                self.meter.data_writes.fetch_add(1, Ordering::Relaxed);
                view.dpt.remove(&ev.page_id);
                Ok(())
            }
        }
    }

    /// [`Server::meter_force`] for maintenance-path forces: bills the same
    /// legacy counters (so windowed figure demand is unchanged) *plus* the
    /// `maint_*` sub-accounting, which lets reports separate checkpoint /
    /// reclaim I/O from the victim transaction that used to absorb it.
    fn meter_force_maint(&self, stats: qs_wal::log::ForceStats) {
        if stats.wrote {
            self.meter.maint_log_pages_written.fetch_add(stats.pages_written, Ordering::Relaxed);
            self.meter.maint_log_forces.fetch_add(1, Ordering::Relaxed);
        }
        self.meter_force(stats);
    }

    /// Bill one maintenance-path data-page write to both the legacy
    /// counter and the maintenance sub-account.
    fn meter_data_write_maint(&self, pages: u64) {
        self.meter.data_writes.fetch_add(pages, Ordering::Relaxed);
        self.meter.maint_data_writes.fetch_add(pages, Ordering::Relaxed);
    }

    fn meter_force(&self, stats: qs_wal::log::ForceStats) {
        if stats.wrote {
            self.meter.log_pages_written.fetch_add(stats.pages_written, Ordering::Relaxed);
            self.meter.log_forces.fetch_add(1, Ordering::Relaxed);
        } else {
            // The log was already durable past the requested LSN: no I/O,
            // no latency — but the request still happened. Count it so the
            // force rate and the no-op rate are both observable.
            self.meter.log_forces_noop.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Receive a batch of client-generated log records (ESM and REDO
    /// flavors). Under REDO the redo information is applied to the server's
    /// copy of each page immediately (§3.5), reading the page from disk if
    /// necessary — the scheme's Achilles heel.
    pub fn receive_log_records(&self, txn: TxnId, records: Vec<LogRecord>) -> QsResult<()> {
        if self.cfg.flavor == RecoveryFlavor::Wpl {
            return Err(QsError::Protocol {
                detail: "WPL clients do not generate log records".into(),
            });
        }
        self.txns.lock(&self.tracer).active_mut(txn)?;
        for rec in records {
            if rec.txn() != txn {
                return Err(QsError::Protocol {
                    detail: format!("record for {} shipped by {txn}", rec.txn()),
                });
            }
            if self.cfg.flavor == RecoveryFlavor::RedoLogical
                && matches!(rec, LogRecord::Update { .. })
            {
                return Err(QsError::Protocol {
                    detail: "RLOG clients ship logical records, not physical before/after images"
                        .into(),
                });
            }
            if self.cfg.flavor != RecoveryFlavor::Adaptive
                && matches!(rec, LogRecord::TxnScheme { .. })
            {
                return Err(QsError::Protocol {
                    detail: "TxnScheme records are only legal under the adaptive flavor".into(),
                });
            }
            // Client-side `prev` is unknown to the client; rebuild the
            // backward chain here where the authoritative last_lsn lives.
            // The txn-table lock is held across the append so the chain
            // stays consistent under concurrency.
            let mut txns = self.txns.lock(&self.tracer);
            let rec = Self::rechain(rec, txns.get(txn)?.last_lsn);
            let lsn = self.log.wal().append(&rec)?;
            txns.active_mut(txn)?.note_logged(lsn);
            if let LogRecord::TxnScheme { scheme, .. } = rec {
                // The transaction's elected scheme governs how every later
                // record of this chain is processed.
                txns.active_mut(txn)?.scheme = Some(scheme);
            } else if let Some(pid) = rec.page() {
                txns.active_mut(txn)?.pages_logged.insert(pid);
                let deferred = self.defers_apply(&txns, txn)?;
                drop(txns);
                if deferred {
                    // No-steal deferred apply: the DPT is untouched until
                    // the op lands in the pool at commit.
                    self.stash_pending(txn, &rec, lsn);
                } else {
                    self.dpt.lock(&self.tracer).entry(pid).or_insert(lsn);
                    if self.cfg.flavor == RecoveryFlavor::RedoAtServer {
                        self.apply_redo_hot(&rec, lsn)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Does this transaction's receive path stash records for deferred
    /// (post-commit) application rather than tracking them in the DPT?
    /// True for `RedoLogical` always, and for `Adaptive` transactions that
    /// elected a logical scheme via their `TxnScheme` record.
    fn defers_apply(&self, txns: &crate::txn::TxnTable, txn: TxnId) -> QsResult<bool> {
        Ok(match self.cfg.flavor {
            RecoveryFlavor::RedoLogical => true,
            RecoveryFlavor::Adaptive => {
                txns.get(txn)?.scheme.map(|s| s.is_logical()).unwrap_or(false)
            }
            _ => false,
        })
    }

    /// Byte-frame twin of [`Server::receive_log_records`]: the client ships
    /// already-encoded records (built by `qs_wal::RecordWriter`), and the
    /// backward chain is patched *in place* on append
    /// ([`qs_wal::LogManager::append_rechained`]) — the hot path never
    /// decodes or re-encodes a record. Semantics and WAL bytes are
    /// identical to the record-struct path.
    pub fn receive_log_bytes(&self, txn: TxnId, batch: &[u8]) -> QsResult<()> {
        if self.cfg.flavor == RecoveryFlavor::Wpl {
            return Err(QsError::Protocol {
                detail: "WPL clients do not generate log records".into(),
            });
        }
        self.txns.lock(&self.tracer).active_mut(txn)?;
        let mut at = 0usize;
        while at < batch.len() {
            let len = record::frame_len(&batch[at..])?;
            let frame = &batch[at..at + len];
            if record::frame_txn(frame) != txn {
                return Err(QsError::Protocol {
                    detail: format!("record for {} shipped by {txn}", record::frame_txn(frame)),
                });
            }
            if self.cfg.flavor == RecoveryFlavor::RedoLogical && record::frame_tag(frame) == 1 {
                return Err(QsError::Protocol {
                    detail: "RLOG clients ship logical records, not physical before/after images"
                        .into(),
                });
            }
            if self.cfg.flavor != RecoveryFlavor::Adaptive && record::frame_tag(frame) == 11 {
                return Err(QsError::Protocol {
                    detail: "TxnScheme records are only legal under the adaptive flavor".into(),
                });
            }
            let mut txns = self.txns.lock(&self.tracer);
            // Mirror `rechain`: only update/whole-page/page-alloc/logical/
            // scheme records get the transaction's backward chain; any other
            // tag keeps the prev it was shipped with.
            let prev = match record::frame_tag(frame) {
                1..=3 | 8 | 11 => txns.get(txn)?.last_lsn,
                _ => record::frame_prev(frame),
            };
            let lsn = self.log.wal().append_rechained(frame, prev)?;
            txns.active_mut(txn)?.note_logged(lsn);
            if let Some(scheme) = record::frame_scheme(frame) {
                // The transaction's elected scheme governs how every later
                // record of this chain is processed.
                txns.active_mut(txn)?.scheme = Some(scheme);
            } else if let Some(pid) = record::frame_page(frame) {
                txns.active_mut(txn)?.pages_logged.insert(pid);
                let deferred = self.defers_apply(&txns, txn)?;
                drop(txns);
                if deferred {
                    // Deferred apply is off the allocation-free path by
                    // design; decoding per record is fine here.
                    let rec = LogRecord::decode(frame)?;
                    self.stash_pending(txn, &rec, lsn);
                } else {
                    self.dpt.lock(&self.tracer).entry(pid).or_insert(lsn);
                    if self.cfg.flavor == RecoveryFlavor::RedoAtServer {
                        // Redo application is off the allocation-free path by
                        // design; decoding per record is fine here.
                        let rec = LogRecord::decode(frame)?;
                        self.apply_redo_hot(&rec, lsn)?;
                    }
                }
            }
            at += len;
        }
        Ok(())
    }

    fn rechain(rec: LogRecord, prev: Lsn) -> LogRecord {
        match rec {
            LogRecord::Update { txn, page, slot, offset, before, after, .. } => {
                LogRecord::Update { txn, prev, page, slot, offset, before, after }
            }
            LogRecord::WholePage { txn, page, image, .. } => {
                LogRecord::WholePage { txn, prev, page, image }
            }
            LogRecord::PageAlloc { txn, page, .. } => LogRecord::PageAlloc { txn, prev, page },
            LogRecord::UpdateLogical { txn, page, slot, offset, after, .. } => {
                LogRecord::UpdateLogical { txn, prev, page, slot, offset, after }
            }
            LogRecord::TxnScheme { txn, scheme, .. } => LogRecord::TxnScheme { txn, prev, scheme },
            other => other,
        }
    }

    /// Stash one received `RedoLogical` record as a deferred op. Nothing
    /// touches the pool or the DPT here — that happens after the commit
    /// force in [`Server::apply_pending_committed`].
    fn stash_pending(&self, txn: TxnId, rec: &LogRecord, lsn: Lsn) {
        let op = match rec {
            LogRecord::UpdateLogical { page, slot, offset, after, .. } => PendingOp::Logical {
                page: *page,
                slot: *slot,
                offset: *offset,
                after: after.clone(),
                lsn,
            },
            LogRecord::WholePage { page, image, .. } => {
                PendingOp::Image { page: *page, image: image.clone(), lsn }
            }
            // PageAlloc needs no deferred work: the volume allocation
            // already happened in `allocate_page`.
            _ => return,
        };
        self.pending.lock(&self.tracer).entry(txn).or_default().push(op);
    }

    /// Post-force half of a `RedoLogical` commit: move the transaction's
    /// deferred ops into the pool. WAL holds (the commit force just made
    /// every op durable) and no-steal holds (the ops were invisible until
    /// now, and from here on they are committed data). Pages are applied
    /// in ascending page-id order so pool state is deterministic.
    fn apply_pending_committed(&self, txn: TxnId) -> QsResult<()> {
        let Some(ops) = self.pending.lock(&self.tracer).remove(&txn) else {
            return Ok(());
        };
        let mut by_page: std::collections::BTreeMap<PageId, Vec<PendingOp>> =
            std::collections::BTreeMap::new();
        for op in ops {
            by_page.entry(op.page()).or_default().push(op);
        }
        for (pid, ops) in by_page {
            let mut pool = self.pool.lock(pid, &self.tracer);
            if !pool.contains(pid) {
                self.meter.server_pool_misses.fetch_add(1, Ordering::Relaxed);
                self.meter.data_reads.fetch_add(1, Ordering::Relaxed);
                let page = self.volume.lock(&self.tracer).read_page(pid)?;
                let evicted = pool.insert(pid, page, false)?;
                if let Some(ev) = evicted {
                    self.evict_dirty_hot(ev)?;
                }
            }
            let rec_lsn = ops[0].lsn();
            let page = pool.get_mut(pid).expect("page resident after read");
            for op in &ops {
                Self::apply_pending_op(page, pid, op)?;
                self.meter.redo_applies.fetch_add(1, Ordering::Relaxed);
            }
            pool.mark_dirty(pid);
            drop(pool);
            self.dpt.lock(&self.tracer).entry(pid).or_insert(rec_lsn);
        }
        Ok(())
    }

    /// Apply one redo record to the server's copy of the page, under the
    /// page's shard lock. Only the REDO flavor reaches this, so a pool
    /// miss always fills from the volume (no WPL table involved).
    fn apply_redo_hot(&self, rec: &LogRecord, lsn: Lsn) -> QsResult<()> {
        let pid = rec.page().expect("redo record without page");
        let mut pool = self.pool.lock(pid, &self.tracer);
        // Ensure the page is resident (disk read on miss — metered).
        if !pool.contains(pid) {
            self.meter.server_pool_misses.fetch_add(1, Ordering::Relaxed);
            self.meter.data_reads.fetch_add(1, Ordering::Relaxed);
            let page = self.volume.lock(&self.tracer).read_page(pid)?;
            let evicted = pool.insert(pid, page, false)?;
            if let Some(ev) = evicted {
                self.evict_dirty_hot(ev)?;
            }
        }
        let page = pool.get_mut(pid).expect("page resident after read");
        match rec {
            LogRecord::Update { slot, offset, after, .. } => {
                let obj = page.object_mut(pid, *slot)?;
                let off = *offset as usize;
                if off + after.len() > obj.len() {
                    return Err(QsError::RecoveryFailed {
                        detail: format!("redo range past object end on {pid}"),
                    });
                }
                obj[off..off + after.len()].copy_from_slice(after);
            }
            LogRecord::WholePage { image, .. } => {
                *page = Page::from_bytes(image)?;
            }
            _ => {}
        }
        page.set_lsn(lsn);
        pool.mark_dirty(pid);
        drop(pool);
        self.dpt.lock(&self.tracer).entry(pid).or_insert(lsn);
        self.meter.redo_applies.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Client declares that all log records it will generate for `pid` in
    /// this transaction have been shipped (possibly zero). Enforcement hook
    /// for the log-before-page rule.
    pub fn note_page_logged(&self, txn: TxnId, pid: PageId) -> QsResult<()> {
        self.txns.lock(&self.tracer).active_mut(txn)?.pages_logged.insert(pid);
        Ok(())
    }

    /// Receive a dirty page from a client.
    pub fn receive_dirty_page(&self, txn: TxnId, pid: PageId, page: Page) -> QsResult<()> {
        self.txns.lock(&self.tracer).active_mut(txn)?;
        match self.cfg.flavor {
            RecoveryFlavor::RedoAtServer => {
                Err(QsError::Protocol { detail: "REDO clients do not ship dirty pages".into() })
            }
            RecoveryFlavor::RedoLogical => Err(QsError::Protocol {
                detail: "RLOG clients do not ship dirty pages (no-steal)".into(),
            }),
            RecoveryFlavor::EsmAries | RecoveryFlavor::Adaptive => {
                let mut page = page;
                {
                    let txns = self.txns.lock(&self.tracer);
                    // Adaptive transactions that elected a logical scheme
                    // are no-steal: their updates live only in the pending
                    // map until commit, so a dirty-page ship is a protocol
                    // error.
                    if txns.get(txn)?.scheme.map(|s| s.is_logical()).unwrap_or(false) {
                        return Err(QsError::Protocol {
                            detail: "logically-elected adaptive txns do not ship dirty pages"
                                .into(),
                        });
                    }
                    // Log-before-page rule (§3.1): the server must never
                    // cache a page for which it lacks the update log records.
                    if !txns.get(txn)?.pages_logged.contains(&pid) {
                        return Err(QsError::LogBeforePageViolation(pid));
                    }
                    page.set_lsn(txns.get(txn)?.last_lsn);
                }
                let rec_lsn = self.log.wal().tail_lsn();
                let mut pool = self.pool.lock(pid, &self.tracer);
                let evicted = pool.insert(pid, page, true)?;
                self.dpt.lock(&self.tracer).entry(pid).or_insert(rec_lsn);
                if let Some(ev) = evicted {
                    self.evict_dirty_hot(ev)?;
                }
                Ok(())
            }
            RecoveryFlavor::Wpl => {
                // Append the whole page to the log; track it in the WPL
                // table; cache it. Its permanent location stays untouched
                // until after commit (§3.4.2).
                let mut page = page;
                let mut txns = self.txns.lock(&self.tracer);
                let prev = txns.get(txn)?.last_lsn;
                let rec =
                    LogRecord::WholePage { txn, prev, page: pid, image: page.bytes().to_vec() };
                let lsn = self.log.wal().append(&rec)?;
                page.set_lsn(lsn);
                let t = txns.active_mut(txn)?;
                t.note_logged(lsn);
                t.logged_pages.push(pid);
                drop(txns);
                self.wpl.lock(&self.tracer).log_page(pid, lsn, txn);
                let mut pool = self.pool.lock(pid, &self.tracer);
                let evicted = pool.insert(pid, page, true)?;
                if let Some(ev) = evicted {
                    self.evict_dirty_hot(ev)?;
                }
                Ok(())
            }
        }
    }

    /// Commit: force the log (records + commit record; under WPL this
    /// forces the page images too), flip WPL entries to committed, release
    /// locks. NO-FORCE: data pages are *not* written to the volume here.
    ///
    /// The txn-table lock is released across the force so concurrent
    /// committers can append their own commit records while this one's
    /// batch syncs — that window is what group commit batches over.
    ///
    /// Returns the server's current [`LogPressure`], piggybacked on the
    /// commit acknowledgement so adaptive clients can weight their next
    /// scheme election without an extra round trip.
    pub fn commit(&self, txn: TxnId) -> QsResult<LogPressure> {
        let lsn = self.commit_append(txn)?;
        let stats = self.log.commit_force(lsn, &self.tracer)?;
        self.meter_force(stats);
        let pressure = self.commit_finish(txn)?;
        // Watermark maintenance rides on the committing client only on
        // the direct path; the reactor's committer triggers it once per
        // batch instead (`runtime::committer_loop`).
        self.maybe_maintain()?;
        Ok(pressure)
    }

    /// First half of [`Server::commit`]: append the commit record and
    /// return its LSN. The force and the post-force bookkeeping are left to
    /// the caller so the reactor's committer can batch one force over many
    /// appended commit records.
    pub(crate) fn commit_append(&self, txn: TxnId) -> QsResult<Lsn> {
        let mut txns = self.txns.lock(&self.tracer);
        let prev = txns.active_mut(txn)?.last_lsn;
        let lsn = self.log.wal().append(&LogRecord::Commit { txn, prev })?;
        // Flip to Committed under the same lock as the append. Checkpoint
        // snapshots (which also hold the txn-table lock across their own
        // record append) list only *active* transactions, so a transaction
        // is excluded exactly when its commit record precedes the
        // checkpoint record — otherwise a checkpoint landing between this
        // append and `commit_finish` would snapshot the transaction as
        // active, restart's forward scan (from the checkpoint) would never
        // see the earlier commit, and undo would roll back committed work.
        txns.get_mut(txn)?.status = TxnStatus::Committed;
        Ok(lsn)
    }

    /// Force the log through `max_lsn` on behalf of a batch of `batch`
    /// appended commit records and meter it the way `batch` sequential
    /// direct commits would have: one real force (or one no-op if the tail
    /// is already durable) plus `batch - 1` no-op forces for the riders.
    /// That keeps `log_forces + log_forces_noop == commits` — the same
    /// invariant the group-commit leader/follower path maintains.
    pub(crate) fn commit_force_batch(&self, max_lsn: Lsn, batch: usize) -> QsResult<()> {
        let stats = self.log.commit_force(max_lsn, &self.tracer)?;
        self.meter_force(stats);
        for _ in 1..batch {
            self.meter.log_forces_noop.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Second half of [`Server::commit`]: everything after the force.
    /// Returns the post-commit [`LogPressure`] for the reply piggyback.
    pub(crate) fn commit_finish(&self, txn: TxnId) -> QsResult<LogPressure> {
        if matches!(self.cfg.flavor, RecoveryFlavor::RedoLogical | RecoveryFlavor::Adaptive) {
            // The force just made every deferred op durable; apply them
            // now, before the transaction leaves the table. (Adaptive:
            // only logically-elected transactions have pending ops.)
            self.apply_pending_committed(txn)?;
        }
        let mut txns = self.txns.lock(&self.tracer);
        if self.cfg.flavor == RecoveryFlavor::Wpl {
            // `get_mut`, not `active_mut`: `commit_append` already flipped
            // the status to Committed.
            let logged = std::mem::take(&mut txns.get_mut(txn)?.logged_pages);
            self.wpl.lock(&self.tracer).on_commit(txn, &logged);
        }
        txns.remove(txn);
        drop(txns);
        self.locks.release_all(txn);
        self.meter.commits.fetch_add(1, Ordering::Relaxed);
        Ok(self.log_pressure())
    }

    /// The server-side log-pressure signal piggybacked on commit replies:
    /// `fill` is the log's distance past the low watermark toward the high
    /// (truncation-anchor distance), `queue` is commit forces in flight
    /// over [`LogPressure::QUEUE_SATURATION`]. Both clamp to `[0, 1]`.
    pub fn log_pressure(&self) -> LogPressure {
        let used = self.log.wal().used_bytes() as f64;
        let cap = self.log.wal().body_capacity() as f64;
        let low = self.cfg.log_low_watermark;
        let high = self.cfg.log_high_watermark;
        let span = (high - low).max(f64::EPSILON);
        let fill = (used / cap - low) / span;
        let queue = self.log.forces_in_flight() as f64 / LogPressure::QUEUE_SATURATION as f64;
        LogPressure::new(fill, queue)
    }

    /// Abort: ARIES-style undo with CLRs (ESM/REDO flavors); under WPL
    /// simply forget the transaction's logged images and drop its cached
    /// pages (§3.4.2: "abort … by simply ignoring, from then on, any of its
    /// updated values"). Undo reads and rewrites pages across subsystems,
    /// so the whole abort runs quiesced.
    pub fn abort(&self, txn: TxnId) -> QsResult<()> {
        if matches!(self.cfg.flavor, RecoveryFlavor::RedoLogical | RecoveryFlavor::Adaptive) {
            // Deferred ops were never applied anywhere; dropping them IS
            // the rollback. Taken before quiescing: the pending lock is
            // never nested inside the subsystem locks. (Adaptive: only
            // logically-elected transactions have deferred ops.)
            self.pending.lock(&self.tracer).remove(&txn);
        }
        self.with_quiesced(|view| -> QsResult<()> {
            view.txns.active_mut(txn)?;
            let elected_logical =
                view.txns.get(txn)?.scheme.map(|s| s.is_logical()).unwrap_or(false);
            match self.cfg.flavor {
                RecoveryFlavor::Wpl => {
                    view.wpl.on_abort(txn);
                    let logged = view.txns.get(txn)?.logged_pages.clone();
                    for pid in logged {
                        view.pool.remove(pid);
                    }
                }
                RecoveryFlavor::RedoLogical => {
                    // No-steal + deferred apply: nothing of this
                    // transaction reached the pool or the volume. Close
                    // the chain with an abort record — no undo, no CLRs.
                    let prev = view.txns.get(txn)?.last_lsn;
                    view.log.append(&LogRecord::Abort { txn, prev })?;
                }
                RecoveryFlavor::Adaptive if elected_logical => {
                    // Same no-steal argument as RLOG: the pending ops were
                    // dropped above and nothing else reached shared state.
                    let prev = view.txns.get(txn)?.last_lsn;
                    view.log.append(&LogRecord::Abort { txn, prev })?;
                }
                _ => {
                    let last = view.txns.get(txn)?.last_lsn;
                    let mut cache = qs_wal::LogReadCache::default();
                    self.undo_chain(view, txn, last, &mut cache)?;
                    let prev = view.txns.get(txn)?.last_lsn;
                    view.log.append(&LogRecord::Abort { txn, prev })?;
                }
            }
            view.txns.get_mut(txn)?.status = TxnStatus::Aborted;
            view.txns.remove(txn);
            Ok(())
        })?;
        self.locks.release_all(txn);
        Ok(())
    }

    /// Walk a transaction's backward chain applying before-images, writing
    /// CLRs. Used by abort and by restart undo. Returns the number of
    /// update records undone (restart-report input). Chain reads go through
    /// `cache`, a log-page cache: the backward walk revisits the same log
    /// pages constantly, and the cache turns those into one log-disk fetch
    /// per distinct page (its hit counter also feeds the restart report).
    pub(crate) fn undo_chain(
        &self,
        view: &mut InnerView<'_>,
        txn: TxnId,
        from: Lsn,
        cache: &mut qs_wal::LogReadCache,
    ) -> QsResult<u64> {
        let mut undone = 0u64;
        let mut at = from;
        while !at.is_null() {
            let (rec, _) = cache.read_record(view.log, at)?;
            match rec {
                LogRecord::Update { page: pid, slot, offset, before, prev, .. } => {
                    if !view.pool.contains(pid) {
                        let p = self.read_page_view(view, Some(txn), pid)?;
                        drop(p);
                    }
                    let clr_lsn_guess = view.log.tail_lsn();
                    let page = view.pool.get_mut(pid).expect("resident");
                    let obj = page.object_mut(pid, slot)?;
                    let off = offset as usize;
                    obj[off..off + before.len()].copy_from_slice(&before);
                    page.set_lsn(clr_lsn_guess);
                    view.pool.mark_dirty(pid);
                    let t_prev = view.txns.get(txn)?.last_lsn;
                    let clr = LogRecord::Clr {
                        txn,
                        prev: t_prev,
                        page: pid,
                        slot,
                        offset,
                        after: before.clone(),
                        undo_next: prev,
                    };
                    let lsn = view.log.append(&clr)?;
                    view.txns.active_mut(txn)?.note_logged(lsn);
                    view.dpt.entry(pid).or_insert(lsn);
                    undone += 1;
                    at = prev;
                }
                LogRecord::Clr { undo_next, .. } => at = undo_next,
                // UpdateLogical carries no before-image (RLOG is no-steal
                // and never undoes); if one is ever reached here just walk
                // past it.
                LogRecord::WholePage { prev, .. }
                | LogRecord::PageAlloc { prev, .. }
                | LogRecord::UpdateLogical { prev, .. }
                | LogRecord::TxnScheme { prev, .. }
                | LogRecord::Commit { prev, .. }
                | LogRecord::Abort { prev, .. } => at = prev,
                LogRecord::Checkpoint { .. }
                | LogRecord::BeginCheckpoint { .. }
                | LogRecord::EndCheckpoint { .. } => break,
            }
        }
        Ok(undone)
    }

    // ---------------------------------------------------------------------
    // Checkpointing, maintenance, reclamation
    // ---------------------------------------------------------------------

    /// Run maintenance if the log is past its high watermark. With the
    /// background flusher running, the pass is queued there (deduplicated)
    /// and this returns immediately; otherwise it runs inline as before.
    pub fn maybe_maintain(&self) -> QsResult<()> {
        let (used, cap) = (self.log.wal().used_bytes(), self.log.wal().body_capacity());
        if (used as f64) < self.cfg.log_high_watermark * cap as f64 {
            return Ok(());
        }
        if self.request_maintenance() {
            return Ok(());
        }
        self.maintain_now()
    }

    /// Run one maintenance pass (checkpoint or WPL reclaim) on the
    /// calling thread, whatever the log level.
    pub fn maintain_now(&self) -> QsResult<()> {
        match self.cfg.flavor {
            RecoveryFlavor::Wpl => self.wpl_reclaim(),
            _ => self.checkpoint(),
        }
    }

    /// Queue a maintenance pass on the flusher thread. Returns false when
    /// no flusher is running (the caller should run inline); true when the
    /// pass is queued or one already is (requests are deduplicated, so a
    /// storm of committers costs one wakeup).
    fn request_maintenance(&self) -> bool {
        let handle = self.flusher.lock();
        let Some(h) = handle.as_ref() else { return false };
        if self
            .maint_pending
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
            && h.tx.send(FlusherMsg::Maintain).is_err()
        {
            self.maint_pending.store(false, Ordering::Release);
            return false;
        }
        true
    }

    /// Explicitly queue a checkpoint on the flusher thread (benchmark /
    /// scale-harness hook for periodic maintenance below the watermark).
    /// Returns false when no flusher is running.
    pub fn request_checkpoint(&self) -> bool {
        self.request_maintenance()
    }

    /// One flusher-thread maintenance pass. Errors have no client to
    /// return to; they are traced, and the next watermark crossing
    /// retries.
    pub(crate) fn flusher_tick(&self) {
        self.maint_pending.store(false, Ordering::Release);
        if self.maintain_now().is_err() {
            self.tracer.event(TraceCat::Flusher, "error", 0, 0);
        }
    }

    /// Start the background flusher thread (no-op when the config knob is
    /// off or it is already running). Needs the `Arc` so the thread can
    /// hold a weak back-pointer that never outlives a crash.
    pub fn start_flusher(self: &Arc<Server>) {
        if !self.cfg.flusher.enabled {
            return;
        }
        let mut handle = self.flusher.lock();
        if handle.is_none() {
            *handle = Some(FlusherHandle::spawn(self));
        }
    }

    /// Stop and join the flusher thread, letting any queued pass finish
    /// first (no-op when not running). Tests call this before `crash()`
    /// so the `Arc` can be unwrapped.
    pub fn stop_flusher(&self) {
        let handle = self.flusher.lock().take();
        if let Some(h) = handle {
            h.stop();
        }
    }

    /// `(elevator batches, pages)` written by fuzzy-checkpoint drains.
    pub fn flusher_stats(&self) -> (u64, u64) {
        (self.flusher_batches.load(Ordering::Relaxed), self.flusher_pages.load(Ordering::Relaxed))
    }

    /// Take a checkpoint. With the flusher knob off (the default) this is
    /// the original quiesced protocol: for the ARIES flavors it flushes
    /// all dirty pages first (a sharp checkpoint) so the log can truncate
    /// to the checkpoint; under WPL it snapshots the WPL table (§3.4.3).
    /// With the knob on it is the two-phase fuzzy protocol instead
    /// (begin record → incremental drain → end record), which never
    /// quiesces the server.
    pub fn checkpoint(&self) -> QsResult<()> {
        let _serial = self.ckpt_serial.lock();
        if self.cfg.flusher.enabled {
            self.checkpoint_fuzzy()
        } else {
            self.checkpoint_inner()
        }
    }

    /// The original quiesced (sharp / aged-fuzzy) checkpoint.
    fn checkpoint_inner(&self) -> QsResult<()> {
        let (flushed, log_used) = self.with_quiesced(|view| -> QsResult<(u64, u64)> {
            let mut flushed = 0u64;
            match self.cfg.flavor {
                RecoveryFlavor::Wpl => {}
                RecoveryFlavor::RedoLogical => {
                    // Fuzzy checkpoint: flush only pages that have stayed
                    // dirty since before the *previous* checkpoint, so each
                    // checkpoint bounds replay to roughly two checkpoint
                    // intervals without a write burst. The rest stay in the
                    // DPT the checkpoint record carries.
                    let prev_ck = view.log.checkpoint_lsn();
                    if !prev_ck.is_null() {
                        let mut old: Vec<PageId> = view
                            .dpt
                            .iter()
                            .filter(|&(_, &rec)| rec <= prev_ck)
                            .map(|(&p, _)| p)
                            .collect();
                        old.sort_unstable_by_key(|p| p.0);
                        let max_lsn =
                            old.iter().filter_map(|p| view.pool.peek(*p)).map(|p| p.lsn()).max();
                        if let Some(l) = max_lsn {
                            let stats = view.log.force(l)?;
                            self.meter_force_maint(stats);
                        }
                        for pid in old {
                            if let Some(page) = view.pool.peek(pid).cloned() {
                                view.volume.write_page(pid, &page)?;
                                self.meter_data_write_maint(1);
                                view.pool.clear_dirty(pid);
                                flushed += 1;
                            }
                            view.dpt.remove(&pid);
                        }
                    }
                }
                _ => {
                    // Flush every dirty page, obeying WAL (sharp checkpoint).
                    let dirty = view.pool.dirty_pages();
                    if !dirty.is_empty() {
                        let max_lsn =
                            dirty.iter().filter_map(|p| view.pool.peek(*p)).map(|p| p.lsn()).max();
                        if let Some(l) = max_lsn {
                            let stats = view.log.force(l)?;
                            self.meter_force_maint(stats);
                        }
                        for pid in dirty {
                            let page = view.pool.peek(pid).expect("dirty page resident").clone();
                            view.volume.write_page(pid, &page)?;
                            self.meter_data_write_maint(1);
                            view.pool.clear_dirty(pid);
                            flushed += 1;
                        }
                    }
                    view.dpt.clear();
                }
            }
            // Both tables are hash maps: sort the snapshots so the encoded
            // checkpoint record is deterministic (the fuzzy RLOG checkpoint
            // is the first flavor to carry a non-empty DPT in its body).
            let mut active_txns: Vec<(TxnId, Lsn)> =
                view.txns.active().map(|t| (t.id, t.last_lsn)).collect();
            active_txns.sort_unstable_by_key(|&(t, _)| t.0);
            let mut dirty_pages: Vec<(PageId, Lsn)> =
                view.dpt.iter().map(|(&p, &l)| (p, l)).collect();
            dirty_pages.sort_unstable_by_key(|&(p, _)| p.0);
            let body = CheckpointBody {
                active_txns,
                dirty_pages,
                wpl_entries: if self.cfg.flavor == RecoveryFlavor::Wpl {
                    view.wpl.checkpoint_entries()
                } else {
                    Vec::new()
                },
                allocated_pages: view.volume.allocated() as u64,
            };
            let ck_lsn = view.log.append(&LogRecord::Checkpoint { body })?;
            let stats = view.log.force(view.log.tail_lsn())?;
            self.meter_force_maint(stats);
            view.log.set_checkpoint(ck_lsn)?;
            view.volume.sync_header()?;
            // Truncate to the earliest record still needed.
            let mut keep = ck_lsn;
            if let Some(l) = view.txns.min_active_first_lsn() {
                keep = keep.min(l);
            }
            if self.cfg.flavor == RecoveryFlavor::Wpl {
                if let Some(l) = view.wpl.min_needed_lsn() {
                    keep = keep.min(l);
                }
            } else if let Some(&l) = view.dpt.values().min() {
                keep = keep.min(l);
            }
            view.log.truncate_to(keep)?;
            self.checkpoints.fetch_add(1, Ordering::Relaxed);
            Ok((flushed, view.log.used_bytes() as u64))
        })?;
        self.tracer.event(TraceCat::Checkpoint, "taken", flushed, log_used);
        Ok(())
    }

    /// The two-phase fuzzy checkpoint (flusher knob on): append a
    /// begin-checkpoint record carrying the table snapshots, drain the
    /// claimed dirty set incrementally (never holding more than one shard
    /// lock), then append an end-checkpoint record and advance the log
    /// truncation low-water mark. Foreground traffic runs throughout.
    fn checkpoint_fuzzy(&self) -> QsResult<()> {
        let (begin, claimed) = self.fuzzy_begin()?;
        let flushed = self.fuzzy_drain(&claimed)?;
        self.fuzzy_end(begin, flushed)
    }

    /// Phase 1: snapshot the transaction / dirty-page / WPL tables, pick
    /// the claimed set the drain will flush, and append the
    /// begin-checkpoint record. The txn-table lock is held across the
    /// append (every transaction-logging path holds it too), so the body
    /// is atomic with respect to the log: a record at LSN > begin is not
    /// reflected in the body, one at LSN < begin is.
    fn fuzzy_begin(&self) -> QsResult<(Lsn, Vec<PageId>)> {
        let txns = self.txns.lock(&self.tracer);
        let mut active_txns: Vec<(TxnId, Lsn)> =
            txns.active().map(|t| (t.id, t.last_lsn)).collect();
        active_txns.sort_unstable_by_key(|&(t, _)| t.0);
        let wpl = self.wpl.lock(&self.tracer);
        let dpt = self.dpt.lock(&self.tracer);
        let mut dirty_pages: Vec<(PageId, Lsn)> = dpt.iter().map(|(&p, &l)| (p, l)).collect();
        dirty_pages.sort_unstable_by_key(|&(p, _)| p.0);
        let claimed: Vec<PageId> = match self.cfg.flavor {
            // WPL write-back belongs to reclaim, not the checkpoint.
            RecoveryFlavor::Wpl => Vec::new(),
            // Same aging rule as the quiesced fuzzy checkpoint: drain only
            // pages dirty since before the previous checkpoint, bounding
            // replay to ~two checkpoint intervals without a write burst.
            RecoveryFlavor::RedoLogical => {
                let prev_ck = self.log.wal().checkpoint_lsn();
                if prev_ck.is_null() {
                    Vec::new()
                } else {
                    dirty_pages.iter().filter(|&&(_, l)| l <= prev_ck).map(|&(p, _)| p).collect()
                }
            }
            _ => dirty_pages.iter().map(|&(p, _)| p).collect(),
        };
        let body = CheckpointBody {
            active_txns,
            dirty_pages,
            wpl_entries: if self.cfg.flavor == RecoveryFlavor::Wpl {
                wpl.checkpoint_entries()
            } else {
                Vec::new()
            },
            allocated_pages: self.volume.lock(&self.tracer).allocated() as u64,
        };
        drop(dpt);
        drop(wpl);
        let begin = self.log.wal().append(&LogRecord::BeginCheckpoint { body })?;
        drop(txns);
        Ok((begin, claimed))
    }

    /// Phase 2: the incremental drain. Pages are claimed batch-by-batch
    /// under only their shard's lock: each still-dirty resident page is
    /// snapshotted into a pooled buffer and *pinned* (so the LRU cannot
    /// evict-and-write-back a newer image that this batch's older
    /// snapshot would then clobber), the lock is released, the log is
    /// forced through the batch's highest pageLSN (WAL), and the images
    /// go to the data disk in one ascending elevator sweep. The confirm
    /// step unpins and marks clean only pages whose LSN did not move —
    /// a page re-dirtied mid-flight keeps its dirt and its DPT entry, so
    /// nothing is lost and the stale write is covered by a later one.
    fn fuzzy_drain(&self, claimed: &[PageId]) -> QsResult<u64> {
        if claimed.is_empty() {
            return Ok(0);
        }
        let nshards = self.pool.shard_count();
        // Cap claims at half a shard so pinned pages can never wedge
        // foreground inserts into `BufferPoolExhausted`.
        let per_shard = (self.cfg.pool_pages / nshards).max(1);
        let batch_pages = self.cfg.flusher.batch_pages.clamp(1, (per_shard / 2).max(1));
        let mut by_shard: Vec<Vec<PageId>> = vec![Vec::new(); nshards];
        for &pid in claimed {
            by_shard[self.pool.shard_of(pid)].push(pid);
        }
        let mut flushed = 0u64;
        for (idx, pids) in by_shard.iter().enumerate() {
            for chunk in pids.chunks(batch_pages) {
                let t0 = std::time::Instant::now();
                let mut pool = self.pool.lock_shard(idx, &self.tracer);
                self.tracer.record("flusher_claim_wait_ns", t0.elapsed().as_nanos() as u64);
                let mut batch: Vec<(PageId, Page)> = Vec::new();
                for &pid in chunk {
                    if pool.is_dirty(pid) {
                        if let Some(p) = pool.peek(pid) {
                            batch.push((pid, self.snapshots.snapshot(p)));
                            pool.pin(pid);
                        }
                    }
                }
                drop(pool);
                if batch.is_empty() {
                    continue;
                }
                let max_lsn = batch.iter().map(|(_, p)| p.lsn()).max().expect("non-empty batch");
                let stats = self.log.wal().force(max_lsn)?;
                self.meter_force_maint(stats);
                // `claimed` is pid-sorted, so each shard's chunk is too.
                self.volume.write_sorted(&self.tracer, &batch)?;
                self.meter_data_write_maint(batch.len() as u64);
                let n = batch.len() as u64;
                let mut pool = self.pool.lock_shard(idx, &self.tracer);
                let mut dpt = self.dpt.lock(&self.tracer);
                let mut recycle = Vec::with_capacity(batch.len());
                for (pid, snap) in batch {
                    pool.unpin(pid);
                    let unchanged = pool.peek(pid).map(|p| p.lsn() == snap.lsn()).unwrap_or(false);
                    if unchanged && pool.is_dirty(pid) {
                        pool.clear_dirty(pid);
                        dpt.remove(&pid);
                    }
                    recycle.push(snap);
                }
                drop(dpt);
                drop(pool);
                self.snapshots.recycle(recycle);
                flushed += n;
                self.flusher_batches.fetch_add(1, Ordering::Relaxed);
                self.flusher_pages.fetch_add(n, Ordering::Relaxed);
                self.tracer.event(TraceCat::Flusher, "batch", n, 0);
                self.tracer.record("flusher_batch_pages", n);
            }
        }
        Ok(flushed)
    }

    /// Phase 3: append and force the end-checkpoint record, and only then
    /// advance the header checkpoint to the *begin* record — a crash
    /// between the pair leaves the header on the previous complete
    /// checkpoint, so restart falls back automatically. Finally advance
    /// the truncation low-water mark as far as the tables allow.
    fn fuzzy_end(&self, begin: Lsn, flushed: u64) -> QsResult<()> {
        let txns = self.txns.lock(&self.tracer);
        let end = self.log.wal().append(&LogRecord::EndCheckpoint { begin })?;
        let stats = self.log.wal().force(end)?;
        self.meter_force_maint(stats);
        self.log.wal().set_checkpoint(begin)?;
        self.volume.lock(&self.tracer).sync_header()?;
        let mut keep = begin;
        if let Some(l) = txns.min_active_first_lsn() {
            keep = keep.min(l);
        }
        if self.cfg.flavor == RecoveryFlavor::Wpl {
            if let Some(l) = self.wpl.lock(&self.tracer).min_needed_lsn() {
                keep = keep.min(l);
            }
        } else if let Some(&l) = self.dpt.lock(&self.tracer).values().min() {
            keep = keep.min(l);
        }
        self.log.wal().advance_low_water_mark(keep)?;
        drop(txns);
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.tracer.event(
            TraceCat::Checkpoint,
            "fuzzy",
            flushed,
            self.log.wal().used_bytes() as u64,
        );
        Ok(())
    }

    /// Append and force a begin-checkpoint record, then stop — leaving
    /// the checkpoint incomplete on purpose. Crash-injection hook for the
    /// begin/end fallback tests; no production path calls this.
    #[doc(hidden)]
    pub fn begin_checkpoint_for_test(&self) -> QsResult<Lsn> {
        let _serial = self.ckpt_serial.lock();
        let (begin, _claimed) = self.fuzzy_begin()?;
        let stats = self.log.wal().force(self.log.wal().tail_lsn())?;
        self.meter_force_maint(stats);
        Ok(begin)
    }

    /// Write the live committed image at (`pid`, `lsn`) to its permanent
    /// location — from the pool when still cached (the paper's
    /// optimization), else read back from the log. Shared body of
    /// [`Server::wpl_reclaim`] and the [`Server::quiesce`] drain.
    fn wpl_write_home(&self, view: &mut InnerView<'_>, pid: PageId, lsn: Lsn) -> QsResult<()> {
        let cached_ok =
            view.wpl.newest(pid).map(|v| v.lsn == lsn && view.pool.contains(pid)).unwrap_or(false);
        let page = if cached_ok {
            view.pool.peek(pid).expect("cached").clone()
        } else {
            self.meter.log_pages_read.fetch_add(1, Ordering::Relaxed);
            self.meter.maint_log_pages_read.fetch_add(1, Ordering::Relaxed);
            Self::page_image_from_log(view.log, lsn, pid)?
        };
        view.volume.write_page(pid, &page)?;
        self.meter_data_write_maint(1);
        if cached_ok {
            view.pool.clear_dirty(pid);
        }
        Ok(())
    }

    /// WPL log-space reclamation (the paper's background thread, §3.4.2,
    /// run here synchronously until the low watermark is reached). Images
    /// superseded by newer committed images are dropped without I/O; live
    /// images are read back (from the pool when still cached — the paper's
    /// optimization — else from the log) and written to their permanent
    /// locations.
    pub fn wpl_reclaim(&self) -> QsResult<()> {
        let _serial = self.ckpt_serial.lock();
        self.with_quiesced(|view| -> QsResult<()> {
            let low = (self.cfg.log_low_watermark * view.log.body_capacity() as f64) as usize;
            loop {
                if view.log.used_bytes() <= low {
                    break;
                }
                let Some((pid, lsn, superseded)) = view.wpl.reclaim_candidate() else {
                    break;
                };
                if !superseded {
                    // Interleaving invariance (§6f): when a newer
                    // *uncommitted* version of this page exists, whether
                    // the candidate reads as live or superseded is being
                    // decided by a race against that in-flight
                    // transaction's commit — one schedule pays a read-back
                    // plus write-home, another pays nothing. Defer: the
                    // commit (or abort) settles supersession on a stable
                    // per-transaction account, and the next watermark
                    // crossing retries. (`break`, not `continue`: the
                    // candidate would not change.)
                    if view.wpl.has_newer_uncommitted(pid, lsn) {
                        break;
                    }
                    // Find the committed image and flush it home.
                    self.wpl_write_home(view, pid, lsn)?;
                }
                view.wpl.remove_version(pid, lsn);
                self.reclaimed.fetch_add(1, Ordering::Relaxed);

                // Advance the log start as far as the table and active
                // transactions allow; if we cannot advance past an
                // uncommitted image, stop (the paper's thread would wait
                // for the commit).
                let mut keep = view.log.durable_lsn();
                if let Some(l) = view.wpl.min_needed_lsn() {
                    keep = keep.min(l);
                }
                if let Some(l) = view.txns.min_active_first_lsn() {
                    keep = keep.min(l);
                }
                let ck = view.log.checkpoint_lsn();
                if !ck.is_null() {
                    keep = keep.min(ck);
                }
                view.log.truncate_to(keep)?;
                if view.log.used_bytes() > low && view.wpl.oldest_is_uncommitted() {
                    break;
                }
            }
            Ok(())
        })?;
        // Refresh the checkpoint so restart's backward scan stays short and
        // the old checkpoint stops pinning the log tail. Dispatch directly:
        // `checkpoint()` would retake the (non-reentrant) serial lock.
        if self.cfg.flusher.enabled {
            self.checkpoint_fuzzy()
        } else {
            self.checkpoint_inner()
        }
    }

    /// Flush everything dirty and checkpoint (test/benchmark quiesce hook).
    pub fn quiesce(&self) -> QsResult<()> {
        if self.cfg.flavor == RecoveryFlavor::Wpl {
            // Drain the WPL table completely.
            self.with_quiesced(|view| -> QsResult<()> {
                while let Some((pid, lsn, superseded)) = view.wpl.reclaim_candidate() {
                    if !superseded {
                        // Same deferral as `wpl_reclaim`: a newer
                        // uncommitted version means supersession is still
                        // in flight; let the commit decide.
                        if view.wpl.has_newer_uncommitted(pid, lsn) {
                            break;
                        }
                        self.wpl_write_home(view, pid, lsn)?;
                    }
                    view.wpl.remove_version(pid, lsn);
                    self.reclaimed.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            })?;
        }
        if self.cfg.flavor == RecoveryFlavor::RedoLogical {
            // Fuzzy checkpoints only flush pages dirty since before the
            // previous checkpoint; a first pass ages every current dirty
            // page, so the second drains them all.
            self.checkpoint()?;
        }
        self.checkpoint()
    }

    // ---------------------------------------------------------------------
    // Introspection for tests and the restart modules
    // ---------------------------------------------------------------------

    /// Read a page the way a post-restart client would (pool → WPL table →
    /// volume), without transaction context. Test helper.
    pub fn read_page_for_test(&self, pid: PageId) -> QsResult<Page> {
        self.read_page_hot(None, pid)
    }

    /// Number of active transactions.
    pub fn active_txns(&self) -> usize {
        self.txns.lock(&self.tracer).active().count()
    }

    /// WPL table size (pages tracked).
    pub fn wpl_table_len(&self) -> usize {
        self.wpl.lock(&self.tracer).len()
    }

    /// Current log occupancy in bytes.
    pub fn log_used_bytes(&self) -> usize {
        self.log.wal().used_bytes()
    }

    // ---------------------------------------------------------------------
    // WPL restart (§3.4.3)
    // ---------------------------------------------------------------------

    /// Reconstruct the WPL table after a crash: one backward pass from the
    /// end of the (durable) log to the most recent checkpoint, building the
    /// committed-transactions list (CTL) and inserting WPL entries for
    /// pages whose writers committed; then merge the checkpoint's entries.
    ///
    /// Returns raw (unpriced) per-phase work counts for the restart report.
    fn wpl_restart(&self) -> QsResult<Vec<PhaseStat>> {
        let mut scan = PhaseStat { name: "backward_scan", ..PhaseStat::default() };
        let mut rebuild = PhaseStat { name: "table_rebuild", ..PhaseStat::default() };
        self.with_quiesced(|view| -> QsResult<()> {
            let end = view.log.durable_lsn();
            let ck = view.log.checkpoint_lsn();
            let stop = if ck.is_null() { view.log.start_lsn() } else { ck };

            let mut ctl: std::collections::HashSet<TxnId> = std::collections::HashSet::new();
            let mut claimed: std::collections::HashSet<PageId> = std::collections::HashSet::new();
            let mut max_txn = TxnId::INVALID;
            let mut max_page: Option<u32> = None;
            let mut checkpoint_body: Option<CheckpointBody> = None;

            scan.pages_read = (end.0.saturating_sub(stop.0)).div_ceil(PAGE_SIZE as u64);
            let mut at = end;
            while at > stop {
                let (rec, start) = view.log.read_record_ending_at(at)?;
                self.meter.log_pages_read.fetch_add(1, Ordering::Relaxed);
                scan.records += 1;
                match &rec {
                    LogRecord::Commit { txn, .. } => {
                        ctl.insert(*txn);
                    }
                    LogRecord::WholePage { txn, page, .. } => {
                        if ctl.contains(txn) && claimed.insert(*page) {
                            // Newest committed image for this page (backward
                            // scan sees newest first).
                            view.wpl.insert_restored(*page, start, *txn);
                        }
                        max_page = Some(max_page.unwrap_or(0).max(page.0 + 1));
                    }
                    LogRecord::Checkpoint { body } | LogRecord::BeginCheckpoint { body } => {
                        // Backward scan: the last overwrite wins, i.e. the
                        // oldest in-range record — the restart anchor. An
                        // orphaned begin (crash before its end record) sits
                        // later than the anchor and is harmlessly replaced.
                        checkpoint_body = Some(body.clone());
                    }
                    _ => {}
                }
                let t = rec.txn();
                if t != TxnId::INVALID && (max_txn == TxnId::INVALID || t.0 > max_txn.0) {
                    max_txn = t;
                }
                at = start;
            }
            // The checkpoint record sits exactly at `stop` when one exists.
            if !ck.is_null() && checkpoint_body.is_none() {
                match view.log.read_record(ck)?.0 {
                    LogRecord::Checkpoint { body } | LogRecord::BeginCheckpoint { body } => {
                        self.meter.log_pages_read.fetch_add(1, Ordering::Relaxed);
                        rebuild.pages_read += 1;
                        checkpoint_body = Some(body);
                    }
                    _ => {}
                }
            }
            if let Some(body) = checkpoint_body {
                for e in &body.wpl_entries {
                    if (e.committed || ctl.contains(&e.txn)) && claimed.insert(e.page) {
                        view.wpl.insert_restored(e.page, e.lsn, e.txn);
                    }
                    rebuild.records += 1;
                    max_page = Some(max_page.unwrap_or(0).max(e.page.0 + 1));
                }
                view.volume.ensure_allocated(body.allocated_pages as usize)?;
            }
            if let Some(mp) = max_page {
                view.volume.ensure_allocated(mp as usize)?;
            }
            *view.txns = TxnTable::resuming_after(max_txn);
            Ok(())
        })?;
        Ok(vec![scan, rebuild])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(flavor: RecoveryFlavor) -> ServerConfig {
        ServerConfig {
            flavor,
            pool_pages: 64,
            volume_pages: 256,
            log_bytes: 4 * 1024 * 1024,
            log_high_watermark: 0.6,
            log_low_watermark: 0.3,
            pool_shards: 1,
            group_commit: false,
            restart: RestartConfig::default(),
            flusher: FlusherConfig::default(),
            runtime: RuntimeConfig::default(),
        }
    }

    fn loaded_server(flavor: RecoveryFlavor) -> (Server, Vec<PageId>) {
        let server = Server::format(small_cfg(flavor), Meter::new()).unwrap();
        let pids = server.bulk_allocate(8).unwrap();
        for &pid in &pids {
            let mut p = Page::new();
            p.insert(pid, &[0u8; 64]).unwrap();
            server.bulk_write(pid, &p).unwrap();
        }
        server.bulk_sync().unwrap();
        (server, pids)
    }

    fn updated_page(server: &Server, txn: TxnId, pid: PageId, val: u8) -> Page {
        let mut page = server.fetch_page(txn, pid).unwrap();
        let obj = page.object_mut(pid, 0).unwrap();
        obj.fill(val);
        page
    }

    /// Run one committed update through the ESM flavor and crash.
    fn esm_commit_crash(flavor: RecoveryFlavor) -> (StableParts, ServerConfig, PageId) {
        let (server, pids) = loaded_server(flavor);
        let pid = pids[0];
        let txn = server.begin();
        server.lock_page(txn, pid, LockMode::X).unwrap();
        let page = updated_page(&server, txn, pid, 7);
        match flavor {
            RecoveryFlavor::Wpl => {
                server.receive_dirty_page(txn, pid, page).unwrap();
            }
            RecoveryFlavor::RedoLogical => {
                let rec = LogRecord::UpdateLogical {
                    txn,
                    prev: Lsn::NULL,
                    page: pid,
                    slot: 0,
                    offset: 0,
                    after: vec![7u8; 64],
                };
                server.receive_log_records(txn, vec![rec]).unwrap();
            }
            _ => {
                let rec = LogRecord::Update {
                    txn,
                    prev: Lsn::NULL,
                    page: pid,
                    slot: 0,
                    offset: 0,
                    before: vec![0u8; 64],
                    after: vec![7u8; 64],
                };
                server.receive_log_records(txn, vec![rec]).unwrap();
                if flavor == RecoveryFlavor::EsmAries {
                    server.receive_dirty_page(txn, pid, page).unwrap();
                }
            }
        }
        server.commit(txn).unwrap();
        let cfg = server.config().clone();
        (server.crash(), cfg, pid)
    }

    #[test]
    fn force_stats_metered_on_both_paths() {
        use qs_wal::log::ForceStats;
        let meter = Meter::new();
        let server =
            Server::format(small_cfg(RecoveryFlavor::EsmAries), Arc::clone(&meter)).unwrap();
        server.meter_force(ForceStats { pages_written: 2, wrote: true });
        server.meter_force(ForceStats { pages_written: 0, wrote: false });
        let s = meter.snapshot();
        assert_eq!(s.log_forces, 1, "only the real force counts as a force");
        assert_eq!(s.log_pages_written, 2);
        assert_eq!(s.log_forces_noop, 1, "the no-op force is counted separately");
    }

    #[test]
    fn traced_restart_reports_phases_and_flight() {
        let cfg = small_cfg(RecoveryFlavor::EsmAries);
        let meter = Meter::new();
        let tracer = Tracer::flight(Arc::clone(&meter), HardwareModel::paper_1995(), 32);
        let server = Server::format_traced(cfg.clone(), Arc::clone(&meter), tracer).unwrap();
        let pids = server.bulk_allocate(2).unwrap();
        for &pid in &pids {
            let mut p = Page::new();
            p.insert(pid, &[0u8; 64]).unwrap();
            server.bulk_write(pid, &p).unwrap();
        }
        server.bulk_sync().unwrap();
        let txn = server.begin();
        server.lock_page(txn, pids[0], LockMode::X).unwrap();
        let page = updated_page(&server, txn, pids[0], 7);
        let rec = LogRecord::Update {
            txn,
            prev: Lsn::NULL,
            page: pids[0],
            slot: 0,
            offset: 0,
            before: vec![0u8; 64],
            after: vec![7u8; 64],
        };
        server.receive_log_records(txn, vec![rec]).unwrap();
        server.receive_dirty_page(txn, pids[0], page).unwrap();
        server.commit(txn).unwrap();
        let parts = server.crash();
        assert!(parts.flight.as_ref().is_some_and(|f| !f.is_empty()), "crash snapshots the ring");
        let meter2 = Meter::new();
        let tracer2 = Tracer::flight(Arc::clone(&meter2), HardwareModel::paper_1995(), 32);
        let server2 = Server::restart_traced(parts, cfg, meter2, tracer2).unwrap();
        let report = server2.restart_report().expect("restart produces a report");
        assert_eq!(report.flavor, "ESM");
        assert_eq!(report.phases.len(), 3, "analysis / redo / undo");
        assert!(report.total_records() > 0, "the commit left records to analyze");
        assert!(report.total_sim_s() > 0.0);
        assert!(!report.flight.is_empty(), "the crashed server's flight rode along");
        assert!(server2.restart_report().is_some(), "report is clonable out repeatedly");
    }

    #[test]
    fn committed_update_survives_crash_esm() {
        let (parts, cfg, pid) = esm_commit_crash(RecoveryFlavor::EsmAries);
        let server = Server::restart(parts, cfg, Meter::new()).unwrap();
        let page = server.read_page_for_test(pid).unwrap();
        assert_eq!(page.object(pid, 0).unwrap(), &[7u8; 64][..]);
    }

    #[test]
    fn committed_update_survives_crash_redo() {
        let (parts, cfg, pid) = esm_commit_crash(RecoveryFlavor::RedoAtServer);
        let server = Server::restart(parts, cfg, Meter::new()).unwrap();
        let page = server.read_page_for_test(pid).unwrap();
        assert_eq!(page.object(pid, 0).unwrap(), &[7u8; 64][..]);
    }

    #[test]
    fn committed_update_survives_crash_rlog_without_undo_phase() {
        let (parts, cfg, pid) = esm_commit_crash(RecoveryFlavor::RedoLogical);
        let server = Server::restart(parts, cfg, Meter::new()).unwrap();
        let page = server.read_page_for_test(pid).unwrap();
        assert_eq!(page.object(pid, 0).unwrap(), &[7u8; 64][..]);
        let report = server.restart_report().unwrap();
        assert_eq!(report.flavor, "RLOG");
        assert_eq!(report.phases.len(), 2, "analysis / redo — no undo under no-steal");
        assert!(report.phases.iter().all(|p| p.name != "undo"));
        assert!(report.phases.iter().any(|p| p.name == "redo" && p.records > 0));
    }

    #[test]
    fn committed_update_survives_crash_wpl() {
        let (parts, cfg, pid) = esm_commit_crash(RecoveryFlavor::Wpl);
        let server = Server::restart(parts, cfg, Meter::new()).unwrap();
        assert_eq!(server.wpl_table_len(), 1, "WPL table reconstructed");
        let page = server.read_page_for_test(pid).unwrap();
        assert_eq!(page.object(pid, 0).unwrap(), &[7u8; 64][..]);
        // And after draining the table the permanent location is correct.
        server.quiesce().unwrap();
        assert_eq!(server.wpl_table_len(), 0);
        let page = server.read_page_for_test(pid).unwrap();
        assert_eq!(page.object(pid, 0).unwrap(), &[7u8; 64][..]);
    }

    #[test]
    fn uncommitted_update_rolled_back_on_restart() {
        for flavor in [
            RecoveryFlavor::EsmAries,
            RecoveryFlavor::RedoAtServer,
            RecoveryFlavor::RedoLogical,
            RecoveryFlavor::Wpl,
        ] {
            let (server, pids) = loaded_server(flavor);
            let pid = pids[0];
            let txn = server.begin();
            server.lock_page(txn, pid, LockMode::X).unwrap();
            let page = updated_page(&server, txn, pid, 9);
            match flavor {
                RecoveryFlavor::Wpl => server.receive_dirty_page(txn, pid, page).unwrap(),
                RecoveryFlavor::RedoLogical => {
                    let rec = LogRecord::UpdateLogical {
                        txn,
                        prev: Lsn::NULL,
                        page: pid,
                        slot: 0,
                        offset: 0,
                        after: vec![9u8; 64],
                    };
                    server.receive_log_records(txn, vec![rec]).unwrap();
                }
                _ => {
                    let rec = LogRecord::Update {
                        txn,
                        prev: Lsn::NULL,
                        page: pid,
                        slot: 0,
                        offset: 0,
                        before: vec![0u8; 64],
                        after: vec![9u8; 64],
                    };
                    server.receive_log_records(txn, vec![rec]).unwrap();
                    if flavor == RecoveryFlavor::EsmAries {
                        server.receive_dirty_page(txn, pid, page).unwrap();
                    }
                }
            }
            // Crash before commit.
            let cfg = server.config().clone();
            let server2 = Server::restart(server.crash(), cfg, Meter::new()).unwrap();
            let page = server2.read_page_for_test(pid).unwrap();
            assert_eq!(
                page.object(pid, 0).unwrap(),
                &[0u8; 64][..],
                "{flavor:?}: uncommitted update must not survive"
            );
            assert_eq!(server2.active_txns(), 0);
        }
    }

    /// Restart undo reads its chain through the log-page cache, and the
    /// report's `pages_read` counts *distinct* log pages fetched — not one
    /// page per record undone (100 undone records here span only a few
    /// 8 KB log pages).
    #[test]
    fn undo_counts_distinct_log_pages_not_records() {
        let (server, pids) = loaded_server(RecoveryFlavor::EsmAries);
        let pid = pids[0];
        let txn = server.begin();
        server.lock_page(txn, pid, LockMode::X).unwrap();
        let rec = |i: u8| LogRecord::Update {
            txn,
            prev: Lsn::NULL,
            page: pid,
            slot: 0,
            offset: 0,
            before: vec![0u8; 64],
            after: vec![i; 64],
        };
        let rec_len = rec(0).encoded_len() as u64;
        server.receive_log_records(txn, (0..100).map(|i| rec(i as u8)).collect()).unwrap();
        // Checkpoint: forces the records durable and records the loser in
        // the checkpoint's active-transaction table.
        server.checkpoint().unwrap();
        let cfg = server.config().clone();
        let server2 = Server::restart(server.crash(), cfg, Meter::new()).unwrap();
        let report = server2.restart_report().unwrap();
        let undo = &report.phases[2];
        assert_eq!(undo.name, "undo");
        assert_eq!(undo.records, 100, "all 100 updates undone");
        // The chain starts at the log origin (nothing logged before it);
        // its 100 records span exactly these log pages.
        let first = PAGE_SIZE as u64;
        let distinct: std::collections::HashSet<u64> =
            (0..100u64).map(|i| (first + i * rec_len) / PAGE_SIZE as u64).collect();
        assert!(distinct.len() < 10, "sanity: records pack many per page");
        assert_eq!(undo.pages_read, distinct.len() as u64, "distinct log pages, not records");
        // And the rollback took: the page shows its before-image.
        let page = server2.read_page_for_test(pid).unwrap();
        assert_eq!(page.object(pid, 0).unwrap(), &[0u8; 64][..]);
    }

    #[test]
    fn explicit_abort_restores_old_value() {
        for flavor in [
            RecoveryFlavor::EsmAries,
            RecoveryFlavor::RedoAtServer,
            RecoveryFlavor::RedoLogical,
            RecoveryFlavor::Wpl,
        ] {
            let (server, pids) = loaded_server(flavor);
            let pid = pids[0];
            let txn = server.begin();
            server.lock_page(txn, pid, LockMode::X).unwrap();
            let page = updated_page(&server, txn, pid, 5);
            match flavor {
                RecoveryFlavor::Wpl => server.receive_dirty_page(txn, pid, page).unwrap(),
                RecoveryFlavor::RedoLogical => {
                    let rec = LogRecord::UpdateLogical {
                        txn,
                        prev: Lsn::NULL,
                        page: pid,
                        slot: 0,
                        offset: 0,
                        after: vec![5u8; 64],
                    };
                    server.receive_log_records(txn, vec![rec]).unwrap();
                }
                _ => {
                    let rec = LogRecord::Update {
                        txn,
                        prev: Lsn::NULL,
                        page: pid,
                        slot: 0,
                        offset: 0,
                        before: vec![0u8; 64],
                        after: vec![5u8; 64],
                    };
                    server.receive_log_records(txn, vec![rec]).unwrap();
                    if flavor == RecoveryFlavor::EsmAries {
                        server.receive_dirty_page(txn, pid, page).unwrap();
                    }
                }
            }
            server.abort(txn).unwrap();
            let page = server.read_page_for_test(pid).unwrap();
            assert_eq!(page.object(pid, 0).unwrap(), &[0u8; 64][..], "{flavor:?}");
        }
    }

    #[test]
    fn log_before_page_rule_enforced() {
        let (server, pids) = loaded_server(RecoveryFlavor::EsmAries);
        let pid = pids[0];
        let txn = server.begin();
        server.lock_page(txn, pid, LockMode::X).unwrap();
        let page = updated_page(&server, txn, pid, 3);
        assert!(matches!(
            server.receive_dirty_page(txn, pid, page),
            Err(QsError::LogBeforePageViolation(_))
        ));
    }

    #[test]
    fn redo_flavor_rejects_dirty_pages_and_wpl_rejects_records() {
        let (server, pids) = loaded_server(RecoveryFlavor::RedoAtServer);
        let txn = server.begin();
        assert!(server.receive_dirty_page(txn, pids[0], Page::new()).is_err());
        let (server, pids) = loaded_server(RecoveryFlavor::Wpl);
        let txn = server.begin();
        let rec = LogRecord::Update {
            txn,
            prev: Lsn::NULL,
            page: pids[0],
            slot: 0,
            offset: 0,
            before: vec![0],
            after: vec![1],
        };
        assert!(server.receive_log_records(txn, vec![rec]).is_err());
    }

    #[test]
    fn rlog_rejects_dirty_pages_and_physical_updates() {
        let (server, pids) = loaded_server(RecoveryFlavor::RedoLogical);
        let txn = server.begin();
        server.lock_page(txn, pids[0], LockMode::X).unwrap();
        // No-steal: the server never accepts uncommitted frames.
        assert!(server.receive_dirty_page(txn, pids[0], Page::new()).is_err());
        // Logical flavor: before/after-image records are a protocol error.
        let rec = LogRecord::Update {
            txn,
            prev: Lsn::NULL,
            page: pids[0],
            slot: 0,
            offset: 0,
            before: vec![0],
            after: vec![1],
        };
        assert!(server.receive_log_records(txn, vec![rec]).is_err());
        // The logical form is accepted, and is applied only at commit:
        // until then the server's copy of the page still shows old bytes.
        let rec = LogRecord::UpdateLogical {
            txn,
            prev: Lsn::NULL,
            page: pids[0],
            slot: 0,
            offset: 0,
            after: vec![4u8; 64],
        };
        server.receive_log_records(txn, vec![rec]).unwrap();
        let page = server.read_page_for_test(pids[0]).unwrap();
        assert_eq!(page.object(pids[0], 0).unwrap(), &[0u8; 64][..], "deferred until commit");
        // But the writing transaction sees its own pending ops overlaid.
        let own = server.fetch_page(txn, pids[0]).unwrap();
        assert_eq!(own.object(pids[0], 0).unwrap(), &[4u8; 64][..], "own writes visible");
        server.commit(txn).unwrap();
        let page = server.read_page_for_test(pids[0]).unwrap();
        assert_eq!(page.object(pids[0], 0).unwrap(), &[4u8; 64][..]);
    }

    #[test]
    fn wpl_second_committed_version_wins_after_crash() {
        let (server, pids) = loaded_server(RecoveryFlavor::Wpl);
        let pid = pids[0];
        for val in [1u8, 2u8] {
            let txn = server.begin();
            server.lock_page(txn, pid, LockMode::X).unwrap();
            let page = updated_page(&server, txn, pid, val);
            server.receive_dirty_page(txn, pid, page).unwrap();
            server.commit(txn).unwrap();
        }
        let cfg = server.config().clone();
        let server2 = Server::restart(server.crash(), cfg, Meter::new()).unwrap();
        let page = server2.read_page_for_test(pid).unwrap();
        assert_eq!(page.object(pid, 0).unwrap(), &[2u8; 64][..]);
    }

    #[test]
    fn wpl_reclaim_keeps_log_bounded() {
        let mut cfg = small_cfg(RecoveryFlavor::Wpl);
        cfg.log_bytes = 64 * PAGE_SIZE; // tiny log: forces reclaim
        let server = Server::format(cfg, Meter::new()).unwrap();
        let pids = server.bulk_allocate(4).unwrap();
        for &pid in &pids {
            let mut p = Page::new();
            p.insert(pid, &[0u8; 64]).unwrap();
            server.bulk_write(pid, &p).unwrap();
        }
        server.bulk_sync().unwrap();
        // Many transactions re-dirtying the same pages: without reclaim the
        // 64-page log would overflow after ~60 ships.
        for round in 0..100u8 {
            let txn = server.begin();
            for &pid in &pids {
                server.lock_page(txn, pid, LockMode::X).unwrap();
                let page = updated_page(&server, txn, pid, round);
                server.receive_dirty_page(txn, pid, page).unwrap();
            }
            server.commit(txn).unwrap();
        }
        assert!(server.wpl_images_reclaimed() > 0);
        let page = server.read_page_for_test(pids[0]).unwrap();
        assert_eq!(page.object(pids[0], 0).unwrap(), &[99u8; 64][..]);
    }

    #[test]
    fn checkpoint_allows_esm_log_truncation() {
        let mut cfg = small_cfg(RecoveryFlavor::EsmAries);
        cfg.log_bytes = 256 * PAGE_SIZE;
        let server = Server::format(cfg, Meter::new()).unwrap();
        let pids = server.bulk_allocate(2).unwrap();
        for &pid in &pids {
            let mut p = Page::new();
            p.insert(pid, &[0u8; 1024]).unwrap();
            server.bulk_write(pid, &p).unwrap();
        }
        server.bulk_sync().unwrap();
        for round in 0..2000u32 {
            let txn = server.begin();
            let pid = pids[(round % 2) as usize];
            server.lock_page(txn, pid, LockMode::X).unwrap();
            let rec = LogRecord::Update {
                txn,
                prev: Lsn::NULL,
                page: pid,
                slot: 0,
                offset: 0,
                before: vec![(round % 251) as u8; 1024],
                after: vec![((round + 1) % 251) as u8; 1024],
            };
            server.receive_log_records(txn, vec![rec]).unwrap();
            let page = updated_page(&server, txn, pid, ((round + 1) % 251) as u8);
            server.receive_dirty_page(txn, pid, page).unwrap();
            server.commit(txn).unwrap();
        }
        assert!(server.checkpoints_taken() > 0, "watermark maintenance ran");
    }

    #[test]
    fn transactional_page_allocation_survives_crash() {
        let (server, _) = loaded_server(RecoveryFlavor::EsmAries);
        let txn = server.begin();
        let pid = server.allocate_page(txn).unwrap();
        let mut page = Page::new();
        page.insert(pid, b"fresh object").unwrap();
        // New pages are whole-page logged by ESM (§3.6).
        let rec =
            LogRecord::WholePage { txn, prev: Lsn::NULL, page: pid, image: page.bytes().to_vec() };
        server.receive_log_records(txn, vec![rec]).unwrap();
        server.receive_dirty_page(txn, pid, page).unwrap();
        server.commit(txn).unwrap();
        let cfg = server.config().clone();
        let server2 = Server::restart(server.crash(), cfg, Meter::new()).unwrap();
        let page = server2.read_page_for_test(pid).unwrap();
        assert_eq!(page.object(pid, 0).unwrap(), b"fresh object");
    }
}
