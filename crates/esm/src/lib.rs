//! The EXODUS Storage Manager (ESM) substrate: a client-server,
//! page-shipping storage manager (paper §3.1).
//!
//! * Clients and the server each manage their own buffer pool
//!   ([`buffer::BufferPool`]).
//! * Clients fetch pages from the server over a (metered, simulated)
//!   network, update objects locally, generate log records, and ship log
//!   records *before* the pages they describe (the log-before-page rule).
//! * The server manages a circular log (via `qs-wal`), hierarchical
//!   page/record locks ([`lock::LockManager`]), a STEAL/NO-FORCE buffer
//!   pool, and restart
//!   recovery — ARIES-style for the ESM/REDO flavors ([`aries`]),
//!   backward-scan reconstruction for whole-page logging ([`wpl`]).
//! * Three server flavors ([`RecoveryFlavor`]) correspond to the paper's
//!   underlying recovery strategies: `EsmAries` (log records + dirty pages
//!   shipped), `RedoAtServer` (log records only; server applies redo), and
//!   `Wpl` (dirty pages only; whole-page logging at the server).
//!
//! Everything the server keeps in ordinary memory is volatile: a simulated
//! crash ([`server::Server::crash`]) drops the struct and keeps only the
//! stable media, from which [`server::Server::restart`] recovers.
//!
//! Internally the server is decomposed into independently locked
//! subsystems — a sharded buffer pool ([`shard`]), the log tower with
//! optional group commit ([`tower`]), the data-disk gate ([`gate`]), and
//! small dedicated locks for the transaction/WPL/dirty-page tables — see
//! the module docs on [`server`] and DESIGN.md for the locking protocol.

pub mod aries;
pub mod buffer;
pub mod client;
pub mod flusher;
pub mod gate;
pub mod lock;
pub mod net;
pub mod restart_par;
pub mod runtime;
pub mod server;
pub mod shard;
pub mod tower;
pub mod txn;
pub mod wpl;

pub use buffer::{BufferPool, Evicted};
pub use client::ClientConn;
pub use flusher::FlusherConfig;
pub use gate::VolumeGate;
pub use lock::{AsyncLockOutcome, LockEvents, LockManager, LockMode, Resource};
pub use runtime::{ClientPort, Reactor, Request, Response, RuntimeConfig, RuntimeStats};
pub use server::{RecoveryFlavor, RestartConfig, Server, ServerConfig, StableParts};
pub use shard::ShardedPool;
pub use tower::LogTower;
