//! The background flusher: non-quiescent checkpoint drains.
//!
//! When [`FlusherConfig::enabled`] is on, maintenance no longer runs
//! inline on whichever client's commit crossed the log high watermark.
//! Instead a dedicated thread owns the drain: [`crate::server::Server`]'s
//! two-phase fuzzy checkpoint claims batches of dirty pages shard by
//! shard (pinning them under only that shard's lock), snapshots them into
//! pooled page buffers, releases the lock, forces the log through the
//! batch's highest pageLSN (WAL), and writes the images to the data disk
//! in ascending page-id order through [`crate::gate::VolumeGate::write_sorted`]
//! — one elevator sweep per batch. Foreground commits only ever contend
//! for one shard lock for the duration of a claim, never for a
//! stop-the-world flush.
//!
//! The default is off: every committed figure is produced by the original
//! quiesced sharp/fuzzy checkpoint paths, byte-identical.

use crate::server::Server;
use qs_storage::Page;
use qs_types::sync::Mutex;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

/// Background-flusher knobs, carried in `ServerConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlusherConfig {
    /// Run maintenance on the background flusher thread and take fuzzy
    /// begin/end checkpoints instead of quiesced sharp ones. Off by
    /// default: the committed figures are single-client runs of the
    /// quiesced path and must stay byte-identical.
    pub enabled: bool,
    /// Pages claimed (and pinned) per shard-lock acquisition. Small
    /// batches bound how long a claim holds a shard lock against
    /// foreground traffic; large batches amortize the log force and the
    /// elevator sweep.
    pub batch_pages: usize,
}

impl Default for FlusherConfig {
    fn default() -> FlusherConfig {
        FlusherConfig { enabled: false, batch_pages: 64 }
    }
}

/// Wakeup messages for the flusher thread.
pub(crate) enum FlusherMsg {
    /// Run one maintenance pass (checkpoint or WPL reclaim).
    Maintain,
    /// Exit the loop (stop_flusher joins afterwards).
    Stop,
}

/// The running flusher thread, held by the server.
pub(crate) struct FlusherHandle {
    pub(crate) tx: Sender<FlusherMsg>,
    join: JoinHandle<()>,
}

impl FlusherHandle {
    /// Spawn the flusher loop. The thread holds only a `Weak` back-pointer
    /// so it can never keep a crashed server alive; if the server is gone
    /// (or the channel closed) the loop exits.
    pub(crate) fn spawn(server: &Arc<Server>) -> FlusherHandle {
        let weak: Weak<Server> = Arc::downgrade(server);
        let (tx, rx) = channel();
        let join = std::thread::Builder::new()
            .name("qs-flusher".into())
            .spawn(move || flusher_loop(weak, rx))
            .expect("spawn flusher thread");
        FlusherHandle { tx, join }
    }

    /// Ask the thread to exit and wait for it. Any maintenance pass still
    /// queued before the stop marker runs to completion first.
    pub(crate) fn stop(self) {
        let _ = self.tx.send(FlusherMsg::Stop);
        let _ = self.join.join();
    }
}

fn flusher_loop(server: Weak<Server>, rx: Receiver<FlusherMsg>) {
    while let Ok(FlusherMsg::Maintain) = rx.recv() {
        let Some(server) = server.upgrade() else { break };
        server.flusher_tick();
    }
}

/// A free list of page buffers for claim snapshots, reused across batches
/// so a steady-state drain allocates nothing per page (the esm crate's
/// stand-in for the client-side BlockCopy pool, which lives upstream in
/// qs-core and cannot be depended on from here).
pub(crate) struct SnapshotPool {
    free: Mutex<Vec<Page>>,
}

/// Buffers kept across batches. Claims larger than this still work; the
/// excess buffers are dropped on recycle instead of pooled.
const POOL_CAP: usize = 256;

impl SnapshotPool {
    pub(crate) fn new() -> SnapshotPool {
        SnapshotPool { free: Mutex::new(Vec::new()) }
    }

    /// Copy `src` into a pooled buffer.
    pub(crate) fn snapshot(&self, src: &Page) -> Page {
        let mut p = self.free.lock().pop().unwrap_or_default();
        p.bytes_mut().copy_from_slice(src.bytes());
        p
    }

    /// Return a batch's buffers to the free list.
    pub(crate) fn recycle(&self, pages: impl IntoIterator<Item = Page>) {
        let mut free = self.free.lock();
        for p in pages {
            if free.len() >= POOL_CAP {
                break;
            }
            free.push(p);
        }
    }
}
