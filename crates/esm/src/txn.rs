//! The server's transaction table.

use qs_types::{Lsn, PageId, QsError, QsResult, TxnId};
use std::collections::{HashMap, HashSet};

/// Lifecycle of a transaction at the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    Active,
    Committed,
    Aborted,
}

/// Per-transaction server state.
#[derive(Debug)]
pub struct TxnState {
    pub id: TxnId,
    pub status: TxnStatus,
    /// Most recent log record written by this transaction (backward chain
    /// head for undo).
    pub last_lsn: Lsn,
    /// First log record written by this transaction (log truncation bound).
    pub first_lsn: Lsn,
    /// WPL: pages this transaction has had logged (the per-transaction list
    /// of §3.4.2, walked at commit to flip WPL-table entries to committed).
    pub logged_pages: Vec<PageId>,
    /// ESM log-before-page rule enforcement: pages for which this
    /// transaction has already shipped log records (or declared none
    /// needed).
    pub pages_logged: HashSet<PageId>,
    /// Adaptive flavor: the logging scheme this transaction elected via its
    /// `TxnScheme` record. `None` until (or unless) one arrives.
    pub scheme: Option<qs_wal::SchemeCode>,
}

impl TxnState {
    fn new(id: TxnId) -> TxnState {
        TxnState {
            id,
            status: TxnStatus::Active,
            last_lsn: Lsn::NULL,
            first_lsn: Lsn::NULL,
            logged_pages: Vec::new(),
            pages_logged: HashSet::new(),
            scheme: None,
        }
    }

    /// Record that this transaction wrote a log record at `lsn`.
    pub fn note_logged(&mut self, lsn: Lsn) {
        if self.first_lsn.is_null() {
            self.first_lsn = lsn;
        }
        self.last_lsn = lsn;
    }
}

/// The transaction table: id assignment plus per-transaction state.
#[derive(Debug, Default)]
pub struct TxnTable {
    next_id: u64,
    txns: HashMap<TxnId, TxnState>,
}

impl TxnTable {
    pub fn new() -> TxnTable {
        TxnTable { next_id: 1, txns: HashMap::new() }
    }

    /// Restart constructor: id assignment resumes above anything in the log.
    pub fn resuming_after(max_seen: TxnId) -> TxnTable {
        let next = if max_seen == TxnId::INVALID { 1 } else { max_seen.0 + 1 };
        TxnTable { next_id: next, txns: HashMap::new() }
    }

    pub fn begin(&mut self) -> TxnId {
        let id = TxnId(self.next_id);
        self.next_id += 1;
        self.txns.insert(id, TxnState::new(id));
        id
    }

    /// Re-register a loser transaction found by restart analysis so the
    /// ordinary undo machinery can roll it back.
    pub fn restore(&mut self, id: TxnId, last_lsn: Lsn) {
        let mut t = TxnState::new(id);
        t.last_lsn = last_lsn;
        self.txns.insert(id, t);
        self.next_id = self.next_id.max(id.0 + 1);
    }

    pub fn get(&self, id: TxnId) -> QsResult<&TxnState> {
        self.txns.get(&id).ok_or(QsError::NoSuchTransaction(id))
    }

    pub fn get_mut(&mut self, id: TxnId) -> QsResult<&mut TxnState> {
        self.txns.get_mut(&id).ok_or(QsError::NoSuchTransaction(id))
    }

    /// Fetch an *active* transaction mutably; error if finished or unknown.
    pub fn active_mut(&mut self, id: TxnId) -> QsResult<&mut TxnState> {
        let t = self.txns.get_mut(&id).ok_or(QsError::NoSuchTransaction(id))?;
        if t.status != TxnStatus::Active {
            return Err(QsError::TransactionNotActive(id));
        }
        Ok(t)
    }

    /// Drop a finished transaction's state.
    pub fn remove(&mut self, id: TxnId) {
        self.txns.remove(&id);
    }

    /// All currently active transactions.
    pub fn active(&self) -> impl Iterator<Item = &TxnState> {
        self.txns.values().filter(|t| t.status == TxnStatus::Active)
    }

    /// Earliest `first_lsn` among active transactions (log truncation bound).
    pub fn min_active_first_lsn(&self) -> Option<Lsn> {
        self.active().filter(|t| !t.first_lsn.is_null()).map(|t| t.first_lsn).min()
    }

    pub fn len(&self) -> usize {
        self.txns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_assigns_monotonic_ids() {
        let mut tt = TxnTable::new();
        let a = tt.begin();
        let b = tt.begin();
        assert!(b.0 > a.0);
        assert_eq!(tt.len(), 2);
    }

    #[test]
    fn note_logged_tracks_first_and_last() {
        let mut tt = TxnTable::new();
        let id = tt.begin();
        let t = tt.active_mut(id).unwrap();
        t.note_logged(Lsn(100));
        t.note_logged(Lsn(250));
        assert_eq!(t.first_lsn, Lsn(100));
        assert_eq!(t.last_lsn, Lsn(250));
    }

    #[test]
    fn active_mut_rejects_finished() {
        let mut tt = TxnTable::new();
        let id = tt.begin();
        tt.get_mut(id).unwrap().status = TxnStatus::Committed;
        assert!(matches!(tt.active_mut(id), Err(QsError::TransactionNotActive(_))));
        assert!(matches!(tt.active_mut(TxnId(999)), Err(QsError::NoSuchTransaction(_))));
    }

    #[test]
    fn min_active_first_lsn_skips_unlogged_and_finished() {
        let mut tt = TxnTable::new();
        let a = tt.begin();
        let b = tt.begin();
        let _quiet = tt.begin(); // never logs
        tt.active_mut(a).unwrap().note_logged(Lsn(300));
        tt.active_mut(b).unwrap().note_logged(Lsn(200));
        assert_eq!(tt.min_active_first_lsn(), Some(Lsn(200)));
        tt.get_mut(b).unwrap().status = TxnStatus::Committed;
        assert_eq!(tt.min_active_first_lsn(), Some(Lsn(300)));
    }

    #[test]
    fn resuming_after_continues_ids() {
        let mut tt = TxnTable::resuming_after(TxnId(41));
        assert_eq!(tt.begin(), TxnId(42));
        let mut tt2 = TxnTable::resuming_after(TxnId::INVALID);
        assert_eq!(tt2.begin(), TxnId(1));
    }
}
