//! The server-side machinery of whole-page logging (paper §3.4).
//!
//! The WPL table tracks pages whose latest images live in the log rather
//! than at their permanent disk locations. The paper implements it as a
//! hash table whose entries carry `(PID, LSN, TID, status)` plus a pointer
//! to the entry for a previously-logged copy of the same page; we model the
//! pointer chain as an explicit version stack per page (oldest → newest),
//! which is functionally identical and much easier to reason about.
//!
//! Space-reuse rules implemented exactly as §3.4.2 describes:
//! * a logged copy can be dropped once it has been read back and written to
//!   its permanent location;
//! * a copy `C1` can also be dropped when a *newer committed* copy `C2` of
//!   the same page exists ("following a crash C2 will be used") — but both
//!   must be retained until C2's transaction commits.

use qs_types::{Lsn, PageId, TxnId};
use qs_wal::WplCheckpointEntry;
use std::collections::HashMap;

/// One logged copy of a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WplVersion {
    /// LSN of the `WholePage` record holding the image.
    pub lsn: Lsn,
    /// Transaction that dirtied the page.
    pub txn: TxnId,
    /// Has that transaction committed?
    pub committed: bool,
}

/// The WPL table.
#[derive(Debug, Default)]
pub struct WplTable {
    /// Versions per page, oldest first (the paper's prev-pointer chain).
    pages: HashMap<PageId, Vec<WplVersion>>,
}

impl WplTable {
    pub fn new() -> WplTable {
        WplTable::default()
    }

    /// A new image of `page` was appended to the log at `lsn` by `txn`.
    pub fn log_page(&mut self, page: PageId, lsn: Lsn, txn: TxnId) {
        let versions = self.pages.entry(page).or_default();
        // A transaction re-shipping the same page within one transaction
        // supersedes its own uncommitted image immediately: only the newest
        // matters for both re-reads and post-commit recovery.
        versions.retain(|v| v.txn != txn || v.committed);
        versions.push(WplVersion { lsn, txn, committed: false });
    }

    /// Commit processing: walk the transaction's logged-page list, mark its
    /// versions committed, and drop versions superseded by the newly
    /// committed copies (rule C1/C2).
    pub fn on_commit(&mut self, txn: TxnId, logged_pages: &[PageId]) {
        for &page in logged_pages {
            if let Some(versions) = self.pages.get_mut(&page) {
                for v in versions.iter_mut() {
                    if v.txn == txn {
                        v.committed = true;
                    }
                }
                Self::drop_superseded(versions);
            }
        }
    }

    /// Abort processing: the transaction's uncommitted images are garbage.
    pub fn on_abort(&mut self, txn: TxnId) {
        self.pages.retain(|_, versions| {
            versions.retain(|v| v.txn != txn || v.committed);
            !versions.is_empty()
        });
    }

    /// Keep only versions still needed: everything from the newest
    /// committed version onward (older committed copies are superseded;
    /// newer uncommitted copies are still needed for same-txn re-reads).
    fn drop_superseded(versions: &mut Vec<WplVersion>) {
        if let Some(newest_committed) = versions.iter().rposition(|v| v.committed) {
            versions.drain(..newest_committed);
        }
    }

    /// The newest logged version of `page` (committed or not) — the copy a
    /// server read should see, subject to locking.
    pub fn newest(&self, page: PageId) -> Option<&WplVersion> {
        self.pages.get(&page).and_then(|v| v.last())
    }

    /// The newest *committed* version of `page`.
    pub fn newest_committed(&self, page: PageId) -> Option<&WplVersion> {
        self.pages.get(&page).and_then(|v| v.iter().rev().find(|v| v.committed))
    }

    /// Remove a specific version once its image has been written to the
    /// permanent location (or is superseded). Cleans up empty chains.
    pub fn remove_version(&mut self, page: PageId, lsn: Lsn) {
        if let Some(versions) = self.pages.get_mut(&page) {
            versions.retain(|v| v.lsn != lsn);
            if versions.is_empty() {
                self.pages.remove(&page);
            }
        }
    }

    /// Oldest LSN still referenced (log-truncation bound), if any.
    pub fn min_needed_lsn(&self) -> Option<Lsn> {
        self.pages.values().flat_map(|v| v.iter().map(|v| v.lsn)).min()
    }

    /// The reclaim thread's next candidate: the *oldest committed* version
    /// in the table. Returns `(page, lsn, superseded)` where `superseded`
    /// means a newer committed version exists and the image need not be
    /// written out at all.
    pub fn reclaim_candidate(&self) -> Option<(PageId, Lsn, bool)> {
        let mut best: Option<(PageId, Lsn, bool)> = None;
        for (&page, versions) in &self.pages {
            let newest_committed = versions.iter().rev().find(|v| v.committed);
            for v in versions.iter().filter(|v| v.committed) {
                let superseded = newest_committed.map(|nc| nc.lsn > v.lsn).unwrap_or(false);
                if best.map(|(_, l, _)| v.lsn < l).unwrap_or(true) {
                    best = Some((page, v.lsn, superseded));
                }
            }
        }
        best
    }

    /// Does `page` carry a version newer than `lsn` whose transaction has
    /// not yet committed? Reclaim defers live write-homes in that case:
    /// whether the candidate is superseded is about to be decided by that
    /// transaction's commit or abort, and deferring keeps the reclaim I/O
    /// count a function of commit order alone rather than of how the
    /// reclaim pass interleaves with in-flight commits.
    pub fn has_newer_uncommitted(&self, page: PageId, lsn: Lsn) -> bool {
        self.pages
            .get(&page)
            .map(|versions| versions.iter().any(|v| !v.committed && v.lsn > lsn))
            .unwrap_or(false)
    }

    /// Is a version of this page held by an uncommitted transaction older
    /// than everything committed? (Then reclaim cannot advance past it.)
    pub fn oldest_is_uncommitted(&self) -> bool {
        let oldest_any = self.min_needed_lsn();
        let oldest_committed = self.reclaim_candidate().map(|(_, l, _)| l);
        match (oldest_any, oldest_committed) {
            (Some(a), Some(c)) => a < c,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Serialize for a checkpoint record (§3.4.3).
    pub fn checkpoint_entries(&self) -> Vec<WplCheckpointEntry> {
        let mut out = Vec::new();
        for (&page, versions) in &self.pages {
            for v in versions {
                out.push(WplCheckpointEntry {
                    page,
                    lsn: v.lsn,
                    txn: v.txn,
                    committed: v.committed,
                });
            }
        }
        out.sort_by_key(|e| e.lsn);
        out
    }

    /// Rebuild from checkpoint entries during restart (only entries whose
    /// transactions are known committed are passed in).
    pub fn insert_restored(&mut self, page: PageId, lsn: Lsn, txn: TxnId) {
        let versions = self.pages.entry(page).or_default();
        versions.push(WplVersion { lsn, txn, committed: true });
        versions.sort_by_key(|v| v.lsn);
        Self::drop_superseded(versions);
    }

    pub fn contains(&self, page: PageId) -> bool {
        self.pages.contains_key(&page)
    }

    pub fn len(&self) -> usize {
        self.pages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    pub fn clear(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PageId = PageId(1);
    const Q: PageId = PageId(2);

    #[test]
    fn log_and_commit_lifecycle() {
        let mut t = WplTable::new();
        t.log_page(P, Lsn(100), TxnId(1));
        assert!(!t.newest(P).unwrap().committed);
        assert!(t.newest_committed(P).is_none());
        t.on_commit(TxnId(1), &[P]);
        assert!(t.newest_committed(P).is_some());
        assert_eq!(t.newest_committed(P).unwrap().lsn, Lsn(100));
    }

    #[test]
    fn same_txn_reship_supersedes_own_image() {
        let mut t = WplTable::new();
        t.log_page(P, Lsn(100), TxnId(1));
        t.log_page(P, Lsn(300), TxnId(1)); // evicted + re-shipped
        t.on_commit(TxnId(1), &[P]);
        assert_eq!(t.newest_committed(P).unwrap().lsn, Lsn(300));
        assert_eq!(t.min_needed_lsn(), Some(Lsn(300)), "old image dropped");
    }

    #[test]
    fn c1_retained_until_c2_commits() {
        let mut t = WplTable::new();
        t.log_page(P, Lsn(100), TxnId(1));
        t.on_commit(TxnId(1), &[P]); // C1 committed
        t.log_page(P, Lsn(500), TxnId(2)); // C2 logged, uncommitted
                                           // Both needed: crash now must recover C1.
        assert_eq!(t.min_needed_lsn(), Some(Lsn(100)));
        t.on_commit(TxnId(2), &[P]);
        // C1 superseded by committed C2.
        assert_eq!(t.min_needed_lsn(), Some(Lsn(500)));
    }

    #[test]
    fn abort_drops_only_uncommitted() {
        let mut t = WplTable::new();
        t.log_page(P, Lsn(100), TxnId(1));
        t.on_commit(TxnId(1), &[P]);
        t.log_page(P, Lsn(500), TxnId(2));
        t.log_page(Q, Lsn(600), TxnId(2));
        t.on_abort(TxnId(2));
        assert_eq!(t.newest(P).unwrap().lsn, Lsn(100));
        assert!(!t.contains(Q));
    }

    #[test]
    fn reclaim_candidate_picks_oldest_committed_and_flags_superseded() {
        let mut t = WplTable::new();
        t.log_page(P, Lsn(100), TxnId(1));
        t.log_page(Q, Lsn(200), TxnId(1));
        t.on_commit(TxnId(1), &[P, Q]);
        let (page, lsn, superseded) = t.reclaim_candidate().unwrap();
        assert_eq!((page, lsn, superseded), (P, Lsn(100), false));
        t.remove_version(P, Lsn(100));
        let (page, lsn, _) = t.reclaim_candidate().unwrap();
        assert_eq!((page, lsn), (Q, Lsn(200)));
    }

    #[test]
    fn uncommitted_blocks_reclaim_detection() {
        let mut t = WplTable::new();
        t.log_page(P, Lsn(100), TxnId(9)); // active txn
        t.log_page(Q, Lsn(200), TxnId(1));
        t.on_commit(TxnId(1), &[Q]);
        assert!(t.oldest_is_uncommitted());
        t.on_commit(TxnId(9), &[P]);
        assert!(!t.oldest_is_uncommitted());
    }

    #[test]
    fn has_newer_uncommitted_tracks_in_flight_supersession() {
        let mut t = WplTable::new();
        t.log_page(P, Lsn(100), TxnId(1));
        t.on_commit(TxnId(1), &[P]);
        assert!(!t.has_newer_uncommitted(P, Lsn(100)), "no in-flight writer");
        t.log_page(P, Lsn(500), TxnId(2)); // newer, uncommitted
        assert!(t.has_newer_uncommitted(P, Lsn(100)), "supersession undecided");
        assert!(!t.has_newer_uncommitted(Q, Lsn(100)), "other pages unaffected");
        t.on_commit(TxnId(2), &[P]);
        assert!(!t.has_newer_uncommitted(P, Lsn(100)), "commit settled it");
        let mut u = WplTable::new();
        u.log_page(P, Lsn(100), TxnId(1));
        u.on_commit(TxnId(1), &[P]);
        u.log_page(P, Lsn(500), TxnId(2));
        u.on_abort(TxnId(2));
        assert!(!u.has_newer_uncommitted(P, Lsn(100)), "abort settled it");
    }

    #[test]
    fn checkpoint_round_trip_shape() {
        let mut t = WplTable::new();
        t.log_page(P, Lsn(100), TxnId(1));
        t.on_commit(TxnId(1), &[P]);
        t.log_page(Q, Lsn(300), TxnId(2));
        let entries = t.checkpoint_entries();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].committed && !entries[1].committed);

        let mut r = WplTable::new();
        for e in entries.iter().filter(|e| e.committed) {
            r.insert_restored(e.page, e.lsn, e.txn);
        }
        assert_eq!(r.newest_committed(P).unwrap().lsn, Lsn(100));
        assert!(!r.contains(Q));
    }

    #[test]
    fn insert_restored_keeps_only_newest() {
        let mut t = WplTable::new();
        t.insert_restored(P, Lsn(500), TxnId(3));
        t.insert_restored(P, Lsn(100), TxnId(1)); // out of order arrival
        assert_eq!(t.newest_committed(P).unwrap().lsn, Lsn(500));
        assert_eq!(t.min_needed_lsn(), Some(Lsn(500)));
    }
}
