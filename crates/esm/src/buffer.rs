//! A page buffer pool with O(1) true-LRU replacement, pin counts, and dirty
//! tracking. Used by both the server (STEAL/NO-FORCE) and the clients
//! (inter-transaction caching, §3.1: "Clients can cache pages in their
//! local buffer pools across transaction boundaries").
//!
//! The pool never does I/O itself: on overflow it *returns* the evicted
//! frame ([`Evicted`]) and the caller decides what shipping / logging /
//! write-back the recovery scheme requires. That inversion is essential
//! here — under PD an evicted dirty client page must be diffed first, under
//! WPL it must be shipped whole, and at the server a stolen page must obey
//! WAL — all policy that lives above the pool.

use qs_storage::Page;
use qs_types::{PageId, QsError, QsResult};
use std::collections::HashMap;

/// Doubly-linked LRU list over a slab of nodes; O(1) touch/insert/remove.
#[derive(Debug, Default)]
struct LruList {
    nodes: Vec<LruNode>,
    free: Vec<usize>,
    head: Option<usize>, // most-recently used
    tail: Option<usize>, // least-recently used
}

#[derive(Debug, Clone, Copy)]
struct LruNode {
    page: PageId,
    prev: Option<usize>,
    next: Option<usize>,
}

impl LruList {
    fn push_front(&mut self, page: PageId) -> usize {
        let node = LruNode { page, prev: None, next: self.head };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        if let Some(h) = self.head {
            self.nodes[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
        idx
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            Some(p) => self.nodes[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.nodes[n].prev = prev,
            None => self.tail = prev,
        }
        self.free.push(idx);
    }

    fn touch(&mut self, idx: usize) -> usize {
        let page = self.nodes[idx].page;
        self.unlink(idx);
        self.push_front(page)
    }

    /// Walk from the LRU end, returning the first node accepted by `f`.
    fn lru_find(&self, mut f: impl FnMut(PageId) -> bool) -> Option<usize> {
        let mut cur = self.tail;
        while let Some(i) = cur {
            if f(self.nodes[i].page) {
                return Some(i);
            }
            cur = self.nodes[i].prev;
        }
        None
    }
}

/// One cached page.
#[derive(Debug)]
struct Frame {
    page: Page,
    dirty: bool,
    pins: u32,
    lru_idx: usize,
}

/// A frame pushed out of the pool, handed back to the caller.
#[derive(Debug)]
pub struct Evicted {
    pub page_id: PageId,
    pub page: Page,
    pub dirty: bool,
}

/// Fixed-capacity page cache with LRU replacement.
pub struct BufferPool {
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    lru: LruList,
    evictions: u64,
}

impl BufferPool {
    /// `capacity` in pages (e.g. 8 MB / 8 KB = 1024).
    pub fn new(capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool must hold at least one page");
        BufferPool {
            capacity,
            frames: HashMap::with_capacity(capacity),
            lru: LruList::default(),
            evictions: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    pub fn contains(&self, pid: PageId) -> bool {
        self.frames.contains_key(&pid)
    }

    /// Borrow a cached page, refreshing its recency.
    pub fn get(&mut self, pid: PageId) -> Option<&Page> {
        match self.frames.get_mut(&pid) {
            Some(f) => {
                f.lru_idx = self.lru.touch(f.lru_idx);
                Some(&self.frames[&pid].page)
            }
            None => None,
        }
    }

    /// Borrow a cached page mutably (does not set the dirty bit — callers
    /// mark dirtiness explicitly, because "dirty" means *must be recovered*,
    /// not merely *was touched*).
    pub fn get_mut(&mut self, pid: PageId) -> Option<&mut Page> {
        match self.frames.get_mut(&pid) {
            Some(f) => {
                f.lru_idx = self.lru.touch(f.lru_idx);
                Some(&mut self.frames.get_mut(&pid).unwrap().page)
            }
            None => None,
        }
    }

    /// Peek without touching recency (used by diff/ship passes that must
    /// not perturb replacement behaviour).
    pub fn peek(&self, pid: PageId) -> Option<&Page> {
        self.frames.get(&pid).map(|f| &f.page)
    }

    pub fn is_dirty(&self, pid: PageId) -> bool {
        self.frames.get(&pid).map(|f| f.dirty).unwrap_or(false)
    }

    pub fn mark_dirty(&mut self, pid: PageId) {
        if let Some(f) = self.frames.get_mut(&pid) {
            f.dirty = true;
        }
    }

    pub fn clear_dirty(&mut self, pid: PageId) {
        if let Some(f) = self.frames.get_mut(&pid) {
            f.dirty = false;
        }
    }

    pub fn pin(&mut self, pid: PageId) {
        if let Some(f) = self.frames.get_mut(&pid) {
            f.pins += 1;
        }
    }

    pub fn unpin(&mut self, pid: PageId) {
        if let Some(f) = self.frames.get_mut(&pid) {
            debug_assert!(f.pins > 0, "unpin of unpinned page {pid}");
            f.pins = f.pins.saturating_sub(1);
        }
    }

    /// Insert (or replace) a page. If the pool is full, the LRU unpinned
    /// frame is evicted and returned; the caller must deal with it *before*
    /// using the pool again if it was dirty.
    pub fn insert(&mut self, pid: PageId, page: Page, dirty: bool) -> QsResult<Option<Evicted>> {
        if let Some(f) = self.frames.get_mut(&pid) {
            f.page = page;
            f.dirty = f.dirty || dirty;
            f.lru_idx = self.lru.touch(f.lru_idx);
            return Ok(None);
        }
        let evicted =
            if self.frames.len() >= self.capacity { Some(self.evict_lru()?) } else { None };
        let lru_idx = self.lru.push_front(pid);
        self.frames.insert(pid, Frame { page, dirty, pins: 0, lru_idx });
        Ok(evicted)
    }

    fn evict_lru(&mut self) -> QsResult<Evicted> {
        let frames = &self.frames;
        let idx = self
            .lru
            .lru_find(|pid| frames.get(&pid).map(|f| f.pins == 0).unwrap_or(false))
            .ok_or(QsError::BufferPoolExhausted { capacity: self.capacity })?;
        let pid = self.lru.nodes[idx].page;
        self.lru.unlink(idx);
        let f = self.frames.remove(&pid).expect("LRU node without frame");
        self.evictions += 1;
        Ok(Evicted { page_id: pid, page: f.page, dirty: f.dirty })
    }

    /// The page the LRU policy would evict next (first unpinned from the
    /// cold end), without removing it.
    pub fn lru_victim(&self) -> Option<PageId> {
        let frames = &self.frames;
        let idx =
            self.lru.lru_find(|pid| frames.get(&pid).map(|f| f.pins == 0).unwrap_or(false))?;
        Some(self.lru.nodes[idx].page)
    }

    /// Remove a specific page from the pool (e.g. abort invalidation).
    pub fn remove(&mut self, pid: PageId) -> Option<Evicted> {
        let f = self.frames.remove(&pid)?;
        self.lru.unlink(f.lru_idx);
        Some(Evicted { page_id: pid, page: f.page, dirty: f.dirty })
    }

    /// Ids of all dirty pages (unsorted).
    pub fn dirty_pages(&self) -> Vec<PageId> {
        self.frames.iter().filter(|(_, f)| f.dirty).map(|(p, _)| *p).collect()
    }

    /// Ids of all cached pages (unsorted).
    pub fn cached_pages(&self) -> Vec<PageId> {
        self.frames.keys().copied().collect()
    }

    /// Change the pool's capacity (the §7 future-work extension: shifting
    /// memory between the buffer pool and the recovery buffer between
    /// transactions). Shrinking evicts LRU unpinned frames and returns
    /// them; growing returns nothing.
    pub fn set_capacity(&mut self, capacity: usize) -> QsResult<Vec<Evicted>> {
        assert!(capacity > 0);
        let mut out = Vec::new();
        while self.frames.len() > capacity {
            out.push(self.evict_lru()?);
        }
        self.capacity = capacity;
        Ok(out)
    }

    /// Drop every frame (client cache flush in tests).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.lru = LruList::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(tag: u8) -> Page {
        let mut p = Page::new();
        p.insert(PageId(0), &[tag; 16]).unwrap();
        p
    }

    #[test]
    fn insert_get_round_trip() {
        let mut bp = BufferPool::new(2);
        bp.insert(PageId(1), page_with(1), false).unwrap();
        assert!(bp.contains(PageId(1)));
        assert_eq!(bp.get(PageId(1)).unwrap().object(PageId(0), 0).unwrap(), &[1u8; 16]);
        assert!(bp.get(PageId(9)).is_none());
    }

    #[test]
    fn lru_eviction_order() {
        let mut bp = BufferPool::new(2);
        bp.insert(PageId(1), page_with(1), false).unwrap();
        bp.insert(PageId(2), page_with(2), false).unwrap();
        // Touch 1 so 2 becomes LRU.
        bp.get(PageId(1));
        let ev = bp.insert(PageId(3), page_with(3), false).unwrap().unwrap();
        assert_eq!(ev.page_id, PageId(2));
        assert!(bp.contains(PageId(1)) && bp.contains(PageId(3)));
    }

    #[test]
    fn pinned_pages_skip_eviction() {
        let mut bp = BufferPool::new(2);
        bp.insert(PageId(1), page_with(1), false).unwrap();
        bp.insert(PageId(2), page_with(2), false).unwrap();
        bp.pin(PageId(1)); // 1 is LRU but pinned
        bp.get(PageId(2)); // wait, this makes 1 LRU
        let ev = bp.insert(PageId(3), page_with(3), false).unwrap().unwrap();
        assert_eq!(ev.page_id, PageId(2), "pinned LRU page skipped, next victim chosen");
        bp.unpin(PageId(1));
        let ev = bp.insert(PageId(4), page_with(4), false).unwrap().unwrap();
        assert_eq!(ev.page_id, PageId(1));
    }

    #[test]
    fn all_pinned_is_an_error() {
        let mut bp = BufferPool::new(1);
        bp.insert(PageId(1), page_with(1), false).unwrap();
        bp.pin(PageId(1));
        assert!(matches!(
            bp.insert(PageId(2), page_with(2), false),
            Err(QsError::BufferPoolExhausted { .. })
        ));
    }

    #[test]
    fn dirty_flag_propagates_through_eviction() {
        let mut bp = BufferPool::new(1);
        bp.insert(PageId(1), page_with(1), false).unwrap();
        bp.mark_dirty(PageId(1));
        let ev = bp.insert(PageId(2), page_with(2), false).unwrap().unwrap();
        assert!(ev.dirty);
        assert_eq!(bp.evictions(), 1);
    }

    #[test]
    fn reinsert_merges_dirty_and_does_not_evict() {
        let mut bp = BufferPool::new(1);
        bp.insert(PageId(1), page_with(1), true).unwrap();
        let ev = bp.insert(PageId(1), page_with(9), false).unwrap();
        assert!(ev.is_none());
        assert!(bp.is_dirty(PageId(1)), "dirty bit sticky across reinsert");
        assert_eq!(bp.get(PageId(1)).unwrap().object(PageId(0), 0).unwrap(), &[9u8; 16]);
    }

    #[test]
    fn remove_and_dirty_listing() {
        let mut bp = BufferPool::new(4);
        bp.insert(PageId(1), page_with(1), true).unwrap();
        bp.insert(PageId(2), page_with(2), false).unwrap();
        bp.insert(PageId(3), page_with(3), true).unwrap();
        let mut d = bp.dirty_pages();
        d.sort();
        assert_eq!(d, vec![PageId(1), PageId(3)]);
        let ev = bp.remove(PageId(3)).unwrap();
        assert!(ev.dirty);
        assert!(!bp.contains(PageId(3)));
        assert!(bp.remove(PageId(3)).is_none());
    }

    #[test]
    fn peek_does_not_touch_recency() {
        let mut bp = BufferPool::new(2);
        bp.insert(PageId(1), page_with(1), false).unwrap();
        bp.insert(PageId(2), page_with(2), false).unwrap();
        bp.peek(PageId(1)); // 1 stays LRU
        let ev = bp.insert(PageId(3), page_with(3), false).unwrap().unwrap();
        assert_eq!(ev.page_id, PageId(1));
    }

    #[test]
    fn heavy_churn_is_consistent() {
        let mut bp = BufferPool::new(16);
        for i in 0..1000u32 {
            bp.insert(PageId(i), page_with((i % 251) as u8), i % 3 == 0).unwrap();
        }
        assert_eq!(bp.len(), 16);
        assert_eq!(bp.evictions(), 1000 - 16);
        // The 16 most recent pages are resident.
        for i in 984..1000u32 {
            assert!(bp.contains(PageId(i)), "missing {i}");
        }
    }

    #[test]
    fn set_capacity_shrinks_and_grows() {
        let mut bp = BufferPool::new(4);
        for i in 0..4u32 {
            bp.insert(PageId(i), page_with(i as u8), i == 1).unwrap();
        }
        bp.get(PageId(0)); // 0 becomes MRU
        let evicted = bp.set_capacity(2).unwrap();
        assert_eq!(evicted.len(), 2);
        assert!(bp.contains(PageId(0)), "MRU survives the shrink");
        assert_eq!(bp.capacity(), 2);
        // Growing is free.
        assert!(bp.set_capacity(8).unwrap().is_empty());
        bp.insert(PageId(9), page_with(9), false).unwrap();
        assert_eq!(bp.len(), 3);
    }

    #[test]
    fn clear_empties_pool() {
        let mut bp = BufferPool::new(4);
        bp.insert(PageId(1), page_with(1), true).unwrap();
        bp.clear();
        assert!(bp.is_empty());
        bp.insert(PageId(2), page_with(2), false).unwrap();
        assert_eq!(bp.len(), 1);
    }
}
