//! [`LogTower`]: the log subsystem — the WAL plus its commit-force policy.
//!
//! The tower owns the [`LogManager`] (which is internally synchronized and
//! never sits behind a server lock) and, when group commit is enabled, a
//! [`GroupCommitter`] that coalesces concurrent commit forces: one leader
//! syncs the log disk per batch while followers wait and absorb. With
//! group commit off (the default), `commit_force` is a plain
//! `LogManager::force` — the pre-decomposition commit path, preserved
//! exactly for the single-client figures.

use qs_trace::Tracer;
use qs_types::{Lsn, QsResult};
use qs_wal::{ForceStats, GroupCommitter, LogManager};

/// The log subsystem: WAL + group-commit policy.
pub struct LogTower {
    wal: LogManager,
    group: GroupCommitter,
    group_commit: bool,
}

impl LogTower {
    pub fn new(wal: LogManager, group_commit: bool) -> LogTower {
        LogTower { wal, group: GroupCommitter::new(), group_commit }
    }

    /// The WAL itself: appends, reads, scans, non-commit forces (eviction
    /// steals, checkpoints) go straight through.
    pub fn wal(&self) -> &LogManager {
        &self.wal
    }

    /// Commit-path force: group-batched when enabled, plain otherwise.
    /// Leaders record their batch size in the `group_commit_size`
    /// histogram; followers return `wrote: false` (metered by the caller
    /// as a no-op force, so forces + no-ops still sum to commits).
    pub fn commit_force(&self, lsn: Lsn, tracer: &Tracer) -> QsResult<ForceStats> {
        if !self.group_commit {
            return self.wal.force(lsn);
        }
        let out = self.group.force_through(&self.wal, lsn)?;
        if let Some(batch) = out.led_batch {
            tracer.record("group_commit_size", batch);
        }
        Ok(out.stats)
    }

    /// `(commit-force calls, real forces)` — mean batch size is their ratio.
    pub fn group_stats(&self) -> (u64, u64) {
        (self.group.calls(), self.group.forces())
    }
}
