//! [`LogTower`]: the log subsystem — the WAL plus its commit-force policy.
//!
//! The tower owns the [`LogManager`] (which is internally synchronized and
//! never sits behind a server lock) and, when group commit is enabled, a
//! [`GroupCommitter`] that coalesces concurrent commit forces: one leader
//! syncs the log disk per batch while followers wait and absorb. With
//! group commit off (the default), `commit_force` is a plain
//! `LogManager::force` — the pre-decomposition commit path, preserved
//! exactly for the single-client figures.

use qs_trace::Tracer;
use qs_types::{Lsn, QsResult};
use qs_wal::{ForceStats, GroupCommitter, LogManager};
use std::sync::atomic::{AtomicU64, Ordering};

/// The log subsystem: WAL + group-commit policy.
pub struct LogTower {
    wal: LogManager,
    group: GroupCommitter,
    group_commit: bool,
    /// Commit forces currently executing (the adaptive flavor's log-disk
    /// queue-depth signal, exported via `Server::log_pressure`).
    in_flight: AtomicU64,
}

impl LogTower {
    pub fn new(wal: LogManager, group_commit: bool) -> LogTower {
        LogTower { wal, group: GroupCommitter::new(), group_commit, in_flight: AtomicU64::new(0) }
    }

    /// The WAL itself: appends, reads, scans, non-commit forces (eviction
    /// steals, checkpoints) go straight through.
    pub fn wal(&self) -> &LogManager {
        &self.wal
    }

    /// Commit-path force: group-batched when enabled, plain otherwise.
    /// Leaders record their batch size in the `group_commit_size`
    /// histogram; followers return `wrote: false` (metered by the caller
    /// as a no-op force, so forces + no-ops still sum to commits).
    pub fn commit_force(&self, lsn: Lsn, tracer: &Tracer) -> QsResult<ForceStats> {
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        let out = if !self.group_commit {
            self.wal.force(lsn)
        } else {
            self.group.force_through(&self.wal, lsn).map(|out| {
                if let Some(batch) = out.led_batch {
                    tracer.record("group_commit_size", batch);
                }
                out.stats
            })
        };
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        out
    }

    /// Commit forces in flight right now (racy by nature — a load-only
    /// congestion signal, never a correctness input).
    pub fn forces_in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Acquire)
    }

    /// `(commit-force calls, real forces)` — mean batch size is their ratio.
    pub fn group_stats(&self) -> (u64, u64) {
        (self.group.calls(), self.group.forces())
    }
}
