//! Page-level lock manager.
//!
//! ESM does page-level two-phase locking (the paper notes it does *not*
//! support fine-granularity locking, unlike ARIES/CSA — and that a
//! memory-mapped store is inherently page-based anyway). Modes are S and X
//! with upgrade; waiters queue FIFO; deadlocks are detected eagerly by a
//! waits-for-graph cycle check at block time and resolved by aborting the
//! requester (the paper's workloads are deliberately conflict-free, §4.1,
//! but the substrate must still be correct for the thread tests).
//!
//! Locks are *not* cached across transactions ("inter-transaction caching
//! of locks at clients is not supported") — the client releases everything
//! at commit/abort via [`LockManager::release_all`].

use qs_types::sync::{Condvar, Mutex};
use qs_types::{PageId, QsError, QsResult, TxnId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Lock modes. `S` for reads, `X` for updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    S,
    X,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::S, LockMode::S))
    }
}

#[derive(Debug, Default)]
struct LockEntry {
    /// Current holders and their granted mode.
    holders: HashMap<TxnId, LockMode>,
    /// FIFO wait queue.
    waiters: VecDeque<(TxnId, LockMode)>,
}

impl LockEntry {
    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders.iter().all(|(&h, &hm)| h == txn || hm.compatible(mode) && mode.compatible(hm))
    }
}

#[derive(Default)]
struct LockTables {
    locks: HashMap<PageId, LockEntry>,
    /// Pages each transaction holds (for O(held) release).
    held: HashMap<TxnId, HashSet<PageId>>,
    /// waits-for edges (waiter → holders), for deadlock detection.
    waits_for: HashMap<TxnId, HashSet<TxnId>>,
}

impl LockTables {
    fn would_deadlock(&self, from: TxnId) -> bool {
        // DFS over waits-for edges looking for a cycle back to `from`.
        let mut stack: Vec<TxnId> =
            self.waits_for.get(&from).into_iter().flatten().copied().collect();
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == from {
                return true;
            }
            if seen.insert(t) {
                if let Some(next) = self.waits_for.get(&t) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }
}

/// The server's lock manager.
pub struct LockManager {
    tables: Mutex<LockTables>,
    wakeup: Condvar,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    pub fn new() -> LockManager {
        LockManager { tables: Mutex::new(LockTables::default()), wakeup: Condvar::new() }
    }

    /// Acquire `mode` on `page` for `txn`, blocking until granted.
    /// Returns `Err(LockConflict)` if waiting would deadlock.
    ///
    /// Grants hand off FIFO: a waiter stays queued across wakeups and is
    /// granted only once it reaches the head of the queue (or everyone
    /// queued is a reader). Dequeue-then-recheck — the old protocol —
    /// live-locks with ≥3 contenders: each woken waiter sees the *others*
    /// still queued, requeues itself, and sleeps again with the lock free.
    pub fn lock(&self, txn: TxnId, page: PageId, mode: LockMode) -> QsResult<()> {
        self.lock_observing(txn, page, mode).map(|_waited| ())
    }

    /// [`LockManager::lock`], additionally reporting whether the request
    /// had to queue behind a conflicting holder (`Ok(true)` = it waited).
    /// The tracing layer uses this to count lock waits without a second
    /// trip into the lock tables.
    pub fn lock_observing(&self, txn: TxnId, page: PageId, mode: LockMode) -> QsResult<bool> {
        let mut t = self.tables.lock();
        let mut queued = false;
        loop {
            let entry = t.locks.entry(page).or_default();
            if let Some(&held) = entry.holders.get(&txn) {
                // Re-entrant / upgrade handling. Upgrades bypass the queue;
                // an S→X upgrade with co-holders falls through and waits.
                if held == LockMode::X || mode == LockMode::S || entry.holders.len() == 1 {
                    if held == LockMode::S && mode == LockMode::X {
                        entry.holders.insert(txn, LockMode::X);
                    }
                    if queued {
                        entry.waiters.retain(|w| w.0 != txn);
                    }
                    t.waits_for.remove(&txn);
                    return Ok(queued);
                }
            } else {
                let may_pass = match entry.waiters.front() {
                    None => true,
                    Some(&(head, _)) => {
                        head == txn
                            || mode == LockMode::S
                                && entry.waiters.iter().all(|w| w.1 == LockMode::S)
                    }
                };
                if entry.grantable(txn, mode) && may_pass {
                    if queued {
                        entry.waiters.retain(|w| w.0 != txn);
                    }
                    entry.holders.insert(txn, mode);
                    t.held.entry(txn).or_default().insert(page);
                    t.waits_for.remove(&txn);
                    return Ok(queued);
                }
            }

            // Must wait. Queue up once, record waits-for edges, check for a
            // cycle; edges are rebuilt fresh on every wakeup.
            if !queued {
                t.locks.entry(page).or_default().waiters.push_back((txn, mode));
                queued = true;
            }
            let holders: Vec<TxnId> =
                t.locks[&page].holders.keys().copied().filter(|&h| h != txn).collect();
            t.waits_for.entry(txn).or_default().extend(holders);
            if t.would_deadlock(txn) {
                t.waits_for.remove(&txn);
                if let Some(e) = t.locks.get_mut(&page) {
                    e.waiters.retain(|w| w.0 != txn);
                }
                let holder =
                    t.locks[&page].holders.keys().copied().next().unwrap_or(TxnId::INVALID);
                drop(t);
                // Our departure may have promoted a runnable new head.
                self.wakeup.notify_all();
                return Err(QsError::LockConflict { page, holder, requester: txn });
            }
            self.wakeup.wait(&mut t);
            t.waits_for.remove(&txn);
        }
    }

    /// Non-blocking acquire; `Err(LockConflict)` on any conflict.
    pub fn try_lock(&self, txn: TxnId, page: PageId, mode: LockMode) -> QsResult<()> {
        let mut t = self.tables.lock();
        let entry = t.locks.entry(page).or_default();
        if let Some(&held) = entry.holders.get(&txn) {
            if held == LockMode::X || mode == LockMode::S {
                return Ok(());
            }
            if entry.holders.len() == 1 {
                entry.holders.insert(txn, LockMode::X);
                return Ok(());
            }
        } else if entry.grantable(txn, mode) && entry.waiters.is_empty() {
            entry.holders.insert(txn, mode);
            t.held.entry(txn).or_default().insert(page);
            return Ok(());
        }
        let holder = entry.holders.keys().copied().next().unwrap_or(TxnId::INVALID);
        Err(QsError::LockConflict { page, holder, requester: txn })
    }

    /// Does `txn` hold at least `mode` on `page`?
    pub fn holds(&self, txn: TxnId, page: PageId, mode: LockMode) -> bool {
        let t = self.tables.lock();
        match t.locks.get(&page).and_then(|e| e.holders.get(&txn)) {
            Some(&LockMode::X) => true,
            Some(&LockMode::S) => mode == LockMode::S,
            None => false,
        }
    }

    /// Release every lock `txn` holds (commit/abort — strict 2PL).
    pub fn release_all(&self, txn: TxnId) {
        let mut t = self.tables.lock();
        if let Some(pages) = t.held.remove(&txn) {
            for page in pages {
                if let Some(e) = t.locks.get_mut(&page) {
                    e.holders.remove(&txn);
                    if e.holders.is_empty() && e.waiters.is_empty() {
                        t.locks.remove(&page);
                    }
                }
            }
        }
        t.waits_for.remove(&txn);
        drop(t);
        self.wakeup.notify_all();
    }

    /// Number of pages currently locked by anyone (test hook).
    pub fn locked_pages(&self) -> usize {
        self.tables.lock().locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const P: PageId = PageId(1);

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), P, LockMode::S).unwrap();
        lm.lock(TxnId(2), P, LockMode::S).unwrap();
        assert!(lm.holds(TxnId(1), P, LockMode::S));
        assert!(lm.holds(TxnId(2), P, LockMode::S));
    }

    #[test]
    fn exclusive_conflicts_detected_by_try_lock() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), P, LockMode::X).unwrap();
        assert!(matches!(lm.try_lock(TxnId(2), P, LockMode::S), Err(QsError::LockConflict { .. })));
        lm.release_all(TxnId(1));
        lm.try_lock(TxnId(2), P, LockMode::S).unwrap();
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), P, LockMode::S).unwrap();
        lm.lock(TxnId(1), P, LockMode::S).unwrap(); // re-entrant
        lm.lock(TxnId(1), P, LockMode::X).unwrap(); // sole-holder upgrade
        assert!(lm.holds(TxnId(1), P, LockMode::X));
        // X implies S.
        assert!(lm.holds(TxnId(1), P, LockMode::S));
    }

    #[test]
    fn release_all_clears_table() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), PageId(1), LockMode::X).unwrap();
        lm.lock(TxnId(1), PageId(2), LockMode::S).unwrap();
        assert_eq!(lm.locked_pages(), 2);
        lm.release_all(TxnId(1));
        assert_eq!(lm.locked_pages(), 0);
    }

    #[test]
    fn blocking_lock_granted_after_release() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxnId(1), P, LockMode::X).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = std::thread::spawn(move || {
            lm2.lock(TxnId(2), P, LockMode::X).unwrap();
            lm2.release_all(TxnId(2));
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        lm.release_all(TxnId(1));
        h.join().unwrap();
    }

    #[test]
    fn deadlock_detected() {
        let lm = Arc::new(LockManager::new());
        let (pa, pb) = (PageId(10), PageId(11));
        lm.lock(TxnId(1), pa, LockMode::X).unwrap();
        lm.lock(TxnId(2), pb, LockMode::X).unwrap();
        let lm2 = Arc::clone(&lm);
        // T2 blocks on pa (held by T1).
        let h = std::thread::spawn(move || {
            let r = lm2.lock(TxnId(2), pa, LockMode::X);
            lm2.release_all(TxnId(2));
            r
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // T1 → pb creates the cycle: one of the two must get LockConflict.
        let r1 = lm.lock(TxnId(1), pb, LockMode::X);
        lm.release_all(TxnId(1));
        let r2 = h.join().unwrap();
        assert!(r1.is_err() || r2.is_err(), "deadlock must be detected on at least one side");
    }

    #[test]
    fn concurrent_disjoint_workloads_race_free() {
        let lm = Arc::new(LockManager::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = Arc::clone(&lm);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    let p = PageId(t as u32 * 1000 + i);
                    lm.lock(TxnId(t), p, LockMode::X).unwrap();
                }
                lm.release_all(TxnId(t));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lm.locked_pages(), 0);
    }
}
