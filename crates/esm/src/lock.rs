//! Hierarchical lock manager: pages and records.
//!
//! ESM historically did page-level two-phase locking (the paper notes it
//! does *not* support fine-granularity locking, unlike ARIES/CSA — and
//! that a memory-mapped store is inherently page-based anyway). The
//! logical-recovery scheme (DESIGN.md §6e) needs record locks, so the
//! manager now keys its tables by [`Resource`] — `Page(pid)` or
//! `Record(pid, slot)` — with the classic granularity protocol: a record
//! lock is preceded by an *intention* lock (`IS`/`IX`) on its page, and
//! the conflict matrix makes intention modes compatible with each other
//! but an `X` page lock conflict with everything. Callers that only ever
//! take page locks see behavior bit-identical to the old flat manager:
//! page mode = plain `S`/`X`, no intents taken, same grant order.
//!
//! Modes are IS/IX/S/X with upgrade (the supremum of `S` and `IX` is `X`
//! — no SIX mode, conservatively); waiters queue FIFO; deadlocks are
//! detected eagerly by a waits-for-graph cycle check at block time and
//! resolved by aborting the requester. The waits-for graph is keyed by
//! transaction, so cycles spanning page *and* record resources (mixed
//! granularity) are detected the same way.
//!
//! Locks are *not* cached across transactions ("inter-transaction caching
//! of locks at clients is not supported") — the client releases everything
//! at commit/abort via [`LockManager::release_all`].

use qs_types::sync::{Condvar, Mutex};
use qs_types::{PageId, QsError, QsResult, TxnId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Lock modes. `S` for reads, `X` for updates; `IS`/`IX` are page-level
/// intention modes taken on behalf of record-level `S`/`X` locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Intention shared: some record of this page is (to be) S-locked.
    IS,
    /// Intention exclusive: some record of this page is (to be) X-locked.
    IX,
    S,
    X,
}

impl LockMode {
    /// The symmetric conflict matrix (Gray's granularity hierarchy, minus
    /// SIX): intention modes coexist with each other; `IS` also coexists
    /// with `S`; `X` coexists with nothing.
    fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IS, IS) | (IS, IX) | (IX, IS) | (IX, IX) | (IS, S) | (S, IS) | (S, S)
        )
    }

    /// Does holding `self` subsume the rights `other` grants? A partial
    /// order: `X` covers everything, `S` and `IX` each cover `IS`.
    fn covers(self, other: LockMode) -> bool {
        use LockMode::*;
        self == other || matches!((self, other), (X, _) | (S, IS) | (IX, IS))
    }

    /// Supremum of two held/requested modes: the weakest single mode that
    /// covers both. `S ∨ IX = X` (no SIX mode — conservative, and
    /// unreachable from page-only histories).
    fn combine(self, other: LockMode) -> LockMode {
        if self.covers(other) {
            self
        } else if other.covers(self) {
            other
        } else {
            LockMode::X
        }
    }

    /// The page-level intention mode a record lock of this mode requires.
    fn intent(self) -> LockMode {
        match self {
            LockMode::S | LockMode::IS => LockMode::IS,
            LockMode::X | LockMode::IX => LockMode::IX,
        }
    }
}

/// What a lock request names: a whole page, or one record (slot) of a
/// page. Page-granularity callers use `Page`; the record path takes an
/// intention lock on `Page(pid)` and then the `Record` lock itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    Page(PageId),
    Record(PageId, u16),
}

impl Resource {
    /// The page this resource lives on (the record's page for `Record`).
    pub fn page(self) -> PageId {
        match self {
            Resource::Page(p) | Resource::Record(p, _) => p,
        }
    }

    /// Dense encoding for trace events (`page << 16 | slot + 1`; low 16
    /// bits zero for a whole-page resource). Lock-wait traces carry this
    /// instead of a bare page id so record-level waits are attributable.
    pub fn trace_code(self) -> u64 {
        match self {
            Resource::Page(p) => (p.0 as u64) << 16,
            Resource::Record(p, s) => (p.0 as u64) << 16 | (s as u64 + 1),
        }
    }
}

impl From<PageId> for Resource {
    fn from(p: PageId) -> Resource {
        Resource::Page(p)
    }
}

/// Outcome of a non-blocking queued acquire ([`LockManager::lock_async`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsyncLockOutcome {
    /// Granted immediately; the caller may proceed.
    Granted,
    /// Conflicts with a current holder: the request joined the FIFO wait
    /// queue and the registered [`LockEvents`] sink will be told when it
    /// resolves (grant or deadlock abort).
    Queued,
}

/// Receiver for deferred async-lock resolutions. The reactor runtime
/// registers one so a queued request parks a *message*, not a thread.
/// Callbacks fire outside the lock-table mutex; a grant callback may
/// re-enter the lock manager.
pub trait LockEvents: Send + Sync {
    /// `txn`'s queued request on `resource` resolved: `Ok` means the lock
    /// is now held, `Err(LockConflict)` means waiting would have
    /// deadlocked and the request was aborted instead. For a record
    /// request whose *intention* lock queued, the resource reported is
    /// the page — the waiter re-runs its request and the completed
    /// intention step re-grants re-entrantly.
    fn lock_done(&self, txn: TxnId, resource: Resource, result: QsResult<()>);
}

/// How a queued waiter learns about its grant: a blocked thread on the
/// condvar (`Sync`) or the registered [`LockEvents`] sink (`Async`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaiterKind {
    Sync,
    Async,
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
    kind: WaiterKind,
}

#[derive(Debug, Default)]
struct LockEntry {
    /// Current holders and their granted mode.
    holders: HashMap<TxnId, LockMode>,
    /// FIFO wait queue.
    waiters: VecDeque<Waiter>,
}

impl LockEntry {
    /// Can a *non-holder* acquire `mode` alongside the current holders?
    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders.iter().all(|(&h, &hm)| h == txn || hm.compatible(mode))
    }

    /// Can a holder of `held` move to `goal` (no-op included)?
    fn upgradable(&self, txn: TxnId, held: LockMode, goal: LockMode) -> bool {
        goal == held || self.holders.iter().all(|(&h, &hm)| h == txn || hm.compatible(goal))
    }
}

#[derive(Default)]
struct LockTables {
    locks: HashMap<Resource, LockEntry>,
    /// Resources each transaction holds (for O(held) release).
    held: HashMap<TxnId, HashSet<Resource>>,
    /// waits-for edges (waiter → holders), for deadlock detection. Keyed
    /// by transaction, so page/record (mixed-granularity) cycles are one
    /// graph.
    waits_for: HashMap<TxnId, HashSet<TxnId>>,
}

impl LockTables {
    fn would_deadlock(&self, from: TxnId) -> bool {
        // DFS over waits-for edges looking for a cycle back to `from`.
        let mut stack: Vec<TxnId> =
            self.waits_for.get(&from).into_iter().flatten().copied().collect();
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == from {
                return true;
            }
            if seen.insert(t) {
                if let Some(next) = self.waits_for.get(&t) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }
}

/// One deferred resolution to deliver once the table mutex is dropped.
type Resolution = (TxnId, Resource, QsResult<()>);

/// The server's lock manager.
pub struct LockManager {
    tables: Mutex<LockTables>,
    wakeup: Condvar,
    /// Sink for async-waiter resolutions (reactor runtime). Behind its
    /// own mutex, taken only after `tables` is released.
    events: Mutex<Option<Arc<dyn LockEvents>>>,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    pub fn new() -> LockManager {
        LockManager {
            tables: Mutex::new(LockTables::default()),
            wakeup: Condvar::new(),
            events: Mutex::new(None),
        }
    }

    /// Install (or clear) the sink notified when async waiters resolve.
    pub fn set_events(&self, events: Option<Arc<dyn LockEvents>>) {
        *self.events.lock() = events;
    }

    /// Deliver deferred resolutions to the registered sink. Must be
    /// called with the table mutex already released: a grant callback may
    /// call straight back into the lock manager.
    fn deliver(&self, resolutions: Vec<Resolution>) {
        if resolutions.is_empty() {
            return;
        }
        let sink = self.events.lock().clone();
        if let Some(sink) = sink {
            for (txn, res, result) in resolutions {
                sink.lock_done(txn, res, result);
            }
        }
    }

    /// Promote grantable *async* waiters at the head of `res`'s queue.
    /// Stops at the first sync waiter (the condvar broadcast serves it —
    /// FIFO order across both kinds is preserved) or the first async
    /// waiter that still conflicts. A conflicting async head gets its
    /// waits-for edges refreshed against the current holders and a cycle
    /// check; a deadlocked one is aborted on the spot (it has no blocked
    /// thread to run its own check).
    fn promote_async(t: &mut LockTables, res: Resource, out: &mut Vec<Resolution>) {
        loop {
            let Some(entry) = t.locks.get_mut(&res) else { return };
            let Some(&head) = entry.waiters.front() else {
                if entry.holders.is_empty() {
                    t.locks.remove(&res);
                }
                return;
            };
            if head.kind == WaiterKind::Sync {
                return;
            }
            let goal = match entry.holders.get(&head.txn) {
                // Queued upgrade: grantable once co-holders allow the
                // combined mode (or the request turned out to be
                // satisfied already).
                Some(&held) => {
                    let goal = held.combine(head.mode);
                    if !entry.upgradable(head.txn, held, goal) {
                        None
                    } else {
                        Some((goal, goal != held))
                    }
                }
                None => entry.grantable(head.txn, head.mode).then_some((head.mode, true)),
            };
            if let Some((goal, insert)) = goal {
                entry.waiters.pop_front();
                if insert {
                    entry.holders.insert(head.txn, goal);
                }
                t.held.entry(head.txn).or_default().insert(res);
                t.waits_for.remove(&head.txn);
                out.push((head.txn, res, Ok(())));
                continue;
            }
            // Still blocked: refresh this waiter's edges and re-check for
            // a cycle (a sync waiter re-checks on every wakeup; an async
            // waiter must be checked *for*).
            let holders: Vec<TxnId> =
                entry.holders.keys().copied().filter(|&h| h != head.txn).collect();
            let e = t.waits_for.entry(head.txn).or_default();
            e.clear();
            e.extend(holders);
            if t.would_deadlock(head.txn) {
                t.waits_for.remove(&head.txn);
                let entry = t.locks.get_mut(&res).expect("entry exists");
                entry.waiters.pop_front();
                let holder = entry.holders.keys().copied().next().unwrap_or(TxnId::INVALID);
                out.push((
                    head.txn,
                    res,
                    Err(QsError::LockConflict { page: res.page(), holder, requester: head.txn }),
                ));
                continue;
            }
            return;
        }
    }

    /// Acquire `mode` on `res` for `txn` without ever blocking: grants
    /// that a blocking [`LockManager::lock`] would satisfy immediately
    /// return [`AsyncLockOutcome::Granted`]; a conflict queues the request
    /// FIFO (alongside blocked threads) and returns
    /// [`AsyncLockOutcome::Queued`] — the resolution arrives later through
    /// the [`LockEvents`] sink. `Err(LockConflict)` means queueing would
    /// deadlock right now.
    pub fn lock_async(
        &self,
        txn: TxnId,
        res: Resource,
        mode: LockMode,
    ) -> QsResult<AsyncLockOutcome> {
        let mut t = self.tables.lock();
        let entry = t.locks.entry(res).or_default();
        if let Some(&held) = entry.holders.get(&txn) {
            let goal = held.combine(mode);
            if entry.upgradable(txn, held, goal) {
                if goal != held {
                    entry.holders.insert(txn, goal);
                }
                return Ok(AsyncLockOutcome::Granted);
            }
        } else {
            let may_pass = match entry.waiters.front() {
                None => true,
                Some(&head) => {
                    head.txn == txn || entry.waiters.iter().all(|w| w.mode.compatible(mode))
                }
            };
            if entry.grantable(txn, mode) && may_pass {
                entry.holders.insert(txn, mode);
                t.held.entry(txn).or_default().insert(res);
                return Ok(AsyncLockOutcome::Granted);
            }
        }
        // Conflict: queue (FIFO, same queue as blocked threads), record
        // waits-for edges, and run the same eager cycle check the
        // blocking path runs at block time.
        t.locks.get_mut(&res).expect("entry exists").waiters.push_back(Waiter {
            txn,
            mode,
            kind: WaiterKind::Async,
        });
        let holders: Vec<TxnId> =
            t.locks[&res].holders.keys().copied().filter(|&h| h != txn).collect();
        t.waits_for.entry(txn).or_default().extend(holders);
        if t.would_deadlock(txn) {
            t.waits_for.remove(&txn);
            if let Some(e) = t.locks.get_mut(&res) {
                e.waiters.retain(|w| w.txn != txn);
            }
            let holder = t.locks[&res].holders.keys().copied().next().unwrap_or(TxnId::INVALID);
            drop(t);
            self.wakeup.notify_all();
            return Err(QsError::LockConflict { page: res.page(), holder, requester: txn });
        }
        Ok(AsyncLockOutcome::Queued)
    }

    /// [`LockManager::lock_async`] for a possibly record-granularity
    /// resource: a record request first acquires the intention mode on
    /// its page, then the record lock itself. A queued intention step
    /// reports `Queued` immediately; when the grant arrives the caller
    /// re-issues the whole request and the completed step re-grants
    /// re-entrantly.
    pub fn lock_resource_async(
        &self,
        txn: TxnId,
        res: Resource,
        mode: LockMode,
    ) -> QsResult<AsyncLockOutcome> {
        if let Resource::Record(pid, _) = res {
            match self.lock_async(txn, Resource::Page(pid), mode.intent())? {
                AsyncLockOutcome::Queued => return Ok(AsyncLockOutcome::Queued),
                AsyncLockOutcome::Granted => {}
            }
        }
        self.lock_async(txn, res, mode)
    }

    /// Acquire `mode` on `res` for `txn`, blocking until granted.
    /// Returns `Err(LockConflict)` if waiting would deadlock.
    ///
    /// Grants hand off FIFO: a waiter stays queued across wakeups and is
    /// granted only once it reaches the head of the queue (or everyone
    /// queued is compatible). Dequeue-then-recheck — the old protocol —
    /// live-locks with ≥3 contenders: each woken waiter sees the *others*
    /// still queued, requeues itself, and sleeps again with the lock free.
    pub fn lock(&self, txn: TxnId, res: Resource, mode: LockMode) -> QsResult<()> {
        self.lock_observing(txn, res, mode).map(|_waited| ())
    }

    /// [`LockManager::lock`] for a possibly record-granularity resource:
    /// page intention first, then the record lock (blocking at either
    /// step; the waits-for graph covers both).
    pub fn lock_resource(&self, txn: TxnId, res: Resource, mode: LockMode) -> QsResult<bool> {
        let mut waited = false;
        if let Resource::Record(pid, _) = res {
            waited |= self.lock_observing(txn, Resource::Page(pid), mode.intent())?;
        }
        waited |= self.lock_observing(txn, res, mode)?;
        Ok(waited)
    }

    /// [`LockManager::lock`], additionally reporting whether the request
    /// had to queue behind a conflicting holder (`Ok(true)` = it waited).
    /// The tracing layer uses this to count lock waits without a second
    /// trip into the lock tables.
    pub fn lock_observing(&self, txn: TxnId, res: Resource, mode: LockMode) -> QsResult<bool> {
        let mut t = self.tables.lock();
        let mut queued = false;
        loop {
            let entry = t.locks.entry(res).or_default();
            if let Some(&held) = entry.holders.get(&txn) {
                // Re-entrant / upgrade handling. Upgrades bypass the queue;
                // an upgrade blocked by co-holders falls through and waits.
                let goal = held.combine(mode);
                if entry.upgradable(txn, held, goal) {
                    if goal != held {
                        entry.holders.insert(txn, goal);
                    }
                    if queued {
                        entry.waiters.retain(|w| w.txn != txn);
                    }
                    t.waits_for.remove(&txn);
                    // Our departure from the queue may expose a runnable
                    // async head (e.g. a reader queued behind this one).
                    let resolutions = Self::drain_promotions(&mut t, res, queued);
                    drop(t);
                    self.deliver(resolutions);
                    return Ok(queued);
                }
            } else {
                let may_pass = match entry.waiters.front() {
                    None => true,
                    Some(&head) => {
                        head.txn == txn || entry.waiters.iter().all(|w| w.mode.compatible(mode))
                    }
                };
                if entry.grantable(txn, mode) && may_pass {
                    if queued {
                        entry.waiters.retain(|w| w.txn != txn);
                    }
                    entry.holders.insert(txn, mode);
                    t.held.entry(txn).or_default().insert(res);
                    t.waits_for.remove(&txn);
                    // A compatible async reader may sit right behind us.
                    let resolutions = Self::drain_promotions(&mut t, res, queued);
                    drop(t);
                    self.deliver(resolutions);
                    return Ok(queued);
                }
            }

            // Must wait. Queue up once, record waits-for edges, check for a
            // cycle; edges are rebuilt fresh on every wakeup.
            if !queued {
                t.locks.entry(res).or_default().waiters.push_back(Waiter {
                    txn,
                    mode,
                    kind: WaiterKind::Sync,
                });
                queued = true;
            }
            let holders: Vec<TxnId> =
                t.locks[&res].holders.keys().copied().filter(|&h| h != txn).collect();
            t.waits_for.entry(txn).or_default().extend(holders);
            if t.would_deadlock(txn) {
                t.waits_for.remove(&txn);
                if let Some(e) = t.locks.get_mut(&res) {
                    e.waiters.retain(|w| w.txn != txn);
                }
                let holder = t.locks[&res].holders.keys().copied().next().unwrap_or(TxnId::INVALID);
                // Our departure may have promoted a runnable new head —
                // sync (condvar broadcast) or async (promotion walk).
                let mut resolutions = Vec::new();
                Self::promote_async(&mut t, res, &mut resolutions);
                drop(t);
                self.wakeup.notify_all();
                self.deliver(resolutions);
                return Err(QsError::LockConflict { page: res.page(), holder, requester: txn });
            }
            self.wakeup.wait(&mut t);
            t.waits_for.remove(&txn);
        }
    }

    /// Run the async promotion walk over `res` if this thread's exit
    /// from the wait queue could have changed its head (`was_queued`).
    fn drain_promotions(t: &mut LockTables, res: Resource, was_queued: bool) -> Vec<Resolution> {
        let mut resolutions = Vec::new();
        if was_queued {
            Self::promote_async(t, res, &mut resolutions);
        }
        resolutions
    }

    /// Non-blocking acquire; `Err(LockConflict)` on any conflict.
    pub fn try_lock(&self, txn: TxnId, res: Resource, mode: LockMode) -> QsResult<()> {
        let mut t = self.tables.lock();
        let entry = t.locks.entry(res).or_default();
        if let Some(&held) = entry.holders.get(&txn) {
            let goal = held.combine(mode);
            if goal == held {
                return Ok(());
            }
            if entry.upgradable(txn, held, goal) {
                entry.holders.insert(txn, goal);
                return Ok(());
            }
        } else if entry.grantable(txn, mode) && entry.waiters.is_empty() {
            entry.holders.insert(txn, mode);
            t.held.entry(txn).or_default().insert(res);
            return Ok(());
        }
        let holder = entry.holders.keys().copied().next().unwrap_or(TxnId::INVALID);
        Err(QsError::LockConflict { page: res.page(), holder, requester: txn })
    }

    /// Does `txn` hold at least `mode` on `res`? (Coverage order: `X`
    /// implies everything, `S` and `IX` each imply `IS`.)
    pub fn holds(&self, txn: TxnId, res: Resource, mode: LockMode) -> bool {
        let t = self.tables.lock();
        match t.locks.get(&res).and_then(|e| e.holders.get(&txn)) {
            Some(&held) => held.covers(mode),
            None => false,
        }
    }

    /// Release every lock `txn` holds (commit/abort — strict 2PL).
    /// Blocked threads are woken through the condvar; queued async
    /// waiters at a freed queue's head are granted (or deadlock-aborted)
    /// here and notified through the [`LockEvents`] sink.
    pub fn release_all(&self, txn: TxnId) {
        let mut t = self.tables.lock();
        let mut resolutions = Vec::new();
        if let Some(resources) = t.held.remove(&txn) {
            for res in resources {
                if let Some(e) = t.locks.get_mut(&res) {
                    e.holders.remove(&txn);
                    if e.holders.is_empty() && e.waiters.is_empty() {
                        t.locks.remove(&res);
                    } else {
                        Self::promote_async(&mut t, res, &mut resolutions);
                    }
                }
            }
        }
        t.waits_for.remove(&txn);
        drop(t);
        self.wakeup.notify_all();
        self.deliver(resolutions);
    }

    /// Number of resources (pages and records) currently locked by anyone
    /// (test hook).
    pub fn locked_resources(&self) -> usize {
        self.tables.lock().locks.len()
    }

    /// Renamed: a "page" count stopped being accurate once record
    /// resources joined the table.
    #[deprecated(note = "renamed to locked_resources")]
    pub fn locked_pages(&self) -> usize {
        self.locked_resources()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const P: Resource = Resource::Page(PageId(1));

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), P, LockMode::S).unwrap();
        lm.lock(TxnId(2), P, LockMode::S).unwrap();
        assert!(lm.holds(TxnId(1), P, LockMode::S));
        assert!(lm.holds(TxnId(2), P, LockMode::S));
    }

    #[test]
    fn exclusive_conflicts_detected_by_try_lock() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), P, LockMode::X).unwrap();
        assert!(matches!(lm.try_lock(TxnId(2), P, LockMode::S), Err(QsError::LockConflict { .. })));
        lm.release_all(TxnId(1));
        lm.try_lock(TxnId(2), P, LockMode::S).unwrap();
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), P, LockMode::S).unwrap();
        lm.lock(TxnId(1), P, LockMode::S).unwrap(); // re-entrant
        lm.lock(TxnId(1), P, LockMode::X).unwrap(); // sole-holder upgrade
        assert!(lm.holds(TxnId(1), P, LockMode::X));
        // X implies S.
        assert!(lm.holds(TxnId(1), P, LockMode::S));
    }

    #[test]
    fn conflict_matrix_is_symmetric_and_correct() {
        use LockMode::*;
        let modes = [IS, IX, S, X];
        for &a in &modes {
            for &b in &modes {
                assert_eq!(a.compatible(b), b.compatible(a), "{a:?} vs {b:?}");
            }
        }
        // The exact matrix, row by row.
        assert!(IS.compatible(IS) && IS.compatible(IX) && IS.compatible(S) && !IS.compatible(X));
        assert!(IX.compatible(IS) && IX.compatible(IX) && !IX.compatible(S) && !IX.compatible(X));
        assert!(S.compatible(IS) && !S.compatible(IX) && S.compatible(S) && !S.compatible(X));
        assert!(!X.compatible(IS) && !X.compatible(IX) && !X.compatible(S) && !X.compatible(X));
    }

    #[test]
    fn combine_is_a_supremum() {
        use LockMode::*;
        for &a in &[IS, IX, S, X] {
            for &b in &[IS, IX, S, X] {
                let c = a.combine(b);
                assert!(c.covers(a) && c.covers(b), "{a:?} ∨ {b:?} = {c:?}");
                assert_eq!(c, b.combine(a), "commutative");
            }
        }
        assert_eq!(S.combine(IX), X, "no SIX: S ∨ IX escalates to X");
        assert_eq!(IS.combine(IX), IX);
        assert_eq!(IS.combine(S), S);
    }

    #[test]
    fn record_locks_take_page_intents() {
        let lm = LockManager::new();
        let r0 = Resource::Record(PageId(1), 0);
        let r1 = Resource::Record(PageId(1), 1);
        assert!(!lm.lock_resource(TxnId(1), r0, LockMode::X).unwrap());
        assert!(!lm.lock_resource(TxnId(2), r1, LockMode::X).unwrap(), "distinct slots coexist");
        assert!(lm.holds(TxnId(1), P, LockMode::IX));
        assert!(lm.holds(TxnId(2), P, LockMode::IX));
        assert!(lm.holds(TxnId(1), r0, LockMode::X));
        // Same slot conflicts.
        assert!(matches!(
            lm.try_lock(TxnId(2), r0, LockMode::S),
            Err(QsError::LockConflict { .. })
        ));
        // A whole-page X conflicts with the outstanding intents.
        assert!(matches!(lm.try_lock(TxnId(3), P, LockMode::X), Err(QsError::LockConflict { .. })));
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(2));
        assert_eq!(lm.locked_resources(), 0);
    }

    #[test]
    fn page_x_blocks_record_intent() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxnId(1), P, LockMode::X).unwrap();
        let r = Resource::Record(PageId(1), 3);
        let lm2 = Arc::clone(&lm);
        let h = std::thread::spawn(move || {
            let waited = lm2.lock_resource(TxnId(2), r, LockMode::S).unwrap();
            lm2.release_all(TxnId(2));
            waited
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        lm.release_all(TxnId(1));
        assert!(h.join().unwrap(), "record lock had to wait for the page X");
    }

    #[test]
    fn release_all_clears_table() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), Resource::Page(PageId(1)), LockMode::X).unwrap();
        lm.lock(TxnId(1), Resource::Page(PageId(2)), LockMode::S).unwrap();
        assert_eq!(lm.locked_resources(), 2);
        lm.release_all(TxnId(1));
        assert_eq!(lm.locked_resources(), 0);
    }

    #[test]
    fn blocking_lock_granted_after_release() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxnId(1), P, LockMode::X).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = std::thread::spawn(move || {
            lm2.lock(TxnId(2), P, LockMode::X).unwrap();
            lm2.release_all(TxnId(2));
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        lm.release_all(TxnId(1));
        h.join().unwrap();
    }

    #[test]
    fn deadlock_detected() {
        let lm = Arc::new(LockManager::new());
        let (pa, pb) = (Resource::Page(PageId(10)), Resource::Page(PageId(11)));
        lm.lock(TxnId(1), pa, LockMode::X).unwrap();
        lm.lock(TxnId(2), pb, LockMode::X).unwrap();
        let lm2 = Arc::clone(&lm);
        // T2 blocks on pa (held by T1).
        let h = std::thread::spawn(move || {
            let r = lm2.lock(TxnId(2), pa, LockMode::X);
            lm2.release_all(TxnId(2));
            r
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // T1 → pb creates the cycle: one of the two must get LockConflict.
        let r1 = lm.lock(TxnId(1), pb, LockMode::X);
        lm.release_all(TxnId(1));
        let r2 = h.join().unwrap();
        assert!(r1.is_err() || r2.is_err(), "deadlock must be detected on at least one side");
    }

    #[test]
    fn mixed_granularity_deadlock_detected() {
        // T1 holds record (p, 0); T2 holds page q in X. T2 blocks on the
        // record, then T1 closing the cycle on page q must be denied.
        let lm = Arc::new(LockManager::new());
        let r = Resource::Record(PageId(30), 0);
        let q = Resource::Page(PageId(31));
        lm.lock_resource(TxnId(1), r, LockMode::X).unwrap();
        lm.lock(TxnId(2), q, LockMode::X).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = std::thread::spawn(move || {
            let res = lm2.lock_resource(TxnId(2), r, LockMode::X);
            lm2.release_all(TxnId(2));
            res
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let r1 = lm.lock(TxnId(1), q, LockMode::X);
        lm.release_all(TxnId(1));
        let r2 = h.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "page/record cycle must be detected on at least one side"
        );
    }

    /// Records every async resolution it sees.
    #[derive(Default)]
    struct Collect {
        got: std::sync::Mutex<Vec<(TxnId, Resource, bool)>>,
    }

    impl LockEvents for Collect {
        fn lock_done(&self, txn: TxnId, res: Resource, result: QsResult<()>) {
            self.got.lock().unwrap().push((txn, res, result.is_ok()));
        }
    }

    #[test]
    fn async_immediate_grant_and_upgrade() {
        let lm = LockManager::new();
        assert_eq!(lm.lock_async(TxnId(1), P, LockMode::S).unwrap(), AsyncLockOutcome::Granted);
        // Sole-holder upgrade grants immediately too.
        assert_eq!(lm.lock_async(TxnId(1), P, LockMode::X).unwrap(), AsyncLockOutcome::Granted);
        assert!(lm.holds(TxnId(1), P, LockMode::X));
    }

    #[test]
    fn async_waiter_granted_on_release() {
        let lm = LockManager::new();
        let sink = Arc::new(Collect::default());
        lm.set_events(Some(sink.clone()));
        lm.lock(TxnId(1), P, LockMode::X).unwrap();
        assert_eq!(lm.lock_async(TxnId(2), P, LockMode::X).unwrap(), AsyncLockOutcome::Queued);
        assert!(sink.got.lock().unwrap().is_empty(), "no grant while held");
        lm.release_all(TxnId(1));
        assert_eq!(*sink.got.lock().unwrap(), vec![(TxnId(2), P, true)]);
        assert!(lm.holds(TxnId(2), P, LockMode::X));
        lm.release_all(TxnId(2));
        assert_eq!(lm.locked_resources(), 0);
    }

    #[test]
    fn async_record_lock_two_step() {
        // Intention queued behind a page X: the request parks once; after
        // the page frees, re-issuing the request completes both steps.
        let lm = LockManager::new();
        let sink = Arc::new(Collect::default());
        lm.set_events(Some(sink.clone()));
        let r = Resource::Record(PageId(1), 4);
        lm.lock(TxnId(1), P, LockMode::X).unwrap();
        assert_eq!(
            lm.lock_resource_async(TxnId(2), r, LockMode::X).unwrap(),
            AsyncLockOutcome::Queued
        );
        lm.release_all(TxnId(1));
        // The *intention* grant is what resolves; the waiter re-runs.
        assert_eq!(*sink.got.lock().unwrap(), vec![(TxnId(2), P, true)]);
        assert_eq!(
            lm.lock_resource_async(TxnId(2), r, LockMode::X).unwrap(),
            AsyncLockOutcome::Granted
        );
        assert!(lm.holds(TxnId(2), P, LockMode::IX));
        assert!(lm.holds(TxnId(2), r, LockMode::X));
    }

    #[test]
    fn async_compatible_readers_promoted_together() {
        let lm = LockManager::new();
        let sink = Arc::new(Collect::default());
        lm.set_events(Some(sink.clone()));
        lm.lock(TxnId(1), P, LockMode::X).unwrap();
        assert_eq!(lm.lock_async(TxnId(2), P, LockMode::S).unwrap(), AsyncLockOutcome::Queued);
        assert_eq!(lm.lock_async(TxnId(3), P, LockMode::S).unwrap(), AsyncLockOutcome::Queued);
        lm.release_all(TxnId(1));
        assert_eq!(
            *sink.got.lock().unwrap(),
            vec![(TxnId(2), P, true), (TxnId(3), P, true)],
            "both queued readers granted FIFO in one promotion walk"
        );
    }

    #[test]
    fn async_deadlock_detected_at_queue_time() {
        let lm = LockManager::new();
        let sink = Arc::new(Collect::default());
        lm.set_events(Some(sink.clone()));
        let (pa, pb) = (Resource::Page(PageId(10)), Resource::Page(PageId(11)));
        lm.lock(TxnId(1), pa, LockMode::X).unwrap();
        lm.lock(TxnId(2), pb, LockMode::X).unwrap();
        // T1 queues on pb: edge T1 → T2.
        assert_eq!(lm.lock_async(TxnId(1), pb, LockMode::X).unwrap(), AsyncLockOutcome::Queued);
        // T2 → pa would close the cycle: refused synchronously.
        assert!(matches!(
            lm.lock_async(TxnId(2), pa, LockMode::X),
            Err(QsError::LockConflict { .. })
        ));
        // T2 commits; T1's queued request is granted via the sink.
        lm.release_all(TxnId(2));
        assert_eq!(*sink.got.lock().unwrap(), vec![(TxnId(1), pb, true)]);
    }

    #[test]
    fn async_waiter_survives_sync_side_deadlock_abort() {
        // A parked async waiter is part of a cycle closed by a *blocked
        // thread*: the thread's eager check aborts the sync side, and the
        // async waiter must then be granted normally on release.
        let lm = Arc::new(LockManager::new());
        let sink = Arc::new(Collect::default());
        lm.set_events(Some(sink.clone()));
        let (pa, pb) = (Resource::Page(PageId(20)), Resource::Page(PageId(21)));
        lm.lock(TxnId(3), pa, LockMode::X).unwrap();
        lm.lock(TxnId(1), pb, LockMode::X).unwrap();
        assert_eq!(lm.lock_async(TxnId(1), pa, LockMode::X).unwrap(), AsyncLockOutcome::Queued);
        // T3 blocks on pb (held by T1) from a thread: edge T3 → T1; with
        // T1 → T3 already present one side must abort. The sync side
        // detects it at block time and departs; T1's queued request is
        // then granted when T3 finally releases pa.
        let lm2 = Arc::clone(&lm);
        let h = std::thread::spawn(move || {
            let r = lm2.lock(TxnId(3), pb, LockMode::X);
            lm2.release_all(TxnId(3));
            r
        });
        let r3 = h.join().unwrap();
        assert!(matches!(r3, Err(QsError::LockConflict { .. })), "sync side sees the cycle");
        assert_eq!(*sink.got.lock().unwrap(), vec![(TxnId(1), pa, true)]);
        assert!(lm.holds(TxnId(1), pa, LockMode::X));
    }

    #[test]
    fn concurrent_disjoint_workloads_race_free() {
        let lm = Arc::new(LockManager::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = Arc::clone(&lm);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    let p = Resource::Page(PageId(t as u32 * 1000 + i));
                    lm.lock(TxnId(t), p, LockMode::X).unwrap();
                }
                lm.release_all(TxnId(t));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lm.locked_resources(), 0);
    }

    #[test]
    fn concurrent_record_writers_on_one_page_race_free() {
        // Eight transactions hammer distinct slots of the same page: the
        // IX intents are all compatible, so nothing deadlocks or waits
        // indefinitely, and the table drains clean.
        let lm = Arc::new(LockManager::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = Arc::clone(&lm);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u16 {
                    let r = Resource::Record(PageId(7), t as u16 * 64 + i);
                    lm.lock_resource(TxnId(t), r, LockMode::X).unwrap();
                }
                lm.release_all(TxnId(t));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lm.locked_resources(), 0);
    }
}
