//! Page-level lock manager.
//!
//! ESM does page-level two-phase locking (the paper notes it does *not*
//! support fine-granularity locking, unlike ARIES/CSA — and that a
//! memory-mapped store is inherently page-based anyway). Modes are S and X
//! with upgrade; waiters queue FIFO; deadlocks are detected eagerly by a
//! waits-for-graph cycle check at block time and resolved by aborting the
//! requester (the paper's workloads are deliberately conflict-free, §4.1,
//! but the substrate must still be correct for the thread tests).
//!
//! Locks are *not* cached across transactions ("inter-transaction caching
//! of locks at clients is not supported") — the client releases everything
//! at commit/abort via [`LockManager::release_all`].

use qs_types::sync::{Condvar, Mutex};
use qs_types::{PageId, QsError, QsResult, TxnId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Lock modes. `S` for reads, `X` for updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    S,
    X,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::S, LockMode::S))
    }
}

/// Outcome of a non-blocking queued acquire ([`LockManager::lock_async`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsyncLockOutcome {
    /// Granted immediately; the caller may proceed.
    Granted,
    /// Conflicts with a current holder: the request joined the FIFO wait
    /// queue and the registered [`LockEvents`] sink will be told when it
    /// resolves (grant or deadlock abort).
    Queued,
}

/// Receiver for deferred async-lock resolutions. The reactor runtime
/// registers one so a queued request parks a *message*, not a thread.
/// Callbacks fire outside the lock-table mutex; a grant callback may
/// re-enter the lock manager.
pub trait LockEvents: Send + Sync {
    /// `txn`'s queued request on `page` resolved: `Ok` means the lock is
    /// now held, `Err(LockConflict)` means waiting would have deadlocked
    /// and the request was aborted instead.
    fn lock_done(&self, txn: TxnId, page: PageId, result: QsResult<()>);
}

/// How a queued waiter learns about its grant: a blocked thread on the
/// condvar (`Sync`) or the registered [`LockEvents`] sink (`Async`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaiterKind {
    Sync,
    Async,
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
    kind: WaiterKind,
}

#[derive(Debug, Default)]
struct LockEntry {
    /// Current holders and their granted mode.
    holders: HashMap<TxnId, LockMode>,
    /// FIFO wait queue.
    waiters: VecDeque<Waiter>,
}

impl LockEntry {
    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders.iter().all(|(&h, &hm)| h == txn || hm.compatible(mode) && mode.compatible(hm))
    }
}

#[derive(Default)]
struct LockTables {
    locks: HashMap<PageId, LockEntry>,
    /// Pages each transaction holds (for O(held) release).
    held: HashMap<TxnId, HashSet<PageId>>,
    /// waits-for edges (waiter → holders), for deadlock detection.
    waits_for: HashMap<TxnId, HashSet<TxnId>>,
}

impl LockTables {
    fn would_deadlock(&self, from: TxnId) -> bool {
        // DFS over waits-for edges looking for a cycle back to `from`.
        let mut stack: Vec<TxnId> =
            self.waits_for.get(&from).into_iter().flatten().copied().collect();
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == from {
                return true;
            }
            if seen.insert(t) {
                if let Some(next) = self.waits_for.get(&t) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }
}

/// One deferred resolution to deliver once the table mutex is dropped.
type Resolution = (TxnId, PageId, QsResult<()>);

/// The server's lock manager.
pub struct LockManager {
    tables: Mutex<LockTables>,
    wakeup: Condvar,
    /// Sink for async-waiter resolutions (reactor runtime). Behind its
    /// own mutex, taken only after `tables` is released.
    events: Mutex<Option<Arc<dyn LockEvents>>>,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    pub fn new() -> LockManager {
        LockManager {
            tables: Mutex::new(LockTables::default()),
            wakeup: Condvar::new(),
            events: Mutex::new(None),
        }
    }

    /// Install (or clear) the sink notified when async waiters resolve.
    pub fn set_events(&self, events: Option<Arc<dyn LockEvents>>) {
        *self.events.lock() = events;
    }

    /// Deliver deferred resolutions to the registered sink. Must be
    /// called with the table mutex already released: a grant callback may
    /// call straight back into the lock manager.
    fn deliver(&self, resolutions: Vec<Resolution>) {
        if resolutions.is_empty() {
            return;
        }
        let sink = self.events.lock().clone();
        if let Some(sink) = sink {
            for (txn, page, result) in resolutions {
                sink.lock_done(txn, page, result);
            }
        }
    }

    /// Promote grantable *async* waiters at the head of `page`'s queue.
    /// Stops at the first sync waiter (the condvar broadcast serves it —
    /// FIFO order across both kinds is preserved) or the first async
    /// waiter that still conflicts. A conflicting async head gets its
    /// waits-for edges refreshed against the current holders and a cycle
    /// check; a deadlocked one is aborted on the spot (it has no blocked
    /// thread to run its own check).
    fn promote_async(t: &mut LockTables, page: PageId, out: &mut Vec<Resolution>) {
        loop {
            let Some(entry) = t.locks.get_mut(&page) else { return };
            let Some(&head) = entry.waiters.front() else {
                if entry.holders.is_empty() {
                    t.locks.remove(&page);
                }
                return;
            };
            if head.kind == WaiterKind::Sync {
                return;
            }
            let grantable = match entry.holders.get(&head.txn) {
                // Queued upgrade: grantable once co-holders are gone (or
                // the request turned out to be satisfied already).
                Some(&held) => {
                    held == LockMode::X || head.mode == LockMode::S || entry.holders.len() == 1
                }
                None => entry.grantable(head.txn, head.mode),
            };
            if grantable {
                entry.waiters.pop_front();
                if head.mode == LockMode::X || !entry.holders.contains_key(&head.txn) {
                    entry.holders.insert(head.txn, head.mode);
                }
                t.held.entry(head.txn).or_default().insert(page);
                t.waits_for.remove(&head.txn);
                out.push((head.txn, page, Ok(())));
                continue;
            }
            // Still blocked: refresh this waiter's edges and re-check for
            // a cycle (a sync waiter re-checks on every wakeup; an async
            // waiter must be checked *for*).
            let holders: Vec<TxnId> =
                entry.holders.keys().copied().filter(|&h| h != head.txn).collect();
            let e = t.waits_for.entry(head.txn).or_default();
            e.clear();
            e.extend(holders);
            if t.would_deadlock(head.txn) {
                t.waits_for.remove(&head.txn);
                let entry = t.locks.get_mut(&page).expect("entry exists");
                entry.waiters.pop_front();
                let holder = entry.holders.keys().copied().next().unwrap_or(TxnId::INVALID);
                out.push((
                    head.txn,
                    page,
                    Err(QsError::LockConflict { page, holder, requester: head.txn }),
                ));
                continue;
            }
            return;
        }
    }

    /// Acquire `mode` on `page` for `txn` without ever blocking: grants
    /// that a blocking [`LockManager::lock`] would satisfy immediately
    /// return [`AsyncLockOutcome::Granted`]; a conflict queues the request
    /// FIFO (alongside blocked threads) and returns
    /// [`AsyncLockOutcome::Queued`] — the resolution arrives later through
    /// the [`LockEvents`] sink. `Err(LockConflict)` means queueing would
    /// deadlock right now.
    pub fn lock_async(
        &self,
        txn: TxnId,
        page: PageId,
        mode: LockMode,
    ) -> QsResult<AsyncLockOutcome> {
        let mut t = self.tables.lock();
        let entry = t.locks.entry(page).or_default();
        if let Some(&held) = entry.holders.get(&txn) {
            if held == LockMode::X || mode == LockMode::S || entry.holders.len() == 1 {
                if held == LockMode::S && mode == LockMode::X {
                    entry.holders.insert(txn, LockMode::X);
                }
                return Ok(AsyncLockOutcome::Granted);
            }
        } else {
            let may_pass = match entry.waiters.front() {
                None => true,
                Some(&head) => {
                    head.txn == txn
                        || mode == LockMode::S
                            && entry.waiters.iter().all(|w| w.mode == LockMode::S)
                }
            };
            if entry.grantable(txn, mode) && may_pass {
                entry.holders.insert(txn, mode);
                t.held.entry(txn).or_default().insert(page);
                return Ok(AsyncLockOutcome::Granted);
            }
        }
        // Conflict: queue (FIFO, same queue as blocked threads), record
        // waits-for edges, and run the same eager cycle check the
        // blocking path runs at block time.
        t.locks.get_mut(&page).expect("entry exists").waiters.push_back(Waiter {
            txn,
            mode,
            kind: WaiterKind::Async,
        });
        let holders: Vec<TxnId> =
            t.locks[&page].holders.keys().copied().filter(|&h| h != txn).collect();
        t.waits_for.entry(txn).or_default().extend(holders);
        if t.would_deadlock(txn) {
            t.waits_for.remove(&txn);
            if let Some(e) = t.locks.get_mut(&page) {
                e.waiters.retain(|w| w.txn != txn);
            }
            let holder = t.locks[&page].holders.keys().copied().next().unwrap_or(TxnId::INVALID);
            drop(t);
            self.wakeup.notify_all();
            return Err(QsError::LockConflict { page, holder, requester: txn });
        }
        Ok(AsyncLockOutcome::Queued)
    }

    /// Acquire `mode` on `page` for `txn`, blocking until granted.
    /// Returns `Err(LockConflict)` if waiting would deadlock.
    ///
    /// Grants hand off FIFO: a waiter stays queued across wakeups and is
    /// granted only once it reaches the head of the queue (or everyone
    /// queued is a reader). Dequeue-then-recheck — the old protocol —
    /// live-locks with ≥3 contenders: each woken waiter sees the *others*
    /// still queued, requeues itself, and sleeps again with the lock free.
    pub fn lock(&self, txn: TxnId, page: PageId, mode: LockMode) -> QsResult<()> {
        self.lock_observing(txn, page, mode).map(|_waited| ())
    }

    /// [`LockManager::lock`], additionally reporting whether the request
    /// had to queue behind a conflicting holder (`Ok(true)` = it waited).
    /// The tracing layer uses this to count lock waits without a second
    /// trip into the lock tables.
    pub fn lock_observing(&self, txn: TxnId, page: PageId, mode: LockMode) -> QsResult<bool> {
        let mut t = self.tables.lock();
        let mut queued = false;
        loop {
            let entry = t.locks.entry(page).or_default();
            if let Some(&held) = entry.holders.get(&txn) {
                // Re-entrant / upgrade handling. Upgrades bypass the queue;
                // an S→X upgrade with co-holders falls through and waits.
                if held == LockMode::X || mode == LockMode::S || entry.holders.len() == 1 {
                    if held == LockMode::S && mode == LockMode::X {
                        entry.holders.insert(txn, LockMode::X);
                    }
                    if queued {
                        entry.waiters.retain(|w| w.txn != txn);
                    }
                    t.waits_for.remove(&txn);
                    // Our departure from the queue may expose a runnable
                    // async head (e.g. a reader queued behind this one).
                    let resolutions = Self::drain_promotions(&mut t, page, queued);
                    drop(t);
                    self.deliver(resolutions);
                    return Ok(queued);
                }
            } else {
                let may_pass = match entry.waiters.front() {
                    None => true,
                    Some(&head) => {
                        head.txn == txn
                            || mode == LockMode::S
                                && entry.waiters.iter().all(|w| w.mode == LockMode::S)
                    }
                };
                if entry.grantable(txn, mode) && may_pass {
                    if queued {
                        entry.waiters.retain(|w| w.txn != txn);
                    }
                    entry.holders.insert(txn, mode);
                    t.held.entry(txn).or_default().insert(page);
                    t.waits_for.remove(&txn);
                    // A compatible async reader may sit right behind us.
                    let resolutions = Self::drain_promotions(&mut t, page, queued);
                    drop(t);
                    self.deliver(resolutions);
                    return Ok(queued);
                }
            }

            // Must wait. Queue up once, record waits-for edges, check for a
            // cycle; edges are rebuilt fresh on every wakeup.
            if !queued {
                t.locks.entry(page).or_default().waiters.push_back(Waiter {
                    txn,
                    mode,
                    kind: WaiterKind::Sync,
                });
                queued = true;
            }
            let holders: Vec<TxnId> =
                t.locks[&page].holders.keys().copied().filter(|&h| h != txn).collect();
            t.waits_for.entry(txn).or_default().extend(holders);
            if t.would_deadlock(txn) {
                t.waits_for.remove(&txn);
                if let Some(e) = t.locks.get_mut(&page) {
                    e.waiters.retain(|w| w.txn != txn);
                }
                let holder =
                    t.locks[&page].holders.keys().copied().next().unwrap_or(TxnId::INVALID);
                // Our departure may have promoted a runnable new head —
                // sync (condvar broadcast) or async (promotion walk).
                let mut resolutions = Vec::new();
                Self::promote_async(&mut t, page, &mut resolutions);
                drop(t);
                self.wakeup.notify_all();
                self.deliver(resolutions);
                return Err(QsError::LockConflict { page, holder, requester: txn });
            }
            self.wakeup.wait(&mut t);
            t.waits_for.remove(&txn);
        }
    }

    /// Run the async promotion walk over `page` if this thread's exit
    /// from the wait queue could have changed its head (`was_queued`).
    fn drain_promotions(t: &mut LockTables, page: PageId, was_queued: bool) -> Vec<Resolution> {
        let mut resolutions = Vec::new();
        if was_queued {
            Self::promote_async(t, page, &mut resolutions);
        }
        resolutions
    }

    /// Non-blocking acquire; `Err(LockConflict)` on any conflict.
    pub fn try_lock(&self, txn: TxnId, page: PageId, mode: LockMode) -> QsResult<()> {
        let mut t = self.tables.lock();
        let entry = t.locks.entry(page).or_default();
        if let Some(&held) = entry.holders.get(&txn) {
            if held == LockMode::X || mode == LockMode::S {
                return Ok(());
            }
            if entry.holders.len() == 1 {
                entry.holders.insert(txn, LockMode::X);
                return Ok(());
            }
        } else if entry.grantable(txn, mode) && entry.waiters.is_empty() {
            entry.holders.insert(txn, mode);
            t.held.entry(txn).or_default().insert(page);
            return Ok(());
        }
        let holder = entry.holders.keys().copied().next().unwrap_or(TxnId::INVALID);
        Err(QsError::LockConflict { page, holder, requester: txn })
    }

    /// Does `txn` hold at least `mode` on `page`?
    pub fn holds(&self, txn: TxnId, page: PageId, mode: LockMode) -> bool {
        let t = self.tables.lock();
        match t.locks.get(&page).and_then(|e| e.holders.get(&txn)) {
            Some(&LockMode::X) => true,
            Some(&LockMode::S) => mode == LockMode::S,
            None => false,
        }
    }

    /// Release every lock `txn` holds (commit/abort — strict 2PL).
    /// Blocked threads are woken through the condvar; queued async
    /// waiters at a freed queue's head are granted (or deadlock-aborted)
    /// here and notified through the [`LockEvents`] sink.
    pub fn release_all(&self, txn: TxnId) {
        let mut t = self.tables.lock();
        let mut resolutions = Vec::new();
        if let Some(pages) = t.held.remove(&txn) {
            for page in pages {
                if let Some(e) = t.locks.get_mut(&page) {
                    e.holders.remove(&txn);
                    if e.holders.is_empty() && e.waiters.is_empty() {
                        t.locks.remove(&page);
                    } else {
                        Self::promote_async(&mut t, page, &mut resolutions);
                    }
                }
            }
        }
        t.waits_for.remove(&txn);
        drop(t);
        self.wakeup.notify_all();
        self.deliver(resolutions);
    }

    /// Number of pages currently locked by anyone (test hook).
    pub fn locked_pages(&self) -> usize {
        self.tables.lock().locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const P: PageId = PageId(1);

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), P, LockMode::S).unwrap();
        lm.lock(TxnId(2), P, LockMode::S).unwrap();
        assert!(lm.holds(TxnId(1), P, LockMode::S));
        assert!(lm.holds(TxnId(2), P, LockMode::S));
    }

    #[test]
    fn exclusive_conflicts_detected_by_try_lock() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), P, LockMode::X).unwrap();
        assert!(matches!(lm.try_lock(TxnId(2), P, LockMode::S), Err(QsError::LockConflict { .. })));
        lm.release_all(TxnId(1));
        lm.try_lock(TxnId(2), P, LockMode::S).unwrap();
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), P, LockMode::S).unwrap();
        lm.lock(TxnId(1), P, LockMode::S).unwrap(); // re-entrant
        lm.lock(TxnId(1), P, LockMode::X).unwrap(); // sole-holder upgrade
        assert!(lm.holds(TxnId(1), P, LockMode::X));
        // X implies S.
        assert!(lm.holds(TxnId(1), P, LockMode::S));
    }

    #[test]
    fn release_all_clears_table() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), PageId(1), LockMode::X).unwrap();
        lm.lock(TxnId(1), PageId(2), LockMode::S).unwrap();
        assert_eq!(lm.locked_pages(), 2);
        lm.release_all(TxnId(1));
        assert_eq!(lm.locked_pages(), 0);
    }

    #[test]
    fn blocking_lock_granted_after_release() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxnId(1), P, LockMode::X).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = std::thread::spawn(move || {
            lm2.lock(TxnId(2), P, LockMode::X).unwrap();
            lm2.release_all(TxnId(2));
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        lm.release_all(TxnId(1));
        h.join().unwrap();
    }

    #[test]
    fn deadlock_detected() {
        let lm = Arc::new(LockManager::new());
        let (pa, pb) = (PageId(10), PageId(11));
        lm.lock(TxnId(1), pa, LockMode::X).unwrap();
        lm.lock(TxnId(2), pb, LockMode::X).unwrap();
        let lm2 = Arc::clone(&lm);
        // T2 blocks on pa (held by T1).
        let h = std::thread::spawn(move || {
            let r = lm2.lock(TxnId(2), pa, LockMode::X);
            lm2.release_all(TxnId(2));
            r
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // T1 → pb creates the cycle: one of the two must get LockConflict.
        let r1 = lm.lock(TxnId(1), pb, LockMode::X);
        lm.release_all(TxnId(1));
        let r2 = h.join().unwrap();
        assert!(r1.is_err() || r2.is_err(), "deadlock must be detected on at least one side");
    }

    /// Records every async resolution it sees.
    #[derive(Default)]
    struct Collect {
        got: std::sync::Mutex<Vec<(TxnId, PageId, bool)>>,
    }

    impl LockEvents for Collect {
        fn lock_done(&self, txn: TxnId, page: PageId, result: QsResult<()>) {
            self.got.lock().unwrap().push((txn, page, result.is_ok()));
        }
    }

    #[test]
    fn async_immediate_grant_and_upgrade() {
        let lm = LockManager::new();
        assert_eq!(lm.lock_async(TxnId(1), P, LockMode::S).unwrap(), AsyncLockOutcome::Granted);
        // Sole-holder upgrade grants immediately too.
        assert_eq!(lm.lock_async(TxnId(1), P, LockMode::X).unwrap(), AsyncLockOutcome::Granted);
        assert!(lm.holds(TxnId(1), P, LockMode::X));
    }

    #[test]
    fn async_waiter_granted_on_release() {
        let lm = LockManager::new();
        let sink = Arc::new(Collect::default());
        lm.set_events(Some(sink.clone()));
        lm.lock(TxnId(1), P, LockMode::X).unwrap();
        assert_eq!(lm.lock_async(TxnId(2), P, LockMode::X).unwrap(), AsyncLockOutcome::Queued);
        assert!(sink.got.lock().unwrap().is_empty(), "no grant while held");
        lm.release_all(TxnId(1));
        assert_eq!(*sink.got.lock().unwrap(), vec![(TxnId(2), P, true)]);
        assert!(lm.holds(TxnId(2), P, LockMode::X));
        lm.release_all(TxnId(2));
        assert_eq!(lm.locked_pages(), 0);
    }

    #[test]
    fn async_compatible_readers_promoted_together() {
        let lm = LockManager::new();
        let sink = Arc::new(Collect::default());
        lm.set_events(Some(sink.clone()));
        lm.lock(TxnId(1), P, LockMode::X).unwrap();
        assert_eq!(lm.lock_async(TxnId(2), P, LockMode::S).unwrap(), AsyncLockOutcome::Queued);
        assert_eq!(lm.lock_async(TxnId(3), P, LockMode::S).unwrap(), AsyncLockOutcome::Queued);
        lm.release_all(TxnId(1));
        assert_eq!(
            *sink.got.lock().unwrap(),
            vec![(TxnId(2), P, true), (TxnId(3), P, true)],
            "both queued readers granted FIFO in one promotion walk"
        );
    }

    #[test]
    fn async_deadlock_detected_at_queue_time() {
        let lm = LockManager::new();
        let sink = Arc::new(Collect::default());
        lm.set_events(Some(sink.clone()));
        let (pa, pb) = (PageId(10), PageId(11));
        lm.lock(TxnId(1), pa, LockMode::X).unwrap();
        lm.lock(TxnId(2), pb, LockMode::X).unwrap();
        // T1 queues on pb: edge T1 → T2.
        assert_eq!(lm.lock_async(TxnId(1), pb, LockMode::X).unwrap(), AsyncLockOutcome::Queued);
        // T2 → pa would close the cycle: refused synchronously.
        assert!(matches!(
            lm.lock_async(TxnId(2), pa, LockMode::X),
            Err(QsError::LockConflict { .. })
        ));
        // T2 commits; T1's queued request is granted via the sink.
        lm.release_all(TxnId(2));
        assert_eq!(*sink.got.lock().unwrap(), vec![(TxnId(1), pb, true)]);
    }

    #[test]
    fn async_waiter_survives_sync_side_deadlock_abort() {
        // A parked async waiter is part of a cycle closed by a *blocked
        // thread*: the thread's eager check aborts the sync side, and the
        // async waiter must then be granted normally on release.
        let lm = Arc::new(LockManager::new());
        let sink = Arc::new(Collect::default());
        lm.set_events(Some(sink.clone()));
        let (pa, pb) = (PageId(20), PageId(21));
        lm.lock(TxnId(3), pa, LockMode::X).unwrap();
        lm.lock(TxnId(1), pb, LockMode::X).unwrap();
        assert_eq!(lm.lock_async(TxnId(1), pa, LockMode::X).unwrap(), AsyncLockOutcome::Queued);
        // T3 blocks on pb (held by T1) from a thread: edge T3 → T1; with
        // T1 → T3 already present one side must abort. The sync side
        // detects it at block time and departs; T1's queued request is
        // then granted when T3 finally releases pa.
        let lm2 = Arc::clone(&lm);
        let h = std::thread::spawn(move || {
            let r = lm2.lock(TxnId(3), pb, LockMode::X);
            lm2.release_all(TxnId(3));
            r
        });
        let r3 = h.join().unwrap();
        assert!(matches!(r3, Err(QsError::LockConflict { .. })), "sync side sees the cycle");
        assert_eq!(*sink.got.lock().unwrap(), vec![(TxnId(1), pa, true)]);
        assert!(lm.holds(TxnId(1), pa, LockMode::X));
    }

    #[test]
    fn concurrent_disjoint_workloads_race_free() {
        let lm = Arc::new(LockManager::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = Arc::clone(&lm);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    let p = PageId(t as u32 * 1000 + i);
                    lm.lock(TxnId(t), p, LockMode::X).unwrap();
                }
                lm.release_all(TxnId(t));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lm.locked_pages(), 0);
    }
}
