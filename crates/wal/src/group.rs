//! Group commit: concurrent committers coalesce their log forces.
//!
//! Classic leader/follower protocol (DeWitt et al.'s group commit, as in
//! the multicore-recovery literature the decomposition PR follows): each
//! committer publishes the LSN it needs durable and joins the batch. The
//! first one in becomes *leader* and forces the log once, through the
//! highest LSN any batch member published; everyone whose record became
//! durable under that force — before it, or by absorption while waiting —
//! returns without touching the disk. One synchronous `sync()` per batch
//! instead of one per commit is the entire win.
//!
//! Correctness leans on one property of [`LogManager`]: `durable_lsn()`
//! only advances to record *boundaries*, so `durable_lsn() > lsn` proves
//! the whole record starting at `lsn` is on stable storage.

use crate::log::{ForceStats, LogManager};
use qs_types::sync::{Condvar, Mutex};
use qs_types::{Lsn, QsResult};
use std::sync::atomic::{AtomicU64, Ordering};

/// Coalesces concurrent [`LogManager::force_through`] calls into batches.
#[derive(Debug, Default)]
pub struct GroupCommitter {
    state: Mutex<GroupState>,
    cv: Condvar,
    /// Commits that asked for durability through this committer.
    calls: AtomicU64,
    /// Forces that actually wrote (mean batch size = calls / forces).
    forces: AtomicU64,
}

#[derive(Debug, Default)]
struct GroupState {
    /// A leader is currently forcing.
    leader: bool,
    /// Highest LSN any current waiter needs durable.
    high: Lsn,
    /// Members of the forming batch (leader included).
    waiting: u64,
}

/// What one group-commit participation amounted to.
#[derive(Debug, Clone, Copy)]
pub struct GroupOutcome {
    /// The underlying force's stats — `wrote: false` for followers whose
    /// record was made durable by a leader (metered as a no-op force).
    pub stats: ForceStats,
    /// `Some(batch_size)` when this caller led a force; the size counts
    /// every member waiting at the moment the leader took over.
    pub led_batch: Option<u64>,
}

impl GroupCommitter {
    pub fn new() -> GroupCommitter {
        GroupCommitter::default()
    }

    /// Make the record starting at `lsn` durable, batching with any other
    /// committers in flight. Exactly one caller per batch drives the
    /// actual [`LogManager::force_through`].
    pub fn force_through(&self, log: &LogManager, lsn: Lsn) -> QsResult<GroupOutcome> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();
        if st.high < lsn {
            st.high = lsn;
        }
        st.waiting += 1;
        loop {
            // Absorbed: a leader (earlier or concurrent) already covered us.
            if log.durable_lsn() > lsn {
                st.waiting -= 1;
                return Ok(GroupOutcome {
                    stats: ForceStats { pages_written: 0, wrote: false },
                    led_batch: None,
                });
            }
            if !st.leader {
                // Take leadership: force through the batch's high-water
                // mark with the group lock released, so later committers
                // can join the *next* batch while the disk syncs.
                st.leader = true;
                let target = st.high;
                let batch = st.waiting;
                drop(st);
                let res = log.force_through(target);
                let mut st2 = self.state.lock();
                st2.leader = false;
                st2.waiting -= 1;
                self.cv.notify_all();
                drop(st2);
                let stats = res?;
                if stats.wrote {
                    self.forces.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(GroupOutcome { stats, led_batch: Some(batch) });
            }
            self.cv.wait(&mut st);
        }
    }

    /// Commits that went through the committer.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Real (writing) forces the leaders performed.
    pub fn forces(&self) -> u64 {
        self.forces.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;
    use qs_storage::{MemDisk, StableMedia};
    use qs_types::TxnId;
    use std::sync::Arc;
    use std::time::Duration;

    fn commit_rec(t: u64) -> LogRecord {
        LogRecord::Commit { txn: TxnId(t), prev: Lsn::NULL }
    }

    #[test]
    fn single_caller_leads_its_own_batch() {
        let media = Arc::new(MemDisk::new(LogManager::required_bytes(1 << 16)));
        let log = LogManager::format(media as Arc<dyn StableMedia>, 1 << 16).unwrap();
        let gc = GroupCommitter::new();
        let lsn = log.append(&commit_rec(1)).unwrap();
        let out = gc.force_through(&log, lsn).unwrap();
        assert!(out.stats.wrote);
        assert_eq!(out.led_batch, Some(1));
        assert!(log.durable_lsn() > lsn);
        assert_eq!((gc.calls(), gc.forces()), (1, 1));
        // Already durable: absorbed without a force.
        let out2 = gc.force_through(&log, lsn).unwrap();
        assert!(!out2.stats.wrote);
        assert_eq!(out2.led_batch, None);
        assert_eq!((gc.calls(), gc.forces()), (2, 1));
    }

    #[test]
    fn concurrent_commits_batch_into_few_forces() {
        // A slow log sync gives followers time to pile up behind a leader.
        const K: usize = 8;
        let media = Arc::new(MemDisk::with_sync_latency(
            LogManager::required_bytes(1 << 18),
            Duration::from_millis(5),
        ));
        let log = Arc::new(LogManager::format(media as Arc<dyn StableMedia>, 1 << 18).unwrap());
        let gc = Arc::new(GroupCommitter::new());
        let handles: Vec<_> = (0..K)
            .map(|i| {
                let log = Arc::clone(&log);
                let gc = Arc::clone(&gc);
                std::thread::spawn(move || {
                    let lsn = log.append(&commit_rec(i as u64)).unwrap();
                    let out = gc.force_through(&log, lsn).unwrap();
                    (lsn, out)
                })
            })
            .collect();
        let outs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (lsn, _) in &outs {
            assert!(log.durable_lsn() > *lsn, "every commit durable");
        }
        let forces = gc.forces();
        assert!(forces >= 1 && forces <= K as u64, "got {forces} forces");
        assert_eq!(gc.calls(), K as u64);
        let led: u64 = outs.iter().filter_map(|(_, o)| o.led_batch).count() as u64;
        let wrote: u64 = outs.iter().filter(|(_, o)| o.stats.wrote).count() as u64;
        assert_eq!(wrote, forces, "exactly the writing leaders counted");
        assert!(led >= wrote, "every writing force had a leader");
    }
}
