//! Write-ahead log substrate.
//!
//! Two halves:
//!
//! * [`record`] — the log-record vocabulary (redo/undo updates, whole-page
//!   images, commit/abort, CLRs, checkpoints) and a hand-rolled binary
//!   codec. Every record's encoded size is exactly
//!   `LOG_HEADER_SIZE + variable payload`, so log-volume arithmetic in the
//!   experiments matches the paper's "50-byte header + before/after images"
//!   accounting byte-for-byte (§3.2.2's 116-vs-74-byte example holds).
//!
//! * [`log`] — a circular, append-only log manager over a stable medium
//!   (the paper's dedicated Sun0424 log disk), with an in-memory tail
//!   buffer, explicit force (WAL discipline), forward and backward scans,
//!   and space reclamation via `truncate_to`.
//!
//! Plus [`group`] — a leader/follower [`GroupCommitter`] that coalesces
//! concurrent commit forces into one disk sync per batch — and [`stream`]
//! — the chunked log scanner, bounded-channel chunk producer, and undo
//! log-page cache that feed the parallel restart engine.

pub mod group;
pub mod log;
pub mod record;
pub mod stream;
pub mod writer;

pub use group::{GroupCommitter, GroupOutcome};
pub use log::{ForceStats, LogManager, LogPressure};
pub use record::{CheckpointBody, LogRecord, SchemeCode, WplCheckpointEntry};
pub use stream::{stream_chunks, ChunkedScanner, FrameChunk, FrameRef, LogReadCache};
pub use writer::RecordWriter;
