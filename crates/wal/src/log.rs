//! The circular, append-only log manager (paper §3.1: "The ESM server
//! manages a circular, append-only log on secondary storage").
//!
//! LSNs are byte offsets in an *unbounded logical* address space; the
//! physical log body (everything past one header page on the medium) holds
//! the window `[start_lsn, tail_lsn)`, wrapped modulo its capacity.
//! Appends go to a volatile tail buffer; [`LogManager::force`] makes a
//! prefix durable (the WAL discipline). `truncate_to` releases space —
//! driven by the WPL reclaim thread or ordinary checkpointing.
//!
//! The durable header page stores `{start, durable, checkpoint}` LSNs and
//! is rewritten on every force, so a restarted manager knows exactly where
//! the recoverable log ends.

use crate::record::LogRecord;
use qs_storage::StableMedia;
use qs_trace::{TraceCat, Tracer};
use qs_types::sync::Mutex;
use qs_types::{Lsn, QsError, QsResult, PAGE_SIZE};
use std::sync::Arc;

const MAGIC: u64 = 0x51_534c_4f47_u64; // "QSLOG"

struct LogState {
    /// Oldest LSN still needed (log space before it is reclaimable).
    start: Lsn,
    /// Everything below this LSN is durable on the medium.
    durable: Lsn,
    /// Next append position.
    tail: Lsn,
    /// LSN of the most recent checkpoint record (durable in the header).
    checkpoint: Lsn,
    /// Unforced tail: bytes for LSNs `[durable, tail)`.
    buffer: Vec<u8>,
}

/// Statistics of one force, for the caller to meter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForceStats {
    /// 8 KB pages worth of log data written to the medium.
    pub pages_written: u64,
    /// Whether any write happened (a no-op force costs nothing).
    pub wrote: bool,
}

/// Server-side log-pressure signal, piggybacked on commit replies so
/// adaptively-logging clients can shift toward compact logical records as
/// the log fills (DESIGN.md §6g). Both components are normalized to
/// `[0, 1]`:
///
/// * `fill` — how far log occupancy sits between the low and high
///   maintenance watermarks (distance to the truncation anchor);
/// * `queue` — log-disk force queue depth (forces in flight), saturating
///   at [`LogPressure::QUEUE_SATURATION`] concurrent forces.
///
/// The wire format is two little-endian `u16` per-mille values (4 bytes),
/// pinned by [`LogPressure::encode`]/[`LogPressure::decode`] and their
/// round-trip test.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LogPressure {
    pub fill: f64,
    pub queue: f64,
}

impl LogPressure {
    /// Forces in flight at which the queue component reads 1.0.
    pub const QUEUE_SATURATION: u64 = 4;

    pub fn new(fill: f64, queue: f64) -> LogPressure {
        LogPressure { fill: fill.clamp(0.0, 1.0), queue: queue.clamp(0.0, 1.0) }
    }

    /// Combined pressure in `[0, 1]`: fill dominates (it predicts
    /// truncation stalls), queue adds up to a 25% kicker.
    pub fn combined(&self) -> f64 {
        (0.75 * self.fill + 0.25 * self.queue).clamp(0.0, 1.0)
    }

    /// The 4-byte commit-reply piggyback: `fill‰ (u16 LE) | queue‰ (u16 LE)`.
    pub fn encode(&self) -> [u8; 4] {
        let mille = |v: f64| (v.clamp(0.0, 1.0) * 1000.0).round() as u16;
        let mut out = [0u8; 4];
        out[0..2].copy_from_slice(&mille(self.fill).to_le_bytes());
        out[2..4].copy_from_slice(&mille(self.queue).to_le_bytes());
        out
    }

    pub fn decode(bytes: &[u8; 4]) -> LogPressure {
        let fill = u16::from_le_bytes(bytes[0..2].try_into().unwrap()) as f64 / 1000.0;
        let queue = u16::from_le_bytes(bytes[2..4].try_into().unwrap()) as f64 / 1000.0;
        LogPressure::new(fill, queue)
    }
}

/// Circular log over a stable medium.
pub struct LogManager {
    media: Arc<dyn StableMedia>,
    /// Bytes of log body on the medium (capacity of the circular window).
    body_capacity: usize,
    state: Mutex<LogState>,
    /// Serializes forces with each other so the media write and `sync()`
    /// can run *outside* `state`: appends and reads proceed while a force
    /// is waiting on the disk, which is what lets a group-commit leader
    /// sleep in `sync()` without stalling the next batch's appends.
    force_serial: Mutex<()>,
    /// Observability hook (disabled by default: one branch per append/force).
    tracer: Arc<Tracer>,
}

impl LogManager {
    /// Bytes of stable storage needed for a log with `body_capacity` bytes.
    pub fn required_bytes(body_capacity: usize) -> usize {
        PAGE_SIZE + body_capacity
    }

    /// Format a fresh log on `media`.
    pub fn format(media: Arc<dyn StableMedia>, body_capacity: usize) -> QsResult<LogManager> {
        if media.len() < Self::required_bytes(body_capacity) {
            return Err(QsError::Config {
                detail: format!(
                    "log media of {} bytes too small for body of {body_capacity}",
                    media.len()
                ),
            });
        }
        // Logical LSNs start at PAGE_SIZE, never 0: `Lsn::NULL` is therefore
        // unambiguous as "no record" (checkpoint absent, end of a
        // transaction's backward chain).
        let origin = Lsn(PAGE_SIZE as u64);
        let lm = LogManager {
            media,
            body_capacity,
            state: Mutex::new(LogState {
                start: origin,
                durable: origin,
                tail: origin,
                checkpoint: Lsn::NULL,
                buffer: Vec::new(),
            }),
            force_serial: Mutex::new(()),
            tracer: Tracer::disabled(),
        };
        lm.write_header(&lm.state.lock())?;
        Ok(lm)
    }

    /// Re-open after a crash: the tail buffer is gone; the durable prefix
    /// recorded in the header is the whole recoverable log.
    pub fn open(media: Arc<dyn StableMedia>) -> QsResult<LogManager> {
        let mut hdr = [0u8; 48];
        media.read_at(0, &mut hdr)?;
        let magic = u64::from_le_bytes(hdr[0..8].try_into().unwrap());
        if magic != MAGIC {
            return Err(QsError::RecoveryFailed { detail: "log header magic mismatch".into() });
        }
        let body_capacity = u64::from_le_bytes(hdr[8..16].try_into().unwrap()) as usize;
        let start = Lsn(u64::from_le_bytes(hdr[16..24].try_into().unwrap()));
        let durable = Lsn(u64::from_le_bytes(hdr[24..32].try_into().unwrap()));
        let checkpoint = Lsn(u64::from_le_bytes(hdr[32..40].try_into().unwrap()));
        Ok(LogManager {
            media,
            body_capacity,
            state: Mutex::new(LogState {
                start,
                durable,
                tail: durable, // unforced appends died with the crash
                checkpoint,
                buffer: Vec::new(),
            }),
            force_serial: Mutex::new(()),
            tracer: Tracer::disabled(),
        })
    }

    /// Install a tracer (the server wires its own through right after
    /// `format`/`open`, before the log sees any traffic).
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = tracer;
    }

    fn write_header(&self, st: &LogState) -> QsResult<()> {
        let mut hdr = [0u8; 48];
        hdr[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        hdr[8..16].copy_from_slice(&(self.body_capacity as u64).to_le_bytes());
        hdr[16..24].copy_from_slice(&st.start.0.to_le_bytes());
        hdr[24..32].copy_from_slice(&st.durable.0.to_le_bytes());
        hdr[32..40].copy_from_slice(&st.checkpoint.0.to_le_bytes());
        self.media.write_at(0, &hdr)
    }

    /// Write `bytes` at logical position `lsn`, wrapping physically.
    fn write_body(&self, lsn: Lsn, bytes: &[u8]) -> QsResult<()> {
        let mut off = (lsn.0 as usize) % self.body_capacity;
        let mut rest = bytes;
        while !rest.is_empty() {
            let n = rest.len().min(self.body_capacity - off);
            self.media.write_at(PAGE_SIZE + off, &rest[..n])?;
            rest = &rest[n..];
            off = (off + n) % self.body_capacity;
        }
        Ok(())
    }

    /// Read `buf.len()` bytes at logical position `lsn`, wrapping physically.
    fn read_body(&self, lsn: Lsn, buf: &mut [u8]) -> QsResult<()> {
        let mut off = (lsn.0 as usize) % self.body_capacity;
        let mut at = 0usize;
        while at < buf.len() {
            let n = (buf.len() - at).min(self.body_capacity - off);
            self.media.read_at(PAGE_SIZE + off, &mut buf[at..at + n])?;
            at += n;
            off = (off + n) % self.body_capacity;
        }
        Ok(())
    }

    /// Append a record to the volatile tail. Returns its LSN.
    pub fn append(&self, rec: &LogRecord) -> QsResult<Lsn> {
        let enc = rec.encode();
        let mut st = self.state.lock();
        let used = (st.tail.0 - st.start.0) as usize;
        if used + enc.len() > self.body_capacity {
            return Err(QsError::LogFull { capacity: self.body_capacity, need: enc.len() });
        }
        let lsn = st.tail;
        st.buffer.extend_from_slice(&enc);
        st.tail = st.tail.advance(enc.len());
        drop(st);
        self.tracer.event(TraceCat::WalAppend, "append", lsn.0, enc.len() as u64);
        Ok(lsn)
    }

    /// Append one already-encoded record, rewriting its `prev` LSN in
    /// place (clients ship records with `prev = NULL`; the server chains
    /// them here without re-encoding). Returns the record's LSN.
    pub fn append_rechained(&self, rec: &[u8], prev: Lsn) -> QsResult<Lsn> {
        let mut st = self.state.lock();
        let used = (st.tail.0 - st.start.0) as usize;
        if used + rec.len() > self.body_capacity {
            return Err(QsError::LogFull { capacity: self.body_capacity, need: rec.len() });
        }
        let lsn = st.tail;
        let at = st.buffer.len();
        st.buffer.extend_from_slice(rec);
        crate::record::frame_set_prev(&mut st.buffer[at..at + rec.len()], prev);
        st.tail = st.tail.advance(rec.len());
        drop(st);
        self.tracer.event(TraceCat::WalAppend, "append", lsn.0, rec.len() as u64);
        Ok(lsn)
    }

    /// Make everything up to **and including** the record starting at
    /// `upto` durable. (Forcing `tail_lsn()` forces the whole buffer.)
    /// This is the WAL hook: stealing a page with pageLSN `l` calls
    /// `force(l)` first.
    ///
    /// Runs in three phases so the media write and `sync()` happen outside
    /// the state lock (appends keep flowing while the disk spins):
    ///
    /// 1. under `state`: find the target boundary and *copy* the bytes;
    /// 2. no lock: write the body region `[durable, target)` to the medium
    ///    — nobody reads it there yet (reads at LSN ≥ durable go to the
    ///    tail buffer, which still holds those bytes), nobody else writes
    ///    it (`force_serial` admits one force, `truncate_to` never moves
    ///    `start` past `durable`);
    /// 3. under `state`: drain the copied prefix, publish the new
    ///    `durable`, rewrite the header; then `sync()` with no lock held.
    pub fn force(&self, upto: Lsn) -> QsResult<ForceStats> {
        let _one_force = self.force_serial.lock();
        // Phase 1: snapshot what to write.
        let st = self.state.lock();
        if upto < st.durable {
            drop(st);
            self.tracer.event(TraceCat::WalForce, "noop", 0, 1);
            return Ok(ForceStats { pages_written: 0, wrote: false });
        }
        // Walk record boundaries in the tail buffer to find the end of the
        // last record whose start is ≤ upto.
        let mut end = st.durable;
        let mut idx = 0usize;
        while end < st.tail && end <= upto {
            let len = u32::from_le_bytes(st.buffer[idx..idx + 4].try_into().unwrap()) as usize;
            end = end.advance(len);
            idx += len;
        }
        let target = end.min(st.tail);
        if target <= st.durable {
            drop(st);
            self.tracer.event(TraceCat::WalForce, "noop", 0, 1);
            return Ok(ForceStats { pages_written: 0, wrote: false });
        }
        let base = st.durable;
        let n = (target.0 - base.0) as usize;
        // `n` may exceed the buffer only through logic bugs; be strict.
        assert!(n <= st.buffer.len(), "force past buffered tail");
        let chunk: Vec<u8> = st.buffer[..n].to_vec();
        drop(st);

        // Phase 2: stream the body without blocking appenders.
        self.write_body(base, &chunk)?;

        // Phase 3: publish durability. Only forces mutate `durable` or the
        // buffer front, and `force_serial` keeps this one alone in flight,
        // so `base`/`n` still describe the buffer's prefix exactly.
        let mut st = self.state.lock();
        st.buffer.drain(..n);
        st.durable = target;
        self.write_header(&st)?;
        drop(st);
        self.media.sync()?;
        // Sequential pages touched: the force streams `n` bytes.
        let pages = (n as u64).div_ceil(PAGE_SIZE as u64).max(1);
        self.tracer.event(TraceCat::WalForce, "force", pages, 0);
        Ok(ForceStats { pages_written: pages, wrote: true })
    }

    /// Batch-oriented alias for [`LogManager::force`], used by the group
    /// committer: a leader forces through the *highest* LSN its batch
    /// needs, and every waiter whose record starts at or below `lsn` is
    /// durable afterwards (`durable_lsn() > lsn`, since `durable` only
    /// lands on record boundaries).
    pub fn force_through(&self, lsn: Lsn) -> QsResult<ForceStats> {
        self.force(lsn)
    }

    /// Read the record starting at `lsn` (from the durable body or the
    /// volatile tail buffer). Returns the record and the LSN just past it.
    pub fn read_record(&self, lsn: Lsn) -> QsResult<(LogRecord, Lsn)> {
        let st = self.state.lock();
        if lsn < st.start || lsn >= st.tail {
            return Err(QsError::LogCorrupt {
                detail: format!("read at {lsn} outside log window [{}, {})", st.start, st.tail),
            });
        }
        let bytes = if lsn >= st.durable {
            // In the volatile tail buffer.
            let at = (lsn.0 - st.durable.0) as usize;
            let len = u32::from_le_bytes(st.buffer[at..at + 4].try_into().unwrap()) as usize;
            st.buffer[at..at + len].to_vec()
        } else {
            let mut lenb = [0u8; 4];
            self.read_body(lsn, &mut lenb)?;
            let len = u32::from_le_bytes(lenb) as usize;
            if len < 8 || len > self.body_capacity {
                return Err(QsError::LogCorrupt { detail: format!("implausible length {len}") });
            }
            let mut buf = vec![0u8; len];
            self.read_body(lsn, &mut buf)?;
            buf
        };
        drop(st);
        let next = lsn.advance(bytes.len());
        Ok((LogRecord::decode(&bytes)?, next))
    }

    /// Read the record that *ends* at `end` (backward scan step). Returns
    /// the record and its starting LSN.
    pub fn read_record_ending_at(&self, end: Lsn) -> QsResult<(LogRecord, Lsn)> {
        let st = self.state.lock();
        if end <= st.start || end > st.tail {
            return Err(QsError::LogCorrupt {
                detail: format!("backward read at {end} outside log window"),
            });
        }
        let trailer_lsn = Lsn(end.0 - 4);
        let len = if trailer_lsn >= st.durable {
            let at = (trailer_lsn.0 - st.durable.0) as usize;
            u32::from_le_bytes(st.buffer[at..at + 4].try_into().unwrap()) as usize
        } else {
            let mut b = [0u8; 4];
            self.read_body(trailer_lsn, &mut b)?;
            u32::from_le_bytes(b) as usize
        };
        drop(st);
        if len < 8 || (len as u64) > end.0 {
            return Err(QsError::LogCorrupt { detail: format!("implausible trailer {len}") });
        }
        let start = Lsn(end.0 - len as u64);
        let (rec, next) = self.read_record(start)?;
        debug_assert_eq!(next, end);
        Ok((rec, start))
    }

    /// Copy the raw encoded bytes of the span `[from, from + buf.len())`
    /// out of the log, splicing the durable body and the volatile tail
    /// buffer as needed. One lock acquisition regardless of span size —
    /// the restart streamer's bulk read.
    pub fn read_bytes(&self, from: Lsn, buf: &mut [u8]) -> QsResult<()> {
        let st = self.state.lock();
        self.read_span_locked(&st, from, buf)
    }

    /// [`LogManager::read_bytes`] with the state lock already held.
    fn read_span_locked(&self, st: &LogState, from: Lsn, buf: &mut [u8]) -> QsResult<()> {
        let end = from.advance(buf.len());
        if from < st.start || end > st.tail {
            return Err(QsError::LogCorrupt {
                detail: format!(
                    "raw read [{from}, {end}) outside log window [{}, {})",
                    st.start, st.tail
                ),
            });
        }
        // Durable part straight from the medium…
        let media_end = end.min(st.durable);
        if from < media_end {
            let n = (media_end.0 - from.0) as usize;
            self.read_body(from, &mut buf[..n])?;
        }
        // …and the rest from the tail buffer.
        if end > st.durable && end > from {
            let b_from = from.max(st.durable);
            let src = (b_from.0 - st.durable.0) as usize;
            let dst = (b_from.0 - from.0) as usize;
            let n = (end.0 - b_from.0) as usize;
            buf[dst..dst + n].copy_from_slice(&st.buffer[src..src + n]);
        }
        Ok(())
    }

    /// Fill `buf` with logical log page `index` (the byte range
    /// `[index·PAGE_SIZE, (index+1)·PAGE_SIZE)`) clipped to the live
    /// window; returns the valid `(from, to)` byte offsets within the
    /// page. The undo-phase record cache fetches whole log pages through
    /// this, which is also what lets the restart report count *distinct*
    /// log pages touched.
    pub fn read_log_page(&self, index: u64, buf: &mut [u8; PAGE_SIZE]) -> QsResult<(usize, usize)> {
        let st = self.state.lock();
        let base = index * PAGE_SIZE as u64;
        let lo = base.max(st.start.0);
        let hi = (base + PAGE_SIZE as u64).min(st.tail.0);
        if lo >= hi {
            return Err(QsError::LogCorrupt {
                detail: format!("log page {index} outside log window [{}, {})", st.start, st.tail),
            });
        }
        let (from, to) = ((lo - base) as usize, (hi - base) as usize);
        self.read_span_locked(&st, Lsn(lo), &mut buf[from..to])?;
        Ok((from, to))
    }

    /// Release log space: records before `lsn` are no longer needed.
    pub fn truncate_to(&self, lsn: Lsn) -> QsResult<()> {
        let mut st = self.state.lock();
        if lsn > st.durable {
            return Err(QsError::Protocol {
                detail: format!("truncate to {lsn} past durable {}", st.durable),
            });
        }
        if lsn > st.start {
            st.start = lsn;
            self.write_header(&st)?;
        }
        Ok(())
    }

    /// Advance the truncation low-water mark to `keep`, clamped to what is
    /// actually releasable: never past `durable`, never backwards. Unlike
    /// [`LogManager::truncate_to`], which treats an over-advanced request
    /// as a protocol error, this is the concurrent-checkpoint entry point —
    /// foreground appends may land between computing `keep` and calling
    /// here, so the clamp is part of the contract. Returns the effective
    /// start LSN after the advance.
    pub fn advance_low_water_mark(&self, keep: Lsn) -> QsResult<Lsn> {
        let mut st = self.state.lock();
        let clamped = keep.min(st.durable);
        if clamped > st.start {
            st.start = clamped;
            self.write_header(&st)?;
        }
        Ok(st.start)
    }

    /// Record the checkpoint LSN durably.
    pub fn set_checkpoint(&self, lsn: Lsn) -> QsResult<()> {
        let mut st = self.state.lock();
        st.checkpoint = lsn;
        self.write_header(&st)
    }

    pub fn checkpoint_lsn(&self) -> Lsn {
        self.state.lock().checkpoint
    }

    /// Next append position (also: one past the last record).
    pub fn tail_lsn(&self) -> Lsn {
        self.state.lock().tail
    }

    pub fn durable_lsn(&self) -> Lsn {
        self.state.lock().durable
    }

    pub fn start_lsn(&self) -> Lsn {
        self.state.lock().start
    }

    /// Bytes currently occupied in the circular window.
    pub fn used_bytes(&self) -> usize {
        let st = self.state.lock();
        (st.tail.0 - st.start.0) as usize
    }

    pub fn body_capacity(&self) -> usize {
        self.body_capacity
    }

    /// Forward scan of the durable+buffered log from `from` (inclusive) to
    /// the tail, yielding `(lsn, record)`.
    pub fn scan_forward(&self, from: Lsn) -> LogScan<'_> {
        LogScan { log: self, at: from.max(self.start_lsn()) }
    }
}

/// Iterator for [`LogManager::scan_forward`].
pub struct LogScan<'a> {
    log: &'a LogManager,
    at: Lsn,
}

impl Iterator for LogScan<'_> {
    type Item = QsResult<(Lsn, LogRecord)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.at >= self.log.tail_lsn() {
            return None;
        }
        match self.log.read_record(self.at) {
            Ok((rec, next)) => {
                let lsn = self.at;
                self.at = next;
                Some(Ok((lsn, rec)))
            }
            Err(e) => {
                self.at = self.log.tail_lsn(); // stop after an error
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_storage::MemDisk;
    use qs_types::{PageId, TxnId};

    fn fresh(body: usize) -> (Arc<MemDisk>, LogManager) {
        let media = Arc::new(MemDisk::new(LogManager::required_bytes(body)));
        let lm = LogManager::format(Arc::clone(&media) as Arc<dyn StableMedia>, body).unwrap();
        (media, lm)
    }

    fn commit(t: u64) -> LogRecord {
        LogRecord::Commit { txn: TxnId(t), prev: Lsn::NULL }
    }

    #[test]
    fn log_pressure_wire_round_trip() {
        for (fill, queue) in [(0.0, 0.0), (0.25, 0.5), (1.0, 1.0), (0.333, 0.667)] {
            let p = LogPressure::new(fill, queue);
            let rt = LogPressure::decode(&p.encode());
            // Per-mille quantization: round trip within 0.0005.
            assert!((rt.fill - p.fill).abs() < 0.0006, "{fill}");
            assert!((rt.queue - p.queue).abs() < 0.0006, "{queue}");
        }
        // Out-of-range inputs clamp rather than wrap on the wire.
        let p = LogPressure::new(7.0, -3.0);
        assert_eq!(p.fill, 1.0);
        assert_eq!(p.queue, 0.0);
        assert_eq!(LogPressure::decode(&p.encode()).fill, 1.0);
        assert!(LogPressure::default().combined() == 0.0);
        assert!((LogPressure::new(1.0, 1.0).combined() - 1.0).abs() < 1e-12);
    }

    fn update(t: u64, p: u32, val: u8) -> LogRecord {
        LogRecord::Update {
            txn: TxnId(t),
            prev: Lsn::NULL,
            page: PageId(p),
            slot: 0,
            offset: 0,
            before: vec![0; 8],
            after: vec![val; 8],
        }
    }

    #[test]
    fn append_rechained_equals_append_with_prev_set() {
        let (_m, a) = fresh(1 << 16);
        let (_m2, b) = fresh(1 << 16);
        // Path A: encode with prev=NULL (as a client would), rechain on append.
        let client_bytes = update(1, 10, 7).encode();
        let la = a.append_rechained(&client_bytes, Lsn(123)).unwrap();
        // Path B: the old route — build the record with prev already set.
        let mut rec = update(1, 10, 7);
        if let LogRecord::Update { prev, .. } = &mut rec {
            *prev = Lsn(123);
        }
        let lb = b.append(&rec).unwrap();
        assert_eq!(la, lb);
        assert_eq!(a.read_record(la).unwrap(), b.read_record(lb).unwrap());
        assert_eq!(a.read_record(la).unwrap().0.prev(), Lsn(123));
    }

    #[test]
    fn append_read_round_trip() {
        let (_m, lm) = fresh(1 << 16);
        let r1 = update(1, 10, 7);
        let r2 = commit(1);
        let l1 = lm.append(&r1).unwrap();
        let l2 = lm.append(&r2).unwrap();
        assert!(l1 < l2);
        // Readable from the volatile buffer before any force.
        let (got1, next1) = lm.read_record(l1).unwrap();
        assert_eq!(got1, r1);
        assert_eq!(next1, l2);
        let (got2, _) = lm.read_record(l2).unwrap();
        assert_eq!(got2, r2);
    }

    #[test]
    fn force_makes_records_durable_across_crash() {
        let (media, lm) = fresh(1 << 16);
        let l1 = lm.append(&update(1, 10, 7)).unwrap();
        let l2 = lm.append(&commit(1)).unwrap();
        let stats = lm.force(lm.tail_lsn()).unwrap();
        assert!(stats.wrote);
        // Unforced record after the force:
        let l3 = lm.append(&commit(2)).unwrap();
        drop(lm); // crash

        let lm2 = LogManager::open(media).unwrap();
        assert_eq!(lm2.durable_lsn(), lm2.tail_lsn());
        let (r1, _) = lm2.read_record(l1).unwrap();
        assert_eq!(r1.txn(), TxnId(1));
        let (r2, _) = lm2.read_record(l2).unwrap();
        assert!(matches!(r2, LogRecord::Commit { .. }));
        // The unforced record is gone.
        assert!(lm2.read_record(l3).is_err());
    }

    #[test]
    fn force_is_idempotent_and_counts_pages() {
        let (_m, lm) = fresh(1 << 20);
        for i in 0..100 {
            lm.append(&update(1, i, 1)).unwrap();
        }
        let s1 = lm.force(lm.tail_lsn()).unwrap();
        assert!(s1.pages_written >= 1);
        let s2 = lm.force(lm.tail_lsn()).unwrap();
        assert!(!s2.wrote);
        assert_eq!(s2.pages_written, 0);
    }

    #[test]
    fn wraps_around_after_truncate() {
        // Body barely bigger than two records; write/truncate repeatedly to
        // force physical wrap-around.
        let rec = update(1, 1, 9);
        let rl = rec.encoded_len();
        let (_m, lm) = fresh(rl * 2 + 10);
        let mut lsns = Vec::new();
        for i in 0..10 {
            let l = lm.append(&update(1, i, i as u8)).unwrap();
            lm.force(lm.tail_lsn()).unwrap();
            lsns.push(l);
            // keep only the latest record
            lm.truncate_to(l).unwrap();
        }
        // The final record is readable and intact despite many wraps.
        let (rec, _) = lm.read_record(*lsns.last().unwrap()).unwrap();
        match rec {
            LogRecord::Update { page, .. } => assert_eq!(page, PageId(9)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn log_full_when_not_truncated() {
        let rec = commit(1);
        let rl = rec.encoded_len();
        let (_m, lm) = fresh(rl * 3);
        lm.append(&rec).unwrap();
        let l1 = lm.append(&rec).unwrap();
        lm.append(&rec).unwrap();
        assert!(matches!(lm.append(&rec), Err(QsError::LogFull { .. })));
        // Freeing one record's space lets the append succeed.
        lm.force(lm.tail_lsn()).unwrap();
        lm.truncate_to(l1).unwrap();
        lm.append(&rec).unwrap();
    }

    #[test]
    fn backward_read() {
        let (_m, lm) = fresh(1 << 16);
        let l1 = lm.append(&update(1, 5, 1)).unwrap();
        let l2 = lm.append(&update(1, 6, 2)).unwrap();
        let end = lm.tail_lsn();
        let (rec2, s2) = lm.read_record_ending_at(end).unwrap();
        assert_eq!(s2, l2);
        assert_eq!(rec2.page(), Some(PageId(6)));
        let (rec1, s1) = lm.read_record_ending_at(s2).unwrap();
        assert_eq!(s1, l1);
        assert_eq!(rec1.page(), Some(PageId(5)));
        assert!(lm.read_record_ending_at(s1).is_err()); // hit the start
    }

    #[test]
    fn forward_scan_yields_all_records_in_order() {
        let (_m, lm) = fresh(1 << 16);
        for i in 0..20u32 {
            lm.append(&update(1, i, 0)).unwrap();
        }
        lm.force(lm.tail_lsn()).unwrap();
        let pages: Vec<u32> =
            lm.scan_forward(Lsn(0)).map(|r| r.unwrap().1.page().unwrap().0).collect();
        assert_eq!(pages, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn checkpoint_lsn_survives_crash() {
        let (media, lm) = fresh(1 << 16);
        assert_eq!(lm.checkpoint_lsn(), Lsn::NULL, "fresh log has no checkpoint");
        let l = lm.append(&commit(1)).unwrap();
        assert!(!l.is_null(), "real LSNs are never the NULL sentinel");
        lm.force(lm.tail_lsn()).unwrap();
        lm.set_checkpoint(l).unwrap();
        drop(lm);
        let lm2 = LogManager::open(media).unwrap();
        assert_eq!(lm2.checkpoint_lsn(), l);
    }

    #[test]
    fn truncate_past_durable_rejected() {
        let (_m, lm) = fresh(1 << 16);
        lm.append(&commit(1)).unwrap();
        assert!(lm.truncate_to(lm.tail_lsn()).is_err()); // not durable yet
        lm.force(lm.tail_lsn()).unwrap();
        lm.truncate_to(lm.tail_lsn()).unwrap();
    }

    #[test]
    fn advance_low_water_mark_clamps_and_is_monotonic() {
        let (media, lm) = fresh(1 << 16);
        let l1 = lm.append(&commit(1)).unwrap();
        let l2 = lm.append(&commit(2)).unwrap();
        // Nothing durable yet: any request clamps to the format origin.
        assert_eq!(lm.advance_low_water_mark(l2).unwrap(), lm.start_lsn());
        lm.force(lm.tail_lsn()).unwrap();
        // Past-durable requests clamp to durable instead of erroring.
        assert_eq!(lm.advance_low_water_mark(Lsn(u64::MAX)).unwrap(), lm.durable_lsn());
        // Backwards requests are ignored.
        assert_eq!(lm.advance_low_water_mark(l1).unwrap(), lm.durable_lsn());
        assert_eq!(lm.start_lsn(), lm.durable_lsn());
        // The advance is durable across a reopen.
        let start = lm.start_lsn();
        drop(lm);
        let lm2 = LogManager::open(media).unwrap();
        assert_eq!(lm2.start_lsn(), start);
    }

    #[test]
    fn read_outside_window_rejected() {
        let (_m, lm) = fresh(1 << 16);
        assert!(lm.read_record(Lsn(0)).is_err()); // empty log
        lm.append(&commit(1)).unwrap();
        assert!(lm.read_record(lm.tail_lsn()).is_err());
    }
}
