//! Streamed and cached log reading for restart.
//!
//! [`ChunkedScanner`] replaces the per-record `scan_forward` in the
//! restart paths: it reads the log in large page-aligned chunks (one
//! state-lock acquisition and one media pass per chunk instead of per
//! record) and splits each chunk into frame references; consumers decode
//! straight out of the shared chunk buffer, so a record is decoded at
//! most once across the whole restart. [`stream_chunks`] runs the scanner
//! on a reader thread feeding a bounded channel, overlapping log reads
//! with decoding/applying.
//!
//! [`LogReadCache`] is the undo phase's log-page cache: `undo_chain`
//! walks backward chains in random order, and caching whole log pages
//! both stops the re-reads from hitting the log disk once per record and
//! lets the restart report count *distinct* log pages touched
//! ([`LogReadCache::pages_fetched`]).

use crate::log::LogManager;
use crate::record::{LogRecord, PREFIX, TRAILER};
use qs_types::{Lsn, QsError, QsResult, PAGE_SIZE};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;

/// One encoded record within a [`FrameChunk`]'s buffer.
#[derive(Debug, Clone, Copy)]
pub struct FrameRef {
    /// The record's LSN.
    pub lsn: Lsn,
    /// Byte offset of the frame within the chunk buffer.
    pub offset: u32,
    /// Encoded length of the frame.
    pub len: u32,
}

/// A batch of whole frames read in one bulk log access. The buffer is
/// shared (`Arc`) so redo workers borrow frames without copying.
#[derive(Debug, Clone)]
pub struct FrameChunk {
    pub buf: Arc<Vec<u8>>,
    /// The whole frames in this chunk, in LSN order.
    pub frames: Vec<FrameRef>,
}

impl FrameChunk {
    /// The encoded bytes of one frame.
    pub fn frame(&self, r: &FrameRef) -> &[u8] {
        &self.buf[r.offset as usize..(r.offset + r.len) as usize]
    }
}

/// Forward scanner yielding [`FrameChunk`]s over `[from, end)`.
///
/// A frame that straddles a chunk boundary is not split: the chunk ends
/// before it and the next read restarts at its LSN (a small re-read). A
/// single record larger than the chunk size gets a dedicated exact-size
/// read, so any `chunk_bytes` makes progress.
pub struct ChunkedScanner<'a> {
    log: &'a LogManager,
    at: Lsn,
    end: Lsn,
    chunk_bytes: usize,
}

impl<'a> ChunkedScanner<'a> {
    pub fn new(log: &'a LogManager, from: Lsn, end: Lsn, chunk_bytes: usize) -> ChunkedScanner<'a> {
        ChunkedScanner {
            log,
            at: from.max(log.start_lsn()),
            end,
            chunk_bytes: chunk_bytes.max(PREFIX + TRAILER),
        }
    }

    /// The next batch of whole frames, or `None` at the end of the span.
    pub fn next_chunk(&mut self) -> QsResult<Option<FrameChunk>> {
        if self.at >= self.end {
            return Ok(None);
        }
        let span = (self.end.0 - self.at.0) as usize;
        let mut want = self.chunk_bytes.min(span);
        if want < span {
            // Align the read end down to a log-page boundary when that
            // still makes progress: chunks then cover whole pages.
            let aligned = (self.at.0 + want as u64) / PAGE_SIZE as u64 * PAGE_SIZE as u64;
            if aligned > self.at.0 {
                want = (aligned - self.at.0) as usize;
            }
        }
        let mut buf = vec![0u8; want];
        self.log.read_bytes(self.at, &mut buf)?;

        let mut frames = Vec::new();
        let mut off = 0usize;
        while off + 4 <= buf.len() {
            let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
            if len < PREFIX + TRAILER || self.at.0 + (off + len) as u64 > self.end.0 {
                return Err(QsError::LogCorrupt {
                    detail: format!("implausible frame length {len} at {}", self.at.advance(off)),
                });
            }
            if off + len > buf.len() {
                break; // partial frame: the next chunk restarts at it
            }
            frames.push(FrameRef {
                lsn: self.at.advance(off),
                offset: off as u32,
                len: len as u32,
            });
            off += len;
        }
        if frames.is_empty() {
            // One record larger than the chunk: read exactly that record.
            if buf.len() < 4 {
                return Err(QsError::LogCorrupt {
                    detail: format!("log span at {} too short for a frame", self.at),
                });
            }
            let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
            let mut big = vec![0u8; len];
            self.log.read_bytes(self.at, &mut big)?;
            frames.push(FrameRef { lsn: self.at, offset: 0, len: len as u32 });
            buf = big;
            off = len;
        }
        self.at = self.at.advance(off);
        Ok(Some(FrameChunk { buf: Arc::new(buf), frames }))
    }
}

/// Run a [`ChunkedScanner`] on a scoped reader thread, yielding chunks
/// through a bounded channel of depth `depth` (the restart pipeline's
/// producer stage). The reader stops early if the receiver is dropped;
/// a read error is delivered in-band and ends the stream.
pub fn stream_chunks<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    log: &'env LogManager,
    from: Lsn,
    end: Lsn,
    chunk_bytes: usize,
    depth: usize,
) -> Receiver<QsResult<FrameChunk>> {
    let (tx, rx) = sync_channel(depth.max(1));
    let mut scanner = ChunkedScanner::new(log, from, end, chunk_bytes);
    scope.spawn(move || loop {
        match scanner.next_chunk() {
            Ok(Some(chunk)) => {
                if tx.send(Ok(chunk)).is_err() {
                    break; // receiver gone: consumer stopped early
                }
            }
            Ok(None) => break,
            Err(e) => {
                tx.send(Err(e)).ok();
                break;
            }
        }
    });
    rx
}

/// A cached whole log page (see [`LogReadCache`]).
struct CachedPage {
    data: Box<[u8; PAGE_SIZE]>,
    /// Valid byte range within the page (the window clip at fetch time).
    valid: (usize, usize),
}

/// Read-only record cache keyed by logical log page, for the random reads
/// of the undo phase (and of abort rollback). Never evicts: its footprint
/// is bounded by the loser chains one rollback walks. Safe to keep across
/// appends because the log is append-only — bytes below the tail at fetch
/// time never change.
#[derive(Default)]
pub struct LogReadCache {
    pages: HashMap<u64, CachedPage>,
    fetches: u64,
}

impl LogReadCache {
    pub fn new() -> LogReadCache {
        LogReadCache::default()
    }

    /// Distinct log pages fetched so far (== cache misses).
    pub fn pages_fetched(&self) -> u64 {
        self.fetches
    }

    /// [`LogManager::read_record`], served through the page cache.
    pub fn read_record(&mut self, log: &LogManager, lsn: Lsn) -> QsResult<(LogRecord, Lsn)> {
        let mut lenb = [0u8; 4];
        self.read_span(log, lsn, &mut lenb)?;
        let len = u32::from_le_bytes(lenb) as usize;
        if len < PREFIX + TRAILER || len > log.body_capacity() {
            return Err(QsError::LogCorrupt { detail: format!("implausible length {len}") });
        }
        let mut buf = vec![0u8; len];
        self.read_span(log, lsn, &mut buf)?;
        Ok((LogRecord::decode(&buf)?, lsn.advance(len)))
    }

    /// Copy `buf.len()` bytes starting at `from`, stitching cached pages.
    fn read_span(&mut self, log: &LogManager, from: Lsn, buf: &mut [u8]) -> QsResult<()> {
        let mut at = from.0;
        let mut done = 0usize;
        while done < buf.len() {
            let index = at / PAGE_SIZE as u64;
            let off = (at % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - off).min(buf.len() - done);
            let page = match self.pages.entry(index) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => {
                    let mut data = Box::new([0u8; PAGE_SIZE]);
                    let valid = log.read_log_page(index, &mut data)?;
                    self.fetches += 1;
                    e.insert(CachedPage { data, valid })
                }
            };
            if off < page.valid.0 || off + n > page.valid.1 {
                return Err(QsError::LogCorrupt {
                    detail: format!(
                        "cached log page {index} read [{off}, {}) outside valid [{}, {})",
                        off + n,
                        page.valid.0,
                        page.valid.1
                    ),
                });
            }
            buf[done..done + n].copy_from_slice(&page.data[off..off + n]);
            done += n;
            at += n as u64;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CheckpointBody;
    use qs_storage::{MemDisk, StableMedia};
    use qs_types::{PageId, TxnId};

    fn fresh(body: usize) -> LogManager {
        let media = Arc::new(MemDisk::new(LogManager::required_bytes(body)));
        LogManager::format(media as Arc<dyn StableMedia>, body).unwrap()
    }

    fn mixed_log(lm: &LogManager, force_prefix: bool) -> Vec<(Lsn, LogRecord)> {
        let mut expect = Vec::new();
        for i in 0..40u32 {
            let rec = match i % 5 {
                0 => LogRecord::Update {
                    txn: TxnId(i as u64 + 1),
                    prev: Lsn::NULL,
                    page: PageId(i),
                    slot: 0,
                    offset: 0,
                    before: vec![0u8; (i % 7) as usize * 9],
                    after: vec![i as u8; (i % 7) as usize * 9],
                },
                1 => LogRecord::WholePage {
                    txn: TxnId(i as u64 + 1),
                    prev: Lsn::NULL,
                    page: PageId(i),
                    image: vec![i as u8; PAGE_SIZE],
                },
                2 => LogRecord::PageAlloc {
                    txn: TxnId(i as u64 + 1),
                    prev: Lsn::NULL,
                    page: PageId(i),
                },
                3 => LogRecord::Commit { txn: TxnId(i as u64 + 1), prev: Lsn::NULL },
                _ => LogRecord::Checkpoint { body: CheckpointBody::default() },
            };
            let lsn = lm.append(&rec).unwrap();
            expect.push((lsn, rec));
            if force_prefix && i == 20 {
                lm.force(lm.tail_lsn()).unwrap();
            }
        }
        expect
    }

    #[test]
    fn chunked_scan_matches_scan_forward_across_chunk_sizes() {
        // Half the records durable, half in the volatile tail buffer;
        // chunk sizes below one frame, mid-size (forces the big-record
        // fallback on whole-page records), page-size, and huge.
        for chunk in [29usize, 300, PAGE_SIZE, 1 << 20] {
            let lm = fresh(1 << 20);
            let expect = mixed_log(&lm, true);
            let mut got = Vec::new();
            let mut sc = ChunkedScanner::new(&lm, Lsn(0), lm.tail_lsn(), chunk);
            while let Some(c) = sc.next_chunk().unwrap() {
                for r in &c.frames {
                    got.push((r.lsn, LogRecord::decode(c.frame(r)).unwrap()));
                }
            }
            assert_eq!(got, expect, "chunk={chunk}");
        }
    }

    #[test]
    fn stream_chunks_delivers_everything_through_the_channel() {
        let lm = fresh(1 << 20);
        let expect = mixed_log(&lm, false);
        let mut got = Vec::new();
        std::thread::scope(|s| {
            let rx = stream_chunks(s, &lm, Lsn(0), lm.tail_lsn(), 4 * PAGE_SIZE, 2);
            for chunk in rx {
                let chunk = chunk.unwrap();
                for r in &chunk.frames {
                    got.push((r.lsn, LogRecord::decode(chunk.frame(r)).unwrap()));
                }
            }
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn read_bytes_rejects_out_of_window_spans() {
        let lm = fresh(1 << 16);
        let l = lm.append(&LogRecord::Commit { txn: TxnId(1), prev: Lsn::NULL }).unwrap();
        let mut buf = vec![0u8; 8];
        assert!(lm.read_bytes(Lsn(0), &mut buf).is_err(), "below start");
        assert!(lm.read_bytes(lm.tail_lsn(), &mut buf).is_err(), "past tail");
        let mut one = vec![0u8; (lm.tail_lsn().0 - l.0) as usize];
        lm.read_bytes(l, &mut one).unwrap();
        assert_eq!(LogRecord::decode(&one).unwrap().txn(), TxnId(1));
    }

    #[test]
    fn cache_serves_records_and_counts_distinct_pages() {
        let lm = fresh(1 << 20);
        let expect = mixed_log(&lm, true);
        let mut cache = LogReadCache::new();
        // Random-order reads (newest first, like undo), twice over.
        for _ in 0..2 {
            for (lsn, rec) in expect.iter().rev() {
                let (got, next) = cache.read_record(&lm, *lsn).unwrap();
                assert_eq!(&got, rec);
                assert_eq!(next, lsn.advance(got.encoded_len()));
            }
        }
        // Every log page holding records was fetched exactly once.
        let first = expect[0].0 .0 / PAGE_SIZE as u64;
        let last = (lm.tail_lsn().0 - 1) / PAGE_SIZE as u64;
        assert_eq!(cache.pages_fetched(), last - first + 1);
    }
}
