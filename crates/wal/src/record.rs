//! Log-record types and their binary codec.
//!
//! Encoded layout of every record:
//!
//! ```text
//! 0      4       8    9      17        25            len-4      len
//! +------+-------+----+------+---------+---- body ---+----------+
//! | len  | cksum | tag| txn  | prevLsn |  ... pad ...| len(trlr)|
//! +------+-------+----+------+---------+-------------+----------+
//! ```
//!
//! * `len` appears both first and last (the trailer enables the backward
//!   scan that WPL restart performs, §3.4.3).
//! * `cksum` is FNV-1a over `bytes[8..len-4]`; decode rejects corruption.
//! * The record is padded so `len == LOG_HEADER_SIZE + variable payload`,
//!   making our log-space accounting identical to the paper's
//!   "≈50-byte header + images" model.

use qs_types::{Lsn, PageId, QsError, QsResult, TxnId, LOG_HEADER_SIZE, PAGE_SIZE};

/// Fixed bytes before the body: len(4) + cksum(4) + tag(1) + txn(8) + prev(8).
pub(crate) const PREFIX: usize = 25;
/// Trailer bytes: the repeated length.
pub(crate) const TRAILER: usize = 4;
/// Byte range of the `prev` LSN within an encoded record.
pub(crate) const PREV_RANGE: std::ops::Range<usize> = 17..25;

/// Encoded record tags (byte 8 of a frame), for code that routes or
/// filters frames without decoding them.
pub mod tag {
    pub const UPDATE: u8 = 1;
    pub const WHOLE_PAGE: u8 = 2;
    pub const PAGE_ALLOC: u8 = 3;
    pub const COMMIT: u8 = 4;
    pub const ABORT: u8 = 5;
    pub const CLR: u8 = 6;
    pub const CHECKPOINT: u8 = 7;
    pub const UPDATE_LOGICAL: u8 = 8;
    pub const BEGIN_CHECKPOINT: u8 = 9;
    pub const END_CHECKPOINT: u8 = 10;
    pub const TXN_SCHEME: u8 = 11;
}

/// The per-transaction logging scheme a [`LogRecord::TxnScheme`] record
/// declares — the adaptive controller's election, encoded as one byte so a
/// single log can legally interleave transactions logged in different
/// formats. `Pd`/`Sd` transactions follow the physical (ESM-ARIES, steal +
/// undo) protocol; `Wpl`/`Rlog` transactions are logical: no-steal,
/// deferred apply at commit, never undone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SchemeCode {
    /// Exact page-diff regions as physical `Update` records.
    Pd = 0,
    /// Block-rounded (sub-page) regions as physical `Update` records.
    Sd = 1,
    /// One whole-page after image per dirty page, applied at commit.
    Wpl = 2,
    /// Exact regions as REDO-only `UpdateLogical` records.
    Rlog = 3,
}

impl SchemeCode {
    pub fn from_u8(v: u8) -> Option<SchemeCode> {
        match v {
            0 => Some(SchemeCode::Pd),
            1 => Some(SchemeCode::Sd),
            2 => Some(SchemeCode::Wpl),
            3 => Some(SchemeCode::Rlog),
            _ => None,
        }
    }

    /// Logical schemes defer apply to commit and are never undone.
    pub fn is_logical(self) -> bool {
        matches!(self, SchemeCode::Wpl | SchemeCode::Rlog)
    }

    pub fn name(self) -> &'static str {
        match self {
            SchemeCode::Pd => "pd",
            SchemeCode::Sd => "sd",
            SchemeCode::Wpl => "wpl",
            SchemeCode::Rlog => "rlog",
        }
    }
}

/// FNV-1a, used as a lightweight corruption check on log records.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// One entry of the WPL table as persisted in a checkpoint (§3.4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WplCheckpointEntry {
    pub page: PageId,
    /// LSN of the whole-page record holding the page's latest logged image.
    pub lsn: Lsn,
    /// Transaction that dirtied the page.
    pub txn: TxnId,
    /// Whether that transaction had committed by checkpoint time.
    pub committed: bool,
}

/// Body of a checkpoint record. Carries what each recovery flavor needs:
/// ARIES restart uses the active-transaction and dirty-page tables; WPL
/// restart uses the serialized WPL table; both use `allocated_pages` to
/// reconcile the volume header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointBody {
    /// Active transactions and their most recent log record.
    pub active_txns: Vec<(TxnId, Lsn)>,
    /// Server dirty-page table: page → recovery LSN (first dirtying record).
    pub dirty_pages: Vec<(PageId, Lsn)>,
    /// WPL table snapshot (empty under ARIES-style schemes).
    pub wpl_entries: Vec<WplCheckpointEntry>,
    /// Volume allocation count at checkpoint time.
    pub allocated_pages: u64,
}

/// The log-record vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Byte-range update with redo (`after`) and undo (`before`) images —
    /// the unit the diffing schemes generate (§3.2.2). `offset` is relative
    /// to the start of the object in `page.slot`.
    Update {
        txn: TxnId,
        prev: Lsn,
        page: PageId,
        slot: u16,
        offset: u16,
        before: Vec<u8>,
        after: Vec<u8>,
    },
    /// Whole-page after-image. Used by WPL for every dirty page (§3.4) and
    /// by ESM for newly created pages (§3.6 notes ESM already supported
    /// this for new pages).
    WholePage { txn: TxnId, prev: Lsn, page: PageId, image: Vec<u8> },
    /// Page allocation (so restart can reconcile the volume header).
    PageAlloc { txn: TxnId, prev: Lsn, page: PageId },
    /// Transaction commit.
    Commit { txn: TxnId, prev: Lsn },
    /// Transaction abort (end of rollback).
    Abort { txn: TxnId, prev: Lsn },
    /// ARIES compensation record: `after` is the undo image that was
    /// applied; `undo_next` continues rollback before the compensated
    /// record.
    Clr {
        txn: TxnId,
        prev: Lsn,
        page: PageId,
        slot: u16,
        offset: u16,
        after: Vec<u8>,
        undo_next: Lsn,
    },
    /// Sharp checkpoint (legacy single-record form; the quiesced default
    /// path still writes these so existing logs and figures are
    /// unchanged).
    Checkpoint { body: CheckpointBody },
    /// First half of a two-phase fuzzy checkpoint: the table snapshot
    /// taken while foreground traffic keeps running. Restart anchors
    /// here; the checkpoint only *counts* once the matching
    /// [`LogRecord::EndCheckpoint`] is durable and the header points at
    /// this record — a crash between the pair falls back to the previous
    /// complete checkpoint automatically.
    BeginCheckpoint { body: CheckpointBody },
    /// Second half of a two-phase fuzzy checkpoint: written after the
    /// claimed dirty set has been drained to the data disk. `begin`
    /// points back at the matching begin record.
    EndCheckpoint { begin: Lsn },
    /// Logical (REDO-only) byte-range update: like `Update` but with no
    /// before image — the no-steal rule of `RecoveryFlavor::RedoLogical`
    /// guarantees uncommitted data never reaches disk, so undo images are
    /// never needed (DESIGN.md §6e).
    UpdateLogical { txn: TxnId, prev: Lsn, page: PageId, slot: u16, offset: u16, after: Vec<u8> },
    /// Per-transaction scheme election (DESIGN.md §6g): the *first* record
    /// of an adaptively-logged transaction's chain, declaring which format
    /// the rest of the chain uses so the server and restart can classify
    /// the transaction before any page-bearing record arrives.
    TxnScheme { txn: TxnId, prev: Lsn, scheme: SchemeCode },
}

impl LogRecord {
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::Update { txn, .. }
            | LogRecord::WholePage { txn, .. }
            | LogRecord::PageAlloc { txn, .. }
            | LogRecord::Commit { txn, .. }
            | LogRecord::Abort { txn, .. }
            | LogRecord::Clr { txn, .. }
            | LogRecord::UpdateLogical { txn, .. }
            | LogRecord::TxnScheme { txn, .. } => *txn,
            LogRecord::Checkpoint { .. }
            | LogRecord::BeginCheckpoint { .. }
            | LogRecord::EndCheckpoint { .. } => TxnId::INVALID,
        }
    }

    /// Per-transaction backward chain pointer.
    pub fn prev(&self) -> Lsn {
        match self {
            LogRecord::Update { prev, .. }
            | LogRecord::WholePage { prev, .. }
            | LogRecord::PageAlloc { prev, .. }
            | LogRecord::Commit { prev, .. }
            | LogRecord::Abort { prev, .. }
            | LogRecord::Clr { prev, .. }
            | LogRecord::UpdateLogical { prev, .. }
            | LogRecord::TxnScheme { prev, .. } => *prev,
            LogRecord::Checkpoint { .. }
            | LogRecord::BeginCheckpoint { .. }
            | LogRecord::EndCheckpoint { .. } => Lsn::NULL,
        }
    }

    /// The page this record touches, if any.
    pub fn page(&self) -> Option<PageId> {
        match self {
            LogRecord::Update { page, .. }
            | LogRecord::WholePage { page, .. }
            | LogRecord::PageAlloc { page, .. }
            | LogRecord::Clr { page, .. }
            | LogRecord::UpdateLogical { page, .. } => Some(*page),
            _ => None,
        }
    }

    /// This record's wire tag (the [`tag`] constants).
    pub fn tag(&self) -> u8 {
        match self {
            LogRecord::Update { .. } => 1,
            LogRecord::WholePage { .. } => 2,
            LogRecord::PageAlloc { .. } => 3,
            LogRecord::Commit { .. } => 4,
            LogRecord::Abort { .. } => 5,
            LogRecord::Clr { .. } => 6,
            LogRecord::Checkpoint { .. } => 7,
            LogRecord::UpdateLogical { .. } => 8,
            LogRecord::BeginCheckpoint { .. } => 9,
            LogRecord::EndCheckpoint { .. } => 10,
            LogRecord::TxnScheme { .. } => 11,
        }
    }

    fn body_bytes(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            LogRecord::Update { page, slot, offset, before, after, .. } => {
                b.extend_from_slice(&page.0.to_le_bytes());
                b.extend_from_slice(&slot.to_le_bytes());
                b.extend_from_slice(&offset.to_le_bytes());
                b.extend_from_slice(&(before.len() as u16).to_le_bytes());
                b.extend_from_slice(&(after.len() as u16).to_le_bytes());
                b.extend_from_slice(before);
                b.extend_from_slice(after);
            }
            LogRecord::WholePage { page, image, .. } => {
                b.extend_from_slice(&page.0.to_le_bytes());
                b.extend_from_slice(image);
            }
            LogRecord::PageAlloc { page, .. } => {
                b.extend_from_slice(&page.0.to_le_bytes());
            }
            LogRecord::Commit { .. } | LogRecord::Abort { .. } => {}
            LogRecord::Clr { page, slot, offset, after, undo_next, .. } => {
                b.extend_from_slice(&page.0.to_le_bytes());
                b.extend_from_slice(&slot.to_le_bytes());
                b.extend_from_slice(&offset.to_le_bytes());
                b.extend_from_slice(&(after.len() as u16).to_le_bytes());
                b.extend_from_slice(after);
                b.extend_from_slice(&undo_next.0.to_le_bytes());
            }
            LogRecord::Checkpoint { body } | LogRecord::BeginCheckpoint { body } => {
                encode_checkpoint_body(body, &mut b);
            }
            LogRecord::EndCheckpoint { begin } => {
                b.extend_from_slice(&begin.0.to_le_bytes());
            }
            LogRecord::UpdateLogical { page, slot, offset, after, .. } => {
                b.extend_from_slice(&page.0.to_le_bytes());
                b.extend_from_slice(&slot.to_le_bytes());
                b.extend_from_slice(&offset.to_le_bytes());
                b.extend_from_slice(&(after.len() as u16).to_le_bytes());
                b.extend_from_slice(after);
            }
            LogRecord::TxnScheme { scheme, .. } => {
                b.push(*scheme as u8);
            }
        }
        b
    }

    /// Body length in bytes, computed arithmetically — must agree with
    /// `body_bytes().len()` for every variant (asserted by tests). Keeping
    /// this allocation-free matters: the commit path calls
    /// [`LogRecord::encoded_len`] per record per page.
    fn body_len(&self) -> usize {
        match self {
            LogRecord::Update { before, after, .. } => 12 + before.len() + after.len(),
            LogRecord::WholePage { .. } => 4 + PAGE_SIZE,
            LogRecord::PageAlloc { .. } => 4,
            LogRecord::Commit { .. } | LogRecord::Abort { .. } => 0,
            LogRecord::Clr { after, .. } => 18 + after.len(),
            LogRecord::Checkpoint { body } | LogRecord::BeginCheckpoint { body } => {
                4 + 16 * body.active_txns.len()
                    + 4
                    + 12 * body.dirty_pages.len()
                    + 4
                    + 21 * body.wpl_entries.len()
                    + 8
            }
            LogRecord::EndCheckpoint { .. } => 8,
            LogRecord::UpdateLogical { after, .. } => 10 + after.len(),
            LogRecord::TxnScheme { .. } => 1,
        }
    }

    /// The record's "variable payload" for the paper's accounting model:
    /// before/after images for updates, the full page for whole-page
    /// records, the table entries for checkpoints.
    fn variable_payload(&self) -> usize {
        match self {
            LogRecord::Update { before, after, .. } => before.len() + after.len(),
            LogRecord::WholePage { .. } => PAGE_SIZE,
            LogRecord::Clr { after, .. } => after.len() + 8,
            LogRecord::Checkpoint { .. }
            | LogRecord::BeginCheckpoint { .. }
            | LogRecord::EndCheckpoint { .. } => self.body_len(),
            LogRecord::UpdateLogical { after, .. } => after.len(),
            _ => 0,
        }
    }

    /// Encoded size: exactly `LOG_HEADER_SIZE + variable payload` (§3.2.2's
    /// model), never smaller than the wire fields require. Pure arithmetic
    /// — no temporary encode, no allocation.
    pub fn encoded_len(&self) -> usize {
        let wire = PREFIX + self.body_len() + TRAILER;
        wire.max(LOG_HEADER_SIZE + self.variable_payload())
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.body_bytes();
        let total = (PREFIX + body.len() + TRAILER).max(LOG_HEADER_SIZE + self.variable_payload());
        let mut out = vec![0u8; total];
        out[0..4].copy_from_slice(&(total as u32).to_le_bytes());
        out[8] = self.tag();
        out[9..17].copy_from_slice(&self.txn().0.to_le_bytes());
        out[17..25].copy_from_slice(&self.prev().0.to_le_bytes());
        out[PREFIX..PREFIX + body.len()].copy_from_slice(&body);
        out[total - 4..].copy_from_slice(&(total as u32).to_le_bytes());
        let ck = fnv1a(&out[8..total - 4]);
        out[4..8].copy_from_slice(&ck.to_le_bytes());
        out
    }

    /// Decode one record from `bytes` (which must contain the full record).
    pub fn decode(bytes: &[u8]) -> QsResult<LogRecord> {
        let corrupt = |d: &str| QsError::LogCorrupt { detail: d.to_string() };
        if bytes.len() < PREFIX + TRAILER {
            return Err(corrupt("record shorter than fixed header"));
        }
        let total = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        if total != bytes.len() {
            return Err(corrupt(&format!("length prefix {total} != {} bytes given", bytes.len())));
        }
        let trailer = u32::from_le_bytes(bytes[total - 4..].try_into().unwrap()) as usize;
        if trailer != total {
            return Err(corrupt("trailer length mismatch"));
        }
        let ck = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if ck != fnv1a(&bytes[8..total - 4]) {
            return Err(corrupt("checksum mismatch"));
        }
        let tag = bytes[8];
        let txn = TxnId(u64::from_le_bytes(bytes[9..17].try_into().unwrap()));
        let prev = Lsn(u64::from_le_bytes(bytes[17..25].try_into().unwrap()));
        let mut r = Reader { b: bytes, at: PREFIX };
        let rec = match tag {
            1 => {
                let page = PageId(r.u32()?);
                let slot = r.u16()?;
                let offset = r.u16()?;
                let blen = r.u16()? as usize;
                let alen = r.u16()? as usize;
                let before = r.bytes(blen)?.to_vec();
                let after = r.bytes(alen)?.to_vec();
                LogRecord::Update { txn, prev, page, slot, offset, before, after }
            }
            2 => {
                let page = PageId(r.u32()?);
                let image = r.bytes(PAGE_SIZE)?.to_vec();
                LogRecord::WholePage { txn, prev, page, image }
            }
            3 => LogRecord::PageAlloc { txn, prev, page: PageId(r.u32()?) },
            4 => LogRecord::Commit { txn, prev },
            5 => LogRecord::Abort { txn, prev },
            6 => {
                let page = PageId(r.u32()?);
                let slot = r.u16()?;
                let offset = r.u16()?;
                let alen = r.u16()? as usize;
                let after = r.bytes(alen)?.to_vec();
                let undo_next = Lsn(r.u64()?);
                LogRecord::Clr { txn, prev, page, slot, offset, after, undo_next }
            }
            7 => LogRecord::Checkpoint { body: decode_checkpoint_body(&mut r)? },
            8 => {
                let page = PageId(r.u32()?);
                let slot = r.u16()?;
                let offset = r.u16()?;
                let alen = r.u16()? as usize;
                let after = r.bytes(alen)?.to_vec();
                LogRecord::UpdateLogical { txn, prev, page, slot, offset, after }
            }
            9 => LogRecord::BeginCheckpoint { body: decode_checkpoint_body(&mut r)? },
            10 => LogRecord::EndCheckpoint { begin: Lsn(r.u64()?) },
            11 => {
                let v = r.u8()?;
                let scheme = SchemeCode::from_u8(v)
                    .ok_or_else(|| corrupt(&format!("unknown scheme code {v}")))?;
                LogRecord::TxnScheme { txn, prev, scheme }
            }
            t => return Err(corrupt(&format!("unknown record tag {t}"))),
        };
        Ok(rec)
    }
}

/// Checkpoint-body wire format, shared by the legacy sharp record (tag 7)
/// and the fuzzy begin record (tag 9): both carry identical snapshots.
fn encode_checkpoint_body(body: &CheckpointBody, b: &mut Vec<u8>) {
    b.extend_from_slice(&(body.active_txns.len() as u32).to_le_bytes());
    for (t, l) in &body.active_txns {
        b.extend_from_slice(&t.0.to_le_bytes());
        b.extend_from_slice(&l.0.to_le_bytes());
    }
    b.extend_from_slice(&(body.dirty_pages.len() as u32).to_le_bytes());
    for (p, l) in &body.dirty_pages {
        b.extend_from_slice(&p.0.to_le_bytes());
        b.extend_from_slice(&l.0.to_le_bytes());
    }
    b.extend_from_slice(&(body.wpl_entries.len() as u32).to_le_bytes());
    for e in &body.wpl_entries {
        b.extend_from_slice(&e.page.0.to_le_bytes());
        b.extend_from_slice(&e.lsn.0.to_le_bytes());
        b.extend_from_slice(&e.txn.0.to_le_bytes());
        b.push(e.committed as u8);
    }
    b.extend_from_slice(&body.allocated_pages.to_le_bytes());
}

fn decode_checkpoint_body(r: &mut Reader<'_>) -> QsResult<CheckpointBody> {
    let mut body = CheckpointBody::default();
    let na = r.u32()? as usize;
    for _ in 0..na {
        body.active_txns.push((TxnId(r.u64()?), Lsn(r.u64()?)));
    }
    let nd = r.u32()? as usize;
    for _ in 0..nd {
        body.dirty_pages.push((PageId(r.u32()?), Lsn(r.u64()?)));
    }
    let nw = r.u32()? as usize;
    for _ in 0..nw {
        body.wpl_entries.push(WplCheckpointEntry {
            page: PageId(r.u32()?),
            lsn: Lsn(r.u64()?),
            txn: TxnId(r.u64()?),
            committed: r.u8()? != 0,
        });
    }
    body.allocated_pages = r.u64()?;
    Ok(body)
}

// ---------------------------------------------------------------------
// Frame helpers: operate on *encoded* records without decoding them.
// The client batches encoded records back-to-back in one scratch buffer
// and the server re-chains `prev` in place; neither side materializes a
// `LogRecord` on the steady-state commit path.
// ---------------------------------------------------------------------

/// Length of the encoded record starting at `bytes[0]`, validated to lie
/// fully within `bytes`.
pub fn frame_len(bytes: &[u8]) -> QsResult<usize> {
    if bytes.len() < PREFIX + TRAILER {
        return Err(QsError::LogCorrupt { detail: "frame shorter than fixed header".into() });
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    if len < PREFIX + TRAILER || len > bytes.len() {
        return Err(QsError::LogCorrupt {
            detail: format!("frame length {len} outside buffer of {}", bytes.len()),
        });
    }
    Ok(len)
}

/// Validate one encoded record's framing without decoding it: length
/// prefix matching the slice, trailer echo, FNV-1a checksum. Same
/// corruption coverage as [`LogRecord::decode`]; the streamed restart
/// scanner uses this for frames whose bodies it never materializes.
pub fn frame_verify(bytes: &[u8]) -> QsResult<()> {
    let corrupt = |d: String| QsError::LogCorrupt { detail: d };
    if bytes.len() < PREFIX + TRAILER {
        return Err(corrupt("frame shorter than fixed header".into()));
    }
    let total = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    if total != bytes.len() {
        return Err(corrupt(format!("length prefix {total} != {} bytes given", bytes.len())));
    }
    let trailer = u32::from_le_bytes(bytes[total - 4..].try_into().unwrap()) as usize;
    if trailer != total {
        return Err(corrupt("trailer length mismatch".into()));
    }
    let ck = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if ck != fnv1a(&bytes[8..total - 4]) {
        return Err(corrupt("checksum mismatch".into()));
    }
    Ok(())
}

/// Transaction id of the encoded record starting at `bytes[0]`.
pub fn frame_txn(bytes: &[u8]) -> TxnId {
    TxnId(u64::from_le_bytes(bytes[9..17].try_into().unwrap()))
}

/// Record tag of the encoded record starting at `bytes[0]`.
pub fn frame_tag(bytes: &[u8]) -> u8 {
    bytes[8]
}

/// The `prev` LSN of the encoded record starting at `bytes[0]`.
pub fn frame_prev(bytes: &[u8]) -> Lsn {
    Lsn(u64::from_le_bytes(bytes[PREV_RANGE].try_into().unwrap()))
}

/// The page an encoded record touches, if any (tags with a leading page
/// field in the body: update, whole-page, page-alloc, CLR, logical update).
pub fn frame_page(bytes: &[u8]) -> Option<PageId> {
    match bytes[8] {
        1 | 2 | 3 | 6 | 8 => {
            Some(PageId(u32::from_le_bytes(bytes[PREFIX..PREFIX + 4].try_into().unwrap())))
        }
        _ => None,
    }
}

/// For an encoded update record, `before.len() + after.len()` (the
/// paper's log-image bytes; just `after.len()` for a logical update,
/// which carries no before image); 0 for every other tag.
pub fn frame_update_image_bytes(bytes: &[u8]) -> u64 {
    match bytes[8] {
        1 => {
            let blen =
                u16::from_le_bytes(bytes[PREFIX + 8..PREFIX + 10].try_into().unwrap()) as u64;
            let alen =
                u16::from_le_bytes(bytes[PREFIX + 10..PREFIX + 12].try_into().unwrap()) as u64;
            blen + alen
        }
        8 => u16::from_le_bytes(bytes[PREFIX + 8..PREFIX + 10].try_into().unwrap()) as u64,
        _ => 0,
    }
}

/// Zero-copy view of an encoded update or CLR record's redo fields:
/// `(slot, offset, after-image)`, straight out of the frame. `None` for
/// every other tag. Restart redo uses this to repeat history without
/// materializing a `LogRecord` (two image allocations per record).
pub fn frame_redo_slice(bytes: &[u8]) -> QsResult<Option<(u16, u16, &[u8])>> {
    let truncated = || QsError::LogCorrupt { detail: "redo body truncated".into() };
    let u16_at = |at: usize| -> QsResult<u16> {
        Ok(u16::from_le_bytes(bytes.get(at..at + 2).ok_or_else(truncated)?.try_into().unwrap()))
    };
    match bytes[8] {
        // Update: page u32 | slot u16 | offset u16 | blen u16 | alen u16
        //         | before | after
        1 => {
            let slot = u16_at(PREFIX + 4)?;
            let offset = u16_at(PREFIX + 6)?;
            let blen = u16_at(PREFIX + 8)? as usize;
            let alen = u16_at(PREFIX + 10)? as usize;
            let at = PREFIX + 12 + blen;
            let after = bytes.get(at..at + alen).ok_or_else(truncated)?;
            Ok(Some((slot, offset, after)))
        }
        // CLR: page u32 | slot u16 | offset u16 | alen u16 | after | undo_next
        // Logical update: same leading layout, no undo_next.
        6 | 8 => {
            let slot = u16_at(PREFIX + 4)?;
            let offset = u16_at(PREFIX + 6)?;
            let alen = u16_at(PREFIX + 8)? as usize;
            let after = bytes.get(PREFIX + 10..PREFIX + 10 + alen).ok_or_else(truncated)?;
            Ok(Some((slot, offset, after)))
        }
        _ => Ok(None),
    }
}

/// The scheme code carried by an encoded `TxnScheme` record; `None` for
/// every other tag (and for a corrupt scheme byte).
pub fn frame_scheme(bytes: &[u8]) -> Option<SchemeCode> {
    if bytes[8] != tag::TXN_SCHEME {
        return None;
    }
    bytes.get(PREFIX).copied().and_then(SchemeCode::from_u8)
}

/// Zero-copy view of an encoded whole-page record's image.
pub fn frame_whole_page_image(bytes: &[u8]) -> QsResult<&[u8]> {
    debug_assert_eq!(bytes[8], 2, "not a whole-page frame");
    bytes
        .get(PREFIX + 4..PREFIX + 4 + PAGE_SIZE)
        .ok_or_else(|| QsError::LogCorrupt { detail: "whole-page body truncated".into() })
}

/// Rewrite the `prev` LSN of one encoded record in place and fix its
/// checksum. Clients encode records with `prev = NULL` (they cannot know
/// the transaction's backward chain); the server patches the real value
/// here — the result is byte-identical to encoding with `prev` set.
pub fn frame_set_prev(bytes: &mut [u8], prev: Lsn) {
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    debug_assert_eq!(len, bytes.len(), "frame_set_prev wants exactly one record");
    bytes[PREV_RANGE].copy_from_slice(&prev.0.to_le_bytes());
    let ck = fnv1a(&bytes[8..len - TRAILER]);
    bytes[4..8].copy_from_slice(&ck.to_le_bytes());
}

/// Minimal cursor over a byte slice.
struct Reader<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> QsResult<&'a [u8]> {
        if self.at + n > self.b.len() {
            return Err(QsError::LogCorrupt { detail: "body truncated".into() });
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> QsResult<u8> {
        Ok(self.bytes(1)?[0])
    }
    fn u16(&mut self) -> QsResult<u16> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> QsResult<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> QsResult<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(r: &LogRecord) {
        let enc = r.encode();
        assert_eq!(enc.len(), r.encoded_len());
        let dec = LogRecord::decode(&enc).unwrap();
        assert_eq!(&dec, r);
    }

    #[test]
    fn update_round_trip_and_paper_size_model() {
        let r = LogRecord::Update {
            txn: TxnId(7),
            prev: Lsn(100),
            page: PageId(3),
            slot: 2,
            offset: 16,
            before: vec![1, 2, 3, 4],
            after: vec![5, 6, 7, 8],
        };
        round_trip(&r);
        // Paper §3.2.2: one word updated → 50 + 4 + 4 = 58 bytes.
        assert_eq!(r.encoded_len(), LOG_HEADER_SIZE + 8);
    }

    #[test]
    fn paper_116_vs_74_byte_example() {
        // First and third words of an object updated. Two separate records:
        let sep: usize = 2 * (LOG_HEADER_SIZE + 4 + 4);
        // One combined record spanning words 1..3 (12-byte images):
        let comb: usize = LOG_HEADER_SIZE + 12 + 12;
        assert_eq!(sep, 116);
        assert_eq!(comb, 74);
    }

    #[test]
    fn frame_redo_slices_agree_with_decode() {
        let upd = LogRecord::Update {
            txn: TxnId(7),
            prev: Lsn(100),
            page: PageId(3),
            slot: 2,
            offset: 16,
            before: vec![1, 2, 3, 4, 5],
            after: vec![6, 7, 8, 9, 10],
        };
        let enc = upd.encode();
        let (slot, offset, after) = frame_redo_slice(&enc).unwrap().unwrap();
        assert_eq!((slot, offset), (2, 16));
        assert_eq!(after, &[6, 7, 8, 9, 10]);

        let clr = LogRecord::Clr {
            txn: TxnId(5),
            prev: Lsn(44),
            page: PageId(8),
            slot: 1,
            offset: 4,
            after: vec![9; 16],
            undo_next: Lsn(12),
        };
        let enc = clr.encode();
        let (slot, offset, after) = frame_redo_slice(&enc).unwrap().unwrap();
        assert_eq!((slot, offset), (1, 4));
        assert_eq!(after, &[9u8; 16][..]);

        let wp = LogRecord::WholePage {
            txn: TxnId(1),
            prev: Lsn::NULL,
            page: PageId(9),
            image: (0..PAGE_SIZE).map(|i| (i % 251) as u8).collect(),
        };
        let enc = wp.encode();
        assert_eq!(frame_redo_slice(&enc).unwrap(), None);
        let LogRecord::WholePage { image, .. } = LogRecord::decode(&enc).unwrap() else {
            panic!("decoded to a different variant");
        };
        assert_eq!(frame_whole_page_image(&enc).unwrap(), &image[..]);

        let logical = LogRecord::UpdateLogical {
            txn: TxnId(7),
            prev: Lsn(100),
            page: PageId(3),
            slot: 6,
            offset: 32,
            after: vec![11, 12, 13],
        };
        let enc = logical.encode();
        let (slot, offset, after) = frame_redo_slice(&enc).unwrap().unwrap();
        assert_eq!((slot, offset), (6, 32));
        assert_eq!(after, &[11, 12, 13]);

        // No redo payload on control records.
        let commit = LogRecord::Commit { txn: TxnId(5), prev: Lsn(44) }.encode();
        assert_eq!(frame_redo_slice(&commit).unwrap(), None);
    }

    #[test]
    fn update_logical_round_trip_and_size() {
        let r = LogRecord::UpdateLogical {
            txn: TxnId(7),
            prev: Lsn(100),
            page: PageId(3),
            slot: 2,
            offset: 16,
            after: vec![5, 6, 7, 8],
        };
        round_trip(&r);
        // Half the image bytes of the equivalent physical update: the
        // before image is gone, only the header + after remain.
        assert_eq!(r.encoded_len(), LOG_HEADER_SIZE + 4);
    }

    #[test]
    fn whole_page_round_trip() {
        let r = LogRecord::WholePage {
            txn: TxnId(1),
            prev: Lsn::NULL,
            page: PageId(9),
            image: (0..PAGE_SIZE).map(|i| (i % 251) as u8).collect(),
        };
        round_trip(&r);
        assert_eq!(r.encoded_len(), LOG_HEADER_SIZE + PAGE_SIZE);
    }

    #[test]
    fn control_records_round_trip() {
        round_trip(&LogRecord::Commit { txn: TxnId(5), prev: Lsn(44) });
        round_trip(&LogRecord::Abort { txn: TxnId(5), prev: Lsn(44) });
        round_trip(&LogRecord::PageAlloc { txn: TxnId(5), prev: Lsn(44), page: PageId(77) });
        round_trip(&LogRecord::Clr {
            txn: TxnId(5),
            prev: Lsn(44),
            page: PageId(8),
            slot: 0,
            offset: 4,
            after: vec![9; 16],
            undo_next: Lsn(12),
        });
    }

    #[test]
    fn checkpoint_round_trip() {
        let r = LogRecord::Checkpoint {
            body: CheckpointBody {
                active_txns: vec![(TxnId(1), Lsn(10)), (TxnId(2), Lsn(20))],
                dirty_pages: vec![(PageId(5), Lsn(8))],
                wpl_entries: vec![
                    WplCheckpointEntry {
                        page: PageId(3),
                        lsn: Lsn(99),
                        txn: TxnId(1),
                        committed: true,
                    },
                    WplCheckpointEntry {
                        page: PageId(4),
                        lsn: Lsn(120),
                        txn: TxnId(2),
                        committed: false,
                    },
                ],
                allocated_pages: 1234,
            },
        };
        round_trip(&r);
    }

    #[test]
    fn begin_end_checkpoint_round_trip() {
        let begin = LogRecord::BeginCheckpoint {
            body: CheckpointBody {
                active_txns: vec![(TxnId(1), Lsn(10))],
                dirty_pages: vec![(PageId(5), Lsn(8)), (PageId(6), Lsn(9))],
                wpl_entries: vec![],
                allocated_pages: 42,
            },
        };
        round_trip(&begin);
        // Begin carries the same body as the legacy sharp record and
        // must cost the same log bytes.
        let LogRecord::BeginCheckpoint { body } = begin.clone() else { unreachable!() };
        assert_eq!(begin.encoded_len(), LogRecord::Checkpoint { body }.encoded_len());

        let end = LogRecord::EndCheckpoint { begin: Lsn(4096) };
        round_trip(&end);
        assert_eq!(end.encoded_len(), LOG_HEADER_SIZE + 8);
        assert_eq!(end.txn(), TxnId::INVALID);
        assert_eq!(end.prev(), Lsn::NULL);
        assert_eq!(end.page(), None);
    }

    #[test]
    fn txn_scheme_round_trip_and_size() {
        for scheme in [SchemeCode::Pd, SchemeCode::Sd, SchemeCode::Wpl, SchemeCode::Rlog] {
            let r = LogRecord::TxnScheme { txn: TxnId(12), prev: Lsn(7), scheme };
            round_trip(&r);
            // Pure control record: costs exactly one log header, like Commit.
            assert_eq!(r.encoded_len(), LOG_HEADER_SIZE);
            let enc = r.encode();
            assert_eq!(frame_scheme(&enc), Some(scheme));
            assert_eq!(frame_page(&enc), None);
            assert_eq!(SchemeCode::from_u8(scheme as u8), Some(scheme));
        }
        // A scheme byte outside the vocabulary is rejected, not mapped.
        let mut enc =
            LogRecord::TxnScheme { txn: TxnId(1), prev: Lsn::NULL, scheme: SchemeCode::Pd }
                .encode();
        enc[PREFIX] = 9;
        let total = enc.len();
        let ck = fnv1a(&enc[8..total - 4]);
        enc[4..8].copy_from_slice(&ck.to_le_bytes());
        assert!(LogRecord::decode(&enc).unwrap_err().to_string().contains("unknown scheme"));
        assert_eq!(frame_scheme(&enc), None);
        assert_eq!(SchemeCode::from_u8(9), None);
    }

    #[test]
    fn corruption_detected() {
        let r = LogRecord::Commit { txn: TxnId(5), prev: Lsn(44) };
        let mut enc = r.encode();
        enc[10] ^= 0xFF; // flip a bit in the txn id
        assert!(matches!(LogRecord::decode(&enc), Err(QsError::LogCorrupt { .. })));
    }

    #[test]
    fn truncated_input_rejected() {
        let r = LogRecord::Commit { txn: TxnId(5), prev: Lsn(44) };
        let enc = r.encode();
        assert!(LogRecord::decode(&enc[..enc.len() - 1]).is_err());
        assert!(LogRecord::decode(&[]).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let r = LogRecord::Commit { txn: TxnId(5), prev: Lsn(44) };
        let mut enc = r.encode();
        enc[8] = 200;
        // Fix the checksum so only the tag is wrong.
        let total = enc.len();
        let ck = fnv1a(&enc[8..total - 4]);
        enc[4..8].copy_from_slice(&ck.to_le_bytes());
        let err = LogRecord::decode(&enc).unwrap_err();
        assert!(err.to_string().contains("unknown record tag"));
    }

    fn every_variant() -> Vec<LogRecord> {
        vec![
            LogRecord::Update {
                txn: TxnId(7),
                prev: Lsn(100),
                page: PageId(3),
                slot: 2,
                offset: 16,
                before: vec![1; 7],
                after: vec![2; 7],
            },
            LogRecord::Update {
                txn: TxnId(7),
                prev: Lsn::NULL,
                page: PageId(3),
                slot: 0,
                offset: 0,
                before: vec![],
                after: vec![],
            },
            LogRecord::WholePage {
                txn: TxnId(1),
                prev: Lsn(9),
                page: PageId(9),
                image: vec![3; PAGE_SIZE],
            },
            LogRecord::PageAlloc { txn: TxnId(5), prev: Lsn(44), page: PageId(77) },
            LogRecord::Commit { txn: TxnId(5), prev: Lsn(44) },
            LogRecord::Abort { txn: TxnId(5), prev: Lsn(44) },
            LogRecord::Clr {
                txn: TxnId(5),
                prev: Lsn(44),
                page: PageId(8),
                slot: 0,
                offset: 4,
                after: vec![9; 16],
                undo_next: Lsn(12),
            },
            LogRecord::UpdateLogical {
                txn: TxnId(8),
                prev: Lsn(200),
                page: PageId(4),
                slot: 3,
                offset: 24,
                after: vec![5; 9],
            },
            LogRecord::UpdateLogical {
                txn: TxnId(8),
                prev: Lsn::NULL,
                page: PageId(4),
                slot: 0,
                offset: 0,
                after: vec![],
            },
            LogRecord::Checkpoint { body: CheckpointBody::default() },
            LogRecord::Checkpoint {
                body: CheckpointBody {
                    active_txns: vec![(TxnId(1), Lsn(10))],
                    dirty_pages: vec![(PageId(5), Lsn(8)), (PageId(6), Lsn(9))],
                    wpl_entries: vec![WplCheckpointEntry {
                        page: PageId(3),
                        lsn: Lsn(99),
                        txn: TxnId(1),
                        committed: true,
                    }],
                    allocated_pages: 1234,
                },
            },
            LogRecord::BeginCheckpoint { body: CheckpointBody::default() },
            LogRecord::BeginCheckpoint {
                body: CheckpointBody {
                    active_txns: vec![(TxnId(3), Lsn(30))],
                    dirty_pages: vec![(PageId(7), Lsn(11))],
                    wpl_entries: vec![WplCheckpointEntry {
                        page: PageId(2),
                        lsn: Lsn(45),
                        txn: TxnId(3),
                        committed: false,
                    }],
                    allocated_pages: 77,
                },
            },
            LogRecord::EndCheckpoint { begin: Lsn(4096) },
            LogRecord::TxnScheme { txn: TxnId(9), prev: Lsn::NULL, scheme: SchemeCode::Pd },
            LogRecord::TxnScheme { txn: TxnId(10), prev: Lsn(33), scheme: SchemeCode::Rlog },
        ]
    }

    #[test]
    fn encoded_len_is_pure_arithmetic_for_every_variant() {
        // encoded_len must never encode; it and encode() are maintained
        // in parallel, so pin their agreement across all variants
        // (including the per-record tracer call site in store.rs).
        for r in every_variant() {
            assert_eq!(r.encoded_len(), r.encode().len(), "{r:?}");
            assert_eq!(r.body_len(), r.body_bytes().len(), "{r:?}");
        }
    }

    #[test]
    fn frame_helpers_agree_with_decode() {
        for r in every_variant() {
            let enc = r.encode();
            assert_eq!(frame_len(&enc).unwrap(), enc.len(), "{r:?}");
            assert_eq!(frame_txn(&enc), r.txn(), "{r:?}");
            assert_eq!(frame_page(&enc), r.page(), "{r:?}");
            let expect = match &r {
                LogRecord::Update { before, after, .. } => (before.len() + after.len()) as u64,
                LogRecord::UpdateLogical { after, .. } => after.len() as u64,
                _ => 0,
            };
            assert_eq!(frame_update_image_bytes(&enc), expect, "{r:?}");
        }
        assert!(frame_len(&[0u8; 4]).is_err());
        // A length prefix past the buffer is rejected.
        let mut enc = LogRecord::Commit { txn: TxnId(5), prev: Lsn(44) }.encode();
        let bogus = (enc.len() as u32 + 1).to_le_bytes();
        enc[0..4].copy_from_slice(&bogus);
        assert!(frame_len(&enc).is_err());
    }

    #[test]
    fn frame_set_prev_matches_reencoding() {
        for r in every_variant() {
            if matches!(
                r,
                LogRecord::Checkpoint { .. }
                    | LogRecord::BeginCheckpoint { .. }
                    | LogRecord::EndCheckpoint { .. }
            ) {
                continue; // checkpoint records have no prev
            }
            let mut enc = r.encode();
            frame_set_prev(&mut enc, Lsn(0xFEED));
            let want = Self_with_prev(&r, Lsn(0xFEED)).encode();
            assert_eq!(enc, want, "{r:?}");
            assert_eq!(LogRecord::decode(&enc).unwrap().prev(), Lsn(0xFEED));
        }
    }

    /// Rebuild `r` with `prev` replaced (mirror of the server's rechain).
    #[allow(non_snake_case)]
    fn Self_with_prev(r: &LogRecord, prev: Lsn) -> LogRecord {
        match r.clone() {
            LogRecord::Update { txn, page, slot, offset, before, after, .. } => {
                LogRecord::Update { txn, prev, page, slot, offset, before, after }
            }
            LogRecord::WholePage { txn, page, image, .. } => {
                LogRecord::WholePage { txn, prev, page, image }
            }
            LogRecord::PageAlloc { txn, page, .. } => LogRecord::PageAlloc { txn, prev, page },
            LogRecord::Commit { txn, .. } => LogRecord::Commit { txn, prev },
            LogRecord::Abort { txn, .. } => LogRecord::Abort { txn, prev },
            LogRecord::Clr { txn, page, slot, offset, after, undo_next, .. } => {
                LogRecord::Clr { txn, prev, page, slot, offset, after, undo_next }
            }
            LogRecord::UpdateLogical { txn, page, slot, offset, after, .. } => {
                LogRecord::UpdateLogical { txn, prev, page, slot, offset, after }
            }
            LogRecord::TxnScheme { txn, scheme, .. } => LogRecord::TxnScheme { txn, prev, scheme },
            c @ (LogRecord::Checkpoint { .. }
            | LogRecord::BeginCheckpoint { .. }
            | LogRecord::EndCheckpoint { .. }) => c,
        }
    }

    #[test]
    fn accessors() {
        let r = LogRecord::Update {
            txn: TxnId(9),
            prev: Lsn(5),
            page: PageId(2),
            slot: 0,
            offset: 0,
            before: vec![0],
            after: vec![1],
        };
        assert_eq!(r.txn(), TxnId(9));
        assert_eq!(r.prev(), Lsn(5));
        assert_eq!(r.page(), Some(PageId(2)));
        let c = LogRecord::Checkpoint { body: CheckpointBody::default() };
        assert_eq!(c.txn(), TxnId::INVALID);
        assert_eq!(c.page(), None);
    }
}
