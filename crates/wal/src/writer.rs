//! Allocation-free serialization of log records into a batch buffer.
//!
//! [`RecordWriter`] appends encoded records directly to a caller-provided
//! `Vec<u8>`, building each record in place from borrowed before/after
//! slices. The bytes produced are identical to
//! [`LogRecord::encode`](crate::LogRecord::encode) — asserted by tests —
//! so a batch built here can be framed, shipped, and decoded by the same
//! codec. On the steady-state commit path the backing buffer is reused
//! across transactions, so writing a record performs zero heap
//! allocations once the buffer has grown to its high-water mark.

use qs_types::{Lsn, PageId, TxnId, LOG_HEADER_SIZE, PAGE_SIZE};

use crate::record::{fnv1a, PREFIX, TRAILER};

/// Streams encoded log records into a borrowed batch buffer.
pub struct RecordWriter<'a> {
    buf: &'a mut Vec<u8>,
    records: usize,
}

impl<'a> RecordWriter<'a> {
    /// Wrap `buf`, appending after any bytes already present.
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        RecordWriter { buf, records: 0 }
    }

    /// Number of records written through this writer.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Reserve `total` bytes of zeroed space and fill the fixed header.
    /// Returns the offset of the new record within the buffer.
    fn begin(&mut self, total: usize, tag: u8, txn: TxnId, prev: Lsn) -> usize {
        let at = self.buf.len();
        self.buf.resize(at + total, 0);
        let rec = &mut self.buf[at..];
        rec[0..4].copy_from_slice(&(total as u32).to_le_bytes());
        rec[8] = tag;
        rec[9..17].copy_from_slice(&txn.0.to_le_bytes());
        rec[17..25].copy_from_slice(&prev.0.to_le_bytes());
        at
    }

    /// Write the trailer and checksum for the record starting at `at`.
    fn finish(&mut self, at: usize, total: usize) {
        let rec = &mut self.buf[at..at + total];
        rec[total - 4..].copy_from_slice(&(total as u32).to_le_bytes());
        let ck = fnv1a(&rec[8..total - 4]);
        rec[4..8].copy_from_slice(&ck.to_le_bytes());
        self.records += 1;
    }

    /// Append an `Update` record built from borrowed images. Returns its
    /// encoded length.
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &mut self,
        txn: TxnId,
        prev: Lsn,
        page: PageId,
        slot: u16,
        offset: u16,
        before: &[u8],
        after: &[u8],
    ) -> usize {
        let body = 12 + before.len() + after.len();
        let total = (PREFIX + body + TRAILER).max(LOG_HEADER_SIZE + before.len() + after.len());
        let at = self.begin(total, 1, txn, prev);
        let b = &mut self.buf[at + PREFIX..];
        b[0..4].copy_from_slice(&page.0.to_le_bytes());
        b[4..6].copy_from_slice(&slot.to_le_bytes());
        b[6..8].copy_from_slice(&offset.to_le_bytes());
        b[8..10].copy_from_slice(&(before.len() as u16).to_le_bytes());
        b[10..12].copy_from_slice(&(after.len() as u16).to_le_bytes());
        b[12..12 + before.len()].copy_from_slice(before);
        b[12 + before.len()..body].copy_from_slice(after);
        self.finish(at, total);
        total
    }

    /// Append an `UpdateLogical` record (REDO-only: no before image) built
    /// from a borrowed after image. Returns its encoded length.
    pub fn update_logical(
        &mut self,
        txn: TxnId,
        prev: Lsn,
        page: PageId,
        slot: u16,
        offset: u16,
        after: &[u8],
    ) -> usize {
        let body = 10 + after.len();
        let total = (PREFIX + body + TRAILER).max(LOG_HEADER_SIZE + after.len());
        let at = self.begin(total, 8, txn, prev);
        let b = &mut self.buf[at + PREFIX..];
        b[0..4].copy_from_slice(&page.0.to_le_bytes());
        b[4..6].copy_from_slice(&slot.to_le_bytes());
        b[6..8].copy_from_slice(&offset.to_le_bytes());
        b[8..10].copy_from_slice(&(after.len() as u16).to_le_bytes());
        b[10..body].copy_from_slice(after);
        self.finish(at, total);
        total
    }

    /// Append a `TxnScheme` record declaring the transaction's elected
    /// logging scheme (the first record of an adaptively-logged chain).
    /// Returns its encoded length.
    pub fn scheme_mark(&mut self, txn: TxnId, prev: Lsn, scheme: crate::SchemeCode) -> usize {
        let body = 1;
        let total = (PREFIX + body + TRAILER).max(LOG_HEADER_SIZE);
        let at = self.begin(total, 11, txn, prev);
        self.buf[at + PREFIX] = scheme as u8;
        self.finish(at, total);
        total
    }

    /// Append a `WholePage` record from a borrowed page image. Returns its
    /// encoded length.
    pub fn whole_page(
        &mut self,
        txn: TxnId,
        prev: Lsn,
        page: PageId,
        image: &[u8; PAGE_SIZE],
    ) -> usize {
        let body = 4 + PAGE_SIZE;
        let total = (PREFIX + body + TRAILER).max(LOG_HEADER_SIZE + PAGE_SIZE);
        let at = self.begin(total, 2, txn, prev);
        let b = &mut self.buf[at + PREFIX..];
        b[0..4].copy_from_slice(&page.0.to_le_bytes());
        b[4..4 + PAGE_SIZE].copy_from_slice(image);
        self.finish(at, total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;

    #[test]
    fn update_bytes_identical_to_encode() {
        let cases: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (vec![], vec![]),
            (vec![1, 2, 3], vec![4, 5, 6]),
            (vec![7; 40], vec![8; 40]),
            ((0..255u8).collect(), (0..255u8).rev().collect()),
        ];
        let mut buf = Vec::new();
        let mut w = RecordWriter::new(&mut buf);
        let mut expect = Vec::new();
        for (i, (before, after)) in cases.iter().enumerate() {
            let rec = LogRecord::Update {
                txn: TxnId(3 + i as u64),
                prev: Lsn(if i % 2 == 0 { Lsn::NULL.0 } else { 99 + i as u64 }),
                page: PageId(7 + i as u32),
                slot: i as u16,
                offset: 16 * i as u16,
                before: before.clone(),
                after: after.clone(),
            };
            let enc = rec.encode();
            let n = w.update(
                rec.txn(),
                rec.prev(),
                rec.page().unwrap(),
                i as u16,
                16 * i as u16,
                before,
                after,
            );
            assert_eq!(n, enc.len());
            assert_eq!(n, rec.encoded_len());
            expect.extend_from_slice(&enc);
        }
        assert_eq!(w.records(), cases.len());
        assert_eq!(buf, expect);
    }

    #[test]
    fn update_logical_bytes_identical_to_encode() {
        let cases: Vec<Vec<u8>> = vec![vec![], vec![1, 2, 3], vec![7; 40], (0..255u8).collect()];
        let mut buf = Vec::new();
        let mut w = RecordWriter::new(&mut buf);
        let mut expect = Vec::new();
        for (i, after) in cases.iter().enumerate() {
            let rec = LogRecord::UpdateLogical {
                txn: TxnId(3 + i as u64),
                prev: Lsn(if i % 2 == 0 { Lsn::NULL.0 } else { 99 + i as u64 }),
                page: PageId(7 + i as u32),
                slot: i as u16,
                offset: 16 * i as u16,
                after: after.clone(),
            };
            let enc = rec.encode();
            let n = w.update_logical(
                rec.txn(),
                rec.prev(),
                rec.page().unwrap(),
                i as u16,
                16 * i as u16,
                after,
            );
            assert_eq!(n, enc.len());
            assert_eq!(n, rec.encoded_len());
            expect.extend_from_slice(&enc);
        }
        assert_eq!(w.records(), cases.len());
        assert_eq!(buf, expect);
    }

    #[test]
    fn whole_page_bytes_identical_to_encode() {
        let mut image = [0u8; PAGE_SIZE];
        for (i, b) in image.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let rec = LogRecord::WholePage {
            txn: TxnId(11),
            prev: Lsn(42),
            page: PageId(5),
            image: image.to_vec(),
        };
        let mut buf = vec![0xAA, 0xBB]; // writer must append, not overwrite
        let mut w = RecordWriter::new(&mut buf);
        let n = w.whole_page(TxnId(11), Lsn(42), PageId(5), &image);
        let enc = rec.encode();
        assert_eq!(n, enc.len());
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);
        assert_eq!(&buf[2..], &enc[..]);
    }

    #[test]
    fn scheme_mark_bytes_identical_to_encode() {
        use crate::record::SchemeCode;
        for (i, scheme) in
            [SchemeCode::Pd, SchemeCode::Sd, SchemeCode::Wpl, SchemeCode::Rlog].iter().enumerate()
        {
            let rec = LogRecord::TxnScheme {
                txn: TxnId(20 + i as u64),
                prev: if i % 2 == 0 { Lsn::NULL } else { Lsn(5 + i as u64) },
                scheme: *scheme,
            };
            let mut buf = Vec::new();
            let mut w = RecordWriter::new(&mut buf);
            let n = w.scheme_mark(rec.txn(), rec.prev(), *scheme);
            let enc = rec.encode();
            assert_eq!(n, enc.len());
            assert_eq!(buf, enc);
        }
    }

    #[test]
    fn steady_state_writes_do_not_allocate_past_high_water_mark() {
        let mut buf = Vec::new();
        let before = [1u8; 32];
        let after = [2u8; 32];
        {
            let mut w = RecordWriter::new(&mut buf);
            w.update(TxnId(1), Lsn::NULL, PageId(1), 0, 0, &before, &after);
        }
        let cap = buf.capacity();
        for _ in 0..100 {
            buf.clear();
            let mut w = RecordWriter::new(&mut buf);
            w.update(TxnId(1), Lsn::NULL, PageId(1), 0, 0, &before, &after);
        }
        assert_eq!(buf.capacity(), cap);
    }
}
