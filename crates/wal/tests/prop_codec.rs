//! Codec round-trip and size-model properties for every log-record type.
//!
//! Formerly a proptest suite; now driven by `qs-prng` under fixed seeds so
//! the exact same cases replay on every run, with no external crates.

use qs_prng::Prng;
use qs_types::{Lsn, PageId, TxnId, LOG_HEADER_SIZE};
use qs_wal::{CheckpointBody, LogRecord, WplCheckpointEntry};

fn update_record(rng: &mut Prng) -> LogRecord {
    let img_len = rng.gen_range(0..256);
    let img = rng.bytes(img_len);
    LogRecord::Update {
        txn: TxnId(rng.next_u64()),
        prev: Lsn(rng.next_u64()),
        page: PageId(rng.next_u32()),
        slot: (rng.next_u32() & 0xFFFF) as u16,
        offset: rng.gen_range(0..4096) as u16,
        before: img.clone(),
        after: img.iter().map(|b| b.wrapping_add(1)).collect(),
    }
}

fn any_record(rng: &mut Prng) -> LogRecord {
    match rng.gen_range(0..6) {
        0 => update_record(rng),
        1 => LogRecord::Commit { txn: TxnId(rng.next_u64()), prev: Lsn(rng.next_u64()) },
        2 => LogRecord::Abort { txn: TxnId(rng.next_u64()), prev: Lsn(rng.next_u64()) },
        3 => LogRecord::PageAlloc {
            txn: TxnId(rng.next_u64()),
            prev: Lsn::NULL,
            page: PageId(rng.next_u32()),
        },
        4 => LogRecord::Clr {
            txn: TxnId(rng.next_u64()),
            prev: Lsn::NULL,
            page: PageId(rng.next_u32()),
            slot: 0,
            offset: 0,
            after: {
                let n = rng.gen_range(0..64);
                rng.bytes(n)
            },
            undo_next: Lsn(rng.next_u64()),
        },
        _ => LogRecord::Checkpoint {
            body: CheckpointBody {
                active_txns: vec![(TxnId(3), Lsn(9))],
                dirty_pages: vec![(PageId(1), Lsn(5))],
                wpl_entries: (0..rng.gen_range(0..20))
                    .map(|_| WplCheckpointEntry {
                        page: PageId(rng.next_u32()),
                        lsn: Lsn(rng.next_u64()),
                        txn: TxnId(rng.next_u64()),
                        committed: rng.gen_bool(0.5),
                    })
                    .collect(),
                allocated_pages: 42,
            },
        },
    }
}

#[test]
fn encode_decode_round_trip() {
    let mut rng = Prng::seed_from_u64(0x5EED_C0DE_0001);
    for case in 0..512 {
        let rec = any_record(&mut rng);
        let enc = rec.encode();
        assert_eq!(enc.len(), rec.encoded_len(), "case {case}");
        let dec = LogRecord::decode(&enc).unwrap();
        assert_eq!(dec, rec, "case {case}");
    }
}

#[test]
fn update_size_matches_paper_model() {
    let mut rng = Prng::seed_from_u64(0x5EED_C0DE_0002);
    for case in 0..512 {
        let rec = update_record(&mut rng);
        if let LogRecord::Update { ref before, ref after, .. } = rec {
            assert_eq!(
                rec.encoded_len(),
                LOG_HEADER_SIZE + before.len() + after.len(),
                "case {case}"
            );
        }
    }
}

#[test]
fn single_bitflip_detected() {
    let mut rng = Prng::seed_from_u64(0x5EED_C0DE_0003);
    for case in 0..512 {
        let rec = any_record(&mut rng);
        let mut enc = rec.encode();
        // Flip one bit somewhere in the checksummed region [8, len-4).
        let span = enc.len() - 12;
        if span == 0 {
            continue;
        }
        let pos = 8 + rng.gen_range(0..span);
        enc[pos] ^= 1;
        assert!(LogRecord::decode(&enc).is_err(), "case {case}: flip at {pos}");
    }
}
