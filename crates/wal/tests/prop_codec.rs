//! Codec round-trip and size-model properties for every log-record type.

use proptest::prelude::*;
use qs_types::{Lsn, PageId, TxnId, LOG_HEADER_SIZE};
use qs_wal::{CheckpointBody, LogRecord, WplCheckpointEntry};

fn update_record() -> impl Strategy<Value = LogRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        any::<u16>(),
        0u16..4096,
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(t, p, pg, slot, off, img)| LogRecord::Update {
            txn: TxnId(t),
            prev: Lsn(p),
            page: PageId(pg),
            slot,
            offset: off,
            before: img.clone(),
            after: img.iter().map(|b| b.wrapping_add(1)).collect(),
        })
}

fn any_record() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        update_record(),
        (any::<u64>(), any::<u64>()).prop_map(|(t, p)| LogRecord::Commit {
            txn: TxnId(t),
            prev: Lsn(p)
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(t, p)| LogRecord::Abort {
            txn: TxnId(t),
            prev: Lsn(p)
        }),
        (any::<u64>(), any::<u32>()).prop_map(|(t, pg)| LogRecord::PageAlloc {
            txn: TxnId(t),
            prev: Lsn::NULL,
            page: PageId(pg)
        }),
        (any::<u64>(), any::<u32>(), proptest::collection::vec(any::<u8>(), 0..64), any::<u64>())
            .prop_map(|(t, pg, after, un)| LogRecord::Clr {
                txn: TxnId(t),
                prev: Lsn::NULL,
                page: PageId(pg),
                slot: 0,
                offset: 0,
                after,
                undo_next: Lsn(un),
            }),
        proptest::collection::vec(
            (any::<u32>(), any::<u64>(), any::<u64>(), any::<bool>()),
            0..20
        )
        .prop_map(|entries| LogRecord::Checkpoint {
            body: CheckpointBody {
                active_txns: vec![(TxnId(3), Lsn(9))],
                dirty_pages: vec![(PageId(1), Lsn(5))],
                wpl_entries: entries
                    .into_iter()
                    .map(|(p, l, t, c)| WplCheckpointEntry {
                        page: PageId(p),
                        lsn: Lsn(l),
                        txn: TxnId(t),
                        committed: c,
                    })
                    .collect(),
                allocated_pages: 42,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(rec in any_record()) {
        let enc = rec.encode();
        prop_assert_eq!(enc.len(), rec.encoded_len());
        let dec = LogRecord::decode(&enc).unwrap();
        prop_assert_eq!(dec, rec);
    }

    #[test]
    fn update_size_matches_paper_model(rec in update_record()) {
        if let LogRecord::Update { ref before, ref after, .. } = rec {
            prop_assert_eq!(
                rec.encoded_len(),
                LOG_HEADER_SIZE + before.len() + after.len()
            );
        }
    }

    #[test]
    fn single_bitflip_detected(rec in any_record(), pos_seed in any::<u64>()) {
        let mut enc = rec.encode();
        // Flip one bit somewhere in the checksummed region [8, len-4).
        let span = enc.len() - 12;
        prop_assume!(span > 0);
        let pos = 8 + (pos_seed as usize % span);
        enc[pos] ^= 1;
        prop_assert!(LogRecord::decode(&enc).is_err());
    }
}
