//! The 1995 hardware model (paper §4.4).
//!
//! Testbed: a Sun IPX server (~28.5 MIPS, 48 MB), five SPARC ELC clients
//! (~20 MIPS, 24 MB), an isolated 10 Mb/s Ethernet, a Sun1.3G data disk and
//! a Sun0424 log disk configured raw.
//!
//! The constants below are engineering estimates for that generation of
//! hardware, calibrated *once* against the paper's single-client numbers
//! (see `EXPERIMENTS.md`) and then frozen: every figure is produced from
//! the same model, so cross-scheme and cross-load comparisons are genuine
//! predictions of the measured demands, not per-figure curve fits.

/// Converts operation counts into seconds on the paper's testbed.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareModel {
    /// Client workstation CPU speed (instructions / second). SPARC ELC ≈ 20 MIPS.
    pub client_ips: f64,
    /// Server CPU speed. Sun IPX ≈ 28.5 MIPS.
    pub server_ips: f64,
    /// Fixed per-message network cost (protocol stack + interrupt), seconds.
    pub net_per_msg_s: f64,
    /// Effective network bandwidth, bytes/second. 10 Mb/s Ethernet delivers
    /// roughly 1 MB/s of useful payload under RPC-style traffic.
    pub net_bytes_per_s: f64,
    /// Average random access (seek + rotation) on the data disk, seconds.
    /// Sun1.3G-class drive: ~11 ms seek + ~5.5 ms half-rotation.
    pub data_disk_access_s: f64,
    /// Data-disk transfer time for one 8 KB page, seconds (~2.5 MB/s media rate).
    pub data_disk_page_xfer_s: f64,
    /// Sequential append of one 8 KB page on the log disk, seconds.
    /// The Sun0424 under synchronous forced writes streams well under
    /// 1 MB/s — slower per page than the Ethernet moves one, which is what
    /// makes the log disk (not the network) WPL's bottleneck, as the paper
    /// observes.
    pub log_disk_page_seq_s: f64,
    /// Extra latency per synchronous log force (final partial rotation +
    /// completion interrupt), seconds.
    pub log_force_latency_s: f64,

    // -- per-operation instruction budgets (counted by the engine as events,
    //    priced here) -----------------------------------------------------
    /// Taking a write-protection fault and changing page protection
    /// (SIGSEGV delivery + mprotect + handler bookkeeping on 1995 SunOS).
    pub fault_overhead_instr: u64,
    /// Copying one byte (page or block copy into the recovery buffer).
    pub copy_instr_per_byte_x100: u64,
    /// Comparing one byte during diffing.
    pub diff_instr_per_byte_x100: u64,
    /// Building one log record (header fill, buffer append).
    pub log_record_instr: u64,
    /// Client-side cost to send/receive one page-sized message.
    pub ship_page_instr: u64,
    /// Server-side cost to receive and install one page-sized message.
    pub server_page_instr: u64,
    /// Server-side cost to apply one redo log record (REDO scheme). Cheap
    /// when the page is cached — REDO's real cost on the big database is
    /// the disk read to fetch the page, which is metered separately.
    pub redo_apply_instr: u64,
    /// Server-side cost to append one client log record to the log buffer.
    pub server_log_append_instr: u64,
    /// The software update function of the SD/SL schemes: function call,
    /// descriptor lookup, block-index arithmetic (§3.3.1).
    pub update_fn_instr: u64,
    /// Application "think" cost per object visited by a traversal (method
    /// invocation, pointer chase, date/type checks in the OO7 code).
    pub visit_instr: u64,
    /// Application cost of the update itself (increment x and y in place).
    pub raw_update_instr: u64,
    /// Lock-table work for one exclusive lock acquisition at the server.
    pub lock_instr: u64,
    /// Buffer-pool bookkeeping per page fixed/unfixed at either side.
    pub pool_instr: u64,
}

impl HardwareModel {
    /// The model used for every experiment in `EXPERIMENTS.md`.
    pub fn paper_1995() -> Self {
        HardwareModel {
            client_ips: 20.0e6,
            server_ips: 28.5e6,
            net_per_msg_s: 0.15e-3,
            net_bytes_per_s: 1.05e6,
            data_disk_access_s: 16.5e-3,
            data_disk_page_xfer_s: 3.3e-3,
            log_disk_page_seq_s: 9.5e-3,
            log_force_latency_s: 8.0e-3,
            fault_overhead_instr: 9_000,
            copy_instr_per_byte_x100: 365, // 3.65 instr/byte → copy+diff of 8 KB ≈ 3 ms at 20 MIPS,
            diff_instr_per_byte_x100: 365, // matching the ~3 ms/page CPU saving the paper measured for SD

            log_record_instr: 2_200,
            ship_page_instr: 6_000,
            server_page_instr: 5_000,
            redo_apply_instr: 3_000,
            server_log_append_instr: 650,
            update_fn_instr: 480,
            visit_instr: 2_300,
            raw_update_instr: 8,
            lock_instr: 1_500,
            pool_instr: 450,
        }
    }

    /// Seconds of client CPU for `instr` instructions.
    #[inline]
    pub fn client_cpu_secs(&self, instr: u64) -> f64 {
        instr as f64 / self.client_ips
    }

    /// Seconds of server CPU for `instr` instructions.
    #[inline]
    pub fn server_cpu_secs(&self, instr: u64) -> f64 {
        instr as f64 / self.server_ips
    }

    /// Seconds of network occupancy for `msgs` messages carrying `bytes`.
    #[inline]
    pub fn network_secs(&self, msgs: u64, bytes: u64) -> f64 {
        msgs as f64 * self.net_per_msg_s + bytes as f64 / self.net_bytes_per_s
    }

    /// Seconds of data-disk occupancy for `ios` random page transfers.
    #[inline]
    pub fn data_disk_secs(&self, ios: u64) -> f64 {
        ios as f64 * (self.data_disk_access_s + self.data_disk_page_xfer_s)
    }

    /// Seconds of log-disk occupancy: sequential page writes, page reads
    /// (re-reads seek back into the log body, pay a random access), and
    /// synchronous force latencies.
    #[inline]
    pub fn log_disk_secs(&self, pages_written: u64, pages_read: u64, forces: u64) -> f64 {
        pages_written as f64 * self.log_disk_page_seq_s
            + pages_read as f64 * (self.data_disk_access_s + self.data_disk_page_xfer_s)
            + forces as f64 * self.log_force_latency_s
    }

    /// Instruction cost of copying `bytes` bytes.
    #[inline]
    pub fn copy_instr(&self, bytes: u64) -> u64 {
        bytes * self.copy_instr_per_byte_x100 / 100
    }

    /// Instruction cost of diffing `bytes` bytes.
    #[inline]
    pub fn diff_instr(&self, bytes: u64) -> u64 {
        bytes * self.diff_instr_per_byte_x100 / 100
    }
}

impl Default for HardwareModel {
    fn default() -> Self {
        Self::paper_1995()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mips_ratio_matches_testbed() {
        let hw = HardwareModel::paper_1995();
        // Server is faster than a client but not by much (IPX vs ELC).
        let r = hw.server_ips / hw.client_ips;
        assert!(r > 1.0 && r < 2.0, "ratio {r}");
    }

    #[test]
    fn page_over_network_is_roughly_8ms() {
        // 8 KB at ~1.05 MB/s plus per-message overhead lands near 8 ms,
        // consistent with measured 10 Mb/s Ethernet RPC page transfers.
        let hw = HardwareModel::paper_1995();
        let t = hw.network_secs(1, 8192);
        assert!(t > 0.006 && t < 0.010, "t={t}");
    }

    #[test]
    fn log_disk_page_slower_than_network_page() {
        // The structural fact behind WPL's saturation (Figures 5/7): a
        // whole page costs more to force to the log than to ship.
        let hw = HardwareModel::paper_1995();
        assert!(hw.log_disk_page_seq_s > hw.network_secs(1, 8256));
    }

    #[test]
    fn random_page_io_near_20ms() {
        let hw = HardwareModel::paper_1995();
        let t = hw.data_disk_secs(1);
        assert!(t > 0.015 && t < 0.025, "t={t}");
    }

    #[test]
    fn copy_and_diff_of_page_cost_milliseconds() {
        // The paper observed SD saving ≈3 ms of client CPU per updated page
        // versus PD's copy+diff of the full 8 KB. Our budget: copy+diff of
        // 8 KB ≈ 62 k instructions ≈ 3.1 ms at 20 MIPS.
        let hw = HardwareModel::paper_1995();
        let instr = hw.copy_instr(8192) + hw.diff_instr(8192);
        let secs = hw.client_cpu_secs(instr);
        assert!(secs > 0.002 && secs < 0.004, "secs={secs}");
    }

    #[test]
    fn sequential_log_write_beats_random_io() {
        let hw = HardwareModel::paper_1995();
        assert!(hw.log_disk_page_seq_s < hw.data_disk_access_s);
    }

    #[test]
    fn default_is_paper_model() {
        assert_eq!(HardwareModel::default(), HardwareModel::paper_1995());
    }
}
