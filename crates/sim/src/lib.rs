//! Performance model for the QuickStore recovery study.
//!
//! The functional engine (`qs-esm`, `quickstore`) is *time-free*: it executes
//! every algorithm for real and merely counts what it does on a shared
//! [`Meter`]. This crate turns those counts into 1995-hardware time via a
//! calibrated [`cost::HardwareModel`] and predicts multi-client response
//! time / throughput with an exact Mean-Value-Analysis solver
//! ([`mva::solve`]) over the closed queueing network the paper's testbed
//! forms (N client workstations → shared Ethernet → server CPU → data disk
//! and log disk).
//!
//! Separating *what happened* (counts) from *how long it took* (model)
//! reproduces the paper's comparative shapes without pretending our host
//! machine is a 1994 Sun IPX.

pub mod cost;
pub mod demand;
pub mod json;
pub mod mva;

pub use cost::HardwareModel;
pub use demand::{Demand, Meter, MeterSnapshot};
pub use json::JsonWriter;
pub use mva::{solve, Center, MvaResult};
