//! A hand-rolled JSON writer.
//!
//! Replaces the `serde` derives the workspace used to carry for two spots
//! (the hardware model and the bench reports): a builder that emits
//! RFC 8259-conformant text with proper string escaping and shortest-round-
//! trip float formatting via Rust's own `{}` for `f64`. Writing is all the
//! repo needs — configs are constructed in code, reports are consumed by
//! humans and plotting scripts.

/// Incremental writer for one JSON document. Values are appended in order;
/// the builder tracks whether a comma separator is due.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Whether the next value at each open nesting level needs a comma.
    need_comma: Vec<bool>,
}

impl JsonWriter {
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// Finish and return the document text.
    pub fn finish(self) -> String {
        debug_assert!(self.need_comma.is_empty(), "unclosed object/array");
        self.out
    }

    fn pre_value(&mut self) {
        if let Some(due) = self.need_comma.last_mut() {
            if *due {
                self.out.push(',');
            }
            *due = true;
        }
    }

    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.need_comma.push(false);
        self
    }

    pub fn end_object(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push('}');
        self
    }

    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.need_comma.push(false);
        self
    }

    pub fn end_array(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push(']');
        self
    }

    /// Write `"key":` — the next call supplies its value.
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.pre_value();
        write_escaped(&mut self.out, key);
        self.out.push(':');
        // The value after a key is not comma-separated from it.
        if let Some(due) = self.need_comma.last_mut() {
            *due = false;
        }
        self
    }

    pub fn string(&mut self, v: &str) -> &mut Self {
        self.pre_value();
        write_escaped(&mut self.out, v);
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        self.out.push_str(&v.to_string());
        self
    }

    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// JSON has no NaN/Infinity; emit `null` for them, as serde_json does.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        if v.is_finite() {
            let s = format!("{v}");
            self.out.push_str(&s);
            // `{}` prints integral floats without a fraction ("3"); keep the
            // value unmistakably a float for strict consumers.
            if !s.contains(['.', 'e', 'E']) {
                self.out.push_str(".0");
            }
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Splice a pre-rendered JSON value in as the next value. The caller
    /// guarantees `fragment` is itself valid JSON (e.g. produced by another
    /// `JsonWriter`).
    pub fn raw(&mut self, fragment: &str) -> &mut Self {
        self.pre_value();
        self.out.push_str(fragment);
        self
    }

    // Convenience: key + scalar in one call.
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key).string(v)
    }
    pub fn field_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key).u64(v)
    }
    pub fn field_f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.key(key).f64(v)
    }
}

/// Append `s` as a JSON string literal (quotes, escapes, control chars).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl crate::HardwareModel {
    /// The full model as a JSON object — lets a report record exactly which
    /// constants produced its numbers.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_f64("client_ips", self.client_ips)
            .field_f64("server_ips", self.server_ips)
            .field_f64("net_per_msg_s", self.net_per_msg_s)
            .field_f64("net_bytes_per_s", self.net_bytes_per_s)
            .field_f64("data_disk_access_s", self.data_disk_access_s)
            .field_f64("data_disk_page_xfer_s", self.data_disk_page_xfer_s)
            .field_f64("log_disk_page_seq_s", self.log_disk_page_seq_s)
            .field_f64("log_force_latency_s", self.log_force_latency_s)
            .field_u64("fault_overhead_instr", self.fault_overhead_instr)
            .field_u64("copy_instr_per_byte_x100", self.copy_instr_per_byte_x100)
            .field_u64("diff_instr_per_byte_x100", self.diff_instr_per_byte_x100)
            .field_u64("log_record_instr", self.log_record_instr)
            .field_u64("ship_page_instr", self.ship_page_instr)
            .field_u64("server_page_instr", self.server_page_instr)
            .field_u64("redo_apply_instr", self.redo_apply_instr)
            .field_u64("server_log_append_instr", self.server_log_append_instr)
            .field_u64("update_fn_instr", self.update_fn_instr)
            .field_u64("visit_instr", self.visit_instr)
            .field_u64("raw_update_instr", self.raw_update_instr)
            .field_u64("lock_instr", self.lock_instr)
            .field_u64("pool_instr", self.pool_instr)
            .end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HardwareModel;

    #[test]
    fn scalars_and_nesting() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("name", "WPL")
            .field_u64("clients", 5)
            .field_f64("tpm", 12.5)
            .key("utilization")
            .begin_array()
            .f64(0.1)
            .f64(0.9)
            .end_array()
            .key("ok")
            .bool(true)
            .end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"WPL","clients":5,"tpm":12.5,"utilization":[0.1,0.9],"ok":true}"#
        );
    }

    #[test]
    fn strings_escaped() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn integral_floats_keep_a_fraction() {
        let mut w = JsonWriter::new();
        w.begin_array().f64(3.0).f64(2.0e7).f64(f64::NAN).end_array();
        assert_eq!(w.finish(), "[3.0,20000000.0,null]");
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object().key("a").begin_array().end_array().end_object();
        assert_eq!(w.finish(), r#"{"a":[]}"#);
    }

    #[test]
    fn hardware_model_round_trips_key_facts() {
        let j = HardwareModel::paper_1995().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains(r#""server_ips":28500000.0"#), "{j}");
        assert!(j.contains(r#""fault_overhead_instr":9000"#), "{j}");
        // Every field name appears exactly once.
        assert_eq!(j.matches("client_ips").count(), 1);
    }
}
