//! Exact Mean-Value Analysis for the paper's closed queueing network.
//!
//! The testbed is a textbook closed network: N statistically identical
//! clients cycle through their own CPU (a *delay* center — each client owns
//! its workstation) and four shared *queueing* centers: the Ethernet, the
//! server CPU, the server data disk, and the server log disk.
//!
//! Exact single-class MVA recurrence (Reiser & Lavenberg 1980):
//!
//! ```text
//! R_k(n) = D_k * (1 + Q_k(n-1))       queueing center
//! R_z    = Z                          delay (client CPU)
//! X(n)   = n / (Z + Σ_k R_k(n))
//! Q_k(n) = X(n) * R_k(n)
//! ```
//!
//! This reproduces precisely the effects the paper measures: WPL's log-disk
//! demand saturates the log disk so throughput flattens at 2–3 clients,
//! REDO's server CPU/disk demand makes it scale worst on the big database,
//! and the diffing schemes scale because their demand sits on the (per-
//! client, non-shared) client CPUs.

/// The queueing centers of the model, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Center {
    Network,
    ServerCpu,
    DataDisk,
    LogDisk,
}

impl Center {
    pub const ALL: [Center; 4] =
        [Center::Network, Center::ServerCpu, Center::DataDisk, Center::LogDisk];

    pub fn name(self) -> &'static str {
        match self {
            Center::Network => "network",
            Center::ServerCpu => "server-cpu",
            Center::DataDisk => "data-disk",
            Center::LogDisk => "log-disk",
        }
    }
}

/// Solution of the network at one population size.
#[derive(Debug, Clone, PartialEq)]
pub struct MvaResult {
    /// Number of clients (customers).
    pub clients: usize,
    /// Per-transaction response time, seconds (including client CPU time).
    pub response_time_s: f64,
    /// System throughput, transactions / second (all clients combined).
    pub throughput_tps: f64,
    /// Residence time at each queueing center, seconds.
    pub residence_s: [f64; 4],
    /// Utilization of each queueing center (0..1).
    pub utilization: [f64; 4],
    /// Mean queue length at each queueing center.
    pub queue_len: [f64; 4],
}

impl MvaResult {
    /// Throughput in the paper's units (transactions / minute).
    pub fn throughput_tpm(&self) -> f64 {
        self.throughput_tps * 60.0
    }

    /// Which center is the bottleneck (highest utilization)?
    pub fn bottleneck(&self) -> Center {
        let mut best = 0;
        for k in 1..4 {
            if self.utilization[k] > self.utilization[best] {
                best = k;
            }
        }
        Center::ALL[best]
    }
}

/// Per-transaction demand at the four queueing centers plus the client-CPU
/// delay, all in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetworkDemand {
    /// Delay-center demand: client CPU (dedicated per customer).
    pub client_cpu_s: f64,
    /// Demands at [network, server CPU, data disk, log disk].
    pub centers_s: [f64; 4],
}

impl From<crate::demand::Demand> for NetworkDemand {
    fn from(d: crate::demand::Demand) -> Self {
        NetworkDemand {
            client_cpu_s: d.client_cpu_s,
            centers_s: [d.network_s, d.server_cpu_s, d.data_disk_s, d.log_disk_s],
        }
    }
}

/// Exact MVA for populations `1..=max_clients`. Returns one result per
/// population size, in order.
pub fn solve(demand: NetworkDemand, max_clients: usize) -> Vec<MvaResult> {
    assert!(max_clients >= 1);
    for d in demand.centers_s {
        assert!(d >= 0.0, "negative demand");
    }
    assert!(demand.client_cpu_s >= 0.0);

    let mut q = [0.0f64; 4]; // Q_k(n-1)
    let mut out = Vec::with_capacity(max_clients);
    for n in 1..=max_clients {
        let mut r = [0.0f64; 4];
        for k in 0..4 {
            r[k] = demand.centers_s[k] * (1.0 + q[k]);
        }
        let total_r: f64 = r.iter().sum::<f64>() + demand.client_cpu_s;
        let x = if total_r > 0.0 { n as f64 / total_r } else { 0.0 };
        for k in 0..4 {
            q[k] = x * r[k];
        }
        let mut util = [0.0f64; 4];
        for (u, d) in util.iter_mut().zip(demand.centers_s.iter()) {
            *u = (x * d).min(1.0);
        }
        out.push(MvaResult {
            clients: n,
            response_time_s: total_r,
            throughput_tps: x,
            residence_s: r,
            utilization: util,
            queue_len: q,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(client: f64, centers: [f64; 4]) -> NetworkDemand {
        NetworkDemand { client_cpu_s: client, centers_s: centers }
    }

    #[test]
    fn single_client_response_is_total_demand() {
        let r = solve(d(1.0, [0.1, 0.2, 0.3, 0.4]), 1);
        assert!((r[0].response_time_s - 2.0).abs() < 1e-12);
        assert!((r[0].throughput_tps - 0.5).abs() < 1e-12);
    }

    #[test]
    fn throughput_bounded_by_bottleneck() {
        // Log disk demand 0.5 s/txn → asymptotic X ≤ 2 tps no matter how
        // many clients. This is exactly the WPL saturation the paper shows.
        let nd = d(0.1, [0.01, 0.02, 0.03, 0.5]);
        let rs = solve(nd, 50);
        let x_last = rs.last().unwrap().throughput_tps;
        assert!(x_last <= 2.0 + 1e-9);
        assert!(x_last > 1.9, "x={x_last}"); // approaches the bound
        assert_eq!(rs.last().unwrap().bottleneck(), Center::LogDisk);
    }

    #[test]
    fn throughput_monotone_nondecreasing_in_n() {
        let nd = d(0.5, [0.05, 0.1, 0.2, 0.15]);
        let rs = solve(nd, 10);
        for w in rs.windows(2) {
            assert!(w[1].throughput_tps >= w[0].throughput_tps - 1e-12);
        }
    }

    #[test]
    fn response_time_monotone_nondecreasing_in_n() {
        let nd = d(0.5, [0.05, 0.1, 0.2, 0.15]);
        let rs = solve(nd, 10);
        for w in rs.windows(2) {
            assert!(w[1].response_time_s >= w[0].response_time_s - 1e-12);
        }
    }

    #[test]
    fn little_law_holds() {
        // N = X * (R) for a closed network with response including think.
        let nd = d(0.3, [0.04, 0.08, 0.12, 0.02]);
        for r in solve(nd, 8) {
            let n_est = r.throughput_tps * r.response_time_s;
            assert!((n_est - r.clients as f64).abs() < 1e-9, "{n_est} vs {}", r.clients);
        }
    }

    #[test]
    fn delay_center_does_not_queue() {
        // Doubling clients with all demand at the delay center keeps
        // response time flat and doubles throughput.
        let nd = d(1.0, [0.0, 0.0, 0.0, 0.0]);
        let rs = solve(nd, 4);
        for r in &rs {
            assert!((r.response_time_s - 1.0).abs() < 1e-12);
        }
        assert!((rs[3].throughput_tps - 4.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_never_exceeds_one() {
        let nd = d(0.0, [0.9, 0.8, 0.7, 0.6]);
        for r in solve(nd, 32) {
            for u in r.utilization {
                assert!((0.0..=1.0).contains(&u));
            }
        }
    }

    #[test]
    fn zero_demand_yields_zero_throughput() {
        let rs = solve(d(0.0, [0.0; 4]), 3);
        assert_eq!(rs[2].throughput_tps, 0.0);
    }

    #[test]
    fn tpm_conversion() {
        let rs = solve(d(1.0, [0.0; 4]), 1);
        assert!((rs[0].throughput_tpm() - 60.0).abs() < 1e-9);
    }
}
