//! Demand accounting: what the functional engine did, counted per run.
//!
//! A [`Meter`] is shared (via `Arc`) between the ESM client, the server, and
//! the QuickStore runtime. Counters are atomics so the thread-based tests
//! can share one meter too; in the single-threaded harness the overhead is
//! negligible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Relaxed ordering everywhere: counters are statistics, not synchronization.
const ORD: Ordering = Ordering::Relaxed;

/// Shared counter block. All counts are cumulative since construction (or
/// the last [`Meter::reset`]).
#[derive(Debug, Default)]
pub struct Meter {
    // -- raw CPU escape hatches (rarely used; most CPU is priced from the
    //    event counters below by `price`) ---------------------------------
    /// Extra instructions executed on the client workstation CPU.
    pub client_instr: AtomicU64,
    /// Extra instructions executed on the server CPU.
    pub server_instr: AtomicU64,
    /// Messages sent over the (shared) network, either direction.
    pub net_msgs: AtomicU64,
    /// Payload bytes moved over the network.
    pub net_bytes: AtomicU64,
    /// Random page reads from the data disk.
    pub data_reads: AtomicU64,
    /// Random page writes to the data disk.
    pub data_writes: AtomicU64,
    /// Pages appended to the log disk (sequential).
    pub log_pages_written: AtomicU64,
    /// Pages read back from the log disk (WPL re-reads / reclaim, restart).
    pub log_pages_read: AtomicU64,
    /// Synchronous log forces (each pays one device round trip beyond the
    /// sequential streaming cost).
    pub log_forces: AtomicU64,

    // -- bookkeeping for Figures 9 / 14 and the analysis text -------------
    /// Dirty *data* pages shipped client → server.
    pub dirty_pages_shipped: AtomicU64,
    /// Pages' worth of log records shipped client → server.
    pub log_record_pages_shipped: AtomicU64,
    /// Individual log records generated at the client.
    pub log_records_generated: AtomicU64,
    /// Bytes of before/after images placed in log records (excl. headers).
    pub log_image_bytes: AtomicU64,
    /// Write-protection faults taken (PD / WPL / REDO first-touch).
    pub write_faults: AtomicU64,
    /// Read (mapping) faults taken — page not yet mapped into a frame.
    pub read_faults: AtomicU64,
    /// Bytes copied into the recovery buffer (page or block copies).
    pub bytes_copied: AtomicU64,
    /// Bytes compared by the diff algorithm.
    pub bytes_diffed: AtomicU64,
    /// Application-level object updates performed.
    pub updates: AtomicU64,
    /// Calls into the software update function (SD/SL path).
    pub update_fn_calls: AtomicU64,
    /// Pages requested by clients from the server.
    pub page_requests: AtomicU64,
    /// Page requests that missed in the server buffer pool (→ data disk).
    pub server_pool_misses: AtomicU64,
    /// Pages evicted from the *client* buffer pool (client paging).
    pub client_evictions: AtomicU64,
    /// Recovery-buffer overflows (forced early log-record generation).
    pub recovery_buffer_overflows: AtomicU64,
    /// Transactions committed.
    pub commits: AtomicU64,
    /// Objects visited by the application traversal (priced as client CPU).
    pub visits: AtomicU64,
    /// Lock acquisitions processed at the server.
    pub locks_acquired: AtomicU64,
    /// Redo log records applied at the server (REDO scheme).
    pub redo_applies: AtomicU64,
}

impl Meter {
    pub fn new() -> Arc<Meter> {
        Arc::new(Meter::default())
    }

    /// Zero every counter.
    pub fn reset(&self) {
        // Snapshot lists every field; subtracting via store keeps this in
        // sync with the struct definition without unsafe tricks.
        for c in self.all() {
            c.store(0, ORD);
        }
    }

    fn all(&self) -> [&AtomicU64; 27] {
        [
            &self.client_instr,
            &self.server_instr,
            &self.net_msgs,
            &self.net_bytes,
            &self.data_reads,
            &self.data_writes,
            &self.log_pages_written,
            &self.log_pages_read,
            &self.log_forces,
            &self.dirty_pages_shipped,
            &self.log_record_pages_shipped,
            &self.log_records_generated,
            &self.log_image_bytes,
            &self.write_faults,
            &self.read_faults,
            &self.bytes_copied,
            &self.bytes_diffed,
            &self.updates,
            &self.update_fn_calls,
            &self.page_requests,
            &self.server_pool_misses,
            &self.client_evictions,
            &self.recovery_buffer_overflows,
            &self.commits,
            &self.visits,
            &self.locks_acquired,
            &self.redo_applies,
        ]
    }

    // Convenience mutators used throughout the engine. ---------------------

    #[inline]
    pub fn client_cpu(&self, instr: u64) {
        self.client_instr.fetch_add(instr, ORD);
    }

    #[inline]
    pub fn server_cpu(&self, instr: u64) {
        self.server_instr.fetch_add(instr, ORD);
    }

    /// One network message carrying `bytes` of payload.
    #[inline]
    pub fn net(&self, bytes: u64) {
        self.net_msgs.fetch_add(1, ORD);
        self.net_bytes.fetch_add(bytes, ORD);
    }

    #[inline]
    pub fn add(&self, field: impl Fn(&Meter) -> &AtomicU64, n: u64) {
        field(self).fetch_add(n, ORD);
    }

    /// Copy every counter out (relaxed; callers quiesce the engine first).
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            client_instr: self.client_instr.load(ORD),
            server_instr: self.server_instr.load(ORD),
            net_msgs: self.net_msgs.load(ORD),
            net_bytes: self.net_bytes.load(ORD),
            data_reads: self.data_reads.load(ORD),
            data_writes: self.data_writes.load(ORD),
            log_pages_written: self.log_pages_written.load(ORD),
            log_pages_read: self.log_pages_read.load(ORD),
            log_forces: self.log_forces.load(ORD),
            dirty_pages_shipped: self.dirty_pages_shipped.load(ORD),
            log_record_pages_shipped: self.log_record_pages_shipped.load(ORD),
            log_records_generated: self.log_records_generated.load(ORD),
            log_image_bytes: self.log_image_bytes.load(ORD),
            write_faults: self.write_faults.load(ORD),
            read_faults: self.read_faults.load(ORD),
            bytes_copied: self.bytes_copied.load(ORD),
            bytes_diffed: self.bytes_diffed.load(ORD),
            updates: self.updates.load(ORD),
            update_fn_calls: self.update_fn_calls.load(ORD),
            page_requests: self.page_requests.load(ORD),
            server_pool_misses: self.server_pool_misses.load(ORD),
            client_evictions: self.client_evictions.load(ORD),
            recovery_buffer_overflows: self.recovery_buffer_overflows.load(ORD),
            commits: self.commits.load(ORD),
            visits: self.visits.load(ORD),
            locks_acquired: self.locks_acquired.load(ORD),
            redo_applies: self.redo_applies.load(ORD),
        }
    }
}

/// A plain-old-data copy of every counter, suitable for arithmetic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeterSnapshot {
    pub client_instr: u64,
    pub server_instr: u64,
    pub net_msgs: u64,
    pub net_bytes: u64,
    pub data_reads: u64,
    pub data_writes: u64,
    pub log_pages_written: u64,
    pub log_pages_read: u64,
    pub log_forces: u64,
    pub dirty_pages_shipped: u64,
    pub log_record_pages_shipped: u64,
    pub log_records_generated: u64,
    pub log_image_bytes: u64,
    pub write_faults: u64,
    pub read_faults: u64,
    pub bytes_copied: u64,
    pub bytes_diffed: u64,
    pub updates: u64,
    pub update_fn_calls: u64,
    pub page_requests: u64,
    pub server_pool_misses: u64,
    pub client_evictions: u64,
    pub recovery_buffer_overflows: u64,
    pub commits: u64,
    pub visits: u64,
    pub locks_acquired: u64,
    pub redo_applies: u64,
}

impl MeterSnapshot {
    /// Field-wise difference (`self - earlier`), for windowed measurements.
    pub fn since(&self, earlier: &MeterSnapshot) -> MeterSnapshot {
        MeterSnapshot {
            client_instr: self.client_instr - earlier.client_instr,
            server_instr: self.server_instr - earlier.server_instr,
            net_msgs: self.net_msgs - earlier.net_msgs,
            net_bytes: self.net_bytes - earlier.net_bytes,
            data_reads: self.data_reads - earlier.data_reads,
            data_writes: self.data_writes - earlier.data_writes,
            log_pages_written: self.log_pages_written - earlier.log_pages_written,
            log_pages_read: self.log_pages_read - earlier.log_pages_read,
            log_forces: self.log_forces - earlier.log_forces,
            dirty_pages_shipped: self.dirty_pages_shipped - earlier.dirty_pages_shipped,
            log_record_pages_shipped: self.log_record_pages_shipped
                - earlier.log_record_pages_shipped,
            log_records_generated: self.log_records_generated - earlier.log_records_generated,
            log_image_bytes: self.log_image_bytes - earlier.log_image_bytes,
            write_faults: self.write_faults - earlier.write_faults,
            read_faults: self.read_faults - earlier.read_faults,
            bytes_copied: self.bytes_copied - earlier.bytes_copied,
            bytes_diffed: self.bytes_diffed - earlier.bytes_diffed,
            updates: self.updates - earlier.updates,
            update_fn_calls: self.update_fn_calls - earlier.update_fn_calls,
            page_requests: self.page_requests - earlier.page_requests,
            server_pool_misses: self.server_pool_misses - earlier.server_pool_misses,
            client_evictions: self.client_evictions - earlier.client_evictions,
            recovery_buffer_overflows: self.recovery_buffer_overflows
                - earlier.recovery_buffer_overflows,
            commits: self.commits - earlier.commits,
            visits: self.visits - earlier.visits,
            locks_acquired: self.locks_acquired - earlier.locks_acquired,
            redo_applies: self.redo_applies - earlier.redo_applies,
        }
    }

    /// Total client-CPU instructions implied by the events in this window.
    /// This is where every per-operation budget of the hardware model is
    /// applied — the engine only counts events.
    pub fn client_cpu_instr(&self, hw: &crate::cost::HardwareModel) -> u64 {
        self.client_instr
            + (self.read_faults + self.write_faults) * hw.fault_overhead_instr
            + hw.copy_instr(self.bytes_copied)
            + hw.diff_instr(self.bytes_diffed)
            + self.log_records_generated * hw.log_record_instr
            + self.update_fn_calls * hw.update_fn_instr
            + self.updates * hw.raw_update_instr
            + self.visits * hw.visit_instr
            + (self.page_requests
                + self.dirty_pages_shipped
                + self.log_record_pages_shipped
                + self.commits)
                * hw.ship_page_instr
            + self.client_evictions * hw.pool_instr
    }

    /// Total server-CPU instructions implied by the events in this window.
    pub fn server_cpu_instr(&self, hw: &crate::cost::HardwareModel) -> u64 {
        self.server_instr
            + (self.page_requests + self.dirty_pages_shipped + self.log_record_pages_shipped)
                * hw.server_page_instr
            + self.log_records_generated * hw.server_log_append_instr
            + self.redo_applies * hw.redo_apply_instr
            + self.locks_acquired * hw.lock_instr
            + self.server_pool_misses * hw.pool_instr
            + self.commits * hw.lock_instr
    }

    /// Per-transaction average of each service-center demand, priced by the
    /// hardware model. `txns` must be the number of transactions the window
    /// covers.
    pub fn per_txn_demand(&self, hw: &crate::cost::HardwareModel, txns: u64) -> Demand {
        assert!(txns > 0, "demand window must contain transactions");
        let t = txns as f64;
        Demand {
            client_cpu_s: hw.client_cpu_secs(self.client_cpu_instr(hw)) / t,
            server_cpu_s: hw.server_cpu_secs(self.server_cpu_instr(hw)) / t,
            network_s: hw.network_secs(self.net_msgs, self.net_bytes) / t,
            data_disk_s: hw.data_disk_secs(self.data_reads + self.data_writes) / t,
            log_disk_s: hw.log_disk_secs(
                self.log_pages_written,
                self.log_pages_read,
                self.log_forces,
            ) / t,
        }
    }
}

/// Per-transaction service demand at each center, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Demand {
    /// Client workstation CPU (dedicated per client → MVA delay center).
    pub client_cpu_s: f64,
    /// Server CPU (shared queueing center).
    pub server_cpu_s: f64,
    /// Shared Ethernet (queueing center).
    pub network_s: f64,
    /// Server data disk (queueing center).
    pub data_disk_s: f64,
    /// Server log disk (queueing center).
    pub log_disk_s: f64,
}

impl Demand {
    /// Total single-client service time (no queueing): the 1-client response
    /// time predicted by the model.
    pub fn total(&self) -> f64 {
        self.client_cpu_s + self.server_cpu_s + self.network_s + self.data_disk_s + self.log_disk_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::HardwareModel;

    #[test]
    fn meter_counts_and_resets() {
        let m = Meter::new();
        m.client_cpu(1000);
        m.net(8192);
        m.net(100);
        m.data_reads.fetch_add(3, ORD);
        let s = m.snapshot();
        assert_eq!(s.client_instr, 1000);
        assert_eq!(s.net_msgs, 2);
        assert_eq!(s.net_bytes, 8292);
        assert_eq!(s.data_reads, 3);
        m.reset();
        assert_eq!(m.snapshot(), MeterSnapshot::default());
    }

    #[test]
    fn snapshot_since_subtracts() {
        let m = Meter::new();
        m.client_cpu(100);
        let a = m.snapshot();
        m.client_cpu(50);
        m.server_cpu(7);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.client_instr, 50);
        assert_eq!(d.server_instr, 7);
    }

    #[test]
    fn per_txn_demand_divides() {
        let m = Meter::new();
        let hw = HardwareModel::paper_1995();
        m.client_cpu(20_000_000); // 1 second at 20 MIPS
        let d = m.snapshot().per_txn_demand(&hw, 2);
        assert!((d.client_cpu_s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn demand_total_sums() {
        let d = Demand {
            client_cpu_s: 1.0,
            server_cpu_s: 2.0,
            network_s: 3.0,
            data_disk_s: 4.0,
            log_disk_s: 5.0,
        };
        assert!((d.total() - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "demand window")]
    fn zero_txn_window_panics() {
        let m = Meter::new();
        let hw = HardwareModel::paper_1995();
        let _ = m.snapshot().per_txn_demand(&hw, 0);
    }
}
