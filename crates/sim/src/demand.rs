//! Demand accounting: what the functional engine did, counted per run.
//!
//! A [`Meter`] is shared (via `Arc`) between the ESM client, the server, and
//! the QuickStore runtime. Counters are atomics so the thread-based tests
//! can share one meter too; in the single-threaded harness the overhead is
//! negligible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Relaxed ordering everywhere: counters are statistics, not synchronization.
const ORD: Ordering = Ordering::Relaxed;

/// Declares every meter counter exactly once. The macro expands the single
/// field list into [`Meter`] (atomics), [`MeterSnapshot`] (plain `u64`s),
/// `Meter::all()`, `Meter::snapshot()`, and `MeterSnapshot::since()`, so a
/// new counter can never be silently missing from `reset()`, `snapshot()`,
/// or windowed subtraction.
macro_rules! meter_counters {
    ($($(#[$doc:meta])* $field:ident),+ $(,)?) => {
        /// Shared counter block. All counts are cumulative since construction
        /// (or the last [`Meter::reset`]).
        #[derive(Debug, Default)]
        pub struct Meter {
            $($(#[$doc])* pub $field: AtomicU64,)+
        }

        /// A plain-old-data copy of every counter, suitable for arithmetic.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct MeterSnapshot {
            $(pub $field: u64,)+
        }

        impl Meter {
            /// Number of counters (one per declared field).
            pub const FIELD_COUNT: usize = [$(stringify!($field)),+].len();

            fn all(&self) -> [&AtomicU64; Self::FIELD_COUNT] {
                [$(&self.$field),+]
            }

            /// Copy every counter out (relaxed; callers quiesce the engine
            /// first).
            pub fn snapshot(&self) -> MeterSnapshot {
                MeterSnapshot { $($field: self.$field.load(ORD)),+ }
            }
        }

        impl MeterSnapshot {
            /// Field-wise difference (`self - earlier`), for windowed
            /// measurements.
            pub fn since(&self, earlier: &MeterSnapshot) -> MeterSnapshot {
                MeterSnapshot { $($field: self.$field - earlier.$field),+ }
            }
        }
    };
}

meter_counters! {
    // -- raw CPU escape hatches (rarely used; most CPU is priced from the
    //    event counters below by `price`) ---------------------------------
    /// Extra instructions executed on the client workstation CPU.
    client_instr,
    /// Extra instructions executed on the server CPU.
    server_instr,
    /// Messages sent over the (shared) network, either direction.
    net_msgs,
    /// Payload bytes moved over the network.
    net_bytes,
    /// Random page reads from the data disk.
    data_reads,
    /// Random page writes to the data disk.
    data_writes,
    /// Pages appended to the log disk (sequential).
    log_pages_written,
    /// Pages read back from the log disk (WPL re-reads / reclaim, restart).
    log_pages_read,
    /// Synchronous log forces that wrote pages (each pays one device round
    /// trip beyond the sequential streaming cost).
    log_forces,
    /// Forces that found the log already durable (no I/O, no latency paid).
    log_forces_noop,

    // -- bookkeeping for Figures 9 / 14 and the analysis text -------------
    /// Dirty *data* pages shipped client → server.
    dirty_pages_shipped,
    /// Pages' worth of log records shipped client → server.
    log_record_pages_shipped,
    /// Individual log records generated at the client.
    log_records_generated,
    /// Bytes of before/after images placed in log records (excl. headers).
    log_image_bytes,
    /// Write-protection faults taken (PD / WPL / REDO first-touch).
    write_faults,
    /// Read (mapping) faults taken — page not yet mapped into a frame.
    read_faults,
    /// Bytes copied into the recovery buffer (page or block copies).
    bytes_copied,
    /// Bytes compared by the diff algorithm.
    bytes_diffed,
    /// Application-level object updates performed.
    updates,
    /// Calls into the software update function (SD/SL path).
    update_fn_calls,
    /// Pages requested by clients from the server.
    page_requests,
    /// Page requests that missed in the server buffer pool (→ data disk).
    server_pool_misses,
    /// Pages evicted from the *client* buffer pool (client paging).
    client_evictions,
    /// Recovery-buffer overflows (forced early log-record generation).
    recovery_buffer_overflows,
    /// Transactions committed.
    commits,
    /// Objects visited by the application traversal (priced as client CPU).
    visits,
    /// Lock acquisitions processed at the server.
    locks_acquired,
    /// Redo log records applied at the server (REDO scheme).
    redo_applies,

    // -- maintenance sub-accounting (checkpoint / reclaim I/O) ------------
    // Maintenance I/O is *also* counted in the matching counters above, so
    // windowed demand figures are unchanged; these break out how much of
    // the window's I/O was checkpoint/reclaim work rather than transaction
    // work, instead of silently attributing it to whichever victim commit
    // crossed the log-fullness threshold.
    /// Data-disk page writes performed by checkpoint/reclaim flushing.
    maint_data_writes,
    /// Log pages written by maintenance forces.
    maint_log_pages_written,
    /// Log forces issued by maintenance (checkpoint records, WAL ordering).
    maint_log_forces,
    /// Log pages read back by maintenance (WPL reclaim re-reads).
    maint_log_pages_read,

    // -- per-transaction adaptive scheme election (§6g) --------------------
    /// Elections whose winner differed from the previous transaction's.
    scheme_switches,
    /// Transactions that elected (or were pinned to) each record format.
    /// Zero-dirty commits elect nothing and count toward none of these.
    txns_pd,
    txns_sd,
    txns_wpl,
    txns_rlog,
}

impl Meter {
    pub fn new() -> Arc<Meter> {
        Arc::new(Meter::default())
    }

    /// Zero every counter.
    pub fn reset(&self) {
        for c in self.all() {
            c.store(0, ORD);
        }
    }

    // Convenience mutators used throughout the engine. ---------------------

    #[inline]
    pub fn client_cpu(&self, instr: u64) {
        self.client_instr.fetch_add(instr, ORD);
    }

    #[inline]
    pub fn server_cpu(&self, instr: u64) {
        self.server_instr.fetch_add(instr, ORD);
    }

    /// One network message carrying `bytes` of payload.
    #[inline]
    pub fn net(&self, bytes: u64) {
        self.net_msgs.fetch_add(1, ORD);
        self.net_bytes.fetch_add(bytes, ORD);
    }

    #[inline]
    pub fn add(&self, field: impl Fn(&Meter) -> &AtomicU64, n: u64) {
        field(self).fetch_add(n, ORD);
    }
}

impl MeterSnapshot {
    /// Total client-CPU instructions implied by the events in this window.
    /// This is where every per-operation budget of the hardware model is
    /// applied — the engine only counts events.
    pub fn client_cpu_instr(&self, hw: &crate::cost::HardwareModel) -> u64 {
        self.client_instr
            + (self.read_faults + self.write_faults) * hw.fault_overhead_instr
            + hw.copy_instr(self.bytes_copied)
            + hw.diff_instr(self.bytes_diffed)
            + self.log_records_generated * hw.log_record_instr
            + self.update_fn_calls * hw.update_fn_instr
            + self.updates * hw.raw_update_instr
            + self.visits * hw.visit_instr
            + (self.page_requests
                + self.dirty_pages_shipped
                + self.log_record_pages_shipped
                + self.commits)
                * hw.ship_page_instr
            + self.client_evictions * hw.pool_instr
    }

    /// Total server-CPU instructions implied by the events in this window.
    pub fn server_cpu_instr(&self, hw: &crate::cost::HardwareModel) -> u64 {
        self.server_instr
            + (self.page_requests + self.dirty_pages_shipped + self.log_record_pages_shipped)
                * hw.server_page_instr
            + self.log_records_generated * hw.server_log_append_instr
            + self.redo_applies * hw.redo_apply_instr
            + self.locks_acquired * hw.lock_instr
            + self.server_pool_misses * hw.pool_instr
            + self.commits * hw.lock_instr
    }

    /// Per-transaction average of each service-center demand, priced by the
    /// hardware model. `txns` must be the number of transactions the window
    /// covers.
    pub fn per_txn_demand(&self, hw: &crate::cost::HardwareModel, txns: u64) -> Demand {
        assert!(txns > 0, "demand window must contain transactions");
        let t = txns as f64;
        Demand {
            client_cpu_s: hw.client_cpu_secs(self.client_cpu_instr(hw)) / t,
            server_cpu_s: hw.server_cpu_secs(self.server_cpu_instr(hw)) / t,
            network_s: hw.network_secs(self.net_msgs, self.net_bytes) / t,
            data_disk_s: hw.data_disk_secs(self.data_reads + self.data_writes) / t,
            log_disk_s: hw.log_disk_secs(
                self.log_pages_written,
                self.log_pages_read,
                self.log_forces,
            ) / t,
        }
    }
}

/// Per-transaction service demand at each center, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Demand {
    /// Client workstation CPU (dedicated per client → MVA delay center).
    pub client_cpu_s: f64,
    /// Server CPU (shared queueing center).
    pub server_cpu_s: f64,
    /// Shared Ethernet (queueing center).
    pub network_s: f64,
    /// Server data disk (queueing center).
    pub data_disk_s: f64,
    /// Server log disk (queueing center).
    pub log_disk_s: f64,
}

impl Demand {
    /// Total single-client service time (no queueing): the 1-client response
    /// time predicted by the model.
    pub fn total(&self) -> f64 {
        self.client_cpu_s + self.server_cpu_s + self.network_s + self.data_disk_s + self.log_disk_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::HardwareModel;

    #[test]
    fn meter_counts_and_resets() {
        let m = Meter::new();
        m.client_cpu(1000);
        m.net(8192);
        m.net(100);
        m.data_reads.fetch_add(3, ORD);
        let s = m.snapshot();
        assert_eq!(s.client_instr, 1000);
        assert_eq!(s.net_msgs, 2);
        assert_eq!(s.net_bytes, 8292);
        assert_eq!(s.data_reads, 3);
        m.reset();
        assert_eq!(m.snapshot(), MeterSnapshot::default());
    }

    #[test]
    fn reset_zeroes_every_snapshot_field() {
        // Bump every counter through the same macro-generated list that
        // reset() iterates, then check the full round trip: every snapshot
        // field is nonzero, and reset() restores the all-zero default.
        let m = Meter::new();
        for (i, c) in m.all().iter().enumerate() {
            c.fetch_add(i as u64 + 1, ORD);
        }
        let s = m.snapshot();
        let diff = s.since(&MeterSnapshot::default());
        assert_eq!(diff, s, "since() must cover every field");
        for (i, c) in m.all().iter().enumerate() {
            assert_eq!(c.load(ORD), i as u64 + 1, "field {i} missed by snapshot round trip");
        }
        assert_ne!(s, MeterSnapshot::default());
        m.reset();
        assert_eq!(m.snapshot(), MeterSnapshot::default(), "reset must zero every field");
    }

    #[test]
    fn field_count_matches_declaration() {
        let m = Meter::new();
        assert_eq!(m.all().len(), Meter::FIELD_COUNT);
        assert_eq!(Meter::FIELD_COUNT, 37);
    }

    #[test]
    fn snapshot_since_subtracts() {
        let m = Meter::new();
        m.client_cpu(100);
        let a = m.snapshot();
        m.client_cpu(50);
        m.server_cpu(7);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.client_instr, 50);
        assert_eq!(d.server_instr, 7);
    }

    #[test]
    fn per_txn_demand_divides() {
        let m = Meter::new();
        let hw = HardwareModel::paper_1995();
        m.client_cpu(20_000_000); // 1 second at 20 MIPS
        let d = m.snapshot().per_txn_demand(&hw, 2);
        assert!((d.client_cpu_s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn demand_total_sums() {
        let d = Demand {
            client_cpu_s: 1.0,
            server_cpu_s: 2.0,
            network_s: 3.0,
            data_disk_s: 4.0,
            log_disk_s: 5.0,
        };
        assert!((d.total() - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "demand window")]
    fn zero_txn_window_panics() {
        let m = Meter::new();
        let hw = HardwareModel::paper_1995();
        let _ = m.snapshot().per_txn_demand(&hw, 0);
    }
}
