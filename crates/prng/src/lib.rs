//! Seedable, dependency-free pseudo-random numbers for the QuickStore
//! reproduction.
//!
//! Two classic generators, both tiny and well studied:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. Used to stretch a
//!   single `u64` seed into the 256-bit state of the main generator (and as
//!   a fine standalone generator for quick derived streams).
//! * [`Prng`] — Blackman & Vigna's **xoshiro256\*\*** — the workhorse:
//!   `gen_range`, Bernoulli draws, byte fills, and Fisher–Yates
//!   [`Prng::shuffle`].
//!
//! Determinism is the whole point: the OO7 database must be regenerated
//! bit-identically across the paper's recovery schemes, and the randomized
//! test suites must replay exactly under a fixed seed. Nothing here reads
//! the clock, the OS entropy pool, or any global state.

/// SplitMix64: a 64-bit state, one multiply-xorshift round per draw.
///
/// Primarily the seeding function for [`Prng`]; every distinct `u64` seed
/// produces a distinct, well-mixed 256-bit xoshiro state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: 256 bits of state, period 2^256 − 1, passes BigCrush.
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Seed via SplitMix64, as the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Prng {
        let mut sm = SplitMix64::new(seed);
        Prng { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (no modulo bias). `bound` must be non-zero.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        // Rejection zone: draws below `threshold` would be biased.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `range` (half-open). Panics on an empty range,
    /// matching `rand::Rng::gen_range`.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + self.gen_below((range.end - range.start) as u64) as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // Compare against p scaled into the full u64 range; the 2^-64
        // granularity is far below anything the workloads distinguish.
        (self.next_u64() as f64) < p * (u64::MAX as f64)
    }

    /// Fill `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A vector of `n` pseudo-random bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.fill_bytes(&mut v);
        v
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// An independent generator derived from this one (for per-module or
    /// per-case streams that must not interleave with the parent's draws).
    pub fn fork(&mut self) -> Prng {
        Prng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First three outputs for seed 0, from Vigna's reference C code —
        // pins the algorithm so a silent change breaks loudly.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = Prng::seed_from_u64(1995);
        let mut b = Prng::seed_from_u64(1995);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = Prng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values drawn in 1000 tries");
    }

    #[test]
    fn gen_below_unbiased_enough() {
        // Chi-square-ish sanity: 60k draws over 6 buckets, each within 5%.
        let mut rng = Prng::seed_from_u64(42);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            counts[rng.gen_below(6) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Prng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut v: Vec<u32> = (0..100).collect();
        Prng::seed_from_u64(5).shuffle(&mut v);
        let mut w: Vec<u32> = (0..100).collect();
        Prng::seed_from_u64(5).shuffle(&mut w);
        assert_eq!(v, w, "same seed, same permutation");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements virtually never shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Prng::seed_from_u64(3);
        let b = rng.bytes(13);
        assert_eq!(b.len(), 13);
        assert!(b.iter().any(|&x| x != 0));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Prng::seed_from_u64(8);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
