//! Randomized tests for the region-combining diff algorithm: patch
//! round-trip, coverage, and log-byte minimality against brute force.
//!
//! Formerly a proptest suite; now driven by `qs-prng` under fixed seeds so
//! the exact same cases replay on every run, with no external crates.

use qs_prng::Prng;
use qs_types::{LOG_HEADER_SIZE, PAGE_SIZE};
use quickstore::diff::{
    append_modified_runs, brute_force_min_log_bytes, combine_regions, diff_object, log_bytes,
    raw_modified_runs, raw_modified_runs_scalar, Region,
};

/// An object up to 512 bytes plus a set of point mutations.
fn object_pair(rng: &mut Prng) -> (Vec<u8>, Vec<u8>) {
    let len = rng.gen_range(1..512);
    let before = rng.bytes(len);
    let mut after = before.clone();
    for _ in 0..rng.gen_range(0..40) {
        let i = rng.gen_range(0..len);
        after[i] = (rng.next_u32() & 0xFF) as u8;
    }
    (before, after)
}

#[test]
fn patch_round_trip() {
    // Applying the after-images of the diff regions to the before-image
    // must reproduce the after-image (this is what redo does), and
    // applying before-images to the after-image must reproduce the
    // before-image (undo).
    let mut rng = Prng::seed_from_u64(0x5EED_D1FF_0001);
    for case in 0..256 {
        let (before, after) = object_pair(&mut rng);
        let regions = diff_object(&before, &after);
        let mut redo = before.clone();
        for r in &regions {
            redo[r.start..r.end].copy_from_slice(&after[r.start..r.end]);
        }
        assert_eq!(&redo, &after, "case {case}");
        let mut undo = after.clone();
        for r in &regions {
            undo[r.start..r.end].copy_from_slice(&before[r.start..r.end]);
        }
        assert_eq!(&undo, &before, "case {case}");
    }
}

#[test]
fn all_differences_covered() {
    let mut rng = Prng::seed_from_u64(0x5EED_D1FF_0002);
    for case in 0..256 {
        let (before, after) = object_pair(&mut rng);
        let regions = diff_object(&before, &after);
        for i in 0..before.len() {
            if before[i] != after[i] {
                assert!(
                    regions.iter().any(|r| r.start <= i && i < r.end),
                    "case {case}: differing byte {i} not covered"
                );
            }
        }
    }
}

#[test]
fn greedy_is_minimal() {
    let mut rng = Prng::seed_from_u64(0x5EED_D1FF_0003);
    let mut checked = 0;
    for case in 0..512 {
        let (before, after) = object_pair(&mut rng);
        let runs = raw_modified_runs(&before, &after);
        if runs.len() > 16 {
            continue; // brute force is exponential
        }
        checked += 1;
        let greedy = combine_regions(&runs, LOG_HEADER_SIZE);
        assert_eq!(
            log_bytes(&greedy, LOG_HEADER_SIZE),
            brute_force_min_log_bytes(&runs, LOG_HEADER_SIZE),
            "case {case}"
        );
    }
    assert!(checked >= 128, "only {checked} cases were brute-force comparable");
}

/// Run the word-parallel kernel against the scalar oracle on one pair of
/// equally-sized slices and demand identical maximal runs.
fn assert_kernel_matches(before: &[u8], after: &[u8], ctx: &str) {
    let expect = raw_modified_runs_scalar(before, after);
    // Exercise non-zero bases too: the kernel must just translate.
    for base in [0usize, 7, 4096] {
        let mut got: Vec<Region> = Vec::new();
        append_modified_runs(before, after, base, &mut got);
        let shifted: Vec<Region> =
            expect.iter().map(|r| Region { start: r.start + base, end: r.end + base }).collect();
        assert_eq!(got, shifted, "{ctx}, base {base}");
    }
}

#[test]
fn kernel_matches_scalar_on_random_pages() {
    // Random lengths spanning 0..=PAGE_SIZE at every slice alignment 0..8,
    // with mutation densities from "untouched" to "rewritten".
    let mut rng = Prng::seed_from_u64(0x5EED_D1FF_0005);
    for case in 0..400 {
        let len = rng.gen_range(0..PAGE_SIZE + 1);
        let align = rng.gen_range(0..8);
        let backing_before = rng.bytes(len + align);
        let mut backing_after = backing_before.clone();
        let flips = match case % 4 {
            0 => 0,
            1 => rng.gen_range(0..8),
            2 => rng.gen_range(0..len.max(1)),
            _ => len, // rewrite everything (some bytes may land equal)
        };
        for _ in 0..flips {
            if len == 0 {
                break;
            }
            let i = align + rng.gen_range(0..len);
            backing_after[i] = (rng.next_u32() & 0xFF) as u8;
        }
        assert_kernel_matches(
            &backing_before[align..],
            &backing_after[align..],
            &format!("case {case} len {len} align {align}"),
        );
    }
}

#[test]
fn kernel_matches_scalar_adversarial() {
    // Deterministic worst cases aimed at the word-boundary logic.
    let mut rng = Prng::seed_from_u64(0x5EED_D1FF_0006);
    for &len in &[0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 255, 256, PAGE_SIZE] {
        for align in 0..8 {
            let backing = rng.bytes(len + align);
            let before = &backing[align..];

            // All bytes equal: must produce no runs.
            assert_kernel_matches(before, before, &format!("all-equal len {len} align {align}"));

            // Every byte differs: one maximal run covering the slice.
            let mut inv = backing.clone();
            for b in &mut inv[align..] {
                *b = !*b;
            }
            assert_kernel_matches(
                before,
                &inv[align..],
                &format!("all-diff len {len} align {align}"),
            );

            // Single-byte flips at and around every u64 word boundary.
            for word in 0..=(len / 8) {
                for delta in [0isize, -1, 1] {
                    let Some(i) = (word * 8).checked_add_signed(delta) else { continue };
                    if i >= len {
                        continue;
                    }
                    let mut one = backing.clone();
                    one[align + i] ^= 0x80;
                    assert_kernel_matches(
                        before,
                        &one[align..],
                        &format!("flip {i} len {len} align {align}"),
                    );
                }
            }

            // Runs straddling the unaligned head and tail: modify a window
            // crossing the first and last word boundaries.
            if len > 12 {
                for (s, e) in [(0usize, 12usize), (len - 12, len), (5, len - 5)] {
                    let mut w = backing.clone();
                    for b in &mut w[align + s..align + e] {
                        *b ^= 0xFF;
                    }
                    assert_kernel_matches(
                        before,
                        &w[align..],
                        &format!("window {s}..{e} len {len} align {align}"),
                    );
                }
            }
        }
    }
}

#[test]
fn kernel_matches_scalar_sparse_word_patterns() {
    // Alternating equal/unequal bytes inside single words defeat bulk-skip
    // shortcuts; sweep a handful of fixed masks across a full page.
    for mask in [0xAAu8, 0x11, 0x01, 0x80, 0xFF] {
        let before = vec![0u8; PAGE_SIZE];
        let mut after = before.clone();
        for (i, b) in after.iter_mut().enumerate() {
            if mask & (1 << (i % 8)) != 0 {
                *b = 1;
            }
        }
        assert_kernel_matches(&before, &after, &format!("mask {mask:#x}"));
    }
}

#[test]
fn regions_sorted_and_disjoint() {
    let mut rng = Prng::seed_from_u64(0x5EED_D1FF_0004);
    for case in 0..256 {
        let (before, after) = object_pair(&mut rng);
        let regions = diff_object(&before, &after);
        for w in regions.windows(2) {
            assert!(w[0].end < w[1].start, "case {case}: regions must be disjoint with a gap");
        }
        for r in &regions {
            assert!(!r.is_empty(), "case {case}");
        }
    }
}
