//! Property tests for the region-combining diff algorithm: patch
//! round-trip, coverage, and log-byte minimality against brute force.

use proptest::prelude::*;
use quickstore::diff::{
    brute_force_min_log_bytes, combine_regions, diff_object, log_bytes, raw_modified_runs,
};
use qs_types::LOG_HEADER_SIZE;

fn object_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    // An object up to 512 bytes plus a set of mutations.
    (1usize..512)
        .prop_flat_map(|len| {
            (
                proptest::collection::vec(any::<u8>(), len),
                proptest::collection::vec((0..len, any::<u8>()), 0..40),
            )
        })
        .prop_map(|(before, muts)| {
            let mut after = before.clone();
            for (i, v) in muts {
                after[i] = v;
            }
            (before, after)
        })
}

proptest! {
    #[test]
    fn patch_round_trip((before, after) in object_pair()) {
        // Applying the after-images of the diff regions to the before-image
        // must reproduce the after-image (this is what redo does), and
        // applying before-images to the after-image must reproduce the
        // before-image (undo).
        let regions = diff_object(&before, &after);
        let mut redo = before.clone();
        for r in &regions {
            redo[r.start..r.end].copy_from_slice(&after[r.start..r.end]);
        }
        prop_assert_eq!(&redo, &after);
        let mut undo = after.clone();
        for r in &regions {
            undo[r.start..r.end].copy_from_slice(&before[r.start..r.end]);
        }
        prop_assert_eq!(&undo, &before);
    }

    #[test]
    fn all_differences_covered((before, after) in object_pair()) {
        let regions = diff_object(&before, &after);
        for i in 0..before.len() {
            if before[i] != after[i] {
                prop_assert!(
                    regions.iter().any(|r| r.start <= i && i < r.end),
                    "differing byte {} not covered", i
                );
            }
        }
    }

    #[test]
    fn greedy_is_minimal((before, after) in object_pair()) {
        let runs = raw_modified_runs(&before, &after);
        prop_assume!(runs.len() <= 16); // brute force is exponential
        let greedy = combine_regions(&runs, LOG_HEADER_SIZE);
        prop_assert_eq!(
            log_bytes(&greedy, LOG_HEADER_SIZE),
            brute_force_min_log_bytes(&runs, LOG_HEADER_SIZE)
        );
    }

    #[test]
    fn regions_sorted_and_disjoint((before, after) in object_pair()) {
        let regions = diff_object(&before, &after);
        for w in regions.windows(2) {
            prop_assert!(w[0].end < w[1].start, "regions must be disjoint with a gap");
        }
        for r in &regions {
            prop_assert!(!r.is_empty());
        }
    }
}
