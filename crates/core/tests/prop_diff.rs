//! Randomized tests for the region-combining diff algorithm: patch
//! round-trip, coverage, and log-byte minimality against brute force.
//!
//! Formerly a proptest suite; now driven by `qs-prng` under fixed seeds so
//! the exact same cases replay on every run, with no external crates.

use qs_prng::Prng;
use qs_types::LOG_HEADER_SIZE;
use quickstore::diff::{
    brute_force_min_log_bytes, combine_regions, diff_object, log_bytes, raw_modified_runs,
};

/// An object up to 512 bytes plus a set of point mutations.
fn object_pair(rng: &mut Prng) -> (Vec<u8>, Vec<u8>) {
    let len = rng.gen_range(1..512);
    let before = rng.bytes(len);
    let mut after = before.clone();
    for _ in 0..rng.gen_range(0..40) {
        let i = rng.gen_range(0..len);
        after[i] = (rng.next_u32() & 0xFF) as u8;
    }
    (before, after)
}

#[test]
fn patch_round_trip() {
    // Applying the after-images of the diff regions to the before-image
    // must reproduce the after-image (this is what redo does), and
    // applying before-images to the after-image must reproduce the
    // before-image (undo).
    let mut rng = Prng::seed_from_u64(0x5EED_D1FF_0001);
    for case in 0..256 {
        let (before, after) = object_pair(&mut rng);
        let regions = diff_object(&before, &after);
        let mut redo = before.clone();
        for r in &regions {
            redo[r.start..r.end].copy_from_slice(&after[r.start..r.end]);
        }
        assert_eq!(&redo, &after, "case {case}");
        let mut undo = after.clone();
        for r in &regions {
            undo[r.start..r.end].copy_from_slice(&before[r.start..r.end]);
        }
        assert_eq!(&undo, &before, "case {case}");
    }
}

#[test]
fn all_differences_covered() {
    let mut rng = Prng::seed_from_u64(0x5EED_D1FF_0002);
    for case in 0..256 {
        let (before, after) = object_pair(&mut rng);
        let regions = diff_object(&before, &after);
        for i in 0..before.len() {
            if before[i] != after[i] {
                assert!(
                    regions.iter().any(|r| r.start <= i && i < r.end),
                    "case {case}: differing byte {i} not covered"
                );
            }
        }
    }
}

#[test]
fn greedy_is_minimal() {
    let mut rng = Prng::seed_from_u64(0x5EED_D1FF_0003);
    let mut checked = 0;
    for case in 0..512 {
        let (before, after) = object_pair(&mut rng);
        let runs = raw_modified_runs(&before, &after);
        if runs.len() > 16 {
            continue; // brute force is exponential
        }
        checked += 1;
        let greedy = combine_regions(&runs, LOG_HEADER_SIZE);
        assert_eq!(
            log_bytes(&greedy, LOG_HEADER_SIZE),
            brute_force_min_log_bytes(&runs, LOG_HEADER_SIZE),
            "case {case}"
        );
    }
    assert!(checked >= 128, "only {checked} cases were brute-force comparable");
}

#[test]
fn regions_sorted_and_disjoint() {
    let mut rng = Prng::seed_from_u64(0x5EED_D1FF_0004);
    for case in 0..256 {
        let (before, after) = object_pair(&mut rng);
        let regions = diff_object(&before, &after);
        for w in regions.windows(2) {
            assert!(w[0].end < w[1].start, "case {case}: regions must be disjoint with a gap");
        }
        for r in &regions {
            assert!(!r.is_empty(), "case {case}");
        }
    }
}
