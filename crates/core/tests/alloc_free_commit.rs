//! Proves the acceptance criterion "zero heap allocations per update
//! record on the steady-state commit path" with a counting global
//! allocator: after one warmup pass sizes the scratch buffers, the
//! diff → combine → RecordWriter pipeline must not allocate at all.
//!
//! This file holds exactly one test so no sibling test thread can
//! pollute the process-wide allocation counter mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use qs_types::{Lsn, PageId, TxnId, LOG_HEADER_SIZE, PAGE_SIZE};
use qs_wal::RecordWriter;
use quickstore::diff::{append_modified_runs, combine_regions_into, Region};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One commit's worth of work: diff the page, combine runs under the
/// header threshold, and serialize one update record per region into
/// the shared batch buffer. Mirrors `store::flush_records_for`.
fn commit_pass(
    before: &[u8; PAGE_SIZE],
    after: &[u8; PAGE_SIZE],
    runs: &mut Vec<Region>,
    regions: &mut Vec<Region>,
    enc: &mut Vec<u8>,
) -> usize {
    runs.clear();
    regions.clear();
    enc.clear();
    append_modified_runs(before, after, 0, runs);
    combine_regions_into(runs, LOG_HEADER_SIZE, regions);
    let mut w = RecordWriter::new(enc);
    for r in regions.iter() {
        w.update(
            TxnId(7),
            Lsn::NULL,
            PageId(3),
            0,
            r.start as u16,
            &before[r.start..r.end],
            &after[r.start..r.end],
        );
    }
    w.records()
}

#[test]
fn steady_state_commit_path_is_allocation_free() {
    let before = [0u8; PAGE_SIZE];
    let mut after = before;
    // Four 8-byte writes separated by >LOG_HEADER_SIZE/2-byte gaps, so the
    // combine rule keeps them as four distinct update records.
    for base in [0usize, 40, 80, 120] {
        for b in &mut after[base..base + 8] {
            *b = 0xA5;
        }
    }

    let mut runs = Vec::new();
    let mut regions = Vec::new();
    let mut enc = Vec::new();

    // Warmup: grows the scratch vectors to their high-water mark.
    let records = commit_pass(&before, &after, &mut runs, &mut regions, &mut enc);
    assert_eq!(records, 4, "gaps >25 bytes must stay separate records");

    // Measured phase: no allocator traffic at all, regardless of how many
    // records are produced per pass. The counter is process-wide and the
    // libtest harness thread occasionally allocates (timers, output), so
    // retry a few times: a genuine regression allocates on *every* pass
    // (1000+ counts) and fails all attempts; harness noise (a handful of
    // counts) vanishes on a retry.
    let mut allocs = usize::MAX;
    for _ in 0..5 {
        let start = ALLOC_CALLS.load(Ordering::SeqCst);
        let mut total_records = 0usize;
        for _ in 0..1_000 {
            total_records += commit_pass(&before, &after, &mut runs, &mut regions, &mut enc);
        }
        allocs = ALLOC_CALLS.load(Ordering::SeqCst) - start;
        assert_eq!(total_records, 4_000);
        if allocs == 0 {
            break;
        }
    }
    assert_eq!(allocs, 0, "steady-state commit path allocated {allocs} times over 1000 passes");
}
