//! End-to-end behaviour of the QuickStore store under every recovery
//! scheme: the same workload must produce the same durable database, and
//! each scheme must exhibit its distinguishing protocol traffic.

use qs_esm::{ClientConn, RecoveryFlavor, Server, ServerConfig};
use qs_sim::Meter;
use qs_storage::Page;
use qs_types::{ClientId, Oid, PageId};
use quickstore::{Store, SystemConfig};
use std::sync::Arc;

fn server_cfg(flavor: RecoveryFlavor) -> ServerConfig {
    ServerConfig::new(flavor).with_pool_mb(1.0).with_volume_pages(512).with_log_mb(16.0)
}

/// Build a store over a freshly bulk-loaded database of `pages` pages, each
/// holding `objs_per_page` objects of `obj_size` bytes, all zeroed.
fn setup(
    cfg: SystemConfig,
    pages: usize,
    objs_per_page: usize,
    obj_size: usize,
) -> (Store, Vec<Oid>) {
    let meter = Meter::new();
    let server = Arc::new(Server::format(server_cfg(cfg.flavor), Arc::clone(&meter)).unwrap());
    let pids = server.bulk_allocate(pages).unwrap();
    let mut oids = Vec::new();
    for &pid in &pids {
        let mut p = Page::new();
        for _ in 0..objs_per_page {
            let slot = p.insert(pid, &vec![0u8; obj_size]).unwrap();
            oids.push(Oid::new(pid, slot));
        }
        server.bulk_write(pid, &p).unwrap();
    }
    server.bulk_sync().unwrap();
    let client = ClientConn::new(ClientId(0), server, cfg.client_pool_pages(), meter);
    (Store::new(client, cfg).unwrap(), oids)
}

fn all_configs() -> Vec<SystemConfig> {
    vec![
        SystemConfig::pd_esm().with_memory(1.0, 0.25),
        SystemConfig::sd_esm().with_memory(1.0, 0.25),
        SystemConfig::sl_esm().with_memory(1.0, 0.25),
        SystemConfig::pd_redo().with_memory(1.0, 0.25),
        SystemConfig::wpl().with_memory(1.0, 0.25),
    ]
}

#[test]
fn read_after_write_within_txn() {
    for cfg in all_configs() {
        let name = cfg.name();
        let (mut store, oids) = setup(cfg, 4, 8, 64);
        store.begin().unwrap();
        store.modify(oids[3], 8, &[7u8; 16]).unwrap();
        let back = store.read(oids[3]).unwrap();
        assert_eq!(&back[8..24], &[7u8; 16], "{name}");
        assert_eq!(&back[0..8], &[0u8; 8], "{name}");
        store.commit().unwrap();
    }
}

#[test]
fn committed_updates_visible_next_txn_and_after_crash() {
    for cfg in all_configs() {
        let name = cfg.name();
        let flavor = cfg.flavor;
        let (mut store, oids) = setup(cfg, 8, 4, 128);
        store.begin().unwrap();
        for (i, &oid) in oids.iter().enumerate().take(16) {
            store.modify(oid, 0, &[(i + 1) as u8; 32]).unwrap();
        }
        store.commit().unwrap();

        // Visible in a fresh transaction from the same client cache.
        store.begin().unwrap();
        for (i, &oid) in oids.iter().enumerate().take(16) {
            assert_eq!(store.read(oid).unwrap()[..32], [(i + 1) as u8; 32], "{name}");
        }
        store.commit().unwrap();

        // And after a full server crash + restart.
        let (client_part, oids2) = (store, oids);
        let server = Arc::try_unwrap(Arc::clone(client_part.client().server())).err().unwrap();
        drop(client_part); // release the other Arc
        let server = Arc::try_unwrap(server).ok().expect("sole owner now");
        let parts = server.crash();
        let s2 = Server::restart(parts, server_cfg(flavor), Meter::new()).unwrap();
        for (i, &oid) in oids2.iter().enumerate().take(16) {
            let page = s2.read_page_for_test(oid.page).unwrap();
            assert_eq!(
                page.object(oid.page, oid.slot).unwrap()[..32],
                [(i + 1) as u8; 32],
                "{name} after crash"
            );
        }
    }
}

#[test]
fn aborted_updates_invisible() {
    for cfg in all_configs() {
        let name = cfg.name();
        let (mut store, oids) = setup(cfg, 4, 4, 64);
        store.begin().unwrap();
        store.modify(oids[0], 0, &[9u8; 64]).unwrap();
        store.abort().unwrap();
        store.begin().unwrap();
        assert_eq!(store.read(oids[0]).unwrap(), vec![0u8; 64], "{name}");
        store.commit().unwrap();
    }
}

#[test]
fn scheme_traffic_signatures() {
    // One transaction updating 4 bytes on each of 3 pages.
    let run = |cfg: SystemConfig| {
        let (mut store, oids) = setup(cfg, 4, 4, 64);
        store.begin().unwrap();
        for &oid in &[oids[0], oids[4], oids[8]] {
            store.modify(oid, 0, &[1u8; 4]).unwrap();
        }
        store.commit().unwrap();
        store.meter().snapshot()
    };

    let pd = run(SystemConfig::pd_esm().with_memory(1.0, 0.25));
    assert_eq!(pd.dirty_pages_shipped, 3);
    assert_eq!(pd.log_records_generated, 3, "one combined record per page");
    assert_eq!(pd.write_faults, 3);
    assert_eq!(pd.update_fn_calls, 0);
    assert_eq!(pd.bytes_copied, 3 * 8192, "whole pages copied");

    let sd = run(SystemConfig::sd_esm().with_memory(1.0, 0.25));
    assert_eq!(sd.dirty_pages_shipped, 3);
    assert_eq!(sd.log_records_generated, 3);
    assert_eq!(sd.write_faults, 0, "software detection");
    assert_eq!(sd.update_fn_calls, 3);
    assert_eq!(sd.bytes_copied, 3 * 64, "only touched blocks copied");

    let sl = run(SystemConfig::sl_esm().with_memory(1.0, 0.25));
    assert_eq!(sl.bytes_diffed, 0, "SL never diffs");
    // SL logs whole 64-byte blocks: more image bytes than SD's 4-byte diffs.
    assert!(
        sl.log_image_bytes > sd.log_image_bytes,
        "{} vs {}",
        sl.log_image_bytes,
        sd.log_image_bytes
    );

    let redo = run(SystemConfig::pd_redo().with_memory(1.0, 0.25));
    assert_eq!(redo.dirty_pages_shipped, 0, "REDO ships no pages");
    assert_eq!(redo.redo_applies, 3, "server applied each record");

    let wpl = run(SystemConfig::wpl().with_memory(1.0, 0.25));
    assert_eq!(wpl.dirty_pages_shipped, 3);
    assert_eq!(wpl.log_records_generated, 0, "WPL: no client records");
    assert_eq!(wpl.bytes_copied, 0, "WPL: no recovery copies");
    assert!(wpl.log_pages_written >= 3, "whole pages hit the log disk");
}

#[test]
fn repeated_updates_produce_single_record_under_diffing() {
    // T2C's lesson: updating the same word many times must cost one log
    // record under PD/SD (the before/after pair spans the net change).
    let (mut store, oids) = setup(SystemConfig::pd_esm().with_memory(1.0, 0.25), 2, 4, 64);
    store.begin().unwrap();
    for round in 1..=4u8 {
        store.modify(oids[0], 0, &[round; 4]).unwrap();
    }
    store.commit().unwrap();
    let s = store.meter().snapshot();
    assert_eq!(s.updates, 4);
    assert_eq!(s.log_records_generated, 1, "batched into one diff record");
}

#[test]
fn raw_write_rejected_under_software_schemes() {
    let (mut store, oids) = setup(SystemConfig::sd_esm().with_memory(1.0, 0.25), 2, 4, 64);
    store.begin().unwrap();
    let err = store.write(oids[0], 0, &[1u8; 4]).unwrap_err();
    assert!(err.to_string().contains("Store::update"), "{err}");
    // update() works and the store remains usable.
    store.update(oids[0], 0, &[1u8; 4]).unwrap();
    store.commit().unwrap();
}

#[test]
fn update_rejected_under_hardware_schemes() {
    let (mut store, oids) = setup(SystemConfig::pd_esm().with_memory(1.0, 0.25), 2, 4, 64);
    store.begin().unwrap();
    assert!(store.update(oids[0], 0, &[1u8; 4]).is_err());
    store.write(oids[0], 0, &[1u8; 4]).unwrap();
    store.commit().unwrap();
}

#[test]
fn recovery_buffer_overflow_generates_early_records() {
    // Recovery buffer of 2 pages; update 5 pages → overflow forces early
    // log-record generation, exactly the constrained-cache effect.
    let mut cfg = SystemConfig::pd_esm();
    cfg.client_memory_mb = 1.0;
    cfg.recovery_buffer_mb = 2.0 * 8192.0 / (1024.0 * 1024.0); // 2 pages
    let (mut store, oids) = setup(cfg, 8, 4, 64);
    store.begin().unwrap();
    for page in 0..5 {
        store.write(oids[page * 4], 0, &[3u8; 8]).unwrap();
    }
    assert!(store.recovery_buffer_overflows() > 0);
    let before_commit = store.meter().snapshot().log_records_generated;
    assert!(before_commit >= 3, "records generated before commit: {before_commit}");
    store.commit().unwrap();
    // All 5 pages' updates are durable regardless.
    store.begin().unwrap();
    for page in 0..5 {
        assert_eq!(store.read(oids[page * 4]).unwrap()[..8], [3u8; 8]);
    }
    store.commit().unwrap();
}

#[test]
fn overflowed_page_can_be_updated_again() {
    // After an early flush the page's protection drops; a second update
    // must fault again, take a fresh copy, and produce a second record.
    let mut cfg = SystemConfig::pd_esm();
    cfg.client_memory_mb = 1.0;
    cfg.recovery_buffer_mb = 8192.0 / (1024.0 * 1024.0); // 1 page
    let (mut store, oids) = setup(cfg, 4, 4, 64);
    store.begin().unwrap();
    store.write(oids[0], 0, &[1u8; 4]).unwrap(); // page A copied
    store.write(oids[4], 0, &[2u8; 4]).unwrap(); // page B → A flushed early
    store.write(oids[0], 4, &[3u8; 4]).unwrap(); // page A again → B flushed
    store.commit().unwrap();
    store.begin().unwrap();
    let a = store.read(oids[0]).unwrap();
    assert_eq!(&a[0..4], &[1u8; 4]);
    assert_eq!(&a[4..8], &[3u8; 4]);
    assert_eq!(store.read(oids[4]).unwrap()[..4], [2u8; 4]);
    store.commit().unwrap();
    assert!(store.meter().snapshot().write_faults >= 3);
}

#[test]
fn client_paging_ships_pages_mid_transaction() {
    // Client pool of 4 pages, working set of 8: paging must generate log
    // records and ship dirty pages before eviction completes.
    let mut cfg = SystemConfig::pd_esm();
    cfg.client_memory_mb = (4.0 * 8192.0 + 2.0 * 8192.0) / (1024.0 * 1024.0);
    cfg.recovery_buffer_mb = 2.0 * 8192.0 / (1024.0 * 1024.0);
    let (mut store, oids) = setup(cfg, 8, 4, 64);
    store.begin().unwrap();
    for page in 0..8 {
        store.write(oids[page * 4], 0, &[(page + 1) as u8; 8]).unwrap();
    }
    store.commit().unwrap();
    let s = store.meter().snapshot();
    assert!(s.client_evictions > 0, "paging occurred");
    assert_eq!(s.dirty_pages_shipped, 8, "every dirty page reached the server");
    store.begin().unwrap();
    for page in 0..8 {
        assert_eq!(store.read(oids[page * 4]).unwrap()[..8], [(page + 1) as u8; 8]);
    }
    store.commit().unwrap();
}

#[test]
fn out_of_range_access_errors_instead_of_panicking() {
    // read_at/write with offset+len past the object end — including the
    // usize-overflow corner — must come back as QsError, never a panic.
    let (mut store, oids) = setup(SystemConfig::pd_esm().with_memory(1.0, 0.25), 2, 4, 64);
    store.begin().unwrap();

    assert!(store.read_at(oids[0], 0, 65).is_err(), "len past end");
    assert!(store.read_at(oids[0], 64, 1).is_err(), "offset at end");
    assert!(store.read_at(oids[0], 1000, 0).is_err(), "offset past end");
    assert!(store.read_at(oids[0], usize::MAX, 2).is_err(), "offset+len overflows");
    assert!(store.read_at(oids[0], 2, usize::MAX).is_err(), "len overflows");
    assert!(store.write(oids[0], 60, &[0u8; 8]).is_err(), "write past end");
    assert!(store.write(oids[0], usize::MAX, &[0u8; 8]).is_err(), "write overflow");

    // In-range accesses still work and the store stays usable.
    assert_eq!(store.read_at(oids[0], 60, 4).unwrap(), vec![0u8; 4]);
    store.write(oids[0], 0, &[5u8; 4]).unwrap();
    store.commit().unwrap();

    // Same contract under a software-update scheme.
    let (mut store, oids) = setup(SystemConfig::sd_esm().with_memory(1.0, 0.25), 2, 4, 64);
    store.begin().unwrap();
    assert!(store.update(oids[0], usize::MAX, &[1u8; 4]).is_err());
    assert!(store.update(oids[0], 61, &[1u8; 4]).is_err());
    store.update(oids[0], 0, &[1u8; 4]).unwrap();
    store.commit().unwrap();
}

#[test]
fn allocation_within_transaction_is_durable() {
    for cfg in all_configs() {
        let name = cfg.name();
        let (mut store, _) = setup(cfg, 2, 1, 32);
        store.begin().unwrap();
        let oid = store.allocate(b"created mid-transaction").unwrap();
        store.commit().unwrap();
        store.begin().unwrap();
        assert_eq!(store.read(oid).unwrap(), b"created mid-transaction", "{name}");
        store.commit().unwrap();
    }
}

#[test]
fn all_schemes_leave_identical_databases() {
    // The cross-scheme equivalence check: one deterministic workload, five
    // schemes, five quiesced servers — identical page images everywhere.
    let workload = |store: &mut Store, oids: &[Oid]| {
        for round in 0..3u8 {
            store.begin().unwrap();
            for (i, &oid) in oids.iter().enumerate() {
                if (i + round as usize).is_multiple_of(3) {
                    store.modify(oid, (i % 4) * 8, &[round * 37 + i as u8; 8]).unwrap();
                }
            }
            store.commit().unwrap();
        }
    };
    let mut images: Vec<(String, Vec<Vec<u8>>)> = Vec::new();
    for cfg in all_configs() {
        let name = cfg.name();
        let (mut store, oids) = setup(cfg, 6, 4, 64);
        workload(&mut store, &oids);
        let server = store.client().server().clone();
        server.quiesce().unwrap();
        let pages: Vec<Vec<u8>> = (0..6)
            .map(|i| server.read_page_for_test(PageId(i)).unwrap().bytes().to_vec())
            .collect();
        images.push((name, pages));
    }
    let (ref_name, ref_pages) = &images[0];
    for (name, pages) in &images[1..] {
        for (i, (a, b)) in ref_pages.iter().zip(pages).enumerate() {
            // Compare object contents (skip the pageLSN header word, which
            // legitimately differs by scheme).
            assert_eq!(a[16..], b[16..], "page {i}: {ref_name} vs {name}");
        }
    }
}
