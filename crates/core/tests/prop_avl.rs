//! Model-based property test: the AVL map must behave exactly like
//! `BTreeMap` under arbitrary insert/remove/get sequences, while staying
//! height-balanced.

use proptest::prelude::*;
use quickstore::avl::AvlMap;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Floor(u16),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 256, v)),
            any::<u16>().prop_map(|k| Op::Remove(k % 256)),
            any::<u16>().prop_map(|k| Op::Get(k % 256)),
            any::<u16>().prop_map(|k| Op::Floor(k % 256)),
        ],
        0..400,
    )
}

proptest! {
    #[test]
    fn behaves_like_btreemap(ops in ops()) {
        let mut avl: AvlMap<u16, u32> = AvlMap::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(avl.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(avl.remove(&k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(avl.get(&k), model.get(&k));
                }
                Op::Floor(k) => {
                    let want = model.range(..=k).next_back();
                    prop_assert_eq!(avl.floor(&k), want);
                }
            }
            prop_assert_eq!(avl.len(), model.len());
        }
        // Height must be logarithmic: 1.44·log2(n+2) + 1 generous bound.
        let n = avl.len().max(1) as f64;
        prop_assert!((avl.height() as f64) <= 1.45 * (n + 2.0).log2() + 1.0);
        let got: Vec<_> = avl.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<_> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }
}
