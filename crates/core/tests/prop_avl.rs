//! Model-based randomized test: the AVL map must behave exactly like
//! `BTreeMap` under arbitrary insert/remove/get sequences, while staying
//! height-balanced.
//!
//! Formerly a proptest suite; now driven by `qs-prng` under fixed seeds so
//! the exact same cases replay on every run, with no external crates.

use qs_prng::Prng;
use quickstore::avl::AvlMap;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Floor(u16),
}

fn random_ops(rng: &mut Prng) -> Vec<Op> {
    let n = rng.gen_range(0..400);
    (0..n)
        .map(|_| match rng.gen_range(0..4) {
            0 => Op::Insert((rng.next_u32() % 256) as u16, rng.next_u32()),
            1 => Op::Remove((rng.next_u32() % 256) as u16),
            2 => Op::Get((rng.next_u32() % 256) as u16),
            _ => Op::Floor((rng.next_u32() % 256) as u16),
        })
        .collect()
}

fn check_case(ops: Vec<Op>, case: usize) {
    let mut avl: AvlMap<u16, u32> = AvlMap::new();
    let mut model: BTreeMap<u16, u32> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                assert_eq!(avl.insert(k, v), model.insert(k, v), "case {case}");
            }
            Op::Remove(k) => {
                assert_eq!(avl.remove(&k), model.remove(&k), "case {case}");
            }
            Op::Get(k) => {
                assert_eq!(avl.get(&k), model.get(&k), "case {case}");
            }
            Op::Floor(k) => {
                let want = model.range(..=k).next_back();
                assert_eq!(avl.floor(&k), want, "case {case}");
            }
        }
        assert_eq!(avl.len(), model.len(), "case {case}");
    }
    // Height must be logarithmic: 1.44·log2(n+2) + 1 generous bound.
    let n = avl.len().max(1) as f64;
    assert!(
        (avl.height() as f64) <= 1.45 * (n + 2.0).log2() + 1.0,
        "case {case}: height {} for {} keys",
        avl.height(),
        avl.len()
    );
    let got: Vec<_> = avl.iter().map(|(k, v)| (*k, *v)).collect();
    let want: Vec<_> = model.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(got, want, "case {case}");
}

#[test]
fn behaves_like_btreemap() {
    let mut rng = Prng::seed_from_u64(0x5EED_0A71);
    for case in 0..256 {
        check_case(random_ops(&mut rng), case);
    }
}
