//! Software-version configuration (paper Table 3).
//!
//! A QuickStore "software version" is a pair: how log records are generated
//! at the client (the recovery *scheme*: PD / SD / SL / nothing-under-WPL)
//! and which underlying server strategy processes them (ESM's ARIES scheme,
//! redo-at-server, or whole-page logging). Names follow the paper:
//! `PD-ESM`, `SD-ESM`, `SL-ESM`, `PD-REDO`, `WPL` — with the recovery-buffer
//! size appended when relevant, e.g. `PD-ESM-4` (4 MB) and `PD-ESM-1/2`
//! (0.5 MB).

use qs_esm::RecoveryFlavor;
use qs_types::{QsError, QsResult, PAGE_SIZE};

/// How updates are detected and log records generated at the client (§3.2–3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogGeneration {
    /// Page differencing: write-protection faults copy the whole page into
    /// the recovery buffer; log records come from diffing at commit /
    /// eviction / overflow (§3.2).
    PageDiff,
    /// Sub-page differencing: a software update function copies `block`-byte
    /// blocks on first touch; blocks are diffed (§3.3).
    SubPageDiff { block: usize },
    /// Sub-page logging: blocks are copied like SD but logged whole, no
    /// diffing (§3.3.2).
    SubPageLog { block: usize },
    /// Whole-page logging: no client log records at all; dirty pages are
    /// logged in their entirety at the server (§3.4).
    WholePage,
}

impl LogGeneration {
    /// Does this scheme intercept updates in software (function call per
    /// update) rather than via virtual-memory hardware?
    pub fn software_updates(self) -> bool {
        matches!(self, LogGeneration::SubPageDiff { .. } | LogGeneration::SubPageLog { .. })
    }

    pub fn block_size(self) -> Option<usize> {
        match self {
            LogGeneration::SubPageDiff { block } | LogGeneration::SubPageLog { block } => {
                Some(block)
            }
            _ => None,
        }
    }

    fn prefix(self) -> &'static str {
        match self {
            LogGeneration::PageDiff => "PD",
            LogGeneration::SubPageDiff { .. } => "SD",
            LogGeneration::SubPageLog { .. } => "SL",
            LogGeneration::WholePage => "WPL",
        }
    }
}

/// A complete QuickStore software version plus client memory split.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    pub log_gen: LogGeneration,
    pub flavor: RecoveryFlavor,
    /// Total client memory for caching persistent data, MB (12 or 8 in the
    /// paper's experiments).
    pub client_memory_mb: f64,
    /// Portion of client memory set aside for the recovery buffer, MB
    /// (0 under WPL — one of WPL's selling points, §3.4).
    pub recovery_buffer_mb: f64,
    /// Append the recovery-buffer size to the name (the paper does this in
    /// the big-database experiments where the split matters).
    pub name_buffer_suffix: bool,
    /// Per-transaction adaptive scheme election (§6g): at each commit the
    /// client prices its write set under PD / SD / WPL / RLOG and emits that
    /// transaction's records in the cheapest format. Requires the
    /// [`RecoveryFlavor::Adaptive`] server flavor; off everywhere else, so
    /// all the fixed-scheme figures are untouched.
    pub adaptive_scheme: bool,
}

impl SystemConfig {
    /// Paper default block size for the sub-page schemes ("the sub-page
    /// diffing (SD) versions shown in the performance section use a block
    /// size of 64 bytes").
    pub const DEFAULT_BLOCK: usize = 64;

    pub fn pd_esm() -> SystemConfig {
        Self::build(LogGeneration::PageDiff, RecoveryFlavor::EsmAries)
    }

    pub fn sd_esm() -> SystemConfig {
        Self::build(
            LogGeneration::SubPageDiff { block: Self::DEFAULT_BLOCK },
            RecoveryFlavor::EsmAries,
        )
    }

    pub fn sl_esm() -> SystemConfig {
        Self::build(
            LogGeneration::SubPageLog { block: Self::DEFAULT_BLOCK },
            RecoveryFlavor::EsmAries,
        )
    }

    pub fn pd_redo() -> SystemConfig {
        Self::build(LogGeneration::PageDiff, RecoveryFlavor::RedoAtServer)
    }

    /// Page differencing over the REDO-only logical flavor (the
    /// post-paper contender: no-steal, logical records, no undo phase).
    pub fn pd_rlog() -> SystemConfig {
        Self::build(LogGeneration::PageDiff, RecoveryFlavor::RedoLogical)
    }

    pub fn wpl() -> SystemConfig {
        SystemConfig {
            log_gen: LogGeneration::WholePage,
            flavor: RecoveryFlavor::Wpl,
            client_memory_mb: 12.0,
            recovery_buffer_mb: 0.0,
            name_buffer_suffix: false,
            adaptive_scheme: false,
        }
    }

    /// Per-transaction adaptive logging (ADAPT): page-diffing update capture
    /// (so full before-images are available and every scheme's records can
    /// be priced exactly) over the adaptive server flavor. Deliberately not
    /// part of [`SystemConfig::all_schemes`]: ADAPT is a meta-scheme whose
    /// figures live in `BENCH_adaptive.json`, not in the Table 3 sweeps.
    pub fn adaptive() -> SystemConfig {
        let mut cfg = Self::build(LogGeneration::PageDiff, RecoveryFlavor::Adaptive);
        cfg.adaptive_scheme = true;
        cfg
    }

    /// The canonical software-version list: paper Table 3 order with the
    /// post-paper PD-RLOG contender inserted before WPL, each paired with
    /// its one-line description. The figure drivers, the trace/restart
    /// benches, and the cross-scheme equivalence tests all iterate this
    /// one list, so a scheme added here gets figure, bench, and test
    /// coverage automatically.
    pub fn all_schemes() -> Vec<(SystemConfig, &'static str)> {
        vec![
            (Self::pd_esm(), "page diffing, ESM recovery"),
            (Self::sd_esm(), "sub-page diffing, ESM recovery"),
            (Self::sl_esm(), "sub-page logging (no diffing), ESM recovery"),
            (Self::pd_redo(), "page diffing, REDO recovery"),
            (Self::pd_rlog(), "page diffing, REDO-only logical recovery (no-steal)"),
            (Self::wpl(), "whole page logging"),
        ]
    }

    /// Look up a scheme by its Table 3 name (`"PD-ESM"`, …, `"WPL"`).
    pub fn by_name(name: &str) -> Option<SystemConfig> {
        Self::all_schemes().into_iter().map(|(c, _)| c).find(|c| c.name() == name)
    }

    fn build(log_gen: LogGeneration, flavor: RecoveryFlavor) -> SystemConfig {
        SystemConfig {
            log_gen,
            flavor,
            client_memory_mb: 12.0,
            recovery_buffer_mb: 4.0,
            name_buffer_suffix: false,
            adaptive_scheme: false,
        }
    }

    /// The unconstrained-cache split of §5.1: 12 MB total, 8 + 4 for the
    /// diffing schemes.
    pub fn with_memory(mut self, total_mb: f64, recovery_mb: f64) -> SystemConfig {
        self.client_memory_mb = total_mb;
        self.recovery_buffer_mb =
            if self.log_gen == LogGeneration::WholePage { 0.0 } else { recovery_mb };
        self
    }

    pub fn with_buffer_suffix(mut self) -> SystemConfig {
        self.name_buffer_suffix = true;
        self
    }

    /// Validate scheme/flavor compatibility.
    pub fn validate(&self) -> QsResult<()> {
        if self.adaptive_scheme != (self.flavor == RecoveryFlavor::Adaptive) {
            return Err(QsError::Config {
                detail: format!(
                    "adaptive_scheme={} requires the adaptive server flavor (got {:?})",
                    self.adaptive_scheme, self.flavor
                ),
            });
        }
        if self.adaptive_scheme && self.log_gen != LogGeneration::PageDiff {
            return Err(QsError::Config {
                detail: format!(
                    "adaptive election needs page-diff capture (full before-images \
                     price every candidate scheme); got {:?}",
                    self.log_gen
                ),
            });
        }
        let whole = self.log_gen == LogGeneration::WholePage;
        let wpl = self.flavor == RecoveryFlavor::Wpl;
        if whole != wpl {
            return Err(QsError::Config {
                detail: format!(
                    "log generation {:?} incompatible with server flavor {:?}",
                    self.log_gen, self.flavor
                ),
            });
        }
        if let Some(b) = self.log_gen.block_size() {
            if !(8..=PAGE_SIZE).contains(&b) || !b.is_power_of_two() {
                return Err(QsError::Config {
                    detail: format!("block size {b} must be a power of two in [8, {PAGE_SIZE}]"),
                });
            }
        }
        if self.recovery_buffer_mb < 0.0
            || self.recovery_buffer_mb >= self.client_memory_mb
            || (!whole && self.recovery_buffer_mb == 0.0)
        {
            return Err(QsError::Config {
                detail: format!(
                    "memory split {} MB total / {} MB recovery buffer is invalid",
                    self.client_memory_mb, self.recovery_buffer_mb
                ),
            });
        }
        Ok(())
    }

    /// Client buffer pool size in pages (total memory minus recovery buffer).
    pub fn client_pool_pages(&self) -> usize {
        qs_types::mb_to_pages(self.client_memory_mb - self.recovery_buffer_mb).max(1)
    }

    /// Recovery buffer capacity in bytes (0 under WPL).
    pub fn recovery_buffer_bytes(&self) -> usize {
        (self.recovery_buffer_mb * 1024.0 * 1024.0) as usize
    }

    /// The paper's Table 3 name for this version.
    pub fn name(&self) -> String {
        if self.log_gen == LogGeneration::WholePage {
            return "WPL".to_string();
        }
        if self.adaptive_scheme {
            return "ADAPT".to_string();
        }
        let base = format!("{}-{}", self.log_gen.prefix(), self.flavor.name());
        if !self.name_buffer_suffix {
            return base;
        }
        let rb = self.recovery_buffer_mb;
        if (rb - 0.5).abs() < 1e-9 {
            format!("{base}-1/2")
        } else if (rb.fract()).abs() < 1e-9 {
            format!("{base}-{}", rb as u64)
        } else {
            format!("{base}-{rb}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_names() {
        assert_eq!(SystemConfig::pd_esm().name(), "PD-ESM");
        assert_eq!(SystemConfig::sd_esm().name(), "SD-ESM");
        assert_eq!(SystemConfig::sl_esm().name(), "SL-ESM");
        assert_eq!(SystemConfig::pd_redo().name(), "PD-REDO");
        assert_eq!(SystemConfig::pd_rlog().name(), "PD-RLOG");
        assert_eq!(SystemConfig::wpl().name(), "WPL");
    }

    #[test]
    fn shared_scheme_list_is_valid_and_named() {
        let schemes = SystemConfig::all_schemes();
        assert_eq!(schemes.len(), 6);
        for (cfg, desc) in &schemes {
            cfg.validate().unwrap();
            assert!(!desc.is_empty());
            let found = SystemConfig::by_name(&cfg.name()).expect("round-trips by name");
            assert_eq!(found.name(), cfg.name());
        }
        assert!(SystemConfig::by_name("PD-NOPE").is_none());
    }

    #[test]
    fn buffer_suffix_names() {
        let c = SystemConfig::pd_redo().with_memory(12.0, 4.0).with_buffer_suffix();
        assert_eq!(c.name(), "PD-REDO-4");
        let c = SystemConfig::pd_esm().with_memory(12.0, 0.5).with_buffer_suffix();
        assert_eq!(c.name(), "PD-ESM-1/2");
    }

    #[test]
    fn memory_split_pages() {
        // §5.1: 12 MB total, 8 MB pool + 4 MB recovery buffer.
        let c = SystemConfig::pd_esm().with_memory(12.0, 4.0);
        assert_eq!(c.client_pool_pages(), 1024);
        assert_eq!(c.recovery_buffer_bytes(), 4 * 1024 * 1024);
        // WPL devotes everything to the pool (§3.4's advantage).
        let w = SystemConfig::wpl().with_memory(12.0, 4.0);
        assert_eq!(w.client_pool_pages(), 1536);
        assert_eq!(w.recovery_buffer_bytes(), 0);
    }

    #[test]
    fn validation_catches_mismatches() {
        let mut c = SystemConfig::pd_esm();
        c.validate().unwrap();
        c.flavor = RecoveryFlavor::Wpl;
        assert!(c.validate().is_err());
        let mut w = SystemConfig::wpl();
        w.validate().unwrap();
        w.flavor = RecoveryFlavor::EsmAries;
        assert!(w.validate().is_err());
        let mut s = SystemConfig::sd_esm();
        s.log_gen = LogGeneration::SubPageDiff { block: 48 };
        assert!(s.validate().is_err(), "non power-of-two block");
        let bad = SystemConfig::pd_esm().with_memory(4.0, 4.0);
        assert!(bad.validate().is_err(), "no room for the pool");
    }

    #[test]
    fn adaptive_config() {
        let a = SystemConfig::adaptive();
        a.validate().unwrap();
        assert_eq!(a.name(), "ADAPT");
        assert_eq!(a.flavor, RecoveryFlavor::Adaptive);
        assert_eq!(a.log_gen, LogGeneration::PageDiff);
        // A meta-scheme: not part of the Table 3 sweep list.
        assert!(SystemConfig::by_name("ADAPT").is_none());

        // The knob and the flavor must agree...
        let mut bad = SystemConfig::adaptive();
        bad.flavor = RecoveryFlavor::EsmAries;
        assert!(bad.validate().is_err());
        let mut bad = SystemConfig::pd_esm();
        bad.flavor = RecoveryFlavor::Adaptive;
        assert!(bad.validate().is_err());
        // ...and election needs full before-images (page-diff capture).
        let mut bad = SystemConfig::adaptive();
        bad.log_gen = LogGeneration::SubPageDiff { block: 64 };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn software_updates_flag() {
        assert!(!SystemConfig::pd_esm().log_gen.software_updates());
        assert!(SystemConfig::sd_esm().log_gen.software_updates());
        assert!(SystemConfig::sl_esm().log_gen.software_updates());
        assert!(!SystemConfig::wpl().log_gen.software_updates());
        assert_eq!(SystemConfig::sd_esm().log_gen.block_size(), Some(64));
    }
}
