//! The QuickStore store: the application-facing API tying together the
//! software MMU, the page-descriptor table, the recovery buffer, the diff
//! algorithm, and the ESM client.
//!
//! An application reads persistent objects "by dereferencing standard
//! virtual memory pointers": here [`Store::read`] / [`Store::read_at`]
//! check the access against the MMU and, on a fault, run the QuickStore
//! fault handler (fetch + map on a mapping fault; enable recovery on a
//! write-protection fault — §3.2.1's sequence: descriptor search in the
//! AVL table, page copy into the recovery buffer, exclusive lock, enable
//! write access).
//!
//! Updates take one of two routes, matching the paper's two detection
//! strategies:
//!
//! * [`Store::write`] — the hardware route (PD / WPL / REDO): a raw store
//!   through the frame; the first one per page write-faults.
//! * [`Store::update`] — the software route (SD / SL): a call into the
//!   runtime that copies the touched blocks before writing (§3.3.1). Under
//!   these schemes raw [`Store::write`]s to unmodified pages stay
//!   protected, catching stray writes — the paper keeps this property
//!   deliberately, and so do we.
//!
//! [`Store::modify`] dispatches to the right route for the configured
//! scheme, letting one traversal implementation drive every system.

use crate::adaptive::{AdaptiveScheme, WriteSetCosts};
use crate::config::{LogGeneration, SystemConfig};
use crate::descriptor::DescriptorTable;
use crate::diff;
use crate::recovery_buffer::{Copied, RecoveryBuffer};
use qs_esm::{ClientConn, RecoveryFlavor};
use qs_sim::Meter;
use qs_storage::Page;
use qs_trace::{TraceCat, Tracer};
use qs_types::{
    FrameId, Lsn, Oid, PageId, QsError, QsResult, TxnId, VAddr, LOG_HEADER_SIZE, PAGE_SIZE,
};
use qs_vmem::{AccessFault, Mmu, Prot};
use qs_wal::{RecordWriter, SchemeCode};
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Reused buffers for the commit hot path (DESIGN.md "commit hot path"):
/// once grown to their high-water marks, log-record generation performs no
/// heap allocation.
#[derive(Default)]
struct CommitScratch {
    /// Raw modified runs of the object currently being diffed.
    runs: Vec<diff::Region>,
    /// Combined log regions of the object currently being diffed.
    regions: Vec<diff::Region>,
    /// Copied block ranges of the page being flushed (sub-page schemes).
    ranges: Vec<(usize, usize)>,
    /// Encoded log records for the page being flushed.
    enc: Vec<u8>,
    /// Reusable page snapshot: `flush_records_for` needs the page content
    /// while the client connection is mutably borrowed, so commit and
    /// overflow copy into this instead of cloning the cached page.
    snapshot: Option<Box<Page>>,
}

/// Diff regions computed by the adaptive pricing pass, kept for the
/// emission pass of the *same* event (commit, eviction, rbuf overflow).
/// No user write can land between the two passes — both run inside one
/// `Store` call — so the regions stay exact and the adaptive transaction
/// diffs each page once, not twice. Cleared (and `valid` dropped) at the
/// end of every event that could have filled it.
#[derive(Default)]
struct PricedDiffs {
    /// `(slot, region)` pairs in `live_objects` order, pages concatenated.
    flat: Vec<(u16, diff::Region)>,
    /// Per-page slices into `flat`.
    pages: Vec<(PageId, usize, usize)>,
    /// True only between a pricing pass and the end of its event.
    valid: bool,
}

impl PricedDiffs {
    fn clear(&mut self) {
        self.flat.clear();
        self.pages.clear();
        self.valid = false;
    }

    /// The `flat` range priced for `pid`, if this event priced it.
    fn lookup(&self, pid: PageId) -> Option<(usize, usize)> {
        if !self.valid {
            return None;
        }
        self.pages.iter().find(|e| e.0 == pid).map(|e| (e.1, e.2))
    }
}

/// A QuickStore client store.
pub struct Store {
    cfg: SystemConfig,
    client: ClientConn,
    mmu: Mmu,
    table: DescriptorTable,
    rbuf: RecoveryBuffer,
    /// Pages created by the current transaction (flushed as whole-page
    /// images, the way ESM logs new pages).
    created: HashSet<PageId>,
    /// Allocation cursor: the created page new objects go to.
    alloc_cursor: Option<PageId>,
    scratch: CommitScratch,
    /// The per-transaction scheme elector (only when
    /// `cfg.adaptive_scheme`; see DESIGN.md §6g).
    elector: Option<AdaptiveScheme>,
    /// Regions from the elector's pricing pass, reused by record emission
    /// within the same event (empty and inert under the fixed schemes).
    priced: PricedDiffs,
}

impl Store {
    /// Wrap an ESM client connection in a QuickStore runtime.
    pub fn new(client: ClientConn, cfg: SystemConfig) -> QsResult<Store> {
        cfg.validate()?;
        if client.flavor() != cfg.flavor {
            return Err(QsError::Config {
                detail: format!(
                    "store configured for {:?} but server runs {:?}",
                    cfg.flavor,
                    client.flavor()
                ),
            });
        }
        let rbuf = RecoveryBuffer::new(cfg.recovery_buffer_bytes());
        // Fault dispatch traces through the same tracer as the rest of the
        // stack (the client shares the server's).
        let mut mmu = Mmu::new();
        mmu.set_tracer(Arc::clone(client.tracer()));
        let elector = if cfg.adaptive_scheme { Some(AdaptiveScheme::new()) } else { None };
        Ok(Store {
            cfg,
            client,
            mmu,
            table: DescriptorTable::new(),
            rbuf,
            created: HashSet::new(),
            alloc_cursor: None,
            scratch: CommitScratch::default(),
            elector,
            priced: PricedDiffs::default(),
        })
    }

    /// Snapshot a cached page into the reusable scratch page and run
    /// `flush_records_for` against it (the page content must outlive a
    /// mutable borrow of the client connection).
    fn flush_records_for_cached(&mut self, pid: PageId) -> QsResult<()> {
        if self.cfg.log_gen == LogGeneration::WholePage {
            return Ok(()); // no client log records, ever — skip the snapshot
        }
        let mut snap = self.scratch.snapshot.take().unwrap_or_else(|| Box::new(Page::new()));
        match self.client.peek(pid) {
            Some(page) => snap.bytes_mut().copy_from_slice(page.bytes()),
            None => {
                self.scratch.snapshot = Some(snap);
                return Err(QsError::Protocol {
                    detail: format!("recovery copy of {pid} outlived its cached page"),
                });
            }
        }
        let res = self.flush_records_for(pid, &snap);
        self.scratch.snapshot = Some(snap);
        res
    }

    pub fn tracer(&self) -> &Arc<Tracer> {
        self.client.tracer()
    }

    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    pub fn meter(&self) -> &Arc<Meter> {
        self.client.meter()
    }

    pub fn client(&self) -> &ClientConn {
        &self.client
    }

    /// The recovery buffer's overflow count (Figure 14's driver).
    pub fn recovery_buffer_overflows(&self) -> u64 {
        self.rbuf.overflows()
    }

    /// The per-transaction scheme elector (`None` unless the store runs
    /// with `adaptive_scheme`).
    pub fn elector(&self) -> Option<&AdaptiveScheme> {
        self.elector.as_ref()
    }

    /// Mutable elector access — benches and tests use it to pin the
    /// election (`force`) or tune the cost-model weights.
    pub fn elector_mut(&mut self) -> Option<&mut AdaptiveScheme> {
        self.elector.as_mut()
    }

    // ---------------------------------------------------------------------
    // Adaptive scheme election (DESIGN.md §6g)
    // ---------------------------------------------------------------------

    /// Elect this transaction's logging scheme if the store is adaptive and
    /// no election has happened yet. Called at every record-generation
    /// event — commit, client eviction, recovery-buffer overflow — so the
    /// `TxnScheme` record always precedes the transaction's first
    /// page-bearing record; the election then sticks for the transaction.
    ///
    /// `pages` is the write set visible at the event (the sorted dirty-page
    /// list at commit; the still-cached dirty pages mid-transaction), and
    /// `extra` an already-evicted page whose content no longer sits in the
    /// pool. A write set that prices to nothing (clean rewrites, created
    /// pages only) elects no scheme: no records of any format would differ.
    fn ensure_elected(&mut self, pages: &[PageId], extra: Option<(PageId, &Page)>) -> QsResult<()> {
        let Some(elector) = &self.elector else { return Ok(()) };
        if self.client.elected_scheme().is_some() {
            return Ok(());
        }
        let block = elector.block;
        let mut costs = WriteSetCosts::default();
        self.priced.clear();
        if let Some((pid, page)) = extra {
            self.price_page(&mut costs, pid, page, block);
        }
        for &pid in pages {
            if self.created.contains(&pid) || Some(pid) == extra.map(|(p, _)| p) {
                continue; // created pages cost the same under every scheme
            }
            let Some(page) = self.client.peek(pid) else { continue };
            price_page_parts(
                &self.rbuf,
                &mut self.scratch,
                &mut self.priced,
                &mut costs,
                pid,
                page,
                block,
            );
        }
        // The pricing pass is THE diff for this event: emission reuses its
        // regions (`PricedDiffs`), so electing costs no second comparison.
        self.priced.valid = true;
        self.meter().bytes_diffed.fetch_add(costs.bytes_diffed, Ordering::Relaxed);
        if costs.is_empty() {
            return Ok(());
        }
        let pressure = self.client.last_pressure();
        let elector = self.elector.as_mut().expect("checked above");
        let switches_before = elector.switches();
        let scheme = elector.elect(&costs, pressure);
        let switched = elector.switches() > switches_before;
        let m = self.meter();
        match scheme {
            SchemeCode::Pd => &m.txns_pd,
            SchemeCode::Sd => &m.txns_sd,
            SchemeCode::Wpl => &m.txns_wpl,
            SchemeCode::Rlog => &m.txns_rlog,
        }
        .fetch_add(1, Ordering::Relaxed);
        if switched {
            m.scheme_switches.fetch_add(1, Ordering::Relaxed);
        }
        self.tracer().event(TraceCat::Commit, "elect", scheme as u64, costs.pages);
        self.client.elect_scheme(scheme)
    }

    /// Price one page whose content lives outside the pool (`ensure_elected`'s
    /// `extra`: the just-evicted frame).
    fn price_page(&mut self, costs: &mut WriteSetCosts, pid: PageId, page: &Page, block: usize) {
        if !self.created.contains(&pid) {
            price_page_parts(
                &self.rbuf,
                &mut self.scratch,
                &mut self.priced,
                costs,
                pid,
                page,
                block,
            );
        }
    }

    // ---------------------------------------------------------------------
    // Transactions
    // ---------------------------------------------------------------------

    pub fn begin(&mut self) -> QsResult<TxnId> {
        self.client.begin()
    }

    /// Commit: generate log records for every dirty page (§3.2.2: "At
    /// transaction commit time … the old values of objects contained in the
    /// recovery buffer and their corresponding updated values in the buffer
    /// pool are compared"), ship dirty pages per the flavor's protocol, and
    /// finish at the server. Afterwards pages stay cached but protection
    /// drops back to read-only — locks are gone, so the next update must
    /// re-enable recovery.
    pub fn commit(&mut self) -> QsResult<()> {
        let tracer = Arc::clone(self.client.tracer());
        let t0 = tracer.now_secs();
        let mut dirty = self.client.dirty_pages();
        dirty.sort(); // deterministic shipping order
        self.ensure_elected(&dirty, None)?;
        let diff_t0 = tracer.now_secs();
        for &pid in &dirty {
            self.flush_records_for_cached(pid)?;
        }
        tracer.record_secs("commit_diff", tracer.now_secs() - diff_t0);
        for &pid in &dirty {
            self.client.ship_cached_dirty_page(pid)?;
        }
        self.client.finish_commit()?;
        self.end_txn_reset()?;
        tracer.record("pages_shipped_per_txn", dirty.len() as u64);
        tracer.record_secs("commit_latency", tracer.now_secs() - t0);
        tracer.event(TraceCat::Commit, "committed", dirty.len() as u64, 0);
        Ok(())
    }

    /// Abort: discard local dirty state and roll back at the server.
    pub fn abort(&mut self) -> QsResult<()> {
        // Dirty pages are dropped by the client; unmap their frames.
        for pid in self.client.dirty_pages() {
            if let Some(d) = self.table.get(pid) {
                self.mmu.protect(d.frame, Prot::None)?;
            }
        }
        self.client.abort()?;
        self.end_txn_reset()?;
        Ok(())
    }

    fn end_txn_reset(&mut self) -> QsResult<()> {
        // Commit drains the recovery buffer page by page; abort simply
        // discards the before-images (the server rolls back).
        self.priced.clear();
        self.rbuf.clear();
        self.created.clear();
        self.alloc_cursor = None;
        let mut to_reprotect = Vec::new();
        for d in self.table.iter_mut() {
            d.end_txn();
            to_reprotect.push((d.page, d.frame));
        }
        for (_pid, frame) in to_reprotect {
            // Every frame drops to no-access: with locks released, the
            // next transaction's first touch of each page must fault so it
            // can re-acquire a lock (cached pages, uncached locks).
            self.mmu.protect(frame, Prot::None)?;
        }
        Ok(())
    }

    /// Re-divide client memory between the buffer pool and the recovery
    /// buffer (the paper's §7 future-work extension; see
    /// [`crate::adaptive::AdaptiveSplit`]). Only legal between
    /// transactions, when the recovery buffer is empty and every cached
    /// page is clean; shrink-evicted pages are simply unmapped.
    pub fn set_memory_split(&mut self, total_mb: f64, recovery_mb: f64) -> QsResult<()> {
        if self.client.in_txn() {
            return Err(QsError::Protocol {
                detail: "memory split can only change between transactions".into(),
            });
        }
        let mut cfg = self.cfg.clone();
        cfg.client_memory_mb = total_mb;
        cfg.recovery_buffer_mb =
            if cfg.log_gen == LogGeneration::WholePage { 0.0 } else { recovery_mb };
        cfg.validate()?;
        debug_assert_eq!(self.rbuf.pages(), 0);
        self.rbuf = RecoveryBuffer::new(cfg.recovery_buffer_bytes());
        for ev in self.client.set_pool_capacity(cfg.client_pool_pages())? {
            debug_assert!(!ev.dirty, "dirty page at a transaction boundary");
            if let Some(d) = self.table.get(ev.page_id) {
                self.mmu.protect(d.frame, Prot::None)?;
            }
        }
        self.cfg = cfg;
        Ok(())
    }

    // ---------------------------------------------------------------------
    // Mapping and the fault handler
    // ---------------------------------------------------------------------

    /// The virtual address of an object's first byte, mapping its page in
    /// if necessary — i.e. what a swizzled pointer to the object holds.
    pub fn resolve(&mut self, oid: Oid) -> QsResult<VAddr> {
        let frame = self.ensure_mapped(oid.page)?;
        let page = self.client.peek(oid.page).expect("just mapped");
        let (off, _len) = page.object_offset(oid.page, oid.slot)?;
        Ok(VAddr::new(frame, off))
    }

    /// Object length (schema lookup in a real system).
    pub fn object_len(&mut self, oid: Oid) -> QsResult<usize> {
        self.ensure_mapped(oid.page)?;
        let page = self.client.peek(oid.page).expect("just mapped");
        Ok(page.object_offset(oid.page, oid.slot)?.1)
    }

    /// Ensure `pid` is resident and mapped; returns its frame. This is the
    /// *mapping fault* path: LRU room is made (evictions run the paging
    /// branch of the recovery machinery), the page is fetched with a shared
    /// lock, and the frame becomes readable.
    fn ensure_mapped(&mut self, pid: PageId) -> QsResult<FrameId> {
        if let Some(d) = self.table.get(pid) {
            let frame = d.frame;
            if self.client.cached(pid) {
                if !d.s_locked {
                    // First touch this transaction: the frame was left
                    // unprotected at the last commit (locks are not cached
                    // across transactions), so the access faults, the page
                    // is S-locked at the server, and the frame becomes
                    // readable again.
                    self.meter().read_faults.fetch_add(1, Ordering::Relaxed);
                    self.client.s_lock(pid)?;
                    self.mmu.protect(frame, Prot::Read)?;
                    self.table.get_mut(pid).expect("descriptor").s_locked = true;
                }
                return Ok(frame);
            }
        }
        // Mapping fault.
        self.meter().read_faults.fetch_add(1, Ordering::Relaxed);
        while let Some(ev) = self.client.ensure_room() {
            self.on_client_eviction(ev)?;
        }
        self.client.fetch_page(pid, qs_esm::LockMode::S)?;
        let frame = match self.table.get(pid) {
            Some(d) => d.frame,
            None => {
                let f = self.mmu.alloc_frame();
                self.table.bind(pid, f);
                f
            }
        };
        self.mmu.protect(frame, Prot::Read)?;
        if let Some(d) = self.table.get_mut(pid) {
            // Residency was lost; recovery state starts over for this page.
            d.recovery_enabled = false;
            d.s_locked = true; // the fetch acquired the lock at the server
        }
        Ok(frame)
    }

    /// A page left the client buffer pool. If dirty, this is the paper's
    /// "when paging in the buffer pool occurs" case: its log records are
    /// generated *now* and the page is shipped (per flavor) before the
    /// frame's protection drops.
    fn on_client_eviction(&mut self, ev: qs_esm::Evicted) -> QsResult<()> {
        let pid = ev.page_id;
        if let Some(d) = self.table.get(pid) {
            self.mmu.protect(d.frame, Prot::None)?;
        }
        if ev.dirty {
            // Mid-transaction record generation: the scheme must be elected
            // now, from the partial write set (this page plus whatever else
            // is already dirty), and sticks for the rest of the transaction.
            let dirty = self.client.dirty_pages();
            self.ensure_elected(&dirty, Some((pid, &ev.page)))?;
            self.flush_records_for(pid, &ev.page)?;
            self.client.ship_dirty_page(pid, ev.page)?;
            if let Some(d) = self.table.get_mut(pid) {
                // Lock stays held (strict 2PL) but recovery must be
                // re-enabled if the page is updated again this transaction.
                d.recovery_enabled = false;
            }
            // Still-cached pages may be written again before they flush:
            // their priced regions are only good for this event.
            self.priced.clear();
        }
        Ok(())
    }

    /// The write-protection fault handler (§3.2.1): find the descriptor in
    /// the AVL table, take the before-image (scheme-dependent), obtain the
    /// exclusive lock if needed, and enable write access on the frame.
    fn write_fault(&mut self, va: VAddr) -> QsResult<()> {
        self.meter().write_faults.fetch_add(1, Ordering::Relaxed);
        let (pid, frame) = {
            let d = self.table.lookup_vaddr(va)?;
            (d.page, d.frame)
        };
        // Exclusive lock, if not already held this transaction.
        if !self.table.get(pid).expect("descriptor").x_locked {
            self.client.x_lock(pid)?;
            let d = self.table.get_mut(pid).expect("descriptor");
            d.x_locked = true;
            d.s_locked = true;
        }
        // Before-image, per scheme.
        match self.cfg.log_gen {
            LogGeneration::PageDiff => {
                let already = self.rbuf.contains(pid) || self.created.contains(&pid);
                if !already {
                    self.make_rbuf_room(PAGE_SIZE)?;
                    self.meter().bytes_copied.fetch_add(PAGE_SIZE as u64, Ordering::Relaxed);
                    self.rbuf.insert_full(
                        pid,
                        self.client.peek(pid).ok_or(QsError::Protocol {
                            detail: format!("write fault on non-resident {pid}"),
                        })?,
                    );
                }
            }
            LogGeneration::WholePage => {
                // No copy: the whole dirty page will be logged at the
                // server. Enabling write access is all the work there is.
            }
            LogGeneration::SubPageDiff { .. } | LogGeneration::SubPageLog { .. } => {
                // The software schemes never enable writes via faults; a
                // raw write through a protected frame is a stray pointer.
                return Err(QsError::ProtectionFault {
                    detail: format!(
                        "raw write at {va} under {}: updates must go through Store::update",
                        self.cfg.name()
                    ),
                });
            }
        }
        self.mmu.protect(frame, Prot::ReadWrite)?;
        self.table.get_mut(pid).expect("descriptor").recovery_enabled = true;
        Ok(())
    }

    /// Free recovery-buffer space by generating log records early for FIFO
    /// victims (the overflow path that hurts PD in the constrained-cache
    /// experiments).
    fn make_rbuf_room(&mut self, need: usize) -> QsResult<()> {
        let victims = self.rbuf.overflow_victims(need);
        if victims.is_empty() {
            return Ok(());
        }
        self.meter().recovery_buffer_overflows.fetch_add(1, Ordering::Relaxed);
        let dirty = self.client.dirty_pages();
        self.ensure_elected(&dirty, None)?;
        for pid in victims {
            self.tracer().event(TraceCat::RbufEvict, "overflow", pid.0 as u64, need as u64);
            self.flush_records_for_cached(pid)?;
            // The page stays dirty and updatable: recovery remains enabled
            // (write access is already on); future updates will be captured
            // by a *fresh* copy on the next fault? No — write access is
            // still enabled, so further updates to this page in this
            // transaction go unrecorded unless we drop protection now.
            if let Some(d) = self.table.get(pid) {
                self.mmu.protect(d.frame, Prot::Read)?;
            }
            if let Some(d) = self.table.get_mut(pid) {
                d.recovery_enabled = false;
            }
        }
        // Surviving pages can still be written this transaction — their
        // priced regions must not outlive the overflow event.
        self.priced.clear();
        Ok(())
    }

    // ---------------------------------------------------------------------
    // Object access
    // ---------------------------------------------------------------------

    fn object_va(&mut self, oid: Oid, offset: usize, len: usize) -> QsResult<(VAddr, usize)> {
        let frame = self.ensure_mapped(oid.page)?;
        let page = self.client.peek(oid.page).expect("mapped");
        let (obj_off, obj_len) = page.object_offset(oid.page, oid.slot)?;
        // checked_add: `offset + len` near usize::MAX must be rejected, not
        // wrap around (release) or abort (debug) before the range check.
        if offset.checked_add(len).is_none_or(|end| end > obj_len) {
            return Err(QsError::Protocol {
                detail: format!(
                    "access [{offset}, {offset}+{len}) past end of {oid:?} ({obj_len} bytes)"
                ),
            });
        }
        Ok((VAddr::new(frame, obj_off + offset), obj_off))
    }

    /// Read `len` bytes of an object at `offset` (a pointer dereference).
    pub fn read_at(&mut self, oid: Oid, offset: usize, len: usize) -> QsResult<Vec<u8>> {
        let (va, _) = self.object_va(oid, offset, len)?;
        loop {
            match self.mmu.check_read(va, len)? {
                Ok(_) => break,
                Err(AccessFault::Unmapped(_)) => {
                    self.ensure_mapped(oid.page)?;
                }
                Err(AccessFault::WriteProtected(_)) => unreachable!("reads never write-fault"),
            }
        }
        let page = self.client.peek(oid.page).expect("mapped");
        let (obj_off, obj_len) = page.object_offset(oid.page, oid.slot)?;
        // Re-validated after the fault loop: never slice out of range.
        if offset.checked_add(len).is_none_or(|end| end > obj_len) {
            return Err(QsError::Protocol {
                detail: format!(
                    "read [{offset}, {offset}+{len}) past end of {oid:?} ({obj_len} bytes)"
                ),
            });
        }
        Ok(page.bytes()[obj_off + offset..obj_off + offset + len].to_vec())
    }

    /// Read a whole object.
    pub fn read(&mut self, oid: Oid) -> QsResult<Vec<u8>> {
        let len = self.object_len(oid)?;
        self.read_at(oid, 0, len)
    }

    /// Raw in-place update through the mapped frame (PD / WPL / REDO): the
    /// first store to a protected page triggers the write fault.
    pub fn write(&mut self, oid: Oid, offset: usize, data: &[u8]) -> QsResult<()> {
        let (va, _) = self.object_va(oid, offset, data.len())?;
        loop {
            match self.mmu.check_write(va, data.len())? {
                Ok(_) => break,
                Err(AccessFault::Unmapped(_)) => {
                    self.ensure_mapped(oid.page)?;
                }
                Err(AccessFault::WriteProtected(_)) => self.write_fault(va)?,
            }
        }
        let page = self
            .client
            .page_mut(oid.page)
            .ok_or(QsError::Protocol { detail: format!("page {} not resident", oid.page) })?;
        let obj = page.object_mut(oid.page, oid.slot)?;
        obj[offset..offset + data.len()].copy_from_slice(data);
        self.client.mark_dirty(oid.page);
        self.meter().updates.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The software update function (SD / SL, §3.3.1): look up the page
    /// descriptor from the address, copy any not-yet-copied blocks the
    /// write touches, take the lock on first touch, then perform the
    /// update. Write access on the frame is *not* enabled — stray raw
    /// writes keep faulting, by design.
    pub fn update(&mut self, oid: Oid, offset: usize, data: &[u8]) -> QsResult<()> {
        let block = self.cfg.log_gen.block_size().ok_or(QsError::Protocol {
            detail: format!("Store::update under {} (hardware scheme)", self.cfg.name()),
        })?;
        let (va, obj_off) = self.object_va(oid, offset, data.len())?;
        self.meter().update_fn_calls.fetch_add(1, Ordering::Relaxed);
        let pid = {
            let d = self.table.lookup_vaddr(va)?;
            d.page
        };
        debug_assert_eq!(pid, oid.page);
        if !self.table.get(pid).expect("descriptor").x_locked {
            self.client.x_lock(pid)?;
            let d = self.table.get_mut(pid).expect("descriptor");
            d.x_locked = true;
            d.s_locked = true;
        }
        // Copy every touched, not-yet-copied block (cheap index arithmetic
        // on the faulting address, as the paper stresses).
        if !self.created.contains(&pid) {
            let start = obj_off + offset;
            let end = start + data.len();
            let first = (start / block) as u16;
            let last = ((end - 1) / block) as u16;
            for idx in first..=last {
                if !self.rbuf.block_copied(pid, idx) {
                    self.make_rbuf_room(block)?;
                    let b0 = idx as usize * block;
                    self.meter().bytes_copied.fetch_add(block as u64, Ordering::Relaxed);
                    self.rbuf.insert_block(
                        pid,
                        block,
                        idx,
                        &self.client.peek(pid).expect("mapped").bytes()[b0..b0 + block],
                    );
                }
            }
        }
        self.table.get_mut(pid).expect("descriptor").recovery_enabled = true;
        let page = self.client.page_mut(pid).expect("mapped");
        let obj = page.object_mut(oid.page, oid.slot)?;
        obj[offset..offset + data.len()].copy_from_slice(data);
        self.client.mark_dirty(pid);
        self.meter().updates.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Dispatch to [`Store::update`] or [`Store::write`] according to the
    /// configured scheme — what the specially-compiled application (or the
    /// paper's hand-inserted calls) would do.
    pub fn modify(&mut self, oid: Oid, offset: usize, data: &[u8]) -> QsResult<()> {
        if self.cfg.log_gen.software_updates() {
            self.update(oid, offset, data)
        } else {
            self.write(oid, offset, data)
        }
    }

    // ---------------------------------------------------------------------
    // Object allocation
    // ---------------------------------------------------------------------

    /// Allocate a new persistent object. New objects go to pages created by
    /// this transaction (flushed as whole-page images at commit).
    pub fn allocate(&mut self, data: &[u8]) -> QsResult<Oid> {
        if let Some(pid) = self.alloc_cursor {
            let fits =
                self.client.peek(pid).map(|p| p.free_space() >= data.len() + 8).unwrap_or(false);
            if fits {
                let page = self.client.page_mut(pid).expect("cursor page resident");
                let slot = page.insert(pid, data)?;
                self.client.mark_dirty(pid);
                self.meter().updates.fetch_add(1, Ordering::Relaxed);
                return Ok(Oid::new(pid, slot));
            }
        }
        // Open a fresh page.
        let pid = self.client.allocate_page()?;
        while let Some(ev) = self.client.ensure_room() {
            self.on_client_eviction(ev)?;
        }
        let mut page = Page::new();
        let slot = page.insert(pid, data)?;
        self.client.install_new_page(pid, page)?;
        let frame = match self.table.get(pid) {
            Some(d) => d.frame,
            None => {
                let f = self.mmu.alloc_frame();
                self.table.bind(pid, f);
                f
            }
        };
        self.mmu.protect(frame, Prot::ReadWrite)?;
        let d = self.table.get_mut(pid).expect("descriptor");
        d.x_locked = true;
        d.s_locked = true;
        d.recovery_enabled = true;
        d.created_this_txn = true;
        self.created.insert(pid);
        self.alloc_cursor = Some(pid);
        self.meter().updates.fetch_add(1, Ordering::Relaxed);
        Ok(Oid::new(pid, slot))
    }

    // ---------------------------------------------------------------------
    // Log-record generation (§3.2.2 / §3.3.2)
    // ---------------------------------------------------------------------

    /// Generate and queue log records describing all captured updates to
    /// `pid`, then release its recovery-buffer space. `current` is the
    /// page's updated content.
    ///
    /// The records are serialized straight into the reused scratch buffer
    /// (`qs_wal::RecordWriter` over borrowed before/after slices) and
    /// handed to the client as encoded bytes — after warm-up, no heap
    /// allocation happens per record.
    fn flush_records_for(&mut self, pid: PageId, current: &Page) -> QsResult<()> {
        if self.cfg.log_gen == LogGeneration::WholePage {
            return Ok(()); // no client log records, ever
        }
        let txn = self.client.txn()?;
        // The elected record format, when this store runs the adaptive
        // scheme; `None` under the fixed schemes (and for the rare adaptive
        // transaction whose write set priced to nothing).
        let elected = if self.cfg.adaptive_scheme { self.client.elected_scheme() } else { None };
        // RLOG ships REDO-only logical records: same slot/offset/after
        // image as a physical update, no before image. An Rlog-elected
        // adaptive transaction emits the identical format.
        let logical =
            self.cfg.flavor == RecoveryFlavor::RedoLogical || elected == Some(SchemeCode::Rlog);
        self.scratch.enc.clear();
        if self.created.contains(&pid) {
            // Newly created page: whole-page image (ESM's own policy).
            let mut w = RecordWriter::new(&mut self.scratch.enc);
            w.whole_page(txn, Lsn::NULL, pid, current.bytes());
            self.client.add_encoded_records(pid, &self.scratch.enc)?;
            self.created.remove(&pid);
            if self.alloc_cursor == Some(pid) {
                self.alloc_cursor = None;
            }
            return Ok(());
        }
        if elected == Some(SchemeCode::Wpl) {
            // WPL election: one whole-page image record carries the page;
            // the captured before-image goes back unused (no diff at all —
            // WPL's CPU advantage survives the page-diff capture).
            if let Some(copied) = self.rbuf.remove(pid) {
                self.rbuf.recycle(copied);
            }
            let mut w = RecordWriter::new(&mut self.scratch.enc);
            w.whole_page(txn, Lsn::NULL, pid, current.bytes());
            return self.client.add_encoded_records(pid, &self.scratch.enc);
        }
        let Some(mut copied) = self.rbuf.remove(pid) else {
            // Dirty with no before-image: nothing was captured, so nothing
            // to log (e.g. WPL-style marking never reaches here). Declare
            // the page logged to satisfy the ordering rule.
            return self.client.note_page_logged(pid);
        };
        let sd_block = self.elector.as_ref().map_or(SystemConfig::DEFAULT_BLOCK, |e| e.block);
        let nrecords = match (&mut copied, self.cfg.log_gen) {
            (Copied::Full(old), _) => {
                // An adaptive pricing pass in this same event already
                // diffed the page; reuse its regions (no write can have
                // landed in between). Otherwise diff now.
                let cached = self.priced.lookup(pid);
                if cached.is_none() {
                    self.meter()
                        .bytes_diffed
                        .fetch_add(current.live_bytes() as u64, Ordering::Relaxed);
                }
                let mut cursor = cached.map(|(s, _)| s);
                let mut w = RecordWriter::new(&mut self.scratch.enc);
                for (slot, off, len) in current.live_objects() {
                    let before = &old[off..off + len];
                    let after = &current.bytes()[off..off + len];
                    match (&mut cursor, cached) {
                        (Some(c), Some((_, end))) => {
                            self.scratch.regions.clear();
                            while *c < end && self.priced.flat[*c].0 == slot {
                                self.scratch.regions.push(self.priced.flat[*c].1);
                                *c += 1;
                            }
                        }
                        _ => diff::diff_object_into(
                            before,
                            after,
                            &mut self.scratch.runs,
                            &mut self.scratch.regions,
                        ),
                    }
                    // An Sd-elected adaptive transaction emits SD-format
                    // records: spans rounded out to block boundaries
                    // (object-anchored), exactly what sub-page capture
                    // would have produced.
                    let spans: &[diff::Region] = if elected == Some(SchemeCode::Sd) {
                        diff::block_align_regions(
                            &self.scratch.regions,
                            sd_block,
                            len,
                            &mut self.scratch.runs,
                        );
                        &self.scratch.runs
                    } else {
                        &self.scratch.regions
                    };
                    for r in spans {
                        emit_update(
                            &mut w,
                            logical,
                            txn,
                            pid,
                            slot,
                            r.start as u16,
                            &before[r.start..r.end],
                            &after[r.start..r.end],
                        );
                    }
                }
                w.records()
            }
            (Copied::Blocks(bc), LogGeneration::SubPageDiff { .. }) => {
                // Diff only the copied block ranges — every modified byte
                // lies inside one (blocks are copied before they are
                // written), and the ranges come sorted off the bitmap.
                self.meter()
                    .bytes_diffed
                    .fetch_add((bc.block_size() * bc.count()) as u64, Ordering::Relaxed);
                self.scratch.ranges.clear();
                bc.append_ranges(&mut self.scratch.ranges);
                let mut w = RecordWriter::new(&mut self.scratch.enc);
                for (slot, obj_off, obj_len) in current.live_objects() {
                    self.scratch.runs.clear();
                    for &(s, e) in &self.scratch.ranges {
                        let s = s.max(obj_off);
                        let e = e.min(obj_off + obj_len);
                        if s >= e {
                            continue;
                        }
                        diff::append_modified_runs(
                            &bc.data()[s..e],
                            &current.bytes()[s..e],
                            s - obj_off,
                            &mut self.scratch.runs,
                        );
                    }
                    diff::combine_regions_into(
                        &self.scratch.runs,
                        LOG_HEADER_SIZE,
                        &mut self.scratch.regions,
                    );
                    for r in &self.scratch.regions {
                        let (a, b) = (obj_off + r.start, obj_off + r.end);
                        // A combined region can span a small uncopied gap
                        // (combine merges runs ≤ 25 bytes apart; blocks can
                        // be as small as 8). Gap bytes are clean, so fill
                        // them from `current` to keep the before-image one
                        // contiguous slice.
                        let mut pos = a;
                        for &(s, e) in &self.scratch.ranges {
                            if e <= a {
                                continue;
                            }
                            if s >= b {
                                break;
                            }
                            if s > pos {
                                bc.data_mut()[pos..s].copy_from_slice(&current.bytes()[pos..s]);
                            }
                            pos = pos.max(e);
                        }
                        if pos < b {
                            bc.data_mut()[pos..b].copy_from_slice(&current.bytes()[pos..b]);
                        }
                        emit_update(
                            &mut w,
                            logical,
                            txn,
                            pid,
                            slot,
                            r.start as u16,
                            &bc.data()[a..b],
                            &current.bytes()[a..b],
                        );
                    }
                }
                w.records()
            }
            (Copied::Blocks(bc), LogGeneration::SubPageLog { .. }) => {
                // No diffing: log every copied block wholesale, clipped to
                // object boundaries (records cannot span objects). The
                // bitmap yields maximal sorted runs directly — no per-page
                // sort.
                self.scratch.ranges.clear();
                bc.append_ranges(&mut self.scratch.ranges);
                let mut w = RecordWriter::new(&mut self.scratch.enc);
                for (slot, obj_off, obj_len) in current.live_objects() {
                    for &(s, e) in &self.scratch.ranges {
                        let s = s.max(obj_off);
                        let e = e.min(obj_off + obj_len);
                        if s >= e {
                            continue;
                        }
                        emit_update(
                            &mut w,
                            logical,
                            txn,
                            pid,
                            slot,
                            (s - obj_off) as u16,
                            &bc.data()[s..e],
                            &current.bytes()[s..e],
                        );
                    }
                }
                w.records()
            }
            (Copied::Blocks(_), other) => {
                return Err(QsError::Protocol { detail: format!("block copies under {other:?}") });
            }
        };
        self.rbuf.recycle(copied);
        let tracer = self.client.tracer();
        if tracer.is_enabled() {
            tracer.record("diff_record_bytes_per_page", self.scratch.enc.len() as u64);
            tracer.event(TraceCat::Diff, "page", pid.0 as u64, nrecords as u64);
        }
        if nrecords == 0 {
            self.client.note_page_logged(pid)
        } else {
            self.client.add_encoded_records(pid, &self.scratch.enc)
        }
    }
}

/// Price one dirty page's captured write set into `costs` (the adaptive
/// election's pricing pass). A free function over disjoint [`Store`]
/// fields so the caller can hold a borrow of the client pool's page.
fn price_page_parts(
    rbuf: &RecoveryBuffer,
    scratch: &mut CommitScratch,
    priced: &mut PricedDiffs,
    costs: &mut WriteSetCosts,
    pid: PageId,
    page: &Page,
    block: usize,
) {
    let Some(Copied::Full(old)) = rbuf.get(pid) else {
        return; // nothing captured (or block capture — not adaptive's mode)
    };
    costs.bytes_diffed += page.live_bytes() as u64;
    let start = priced.flat.len();
    let mut any = false;
    for (slot, off, len) in page.live_objects() {
        diff::diff_object_into(
            &old[off..off + len],
            &page.bytes()[off..off + len],
            &mut scratch.runs,
            &mut scratch.regions,
        );
        for r in &scratch.regions {
            priced.flat.push((slot, *r));
        }
        if !scratch.regions.is_empty() {
            costs.add_object(&scratch.regions, block);
            any = true;
        }
    }
    // Record the page even when every object diffed clean: emission then
    // knows "priced, zero records" instead of re-diffing the whole page.
    priced.pages.push((pid, start, priced.flat.len()));
    if any {
        costs.note_page();
    }
}

/// Serialize one update: a physical before/after record under the default
/// flavors, a logical (REDO-only, after-image-only) record under `RLOG`.
#[allow(clippy::too_many_arguments)]
fn emit_update(
    w: &mut RecordWriter<'_>,
    logical: bool,
    txn: TxnId,
    pid: PageId,
    slot: u16,
    offset: u16,
    before: &[u8],
    after: &[u8],
) {
    if logical {
        w.update_logical(txn, Lsn::NULL, pid, slot, offset, after);
    } else {
        w.update(txn, Lsn::NULL, pid, slot, offset, before, after);
    }
}
