//! The recovery buffer (paper §3.2.1, Figure 1).
//!
//! A fixed-size area of client memory holding *before-images*: whole pages
//! under page differencing, individual blocks under the sub-page schemes.
//! When it fills, space is reclaimed in FIFO order by generating log
//! records early for the oldest copied page ("Space in the recovery buffer
//! is managed using a simple FIFO replacement policy") — the caller runs
//! the diff and then frees the copy. In the constrained-cache experiments
//! this overflow is precisely what drives PD's extra log traffic (Fig. 14).

use qs_storage::Page;
use qs_types::{PageId, PAGE_SIZE};
use std::collections::{HashMap, VecDeque};

/// Before-image of one page, at the granularity the scheme copies.
#[derive(Debug, Clone)]
pub enum Copied {
    /// PD: the complete page as of recovery-enable time.
    Full(Box<Page>),
    /// SD/SL: copied blocks, keyed by block index, each `block_size` bytes
    /// (the paper's per-page array of block pointers, Figure 3).
    Blocks { block_size: usize, blocks: HashMap<u16, Vec<u8>> },
}

impl Copied {
    /// Bytes of recovery-buffer space this copy occupies.
    pub fn bytes(&self) -> usize {
        match self {
            Copied::Full(_) => PAGE_SIZE,
            Copied::Blocks { block_size, blocks } => block_size * blocks.len(),
        }
    }
}

/// The fixed-capacity recovery buffer.
#[derive(Debug)]
pub struct RecoveryBuffer {
    capacity: usize,
    used: usize,
    copies: HashMap<PageId, Copied>,
    /// FIFO order of first copy per page.
    fifo: VecDeque<PageId>,
    overflows: u64,
}

impl RecoveryBuffer {
    /// `capacity` in bytes (e.g. 4 MB or 0.5 MB in the paper's experiments).
    pub fn new(capacity: usize) -> RecoveryBuffer {
        RecoveryBuffer {
            capacity,
            used: 0,
            copies: HashMap::new(),
            fifo: VecDeque::new(),
            overflows: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn used(&self) -> usize {
        self.used
    }

    pub fn pages(&self) -> usize {
        self.copies.len()
    }

    /// Times a copy request had to evict older copies.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    pub fn contains(&self, pid: PageId) -> bool {
        self.copies.contains_key(&pid)
    }

    pub fn get(&self, pid: PageId) -> Option<&Copied> {
        self.copies.get(&pid)
    }

    /// Pages that must be flushed (log records generated) to free at least
    /// `need` bytes, FIFO order. The caller diffs each and then calls
    /// [`RecoveryBuffer::remove`]; this method only *plans* the eviction.
    pub fn overflow_victims(&mut self, need: usize) -> Vec<PageId> {
        let mut free = self.capacity - self.used;
        if free >= need {
            return Vec::new();
        }
        self.overflows += 1;
        let mut victims = Vec::new();
        for &pid in self.fifo.iter() {
            if free >= need {
                break;
            }
            if let Some(c) = self.copies.get(&pid) {
                free += c.bytes();
                victims.push(pid);
            }
        }
        victims
    }

    /// Store the full-page before-image (PD). Panics if space was not made
    /// first (callers must use [`RecoveryBuffer::overflow_victims`]).
    pub fn insert_full(&mut self, pid: PageId, page: Page) {
        assert!(!self.copies.contains_key(&pid), "page {pid} already copied");
        assert!(self.used + PAGE_SIZE <= self.capacity, "recovery buffer overflow");
        self.used += PAGE_SIZE;
        self.copies.insert(pid, Copied::Full(Box::new(page)));
        self.fifo.push_back(pid);
    }

    /// Store one block's before-image (SD/SL). Creates the page's entry on
    /// first block.
    pub fn insert_block(&mut self, pid: PageId, block_size: usize, index: u16, data: Vec<u8>) {
        assert_eq!(data.len(), block_size);
        assert!(self.used + block_size <= self.capacity, "recovery buffer overflow");
        let entry = self.copies.entry(pid).or_insert_with(|| {
            self.fifo.push_back(pid);
            Copied::Blocks { block_size, blocks: HashMap::new() }
        });
        match entry {
            Copied::Blocks { blocks, .. } => {
                let prev = blocks.insert(index, data);
                assert!(prev.is_none(), "block {index} of {pid} already copied");
                self.used += block_size;
            }
            Copied::Full(_) => panic!("mixing block and full copies for {pid}"),
        }
    }

    /// Is this block already copied? (The SD update function's cheap check,
    /// §3.3.1.)
    pub fn block_copied(&self, pid: PageId, index: u16) -> bool {
        match self.copies.get(&pid) {
            Some(Copied::Blocks { blocks, .. }) => blocks.contains_key(&index),
            Some(Copied::Full(_)) => true,
            None => false,
        }
    }

    /// Drop a page's copy (after its log records have been generated).
    pub fn remove(&mut self, pid: PageId) -> Option<Copied> {
        let c = self.copies.remove(&pid)?;
        self.used -= c.bytes();
        self.fifo.retain(|&p| p != pid);
        Some(c)
    }

    /// Drop everything (transaction boundary).
    pub fn clear(&mut self) {
        self.copies.clear();
        self.fifo.clear();
        self.used = 0;
    }

    /// Pages currently copied, FIFO order.
    pub fn pages_fifo(&self) -> impl Iterator<Item = PageId> + '_ {
        self.fifo.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Page {
        Page::new()
    }

    #[test]
    fn full_copies_account_page_size() {
        let mut rb = RecoveryBuffer::new(3 * PAGE_SIZE);
        rb.insert_full(PageId(1), page());
        rb.insert_full(PageId(2), page());
        assert_eq!(rb.used(), 2 * PAGE_SIZE);
        assert_eq!(rb.pages(), 2);
        assert!(rb.contains(PageId(1)));
        rb.remove(PageId(1)).unwrap();
        assert_eq!(rb.used(), PAGE_SIZE);
    }

    #[test]
    fn fifo_overflow_planning() {
        let mut rb = RecoveryBuffer::new(2 * PAGE_SIZE);
        rb.insert_full(PageId(1), page());
        rb.insert_full(PageId(2), page());
        // Need one more page: the oldest copy (1) must be flushed.
        let victims = rb.overflow_victims(PAGE_SIZE);
        assert_eq!(victims, vec![PageId(1)]);
        assert_eq!(rb.overflows(), 1);
        for v in victims {
            rb.remove(v).unwrap();
        }
        rb.insert_full(PageId(3), page());
        assert_eq!(rb.pages(), 2);
        // Next overflow evicts 2 (FIFO), not 3.
        assert_eq!(rb.overflow_victims(PAGE_SIZE), vec![PageId(2)]);
    }

    #[test]
    fn no_victims_when_space_exists() {
        let mut rb = RecoveryBuffer::new(4 * PAGE_SIZE);
        rb.insert_full(PageId(1), page());
        assert!(rb.overflow_victims(PAGE_SIZE).is_empty());
        assert_eq!(rb.overflows(), 0);
    }

    #[test]
    fn block_copies_accumulate_per_page() {
        let mut rb = RecoveryBuffer::new(1024);
        rb.insert_block(PageId(7), 64, 0, vec![0; 64]);
        rb.insert_block(PageId(7), 64, 3, vec![1; 64]);
        rb.insert_block(PageId(9), 64, 0, vec![2; 64]);
        assert_eq!(rb.used(), 192);
        assert_eq!(rb.pages(), 2);
        assert!(rb.block_copied(PageId(7), 0));
        assert!(rb.block_copied(PageId(7), 3));
        assert!(!rb.block_copied(PageId(7), 1));
        assert!(!rb.block_copied(PageId(11), 0));
        match rb.remove(PageId(7)).unwrap() {
            Copied::Blocks { blocks, .. } => assert_eq!(blocks.len(), 2),
            _ => panic!("expected blocks"),
        }
        assert_eq!(rb.used(), 64);
    }

    #[test]
    fn blocks_need_less_space_than_pages() {
        // The SD advantage in the constrained experiments: a 0.5 MB buffer
        // holds before-images for far more sparsely-updated pages as
        // blocks than as full pages.
        let mut rb_blocks = RecoveryBuffer::new(PAGE_SIZE);
        for i in 0..100u32 {
            rb_blocks.insert_block(PageId(i), 64, 0, vec![0; 64]);
        }
        assert_eq!(rb_blocks.pages(), 100, "100 sparse pages fit as blocks");
        assert!(rb_blocks.used() <= PAGE_SIZE);
        let mut rb_pages = RecoveryBuffer::new(PAGE_SIZE);
        rb_pages.insert_full(PageId(0), page());
        assert!(!rb_pages.overflow_victims(PAGE_SIZE).is_empty(), "only 1 full page fits");
    }

    #[test]
    fn clear_resets_everything() {
        let mut rb = RecoveryBuffer::new(2 * PAGE_SIZE);
        rb.insert_full(PageId(1), page());
        rb.insert_block(PageId(2), 32, 0, vec![0; 32]);
        rb.clear();
        assert_eq!(rb.used(), 0);
        assert_eq!(rb.pages(), 0);
        assert!(!rb.contains(PageId(1)));
    }

    #[test]
    #[should_panic(expected = "already copied")]
    fn double_full_copy_panics() {
        let mut rb = RecoveryBuffer::new(4 * PAGE_SIZE);
        rb.insert_full(PageId(1), page());
        rb.insert_full(PageId(1), page());
    }

    #[test]
    fn fifo_order_exposed() {
        let mut rb = RecoveryBuffer::new(4 * PAGE_SIZE);
        rb.insert_full(PageId(3), page());
        rb.insert_full(PageId(1), page());
        rb.insert_full(PageId(2), page());
        let order: Vec<_> = rb.pages_fifo().collect();
        assert_eq!(order, vec![PageId(3), PageId(1), PageId(2)]);
    }
}
