//! The recovery buffer (paper §3.2.1, Figure 1).
//!
//! A fixed-size area of client memory holding *before-images*: whole pages
//! under page differencing, individual blocks under the sub-page schemes.
//! When it fills, space is reclaimed in FIFO order by generating log
//! records early for the oldest copied page ("Space in the recovery buffer
//! is managed using a simple FIFO replacement policy") — the caller runs
//! the diff and then frees the copy. In the constrained-cache experiments
//! this overflow is precisely what drives PD's extra log traffic (Fig. 14).
//!
//! ## Physical layout vs. logical accounting
//!
//! Capacity accounting is *logical* and matches the paper exactly: a full
//! copy costs `PAGE_SIZE` bytes, a block copy costs `block_size` per
//! copied block. Physically, every copy — full or block — is backed by one
//! pooled page-sized buffer, with block before-images stored at their
//! natural page offsets and a presence bitmap recording which blocks are
//! held. That layout makes the before-image of any contiguous block range
//! a contiguous slice (no per-page reconstruction at diff time), yields
//! copied ranges in sorted order straight from the bitmap, and lets freed
//! buffers return to a free list so steady-state commits never touch the
//! allocator. The cost is physical overhead for sparsely-copied pages,
//! which is invisible to every simulated figure (see DESIGN.md).

use qs_storage::Page;
use qs_types::{PageId, PAGE_SIZE};
use std::collections::{HashMap, VecDeque};

/// Smallest supported block size; bounds the bitmap at `PAGE_SIZE / 8 / 64`
/// words.
const MIN_BLOCK: usize = 8;
const BITS_WORDS: usize = PAGE_SIZE / MIN_BLOCK / 64;

/// Block-granularity before-images for one page (SD/SL), stored at their
/// natural offsets inside a pooled page-sized buffer.
#[derive(Debug)]
pub struct BlockCopy {
    block_size: usize,
    /// Presence bitmap: bit `i` set ⇔ block `i` is copied.
    bits: [u64; BITS_WORDS],
    count: usize,
    data: Box<[u8; PAGE_SIZE]>,
}

impl BlockCopy {
    fn new(block_size: usize, data: Box<[u8; PAGE_SIZE]>) -> BlockCopy {
        assert!(
            (MIN_BLOCK..=PAGE_SIZE).contains(&block_size) && block_size.is_power_of_two(),
            "bad block size {block_size}"
        );
        BlockCopy { block_size, bits: [0; BITS_WORDS], count: 0, data }
    }

    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Copied blocks on this page.
    pub fn count(&self) -> usize {
        self.count
    }

    pub fn contains(&self, index: u16) -> bool {
        let i = index as usize;
        i < PAGE_SIZE / self.block_size && self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    fn insert(&mut self, index: u16, data: &[u8]) {
        assert_eq!(data.len(), self.block_size);
        assert!(!self.contains(index), "block {index} already copied");
        let off = index as usize * self.block_size;
        self.data[off..off + self.block_size].copy_from_slice(data);
        self.bits[index as usize / 64] |= 1 << (index as usize % 64);
        self.count += 1;
    }

    /// The backing page-sized buffer; copied blocks sit at their natural
    /// offsets, so `&data()[a..b]` is the before-image of byte range
    /// `a..b` whenever every block overlapping it is copied.
    pub fn data(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable access, used by the commit path to fill small *clean* gaps
    /// between copied blocks from the current page so a combined region's
    /// before-image stays one contiguous slice.
    pub fn data_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Append the maximal contiguous copied byte ranges to `out`, in
    /// ascending order (the bitmap scan is naturally sorted — no per-page
    /// sort needed on the SubPageLog path).
    pub fn append_ranges(&self, out: &mut Vec<(usize, usize)>) {
        let nblocks = PAGE_SIZE / self.block_size;
        let mut i = 0usize;
        while i < nblocks {
            let w = self.bits[i / 64] >> (i % 64);
            if w & 1 == 0 {
                if w == 0 {
                    i = (i / 64 + 1) * 64; // whole remaining word clear
                } else {
                    i += w.trailing_zeros() as usize;
                }
                continue;
            }
            let start = i;
            while i < nblocks && self.bits[i / 64] >> (i % 64) & 1 == 1 {
                i += 1;
            }
            out.push((start * self.block_size, i * self.block_size));
        }
    }
}

/// Before-image of one page, at the granularity the scheme copies.
#[derive(Debug)]
pub enum Copied {
    /// PD: the complete page as of recovery-enable time.
    Full(Box<[u8; PAGE_SIZE]>),
    /// SD/SL: copied blocks (the paper's per-page array of block pointers,
    /// Figure 3).
    Blocks(BlockCopy),
}

impl Copied {
    /// Bytes of recovery-buffer space this copy occupies (logical
    /// accounting, per the paper — not physical footprint).
    pub fn bytes(&self) -> usize {
        match self {
            Copied::Full(_) => PAGE_SIZE,
            Copied::Blocks(bc) => bc.block_size * bc.count,
        }
    }
}

/// The fixed-capacity recovery buffer.
#[derive(Debug)]
pub struct RecoveryBuffer {
    capacity: usize,
    used: usize,
    copies: HashMap<PageId, Copied>,
    /// FIFO order of first copy per page.
    fifo: VecDeque<PageId>,
    overflows: u64,
    /// Recycled page-sized buffers; steady-state copies draw from here
    /// instead of the allocator.
    free_bufs: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl RecoveryBuffer {
    /// `capacity` in bytes (e.g. 4 MB or 0.5 MB in the paper's experiments).
    pub fn new(capacity: usize) -> RecoveryBuffer {
        RecoveryBuffer {
            capacity,
            used: 0,
            copies: HashMap::new(),
            fifo: VecDeque::new(),
            overflows: 0,
            free_bufs: Vec::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn used(&self) -> usize {
        self.used
    }

    pub fn pages(&self) -> usize {
        self.copies.len()
    }

    /// Times a copy request had to evict older copies.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Buffers waiting in the free list (visible for pooling tests).
    pub fn pooled(&self) -> usize {
        self.free_bufs.len()
    }

    pub fn contains(&self, pid: PageId) -> bool {
        self.copies.contains_key(&pid)
    }

    pub fn get(&self, pid: PageId) -> Option<&Copied> {
        self.copies.get(&pid)
    }

    pub fn get_mut(&mut self, pid: PageId) -> Option<&mut Copied> {
        self.copies.get_mut(&pid)
    }

    /// Pages that must be flushed (log records generated) to free at least
    /// `need` bytes, FIFO order. The caller diffs each and then calls
    /// [`RecoveryBuffer::remove`]; this method only *plans* the eviction.
    pub fn overflow_victims(&mut self, need: usize) -> Vec<PageId> {
        let mut free = self.capacity - self.used;
        if free >= need {
            return Vec::new();
        }
        self.overflows += 1;
        let mut victims = Vec::new();
        for &pid in self.fifo.iter() {
            if free >= need {
                break;
            }
            if let Some(c) = self.copies.get(&pid) {
                free += c.bytes();
                victims.push(pid);
            }
        }
        victims
    }

    fn take_buf(&mut self) -> Box<[u8; PAGE_SIZE]> {
        self.free_bufs.pop().unwrap_or_else(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Return a copy's backing buffer to the free list. Call after the
    /// copy's log records have been generated.
    pub fn recycle(&mut self, copied: Copied) {
        let buf = match copied {
            Copied::Full(b) => b,
            Copied::Blocks(bc) => bc.data,
        };
        self.free_bufs.push(buf);
    }

    /// Store the full-page before-image (PD). Panics if space was not made
    /// first (callers must use [`RecoveryBuffer::overflow_victims`]).
    pub fn insert_full(&mut self, pid: PageId, page: &Page) {
        assert!(!self.copies.contains_key(&pid), "page {pid} already copied");
        assert!(self.used + PAGE_SIZE <= self.capacity, "recovery buffer overflow");
        let mut buf = self.take_buf();
        buf.copy_from_slice(page.bytes());
        self.used += PAGE_SIZE;
        self.copies.insert(pid, Copied::Full(buf));
        self.fifo.push_back(pid);
    }

    /// Store one block's before-image (SD/SL). Creates the page's entry on
    /// first block.
    pub fn insert_block(&mut self, pid: PageId, block_size: usize, index: u16, data: &[u8]) {
        assert!(self.used + block_size <= self.capacity, "recovery buffer overflow");
        if !self.copies.contains_key(&pid) {
            let buf = self.take_buf();
            self.fifo.push_back(pid);
            self.copies.insert(pid, Copied::Blocks(BlockCopy::new(block_size, buf)));
        }
        match self.copies.get_mut(&pid).unwrap() {
            Copied::Blocks(bc) => {
                assert_eq!(bc.block_size, block_size);
                bc.insert(index, data);
                self.used += block_size;
            }
            Copied::Full(_) => panic!("mixing block and full copies for {pid}"),
        }
    }

    /// Is this block already copied? (The SD update function's cheap check,
    /// §3.3.1.)
    pub fn block_copied(&self, pid: PageId, index: u16) -> bool {
        match self.copies.get(&pid) {
            Some(Copied::Blocks(bc)) => bc.contains(index),
            Some(Copied::Full(_)) => true,
            None => false,
        }
    }

    /// Drop a page's copy (after its log records have been generated). The
    /// caller should hand the returned copy back via
    /// [`RecoveryBuffer::recycle`] once done with the before-images.
    pub fn remove(&mut self, pid: PageId) -> Option<Copied> {
        let c = self.copies.remove(&pid)?;
        self.used -= c.bytes();
        self.fifo.retain(|&p| p != pid);
        Some(c)
    }

    /// Drop everything (transaction boundary); backing buffers go to the
    /// free list.
    pub fn clear(&mut self) {
        let pids: Vec<PageId> = self.copies.keys().copied().collect();
        for pid in pids {
            let c = self.copies.remove(&pid).unwrap();
            self.recycle(c);
        }
        self.fifo.clear();
        self.used = 0;
    }

    /// Pages currently copied, FIFO order.
    pub fn pages_fifo(&self) -> impl Iterator<Item = PageId> + '_ {
        self.fifo.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Page {
        Page::new()
    }

    #[test]
    fn full_copies_account_page_size() {
        let mut rb = RecoveryBuffer::new(3 * PAGE_SIZE);
        rb.insert_full(PageId(1), &page());
        rb.insert_full(PageId(2), &page());
        assert_eq!(rb.used(), 2 * PAGE_SIZE);
        assert_eq!(rb.pages(), 2);
        assert!(rb.contains(PageId(1)));
        rb.remove(PageId(1)).unwrap();
        assert_eq!(rb.used(), PAGE_SIZE);
    }

    #[test]
    fn fifo_overflow_planning() {
        let mut rb = RecoveryBuffer::new(2 * PAGE_SIZE);
        rb.insert_full(PageId(1), &page());
        rb.insert_full(PageId(2), &page());
        // Need one more page: the oldest copy (1) must be flushed.
        let victims = rb.overflow_victims(PAGE_SIZE);
        assert_eq!(victims, vec![PageId(1)]);
        assert_eq!(rb.overflows(), 1);
        for v in victims {
            rb.remove(v).unwrap();
        }
        rb.insert_full(PageId(3), &page());
        assert_eq!(rb.pages(), 2);
        // Next overflow evicts 2 (FIFO), not 3.
        assert_eq!(rb.overflow_victims(PAGE_SIZE), vec![PageId(2)]);
    }

    #[test]
    fn no_victims_when_space_exists() {
        let mut rb = RecoveryBuffer::new(4 * PAGE_SIZE);
        rb.insert_full(PageId(1), &page());
        assert!(rb.overflow_victims(PAGE_SIZE).is_empty());
        assert_eq!(rb.overflows(), 0);
    }

    #[test]
    fn block_copies_accumulate_per_page() {
        let mut rb = RecoveryBuffer::new(1024);
        rb.insert_block(PageId(7), 64, 0, &[0; 64]);
        rb.insert_block(PageId(7), 64, 3, &[1; 64]);
        rb.insert_block(PageId(9), 64, 0, &[2; 64]);
        assert_eq!(rb.used(), 192);
        assert_eq!(rb.pages(), 2);
        assert!(rb.block_copied(PageId(7), 0));
        assert!(rb.block_copied(PageId(7), 3));
        assert!(!rb.block_copied(PageId(7), 1));
        assert!(!rb.block_copied(PageId(11), 0));
        match rb.remove(PageId(7)).unwrap() {
            Copied::Blocks(bc) => {
                assert_eq!(bc.count(), 2);
                // Before-images live at their natural page offsets.
                assert_eq!(&bc.data()[0..64], &[0u8; 64][..]);
                assert_eq!(&bc.data()[192..256], &[1u8; 64][..]);
            }
            _ => panic!("expected blocks"),
        }
        assert_eq!(rb.used(), 64);
    }

    #[test]
    fn blocks_need_less_space_than_pages() {
        // The SD advantage in the constrained experiments: a 0.5 MB buffer
        // holds before-images for far more sparsely-updated pages as
        // blocks than as full pages.
        let mut rb_blocks = RecoveryBuffer::new(PAGE_SIZE);
        for i in 0..100u32 {
            rb_blocks.insert_block(PageId(i), 64, 0, &[0; 64]);
        }
        assert_eq!(rb_blocks.pages(), 100, "100 sparse pages fit as blocks");
        assert!(rb_blocks.used() <= PAGE_SIZE);
        let mut rb_pages = RecoveryBuffer::new(PAGE_SIZE);
        rb_pages.insert_full(PageId(0), &page());
        assert!(!rb_pages.overflow_victims(PAGE_SIZE).is_empty(), "only 1 full page fits");
    }

    #[test]
    fn clear_resets_everything() {
        let mut rb = RecoveryBuffer::new(2 * PAGE_SIZE);
        rb.insert_full(PageId(1), &page());
        rb.insert_block(PageId(2), 32, 0, &[0; 32]);
        rb.clear();
        assert_eq!(rb.used(), 0);
        assert_eq!(rb.pages(), 0);
        assert!(!rb.contains(PageId(1)));
        assert_eq!(rb.pooled(), 2, "clear returns buffers to the pool");
    }

    #[test]
    #[should_panic(expected = "already copied")]
    fn double_full_copy_panics() {
        let mut rb = RecoveryBuffer::new(4 * PAGE_SIZE);
        rb.insert_full(PageId(1), &page());
        rb.insert_full(PageId(1), &page());
    }

    #[test]
    fn fifo_order_exposed() {
        let mut rb = RecoveryBuffer::new(4 * PAGE_SIZE);
        rb.insert_full(PageId(3), &page());
        rb.insert_full(PageId(1), &page());
        rb.insert_full(PageId(2), &page());
        let order: Vec<_> = rb.pages_fifo().collect();
        assert_eq!(order, vec![PageId(3), PageId(1), PageId(2)]);
    }

    #[test]
    fn recycled_buffers_are_reused() {
        let mut rb = RecoveryBuffer::new(4 * PAGE_SIZE);
        rb.insert_full(PageId(1), &page());
        let c = rb.remove(PageId(1)).unwrap();
        rb.recycle(c);
        assert_eq!(rb.pooled(), 1);
        rb.insert_full(PageId(2), &page());
        assert_eq!(rb.pooled(), 0, "insert drew from the pool");
        // A recycled buffer holds stale bytes; full insert overwrites all
        // of them.
        let mut p = page();
        p.bytes_mut()[100] = 42;
        let c = rb.remove(PageId(2)).unwrap();
        rb.recycle(c);
        rb.insert_full(PageId(3), &p);
        match rb.get(PageId(3)).unwrap() {
            Copied::Full(b) => assert_eq!(b[100], 42),
            _ => panic!("expected full"),
        }
    }

    #[test]
    fn block_ranges_sorted_and_maximal() {
        let mut rb = RecoveryBuffer::new(PAGE_SIZE);
        // Insert out of order; ranges must come back sorted and merged.
        for idx in [5u16, 3, 4, 9, 0] {
            rb.insert_block(PageId(1), 64, idx, &[idx as u8; 64]);
        }
        let mut ranges = Vec::new();
        match rb.get(PageId(1)).unwrap() {
            Copied::Blocks(bc) => bc.append_ranges(&mut ranges),
            _ => panic!("expected blocks"),
        }
        assert_eq!(ranges, vec![(0, 64), (3 * 64, 6 * 64), (9 * 64, 10 * 64)]);
    }

    #[test]
    fn block_ranges_cross_bitmap_words() {
        // 8-byte blocks -> 1024 blocks -> spans all 16 bitmap words.
        let mut rb = RecoveryBuffer::new(PAGE_SIZE);
        for idx in [0u16, 63, 64, 65, 1023] {
            rb.insert_block(PageId(1), 8, idx, &[1; 8]);
        }
        let mut ranges = Vec::new();
        match rb.get(PageId(1)).unwrap() {
            Copied::Blocks(bc) => bc.append_ranges(&mut ranges),
            _ => panic!("expected blocks"),
        }
        assert_eq!(ranges, vec![(0, 8), (63 * 8, 66 * 8), (1023 * 8, 1024 * 8)]);
    }
}
