//! A height-balanced (AVL) binary search tree.
//!
//! The paper specifies the in-memory page-descriptor table's data structure
//! exactly: "The in-memory table is implemented as a height balanced binary
//! tree" (§3.2.1), searched by the fault handler with the faulting virtual
//! address. We build that structure from scratch — index-based nodes in a
//! slab, no `unsafe`, O(log n) insert / remove / lookup — rather than
//! substituting a `BTreeMap`, so the fault-handler code path matches the
//! paper's description.

use std::cmp::Ordering;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    /// `None` only transiently while a slot sits on the free list.
    value: Option<V>,
    left: u32,
    right: u32,
    height: i8,
}

/// An AVL-tree map.
#[derive(Debug, Clone)]
pub struct AvlMap<K, V> {
    nodes: Vec<Node<K, V>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl<K: Ord + Copy, V> Default for AvlMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy, V> AvlMap<K, V> {
    pub fn new() -> Self {
        AvlMap { nodes: Vec::new(), free: Vec::new(), root: NIL, len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn h(&self, n: u32) -> i8 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].height
        }
    }

    fn fix_height(&mut self, n: u32) {
        let (l, r) = (self.nodes[n as usize].left, self.nodes[n as usize].right);
        self.nodes[n as usize].height = 1 + self.h(l).max(self.h(r));
    }

    fn balance_factor(&self, n: u32) -> i8 {
        self.h(self.nodes[n as usize].left) - self.h(self.nodes[n as usize].right)
    }

    fn rotate_right(&mut self, y: u32) -> u32 {
        let x = self.nodes[y as usize].left;
        let t2 = self.nodes[x as usize].right;
        self.nodes[x as usize].right = y;
        self.nodes[y as usize].left = t2;
        self.fix_height(y);
        self.fix_height(x);
        x
    }

    fn rotate_left(&mut self, x: u32) -> u32 {
        let y = self.nodes[x as usize].right;
        let t2 = self.nodes[y as usize].left;
        self.nodes[y as usize].left = x;
        self.nodes[x as usize].right = t2;
        self.fix_height(x);
        self.fix_height(y);
        y
    }

    fn rebalance(&mut self, n: u32) -> u32 {
        self.fix_height(n);
        let bf = self.balance_factor(n);
        if bf > 1 {
            if self.balance_factor(self.nodes[n as usize].left) < 0 {
                let l = self.nodes[n as usize].left;
                self.nodes[n as usize].left = self.rotate_left(l);
            }
            return self.rotate_right(n);
        }
        if bf < -1 {
            if self.balance_factor(self.nodes[n as usize].right) > 0 {
                let r = self.nodes[n as usize].right;
                self.nodes[n as usize].right = self.rotate_right(r);
            }
            return self.rotate_left(n);
        }
        n
    }

    fn new_node(&mut self, key: K, value: V) -> u32 {
        let node = Node { key, value: Some(value), left: NIL, right: NIL, height: 1 };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Insert or replace; returns the previous value for the key, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (root, old) = self.insert_at(self.root, key, value);
        self.root = root;
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_at(&mut self, n: u32, key: K, value: V) -> (u32, Option<V>) {
        if n == NIL {
            return (self.new_node(key, value), None);
        }
        let old;
        match key.cmp(&self.nodes[n as usize].key) {
            Ordering::Less => {
                let (l, o) = self.insert_at(self.nodes[n as usize].left, key, value);
                self.nodes[n as usize].left = l;
                old = o;
            }
            Ordering::Greater => {
                let (r, o) = self.insert_at(self.nodes[n as usize].right, key, value);
                self.nodes[n as usize].right = r;
                old = o;
            }
            Ordering::Equal => {
                let prev = self.nodes[n as usize].value.replace(value);
                return (n, prev);
            }
        }
        (self.rebalance(n), old)
    }

    pub fn get(&self, key: &K) -> Option<&V> {
        let mut n = self.root;
        while n != NIL {
            let node = &self.nodes[n as usize];
            match key.cmp(&node.key) {
                Ordering::Less => n = node.left,
                Ordering::Greater => n = node.right,
                Ordering::Equal => return node.value.as_ref(),
            }
        }
        None
    }

    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut n = self.root;
        while n != NIL {
            match key.cmp(&self.nodes[n as usize].key) {
                Ordering::Less => n = self.nodes[n as usize].left,
                Ordering::Greater => n = self.nodes[n as usize].right,
                Ordering::Equal => return self.nodes[n as usize].value.as_mut(),
            }
        }
        None
    }

    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// The entry with the greatest key ≤ `key` — the fault handler's
    /// "which mapped frame contains this faulting address" search.
    pub fn floor(&self, key: &K) -> Option<(&K, &V)> {
        let mut n = self.root;
        let mut best = NIL;
        while n != NIL {
            let node = &self.nodes[n as usize];
            match key.cmp(&node.key) {
                Ordering::Less => n = node.left,
                Ordering::Greater => {
                    best = n;
                    n = node.right;
                }
                Ordering::Equal => return node.value.as_ref().map(|v| (&node.key, v)),
            }
        }
        if best == NIL {
            None
        } else {
            let node = &self.nodes[best as usize];
            node.value.as_ref().map(|v| (&node.key, v))
        }
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (root, removed) = self.remove_at(self.root, key);
        self.root = root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_at(&mut self, n: u32, key: &K) -> (u32, Option<V>) {
        if n == NIL {
            return (NIL, None);
        }
        let removed;
        match key.cmp(&self.nodes[n as usize].key) {
            Ordering::Less => {
                let (l, o) = self.remove_at(self.nodes[n as usize].left, key);
                self.nodes[n as usize].left = l;
                removed = o;
            }
            Ordering::Greater => {
                let (r, o) = self.remove_at(self.nodes[n as usize].right, key);
                self.nodes[n as usize].right = r;
                removed = o;
            }
            Ordering::Equal => {
                let (l, r) = (self.nodes[n as usize].left, self.nodes[n as usize].right);
                if l == NIL || r == NIL {
                    let child = if l == NIL { r } else { l };
                    let value = self.nodes[n as usize].value.take();
                    self.free.push(n);
                    return (child, value);
                }
                // Two children: replace with in-order successor.
                let succ = self.min_node(r);
                let succ_key = self.nodes[succ as usize].key;
                // Detach the successor from the right subtree first.
                let (new_r, succ_val) = self.remove_at(r, &succ_key);
                let node = &mut self.nodes[n as usize];
                node.key = succ_key;
                let removed_val = node.value.replace(succ_val.expect("successor exists"));
                node.right = new_r;
                let nn = self.rebalance(n);
                return (nn, removed_val);
            }
        }
        (self.rebalance(n), removed)
    }

    fn min_node(&self, mut n: u32) -> u32 {
        while self.nodes[n as usize].left != NIL {
            n = self.nodes[n as usize].left;
        }
        n
    }

    /// In-order iteration.
    pub fn iter(&self) -> AvlIter<'_, K, V> {
        let mut stack = Vec::new();
        let mut n = self.root;
        while n != NIL {
            stack.push(n);
            n = self.nodes[n as usize].left;
        }
        AvlIter { map: self, stack }
    }

    /// Tree height (test/diagnostic hook: must stay O(log n)).
    pub fn height(&self) -> usize {
        self.h(self.root).max(0) as usize
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        fn rec<K: Ord + Copy, V>(m: &AvlMap<K, V>, n: u32, lo: Option<K>, hi: Option<K>) -> i8 {
            if n == NIL {
                return 0;
            }
            let node = &m.nodes[n as usize];
            if let Some(lo) = lo {
                assert!(node.key > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(node.key < hi, "BST order violated");
            }
            let hl = rec(m, node.left, lo, Some(node.key));
            let hr = rec(m, node.right, Some(node.key), hi);
            assert!((hl - hr).abs() <= 1, "AVL balance violated");
            let h = 1 + hl.max(hr);
            assert_eq!(h, node.height, "stale height");
            h
        }
        rec(self, self.root, None, None);
    }
}

/// Iterator over an [`AvlMap`] in key order.
pub struct AvlIter<'a, K, V> {
    map: &'a AvlMap<K, V>,
    stack: Vec<u32>,
}

impl<'a, K: Ord + Copy, V> Iterator for AvlIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        let node = &self.map.nodes[n as usize];
        let mut m = node.right;
        while m != NIL {
            self.stack.push(m);
            m = self.map.nodes[m as usize].left;
        }
        Some((&node.key, node.value.as_ref().expect("live node")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_basics() {
        let mut m = AvlMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5u64, "five"), None);
        assert_eq!(m.insert(3, "three"), None);
        assert_eq!(m.insert(8, "eight"), None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&3), Some(&"three"));
        assert_eq!(m.insert(3, "THREE"), Some("three"));
        assert_eq!(m.len(), 3, "replace does not grow");
        assert_eq!(m.remove(&3), Some("THREE"));
        assert_eq!(m.get(&3), None);
        assert_eq!(m.remove(&3), None);
        m.check_invariants();
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        let mut m = AvlMap::new();
        for i in 0..1024u64 {
            m.insert(i, i * 2);
            m.check_invariants();
        }
        // AVL height bound: 1.44 * log2(n+2); for 1024 keys ≤ 15.
        assert!(m.height() <= 15, "height {}", m.height());
        for i in 0..1024u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn floor_finds_enclosing_frame() {
        // Simulates the fault handler: frame bases every 8192 bytes; a
        // faulting address inside a frame must find that frame's entry.
        let mut m = AvlMap::new();
        for base in (0..10u64).map(|i| i * 8192) {
            m.insert(base, base / 8192);
        }
        assert_eq!(m.floor(&0), Some((&0, &0)));
        assert_eq!(m.floor(&100), Some((&0, &0)));
        assert_eq!(m.floor(&8191), Some((&0, &0)));
        assert_eq!(m.floor(&8192), Some((&8192, &1)));
        assert_eq!(m.floor(&(9 * 8192 + 5000)), Some((&(9 * 8192), &9)));
        let empty: AvlMap<u64, u64> = AvlMap::new();
        assert_eq!(empty.floor(&5), None);
    }

    #[test]
    fn iter_is_in_order() {
        let mut m = AvlMap::new();
        for k in [5u64, 1, 9, 3, 7, 2, 8] {
            m.insert(k, ());
        }
        let keys: Vec<u64> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn removal_heavy_workload_keeps_invariants() {
        let mut m = AvlMap::new();
        // Deterministic pseudo-random sequence (LCG).
        let mut x: u64 = 12345;
        let mut step = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let mut live = std::collections::BTreeMap::new();
        for round in 0..4000 {
            let k = step() % 512;
            if round % 3 == 0 {
                assert_eq!(m.remove(&k), live.remove(&k), "round {round}");
            } else {
                assert_eq!(m.insert(k, round), live.insert(k, round), "round {round}");
            }
        }
        m.check_invariants();
        assert_eq!(m.len(), live.len());
        let got: Vec<_> = m.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<_> = live.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want, "in-order iteration matches reference map");
    }

    #[test]
    fn slab_reuse_after_remove() {
        let mut m = AvlMap::new();
        for i in 0..100u64 {
            m.insert(i, i);
        }
        for i in 0..100u64 {
            m.remove(&i);
        }
        assert!(m.is_empty());
        let slab_size = m.nodes.len();
        for i in 0..100u64 {
            m.insert(i, i);
        }
        assert_eq!(m.nodes.len(), slab_size, "freed slots are reused");
        m.check_invariants();
    }

    #[test]
    fn string_values_drop_cleanly() {
        // Heap-owning values: exercises the Option-based take paths (no
        // leaks or double drops under normal operation).
        let mut m = AvlMap::new();
        for i in 0..200u64 {
            m.insert(i, format!("value-{i}"));
        }
        for i in (0..200u64).step_by(2) {
            assert_eq!(m.remove(&i), Some(format!("value-{i}")));
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&1), Some(&"value-1".to_string()));
    }
}
