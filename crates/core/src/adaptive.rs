//! Dynamic buffer-pool / recovery-buffer balancing — the paper's proposed
//! future work (§7): "dynamically varying the amount of memory allocated
//! to the buffer pool and the recovery buffer of a client during and
//! across transactions."
//!
//! The policy watches two antagonistic signals from the last transaction:
//! recovery-buffer overflows (too little recovery memory → early log
//! records, the constrained-cache pathology of Figures 10–14) and client
//! buffer-pool evictions (too little pool → paging, the big-database
//! pathology of Figures 15–18). It shifts one step of memory toward
//! whichever hurt, with hysteresis so a balanced system stays put.

use crate::store::Store;
use qs_sim::MeterSnapshot;
use qs_types::{QsResult, PAGE_SIZE};

/// Step-based adaptive controller for the client memory split.
#[derive(Debug, Clone)]
pub struct AdaptiveSplit {
    /// Total client memory under management (fixed).
    pub total_mb: f64,
    /// Current recovery-buffer share.
    pub recovery_mb: f64,
    /// Smallest / largest recovery share the controller may choose.
    pub min_recovery_mb: f64,
    pub max_recovery_mb: f64,
    /// How much memory one adjustment moves.
    pub step_mb: f64,
    adjustments: u64,
}

impl AdaptiveSplit {
    pub fn new(total_mb: f64, initial_recovery_mb: f64) -> AdaptiveSplit {
        AdaptiveSplit {
            total_mb,
            recovery_mb: initial_recovery_mb,
            min_recovery_mb: 0.25,
            max_recovery_mb: total_mb / 2.0,
            step_mb: 0.5,
            adjustments: 0,
        }
    }

    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Decide a new recovery-buffer size from the last transaction's
    /// counter window. Returns `Some(new_mb)` if the split should change.
    pub fn decide(&mut self, window: &MeterSnapshot) -> Option<f64> {
        let overflowing = window.recovery_buffer_overflows > 0;
        let paging = window.client_evictions > 0;
        let proposed = if overflowing && !paging {
            // Early log records but no paging: grow the recovery buffer.
            (self.recovery_mb + self.step_mb).min(self.max_recovery_mb)
        } else if paging && !overflowing {
            // Paging but recovery memory is idle: give pages to the pool.
            (self.recovery_mb - self.step_mb).max(self.min_recovery_mb)
        } else {
            // Balanced, or both hurting (total memory is just too small —
            // moving it around cannot help): stay put.
            self.recovery_mb
        };
        if (proposed - self.recovery_mb).abs() < 1e-9 {
            return None;
        }
        self.recovery_mb = proposed;
        self.adjustments += 1;
        Some(proposed)
    }

    /// Apply a decision to a store between transactions.
    pub fn apply(&mut self, store: &mut Store, window: &MeterSnapshot) -> QsResult<bool> {
        match self.decide(window) {
            Some(mb) => {
                store.set_memory_split(self.total_mb, mb)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Recovery-buffer size in bytes for the current split.
    pub fn recovery_bytes(&self) -> usize {
        (self.recovery_mb * 1024.0 * 1024.0) as usize
    }

    /// Buffer-pool pages for the current split.
    pub fn pool_pages(&self) -> usize {
        (((self.total_mb - self.recovery_mb) * 1024.0 * 1024.0) as usize / PAGE_SIZE).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(overflows: u64, evictions: u64) -> MeterSnapshot {
        MeterSnapshot {
            recovery_buffer_overflows: overflows,
            client_evictions: evictions,
            ..MeterSnapshot::default()
        }
    }

    #[test]
    fn grows_recovery_buffer_on_overflow() {
        let mut a = AdaptiveSplit::new(8.0, 0.5);
        assert_eq!(a.decide(&window(3, 0)), Some(1.0));
        assert_eq!(a.decide(&window(1, 0)), Some(1.5));
        assert_eq!(a.adjustments(), 2);
    }

    #[test]
    fn shrinks_recovery_buffer_on_paging() {
        let mut a = AdaptiveSplit::new(8.0, 2.0);
        assert_eq!(a.decide(&window(0, 10)), Some(1.5));
        assert_eq!(a.decide(&window(0, 10)), Some(1.0));
    }

    #[test]
    fn stable_when_balanced_or_doubly_constrained() {
        let mut a = AdaptiveSplit::new(8.0, 1.0);
        assert_eq!(a.decide(&window(0, 0)), None, "balanced: no change");
        assert_eq!(a.decide(&window(5, 5)), None, "both hurting: no reshuffle");
        assert_eq!(a.adjustments(), 0);
    }

    #[test]
    fn respects_bounds() {
        let mut a = AdaptiveSplit::new(8.0, 0.5);
        a.min_recovery_mb = 0.5;
        assert_eq!(a.decide(&window(0, 9)), None, "already at the floor");
        a.recovery_mb = 4.0; // = max (total/2)
        assert_eq!(a.decide(&window(9, 0)), None, "already at the ceiling");
    }

    #[test]
    fn split_arithmetic() {
        let a = AdaptiveSplit::new(12.0, 4.0);
        assert_eq!(a.recovery_bytes(), 4 * 1024 * 1024);
        assert_eq!(a.pool_pages(), 1024);
    }
}
