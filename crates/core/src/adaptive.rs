//! Adaptive controllers: the memory-split balancer ([`AdaptiveSplit`],
//! the paper's §7 future work) and the per-transaction logging-scheme
//! elector ([`AdaptiveScheme`], DESIGN.md §6g).
//!
//! `AdaptiveSplit` watches two antagonistic signals from the last
//! transaction: recovery-buffer overflows (too little recovery memory →
//! early log records, the constrained-cache pathology of Figures 10–14)
//! and client buffer-pool evictions (too little pool → paging, the
//! big-database pathology of Figures 15–18). It shifts one step of memory
//! toward whichever hurt, with hysteresis so a balanced system stays put.
//!
//! `AdaptiveScheme` goes further: instead of tuning one scheme's memory,
//! it picks the *scheme itself*, per transaction. Page-diff capture keeps
//! full before-images, so at commit the write set can be priced exactly
//! under every candidate record format — PD and SD physical records, a
//! WPL whole-page image, or a REDO-only logical record set — and the
//! transaction's records are emitted in whichever format the online cost
//! model scores cheapest.

use crate::diff::{self, Region};
use crate::store::Store;
use qs_sim::MeterSnapshot;
use qs_types::{QsResult, LOG_HEADER_SIZE, PAGE_SIZE};
use qs_wal::{LogPressure, SchemeCode};

/// Step-based adaptive controller for the client memory split.
#[derive(Debug, Clone)]
pub struct AdaptiveSplit {
    /// Total client memory under management (fixed).
    pub total_mb: f64,
    /// Current recovery-buffer share.
    pub recovery_mb: f64,
    /// Smallest / largest recovery share the controller may choose.
    pub min_recovery_mb: f64,
    pub max_recovery_mb: f64,
    /// How much memory one adjustment moves.
    pub step_mb: f64,
    adjustments: u64,
}

impl AdaptiveSplit {
    pub fn new(total_mb: f64, initial_recovery_mb: f64) -> AdaptiveSplit {
        AdaptiveSplit {
            total_mb,
            recovery_mb: initial_recovery_mb,
            min_recovery_mb: 0.25,
            max_recovery_mb: total_mb / 2.0,
            step_mb: 0.5,
            adjustments: 0,
        }
    }

    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Decide a new recovery-buffer size from the last transaction's
    /// counter window. Returns `Some(new_mb)` if the split should change.
    pub fn decide(&mut self, window: &MeterSnapshot) -> Option<f64> {
        let overflowing = window.recovery_buffer_overflows > 0;
        let paging = window.client_evictions > 0;
        let proposed = if overflowing && !paging {
            // Early log records but no paging: grow the recovery buffer.
            (self.recovery_mb + self.step_mb).min(self.max_recovery_mb)
        } else if paging && !overflowing {
            // Paging but recovery memory is idle: give pages to the pool.
            (self.recovery_mb - self.step_mb).max(self.min_recovery_mb)
        } else {
            // Balanced, or both hurting (total memory is just too small —
            // moving it around cannot help): stay put.
            self.recovery_mb
        };
        if (proposed - self.recovery_mb).abs() < 1e-9 {
            return None;
        }
        self.recovery_mb = proposed;
        self.adjustments += 1;
        Some(proposed)
    }

    /// Apply a decision to a store between transactions.
    pub fn apply(&mut self, store: &mut Store, window: &MeterSnapshot) -> QsResult<bool> {
        match self.decide(window) {
            Some(mb) => {
                store.set_memory_split(self.total_mb, mb)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Recovery-buffer size in bytes for the current split.
    pub fn recovery_bytes(&self) -> usize {
        (self.recovery_mb * 1024.0 * 1024.0) as usize
    }

    /// Buffer-pool pages for the current split.
    pub fn pool_pages(&self) -> usize {
        (((self.total_mb - self.recovery_mb) * 1024.0 * 1024.0) as usize / PAGE_SIZE).max(1)
    }
}

// -- per-transaction scheme election (DESIGN.md §6g) -------------------------

/// Exact per-scheme pricing of one transaction's write set, accumulated a
/// page at a time from the diff pipeline's combined regions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteSetCosts {
    /// Dirty pages in the write set (pages whose diff found nothing are
    /// not counted — no scheme logs them).
    pub pages: u64,
    /// PD: one record per combined region, before+after images.
    pub pd_log: u64,
    /// SD: one record per touched `block`-byte block, before+after.
    pub sd_log: u64,
    /// WPL: one whole-page image record per page.
    pub wpl_log: u64,
    /// RLOG: one record per combined region, after image only.
    pub rlog_log: u64,
    /// Modified bytes (the after payload a deferred apply must install).
    pub after_payload: u64,
    /// Bytes the pricing pass compared (CPU accounting, not a score input).
    pub bytes_diffed: u64,
}

impl WriteSetCosts {
    /// Fold one object's combined diff regions into the per-record-format
    /// totals (regions are object-relative; price each object separately).
    pub fn add_object(&mut self, regions: &[Region], block: usize) {
        let h = LOG_HEADER_SIZE;
        self.pd_log += diff::log_bytes(regions, h) as u64;
        self.sd_log += diff::block_rounded_log_bytes(regions, h, block) as u64;
        self.rlog_log += diff::redo_only_log_bytes(regions, h) as u64;
        self.after_payload += diff::after_bytes(regions) as u64;
    }

    /// Count one dirty page's fixed costs (a whole-page image under WPL,
    /// a page ship under the physical schemes). Call once per page whose
    /// objects contributed at least one region.
    pub fn note_page(&mut self) {
        self.pages += 1;
        self.wpl_log += (LOG_HEADER_SIZE + PAGE_SIZE) as u64;
    }

    /// Fold one single-object dirty page into the totals.
    pub fn add_page(&mut self, regions: &[Region], block: usize) {
        if regions.is_empty() {
            return;
        }
        self.add_object(regions, block);
        self.note_page();
    }

    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Log bytes this write set would emit under `scheme`.
    pub fn log_bytes(&self, scheme: SchemeCode) -> u64 {
        match scheme {
            SchemeCode::Pd => self.pd_log,
            SchemeCode::Sd => self.sd_log,
            SchemeCode::Wpl => self.wpl_log,
            SchemeCode::Rlog => self.rlog_log,
        }
    }
}

/// The online cost model: prices a [`WriteSetCosts`] under each scheme and
/// elects the cheapest (DESIGN.md §6g).
///
/// For scheme `s` the score is
///
/// ```text
/// score(s) = log(s) · (1 + redo_weight + pressure_weight · P)
///          + ship(s)                        physical schemes only
///          + apply(s) · payload(s) · M      deferred schemes only
/// ```
///
/// where `P = pressure.combined()` is the server's piggybacked log-pressure
/// signal and `M = 1 + (pages / pending_page_budget)²` grows superlinearly
/// with the write-set size. Rationale per term:
///
/// * every logged byte is written once at commit and replayed once if the
///   server crashes before the next checkpoint, hence the `1 + redo_weight`
///   multiplier (log forces are proportional to log bytes and fold in too);
/// * a full log amplifies each byte's cost — truncation stalls and deeper
///   force queues — so pressure scales the log term, steering elections
///   toward compact records exactly when the log is the bottleneck;
/// * physical elections ship each dirty page to the server (`ship(s) =
///   pages · PAGE_SIZE` wire bytes) but apply on arrival;
/// * deferred elections (WPL / RLOG) ship nothing, but their payload parks
///   in server memory until commit and is applied inside the committer's
///   critical section — `M` charges that residency superlinearly, so big
///   write sets fall back to the physical steal-capable path. Replaying a
///   logical record set re-executes object updates while a whole-page
///   image is a single copy, hence `apply_rlog > apply_wpl`.
#[derive(Debug, Clone)]
pub struct AdaptiveScheme {
    /// Block size used to price the SD candidate.
    pub block: usize,
    /// Projected restart-replay cost per logged byte.
    pub redo_weight: f64,
    /// How strongly full-log pressure amplifies the log term.
    pub pressure_weight: f64,
    /// Commit-critical-path cost per deferred after-payload byte (RLOG
    /// re-executes updates) and per deferred image byte (WPL memcpy).
    pub apply_rlog: f64,
    pub apply_wpl: f64,
    /// Write-set size (pages) at which deferred residency doubles.
    pub pending_page_budget: u64,
    /// Pin the election (tests, ablation oracles); `None` = model decides.
    pub force: Option<SchemeCode>,
    last: Option<SchemeCode>,
    elections: u64,
    switches: u64,
}

impl Default for AdaptiveScheme {
    fn default() -> Self {
        AdaptiveScheme {
            block: crate::config::SystemConfig::DEFAULT_BLOCK,
            redo_weight: 0.25,
            pressure_weight: 1.0,
            apply_rlog: 0.5,
            apply_wpl: 0.25,
            pending_page_budget: 64,
            force: None,
            last: None,
            elections: 0,
            switches: 0,
        }
    }
}

impl AdaptiveScheme {
    pub fn new() -> AdaptiveScheme {
        AdaptiveScheme::default()
    }

    /// Commits that elected a scheme (zero-dirty commits skip election).
    pub fn elections(&self) -> u64 {
        self.elections
    }

    /// Elections whose winner differed from the previous election's.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The previous election's winner, if any.
    pub fn last(&self) -> Option<SchemeCode> {
        self.last
    }

    /// Score every candidate, in the fixed order PD, SD, WPL, RLOG.
    pub fn scores(&self, costs: &WriteSetCosts, pressure: LogPressure) -> [(SchemeCode, f64); 4] {
        let w = 1.0 + self.redo_weight + self.pressure_weight * pressure.combined();
        let ship = (costs.pages * PAGE_SIZE as u64) as f64;
        let m = {
            let load = costs.pages as f64 / self.pending_page_budget as f64;
            1.0 + load * load
        };
        [
            (SchemeCode::Pd, w * costs.pd_log as f64 + ship),
            (SchemeCode::Sd, w * costs.sd_log as f64 + ship),
            (
                SchemeCode::Wpl,
                w * costs.wpl_log as f64
                    + self.apply_wpl * (costs.pages * PAGE_SIZE as u64) as f64 * m,
            ),
            (
                SchemeCode::Rlog,
                w * costs.rlog_log as f64 + self.apply_rlog * costs.after_payload as f64 * m,
            ),
        ]
    }

    /// Elect the cheapest scheme for this write set (first of the fixed
    /// order wins exact ties, so elections are deterministic). Updates the
    /// election/switch counters.
    pub fn elect(&mut self, costs: &WriteSetCosts, pressure: LogPressure) -> SchemeCode {
        let winner = self.force.unwrap_or_else(|| {
            let scores = self.scores(costs, pressure);
            let mut best = scores[0];
            for &(s, score) in &scores[1..] {
                if score < best.1 {
                    best = (s, score);
                }
            }
            best.0
        });
        self.elections += 1;
        if self.last.is_some_and(|prev| prev != winner) {
            self.switches += 1;
        }
        self.last = Some(winner);
        winner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(overflows: u64, evictions: u64) -> MeterSnapshot {
        MeterSnapshot {
            recovery_buffer_overflows: overflows,
            client_evictions: evictions,
            ..MeterSnapshot::default()
        }
    }

    #[test]
    fn grows_recovery_buffer_on_overflow() {
        let mut a = AdaptiveSplit::new(8.0, 0.5);
        assert_eq!(a.decide(&window(3, 0)), Some(1.0));
        assert_eq!(a.decide(&window(1, 0)), Some(1.5));
        assert_eq!(a.adjustments(), 2);
    }

    #[test]
    fn shrinks_recovery_buffer_on_paging() {
        let mut a = AdaptiveSplit::new(8.0, 2.0);
        assert_eq!(a.decide(&window(0, 10)), Some(1.5));
        assert_eq!(a.decide(&window(0, 10)), Some(1.0));
    }

    #[test]
    fn stable_when_balanced_or_doubly_constrained() {
        let mut a = AdaptiveSplit::new(8.0, 1.0);
        assert_eq!(a.decide(&window(0, 0)), None, "balanced: no change");
        assert_eq!(a.decide(&window(5, 5)), None, "both hurting: no reshuffle");
        assert_eq!(a.adjustments(), 0);
    }

    #[test]
    fn respects_bounds() {
        let mut a = AdaptiveSplit::new(8.0, 0.5);
        a.min_recovery_mb = 0.5;
        assert_eq!(a.decide(&window(0, 9)), None, "already at the floor");
        a.recovery_mb = 4.0; // = max (total/2)
        assert_eq!(a.decide(&window(9, 0)), None, "already at the ceiling");
    }

    #[test]
    fn split_arithmetic() {
        let a = AdaptiveSplit::new(12.0, 4.0);
        assert_eq!(a.recovery_bytes(), 4 * 1024 * 1024);
        assert_eq!(a.pool_pages(), 1024);
    }

    // -- AdaptiveScheme ------------------------------------------------------

    /// A write set of `pages` pages, each with one modified run of
    /// `dirty_per_page` bytes at offset 0.
    fn write_set(pages: u64, dirty_per_page: usize) -> WriteSetCosts {
        let mut c = WriteSetCosts::default();
        let regions = [Region { start: 0, end: dirty_per_page }];
        for _ in 0..pages {
            c.add_page(&regions, 64);
        }
        c
    }

    #[test]
    fn write_set_costs_per_scheme() {
        use qs_types::LOG_HEADER_SIZE as H;
        let c = write_set(2, 100);
        assert_eq!(c.pages, 2);
        assert_eq!(c.log_bytes(SchemeCode::Pd), 2 * (H + 200) as u64);
        // 100 dirty bytes touch two 64-byte blocks.
        assert_eq!(c.log_bytes(SchemeCode::Sd), 2 * 2 * (H + 128) as u64);
        assert_eq!(c.log_bytes(SchemeCode::Wpl), 2 * (H + PAGE_SIZE) as u64);
        assert_eq!(c.log_bytes(SchemeCode::Rlog), 2 * (H + 100) as u64);
        assert_eq!(c.after_payload, 200);
        assert!(write_set(0, 0).is_empty());
        // Clean pages never enter the write set.
        let mut clean = WriteSetCosts::default();
        clean.add_page(&[], 64);
        assert!(clean.is_empty());
    }

    #[test]
    fn election_oracle_on_hand_built_write_sets() {
        let mut a = AdaptiveScheme::new();
        let calm = LogPressure::default();
        // Sparse small write set: compact logical records win.
        assert_eq!(a.elect(&write_set(2, 64), calm), SchemeCode::Rlog);
        // Dense small write set: a whole-page image beats before+after
        // diffs and beats re-executing a page's worth of updates.
        assert_eq!(a.elect(&write_set(2, PAGE_SIZE), calm), SchemeCode::Wpl);
        // Dense and huge: deferred residency dominates; the steal-capable
        // physical path wins.
        assert_eq!(a.elect(&write_set(512, PAGE_SIZE), calm), SchemeCode::Pd);
        assert_eq!(a.elections(), 3);
        assert_eq!(a.switches(), 2);
    }

    #[test]
    fn pressure_steers_toward_compact_records() {
        // A dense write set just past the calm PD/WPL crossover: with the
        // log quiet, the deferred-residency term hands the election to the
        // physical path; a saturated log doubles every logged byte's cost,
        // which hurts PD's before+after diffs (~2 pages of log per page)
        // twice as hard as WPL's single image — the election flips to the
        // log-lean format exactly when the log is the bottleneck.
        let mut a = AdaptiveScheme::new();
        let c = write_set(200, PAGE_SIZE);
        assert_eq!(a.elect(&c, LogPressure::default()), SchemeCode::Pd);
        assert_eq!(a.elect(&c, LogPressure::new(1.0, 1.0)), SchemeCode::Wpl);
        assert_eq!(a.switches(), 1);
    }

    #[test]
    fn forced_election_and_switch_counting() {
        let mut a = AdaptiveScheme::new();
        a.force = Some(SchemeCode::Sd);
        assert_eq!(a.elect(&write_set(1, 8), LogPressure::default()), SchemeCode::Sd);
        assert_eq!(a.elect(&write_set(1, 8), LogPressure::default()), SchemeCode::Sd);
        assert_eq!(a.switches(), 0, "re-electing the same scheme is not a switch");
        a.force = Some(SchemeCode::Pd);
        assert_eq!(a.elect(&write_set(1, 8), LogPressure::default()), SchemeCode::Pd);
        assert_eq!(a.switches(), 1);
        assert_eq!(a.elections(), 3);
    }
}
