//! Page descriptors and the in-memory descriptor table (paper §3.2.1).
//!
//! QuickStore keeps one descriptor per virtual frame that has been
//! associated with a database page. The fault handler's first act is to
//! search "an in-memory table … implemented as a height balanced binary
//! tree" with the faulting address; we use our own [`crate::avl::AvlMap`]
//! keyed by frame base address, exactly as described.
//!
//! The frame ↔ page binding is permanent for the life of the store (the
//! address space is large; QuickStore likewise leaves mappings in place so
//! swizzled pointers stay valid). Eviction merely drops residency and
//! protection; a later dereference faults and reloads the same page into
//! the same frame.

use crate::avl::AvlMap;
use qs_types::{FrameId, PageId, QsError, QsResult, VAddr, PAGE_SIZE};
use std::collections::HashMap;

/// Status of one mapped page (Figure 1's page-descriptor entry).
#[derive(Debug, Clone)]
pub struct PageDescriptor {
    pub page: PageId,
    pub frame: FrameId,
    /// Recovery actions for the current transaction are complete (page or
    /// blocks copied / dirty-marked, lock held, write enabled as needed).
    pub recovery_enabled: bool,
    /// This transaction holds an exclusive lock on the page.
    pub x_locked: bool,
    /// This transaction holds at least a shared lock (ESM caches pages
    /// across transactions but never locks, §3.1 — so the first touch per
    /// transaction re-faults and re-locks).
    pub s_locked: bool,
    /// Page was created by the current transaction (flushed as a whole-page
    /// image, the way ESM logs new pages).
    pub created_this_txn: bool,
}

impl PageDescriptor {
    fn new(page: PageId, frame: FrameId) -> PageDescriptor {
        PageDescriptor {
            page,
            frame,
            recovery_enabled: false,
            x_locked: false,
            s_locked: false,
            created_this_txn: false,
        }
    }

    /// Base virtual address of the frame this page maps to.
    pub fn base_vaddr(&self) -> VAddr {
        VAddr::new(self.frame, 0)
    }

    /// Reset per-transaction state (commit/abort boundary: locks released,
    /// recovery must be re-enabled by the next update).
    pub fn end_txn(&mut self) {
        self.recovery_enabled = false;
        self.x_locked = false;
        self.s_locked = false;
        self.created_this_txn = false;
    }
}

/// The descriptor table: page → descriptor plus the AVL index by address.
#[derive(Debug, Default)]
pub struct DescriptorTable {
    by_page: HashMap<PageId, PageDescriptor>,
    by_vaddr: AvlMap<u64, PageId>,
}

impl DescriptorTable {
    pub fn new() -> DescriptorTable {
        DescriptorTable::default()
    }

    pub fn len(&self) -> usize {
        self.by_page.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_page.is_empty()
    }

    /// Bind `page` to `frame` (first touch). Returns the new descriptor.
    pub fn bind(&mut self, page: PageId, frame: FrameId) -> &mut PageDescriptor {
        let d = PageDescriptor::new(page, frame);
        self.by_vaddr.insert(d.base_vaddr().0, page);
        self.by_page.entry(page).or_insert(d)
    }

    pub fn get(&self, page: PageId) -> Option<&PageDescriptor> {
        self.by_page.get(&page)
    }

    pub fn get_mut(&mut self, page: PageId) -> Option<&mut PageDescriptor> {
        self.by_page.get_mut(&page)
    }

    /// The fault handler's search: which descriptor covers this address?
    pub fn lookup_vaddr(&self, va: VAddr) -> QsResult<&PageDescriptor> {
        let (&base, &page) = self
            .by_vaddr
            .floor(&va.0)
            .ok_or(QsError::UnmappedAddress { detail: format!("{va} below every mapped frame") })?;
        if va.0 - base >= PAGE_SIZE as u64 {
            return Err(QsError::UnmappedAddress {
                detail: format!("{va} past the frame mapped at 0x{base:x}"),
            });
        }
        self.by_page.get(&page).ok_or(QsError::UnmappedAddress {
            detail: format!("descriptor index desynchronized at {va}"),
        })
    }

    /// Iterate all descriptors (commit-time reset).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut PageDescriptor> {
        self.by_page.values_mut()
    }

    /// AVL height (diagnostics: must stay logarithmic in mapped pages).
    pub fn index_height(&self) -> usize {
        self.by_vaddr.height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup_by_address() {
        let mut t = DescriptorTable::new();
        t.bind(PageId(10), FrameId(0));
        t.bind(PageId(20), FrameId(1));
        t.bind(PageId(30), FrameId(2));
        // An address in the middle of frame 1 resolves to page 20.
        let va = VAddr::new(FrameId(1), 4000);
        assert_eq!(t.lookup_vaddr(va).unwrap().page, PageId(20));
        // Frame base and last byte also resolve.
        assert_eq!(t.lookup_vaddr(VAddr::new(FrameId(2), 0)).unwrap().page, PageId(30));
        assert_eq!(t.lookup_vaddr(VAddr::new(FrameId(0), PAGE_SIZE - 1)).unwrap().page, PageId(10));
    }

    #[test]
    fn lookup_outside_mapped_space_fails() {
        let mut t = DescriptorTable::new();
        assert!(t.lookup_vaddr(VAddr::new(FrameId(0), 0)).is_err());
        t.bind(PageId(10), FrameId(5));
        // Below the only mapping.
        assert!(t.lookup_vaddr(VAddr::new(FrameId(4), 100)).is_err());
        // Above it (frame 6 was never bound).
        assert!(t.lookup_vaddr(VAddr::new(FrameId(6), 0)).is_err());
    }

    #[test]
    fn end_txn_resets_flags() {
        let mut t = DescriptorTable::new();
        let d = t.bind(PageId(1), FrameId(0));
        d.recovery_enabled = true;
        d.x_locked = true;
        d.s_locked = true;
        d.created_this_txn = true;
        d.end_txn();
        assert!(!d.recovery_enabled && !d.x_locked && !d.s_locked && !d.created_this_txn);
    }

    #[test]
    fn rebind_is_idempotent() {
        let mut t = DescriptorTable::new();
        t.bind(PageId(1), FrameId(0)).recovery_enabled = true;
        // Binding again keeps the existing descriptor.
        let d = t.bind(PageId(1), FrameId(0));
        assert!(d.recovery_enabled);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn index_stays_balanced_over_many_pages() {
        let mut t = DescriptorTable::new();
        for i in 0..4096u32 {
            t.bind(PageId(i), FrameId(i));
        }
        assert!(t.index_height() <= 24, "AVL height {}", t.index_height());
        assert_eq!(t.len(), 4096);
    }
}
