//! The differencing algorithm (paper §3.2.2).
//!
//! Given the before-image of an object and its updated in-place value, find
//! the modified regions and decide which adjacent regions to combine into a
//! single log record. With `H` the log-record header size, two consecutive
//! modified regions separated by a clean gap `D` cost:
//!
//! * separate: `2H + 2·(s1 + s2)` bytes of log,
//! * combined: `H + 2·(s1 + D + s2)` bytes,
//!
//! so separate records win exactly when `2·D > H` — the paper's rule. The
//! decision depends only on the gap, so a left-to-right greedy pass yields
//! the global minimum ("the algorithm is guaranteed to generate the minimum
//! amount of log traffic"), a fact the property tests check against brute
//! force.

use qs_types::LOG_HEADER_SIZE;

/// A modified byte range `[start, end)` within an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    pub start: usize,
    pub end: usize,
}

impl Region {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Maximal runs of bytes that differ between `before` and `after`.
/// Both slices must be the same length (in-place updates never resize).
pub fn raw_modified_runs(before: &[u8], after: &[u8]) -> Vec<Region> {
    debug_assert_eq!(before.len(), after.len());
    let mut runs = Vec::new();
    let mut i = 0;
    let n = before.len();
    while i < n {
        if before[i] != after[i] {
            let start = i;
            while i < n && before[i] != after[i] {
                i += 1;
            }
            runs.push(Region { start, end: i });
        } else {
            i += 1;
        }
    }
    runs
}

/// Combine adjacent runs per the `2·gap > H` rule (header size `h`).
pub fn combine_regions(runs: &[Region], h: usize) -> Vec<Region> {
    let mut out = Vec::new();
    let mut iter = runs.iter();
    let Some(first) = iter.next() else {
        return out;
    };
    let mut pending = *first;
    for r in iter {
        let gap = r.start - pending.end;
        if 2 * gap > h {
            out.push(pending);
            pending = *r;
        } else {
            pending.end = r.end;
        }
    }
    out.push(pending);
    out
}

/// Diff one object: modified regions, already combined for minimal log
/// traffic with the standard header size.
pub fn diff_object(before: &[u8], after: &[u8]) -> Vec<Region> {
    combine_regions(&raw_modified_runs(before, after), LOG_HEADER_SIZE)
}

/// Total log bytes a set of regions would occupy (header + before + after
/// per region) — the quantity the algorithm minimizes.
pub fn log_bytes(regions: &[Region], h: usize) -> usize {
    regions.iter().map(|r| h + 2 * r.len()).sum()
}

/// Exhaustive minimum over all ways of merging the raw runs into
/// consecutive groups (exponential; test oracle only).
pub fn brute_force_min_log_bytes(runs: &[Region], h: usize) -> usize {
    fn rec(runs: &[Region], h: usize, i: usize, open: Option<Region>) -> usize {
        match (i == runs.len(), open) {
            (true, None) => 0,
            (true, Some(r)) => h + 2 * r.len(),
            (false, None) => rec(runs, h, i + 1, Some(runs[i])),
            (false, Some(r)) => {
                // Close the open group before runs[i] …
                let close = h + 2 * r.len() + rec(runs, h, i + 1, Some(runs[i]));
                // … or extend it through the gap.
                let extend = rec(runs, h, i + 1, Some(Region { start: r.start, end: runs[i].end }));
                close.min(extend)
            }
        }
    }
    rec(runs, h, 0, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions(v: &[(usize, usize)]) -> Vec<Region> {
        v.iter().map(|&(s, e)| Region { start: s, end: e }).collect()
    }

    #[test]
    fn identical_objects_produce_nothing() {
        let a = vec![7u8; 100];
        assert!(diff_object(&a, &a).is_empty());
    }

    #[test]
    fn single_changed_word() {
        let before = vec![0u8; 64];
        let mut after = before.clone();
        after[8..12].fill(9);
        assert_eq!(diff_object(&before, &after), regions(&[(8, 12)]));
    }

    #[test]
    fn papers_first_and_third_word_example() {
        // §3.2.2: words 1 and 3 of an object updated (1 word = 4 bytes).
        // Gap D = 4 bytes; 2·4 = 8 ≤ H = 50 → combine into one region
        // covering words 1–3 (12 bytes), for 74 total log bytes vs 116.
        let before = vec![0u8; 64];
        let mut after = before.clone();
        after[0..4].fill(1); // word 1
        after[8..12].fill(3); // word 3
        let combined = diff_object(&before, &after);
        assert_eq!(combined, regions(&[(0, 12)]));
        assert_eq!(log_bytes(&combined, LOG_HEADER_SIZE), 74);
        let separate = raw_modified_runs(&before, &after);
        assert_eq!(log_bytes(&separate, LOG_HEADER_SIZE), 116);
    }

    #[test]
    fn large_gap_keeps_regions_separate() {
        // Gap of 26 bytes: 2·26 = 52 > 50 → separate records.
        let before = vec![0u8; 64];
        let mut after = before.clone();
        after[0..4].fill(1);
        after[30..34].fill(1);
        assert_eq!(diff_object(&before, &after), regions(&[(0, 4), (30, 34)]));
        // Gap of 25 bytes: 2·25 = 50 = H → combine (strict inequality).
        let mut after2 = before.clone();
        after2[0..4].fill(1);
        after2[29..33].fill(1);
        assert_eq!(diff_object(&before, &after2), regions(&[(0, 33)]));
    }

    #[test]
    fn figure2_three_regions() {
        // Figure 2: R1, R2 close together (combine), R3 far away (separate).
        let before = vec![0u8; 200];
        let mut after = before.clone();
        after[0..8].fill(1); // R1
        after[12..20].fill(2); // R2: gap 4 → combine with R1
        after[120..128].fill(3); // R3: gap 100 → separate
        assert_eq!(diff_object(&before, &after), regions(&[(0, 20), (120, 128)]));
    }

    #[test]
    fn whole_object_changed() {
        let before = vec![0u8; 256];
        let after = vec![1u8; 256];
        assert_eq!(diff_object(&before, &after), regions(&[(0, 256)]));
    }

    #[test]
    fn greedy_matches_brute_force_on_tricky_layouts() {
        // Several region layouts around the threshold; the greedy result
        // must always equal the exhaustive optimum.
        let layouts: &[&[(usize, usize)]] = &[
            &[(0, 4), (8, 12), (40, 44)],
            &[(0, 2), (27, 29), (56, 58), (85, 87)],
            &[(0, 10), (11, 21), (60, 61)],
            &[(5, 6), (32, 33), (59, 60), (86, 87), (113, 114)],
            &[(0, 1), (26, 27), (53, 54)],
        ];
        for l in layouts {
            let runs = regions(l);
            let greedy = combine_regions(&runs, LOG_HEADER_SIZE);
            assert_eq!(
                log_bytes(&greedy, LOG_HEADER_SIZE),
                brute_force_min_log_bytes(&runs, LOG_HEADER_SIZE),
                "layout {l:?}"
            );
        }
    }

    #[test]
    fn regions_cover_all_raw_runs() {
        let before: Vec<u8> = (0..255u8).collect();
        let mut after = before.clone();
        for i in (0..255).step_by(17) {
            after[i] ^= 0xFF;
        }
        let combined = diff_object(&before, &after);
        for run in raw_modified_runs(&before, &after) {
            assert!(
                combined.iter().any(|r| r.start <= run.start && run.end <= r.end),
                "run {run:?} not covered"
            );
        }
    }
}
