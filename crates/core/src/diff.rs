//! The differencing algorithm (paper §3.2.2).
//!
//! Given the before-image of an object and its updated in-place value, find
//! the modified regions and decide which adjacent regions to combine into a
//! single log record. With `H` the log-record header size, two consecutive
//! modified regions separated by a clean gap `D` cost:
//!
//! * separate: `2H + 2·(s1 + s2)` bytes of log,
//! * combined: `H + 2·(s1 + D + s2)` bytes,
//!
//! so separate records win exactly when `2·D > H` — the paper's rule. The
//! decision depends only on the gap, so a left-to-right greedy pass yields
//! the global minimum ("the algorithm is guaranteed to generate the minimum
//! amount of log traffic"), a fact the property tests check against brute
//! force.

use qs_types::LOG_HEADER_SIZE;

/// A modified byte range `[start, end)` within an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    pub start: usize,
    pub end: usize,
}

impl Region {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Maximal runs of bytes that differ between `before` and `after`.
/// Both slices must be the same length (in-place updates never resize).
///
/// Word-parallel: see [`append_modified_runs`] for the kernel. The
/// reference byte-at-a-time loop survives as
/// [`raw_modified_runs_scalar`], the oracle the property tests compare
/// against.
pub fn raw_modified_runs(before: &[u8], after: &[u8]) -> Vec<Region> {
    let mut runs = Vec::new();
    append_modified_runs(before, after, 0, &mut runs);
    runs
}

/// The original byte-at-a-time run finder. Kept verbatim as the test
/// oracle for the u64 kernel — its output defines "maximal runs".
pub fn raw_modified_runs_scalar(before: &[u8], after: &[u8]) -> Vec<Region> {
    debug_assert_eq!(before.len(), after.len());
    let mut runs = Vec::new();
    let mut i = 0;
    let n = before.len();
    while i < n {
        if before[i] != after[i] {
            let start = i;
            while i < n && before[i] != after[i] {
                i += 1;
            }
            runs.push(Region { start, end: i });
        } else {
            i += 1;
        }
    }
    runs
}

/// Bit `k` of the result is set iff byte `k` (little-endian) of `x` is
/// nonzero — i.e. iff byte `k` of the two compared words differs. The
/// byte-to-bit collapse is a SWAR OR-fold; the gather multiply places
/// byte `k`'s indicator at bit `56 + k` (positions `8k + 7 + 7j` collide
/// for no two `(k, j)` pairs, and only `k + j = 7` terms land in the top
/// byte, so no carries pollute the mask).
#[inline]
fn diff_byte_mask(x: u64) -> u32 {
    let m = x | (x >> 4);
    let m = m | (m >> 2);
    let m = m | (m >> 1);
    let m = m & 0x0101_0101_0101_0101;
    (m.wrapping_mul(0x0102_0408_1020_4080) >> 56) as u32
}

/// The u64 diff kernel: append the maximal modified runs of
/// `before[..] != after[..]` to `out`, shifting every offset by `base`
/// (run coordinates are `base + i`). If the first new run starts exactly
/// where `out`'s last run ends, the two are merged — this is what keeps
/// runs maximal across word boundaries and across consecutive kernel
/// invocations on adjacent sub-ranges.
///
/// Strategy: compare 8 bytes at a time via XOR (`u64::from_le_bytes`
/// performs an unaligned load, so the slices may start anywhere), skip
/// clean words in 32-byte gulps, and resolve exact byte boundaries inside
/// a dirty word with `trailing_zeros` on the XOR word's byte-collapse
/// mask ([`diff_byte_mask`]). The scalar tail handles the last
/// `len % 8` bytes. Output is exactly [`raw_modified_runs_scalar`]'s.
pub fn append_modified_runs(before: &[u8], after: &[u8], base: usize, out: &mut Vec<Region>) {
    debug_assert_eq!(before.len(), after.len());
    let n = before.len();
    #[inline]
    fn push(out: &mut Vec<Region>, start: usize, end: usize) {
        if let Some(last) = out.last_mut() {
            if last.end == start {
                last.end = end;
                return;
            }
        }
        out.push(Region { start, end });
    }
    #[inline]
    fn xor_at(before: &[u8], after: &[u8], i: usize) -> u64 {
        let b = u64::from_le_bytes(before[i..i + 8].try_into().unwrap());
        let a = u64::from_le_bytes(after[i..i + 8].try_into().unwrap());
        a ^ b
    }
    let mut i = 0;
    while i + 8 <= n {
        // Bulk-skip: four clean words at a time.
        while i + 32 <= n {
            let any = xor_at(before, after, i)
                | xor_at(before, after, i + 8)
                | xor_at(before, after, i + 16)
                | xor_at(before, after, i + 24);
            if any != 0 {
                break;
            }
            i += 32;
        }
        if i + 8 > n {
            break;
        }
        let x = xor_at(before, after, i);
        if x != 0 {
            // Walk the 1-runs of the byte mask: each is a maximal run of
            // differing bytes inside this word.
            let mut mask = diff_byte_mask(x);
            while mask != 0 {
                let s = mask.trailing_zeros() as usize;
                let len = (!(mask >> s)).trailing_zeros() as usize;
                push(out, base + i + s, base + i + s + len);
                mask &= !(((1u32 << len) - 1) << s);
            }
        }
        i += 8;
    }
    // Scalar tail (< 8 bytes).
    while i < n {
        if before[i] != after[i] {
            let start = i;
            while i < n && before[i] != after[i] {
                i += 1;
            }
            push(out, base + start, base + i);
        } else {
            i += 1;
        }
    }
}

/// Combine adjacent runs per the `2·gap > H` rule (header size `h`).
pub fn combine_regions(runs: &[Region], h: usize) -> Vec<Region> {
    let mut out = Vec::new();
    combine_regions_into(runs, h, &mut out);
    out
}

/// [`combine_regions`] into a caller-provided scratch vector (cleared
/// first) — the commit hot path reuses one across all pages of a
/// transaction so steady-state diffing never allocates.
pub fn combine_regions_into(runs: &[Region], h: usize, out: &mut Vec<Region>) {
    out.clear();
    let mut iter = runs.iter();
    let Some(first) = iter.next() else {
        return;
    };
    let mut pending = *first;
    for r in iter {
        let gap = r.start - pending.end;
        if 2 * gap > h {
            out.push(pending);
            pending = *r;
        } else {
            pending.end = r.end;
        }
    }
    out.push(pending);
}

/// Diff one object: modified regions, already combined for minimal log
/// traffic with the standard header size.
pub fn diff_object(before: &[u8], after: &[u8]) -> Vec<Region> {
    combine_regions(&raw_modified_runs(before, after), LOG_HEADER_SIZE)
}

/// [`diff_object`] with caller-provided scratch: `runs` holds the raw
/// runs, `out` the combined regions (both cleared first). Allocation-free
/// once the scratch vectors have warmed up.
pub fn diff_object_into(
    before: &[u8],
    after: &[u8],
    runs: &mut Vec<Region>,
    out: &mut Vec<Region>,
) {
    runs.clear();
    append_modified_runs(before, after, 0, runs);
    combine_regions_into(runs, LOG_HEADER_SIZE, out);
}

/// Total log bytes a set of regions would occupy (header + before + after
/// per region) — the quantity the algorithm minimizes.
pub fn log_bytes(regions: &[Region], h: usize) -> usize {
    regions.iter().map(|r| h + 2 * r.len()).sum()
}

/// Modified bytes only (no headers, no before-images): the payload a
/// REDO-only logical record set carries for these regions.
pub fn after_bytes(regions: &[Region]) -> usize {
    regions.iter().map(Region::len).sum()
}

/// Log bytes a REDO-only logical record set would occupy: header plus the
/// after-image per region (logical records carry no before half).
pub fn redo_only_log_bytes(regions: &[Region], h: usize) -> usize {
    regions.iter().map(|r| h + r.len()).sum()
}

/// Number of distinct `block`-byte blocks the regions touch — the
/// sub-page schemes' write-set granularity. `regions` must be sorted and
/// non-overlapping (what the diff pipeline produces).
pub fn distinct_blocks(regions: &[Region], block: usize) -> usize {
    debug_assert!(block.is_power_of_two());
    let mut count = 0usize;
    let mut last: Option<usize> = None;
    for r in regions {
        if r.is_empty() {
            continue;
        }
        let mut first = r.start / block;
        let end = (r.end - 1) / block;
        if let Some(l) = last {
            debug_assert!(first >= l, "regions must be sorted");
            first = first.max(l + 1);
            if end < first {
                continue;
            }
        }
        count += end - first + 1;
        last = Some(end);
    }
    count
}

/// Log bytes under block-rounded (sub-page) logging: each touched block
/// costs a header plus its before+after images, whatever the actual
/// modified span inside it.
pub fn block_rounded_log_bytes(regions: &[Region], h: usize, block: usize) -> usize {
    distinct_blocks(regions, block) * (h + 2 * block)
}

/// Expand each region to `block`-byte boundaries (clipped to `len`) and
/// merge any overlaps — the record spans an SD-format emission uses when
/// the write set was captured at page granularity. `regions` must be
/// sorted and non-overlapping; the output is too.
pub fn block_align_regions(regions: &[Region], block: usize, len: usize, out: &mut Vec<Region>) {
    debug_assert!(block.is_power_of_two());
    out.clear();
    for r in regions {
        if r.is_empty() {
            continue;
        }
        let start = (r.start / block * block).min(len);
        let end = ((r.end - 1) / block + 1) * block;
        let end = end.min(len);
        if let Some(last) = out.last_mut() {
            if start <= last.end {
                last.end = last.end.max(end);
                continue;
            }
        }
        out.push(Region { start, end });
    }
}

/// Exhaustive minimum over all ways of merging the raw runs into
/// consecutive groups (exponential; test oracle only).
pub fn brute_force_min_log_bytes(runs: &[Region], h: usize) -> usize {
    fn rec(runs: &[Region], h: usize, i: usize, open: Option<Region>) -> usize {
        match (i == runs.len(), open) {
            (true, None) => 0,
            (true, Some(r)) => h + 2 * r.len(),
            (false, None) => rec(runs, h, i + 1, Some(runs[i])),
            (false, Some(r)) => {
                // Close the open group before runs[i] …
                let close = h + 2 * r.len() + rec(runs, h, i + 1, Some(runs[i]));
                // … or extend it through the gap.
                let extend = rec(runs, h, i + 1, Some(Region { start: r.start, end: runs[i].end }));
                close.min(extend)
            }
        }
    }
    rec(runs, h, 0, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions(v: &[(usize, usize)]) -> Vec<Region> {
        v.iter().map(|&(s, e)| Region { start: s, end: e }).collect()
    }

    #[test]
    fn identical_objects_produce_nothing() {
        let a = vec![7u8; 100];
        assert!(diff_object(&a, &a).is_empty());
    }

    #[test]
    fn single_changed_word() {
        let before = vec![0u8; 64];
        let mut after = before.clone();
        after[8..12].fill(9);
        assert_eq!(diff_object(&before, &after), regions(&[(8, 12)]));
    }

    #[test]
    fn papers_first_and_third_word_example() {
        // §3.2.2: words 1 and 3 of an object updated (1 word = 4 bytes).
        // Gap D = 4 bytes; 2·4 = 8 ≤ H = 50 → combine into one region
        // covering words 1–3 (12 bytes), for 74 total log bytes vs 116.
        let before = vec![0u8; 64];
        let mut after = before.clone();
        after[0..4].fill(1); // word 1
        after[8..12].fill(3); // word 3
        let combined = diff_object(&before, &after);
        assert_eq!(combined, regions(&[(0, 12)]));
        assert_eq!(log_bytes(&combined, LOG_HEADER_SIZE), 74);
        let separate = raw_modified_runs(&before, &after);
        assert_eq!(log_bytes(&separate, LOG_HEADER_SIZE), 116);
    }

    #[test]
    fn large_gap_keeps_regions_separate() {
        // Gap of 26 bytes: 2·26 = 52 > 50 → separate records.
        let before = vec![0u8; 64];
        let mut after = before.clone();
        after[0..4].fill(1);
        after[30..34].fill(1);
        assert_eq!(diff_object(&before, &after), regions(&[(0, 4), (30, 34)]));
        // Gap of 25 bytes: 2·25 = 50 = H → combine (strict inequality).
        let mut after2 = before.clone();
        after2[0..4].fill(1);
        after2[29..33].fill(1);
        assert_eq!(diff_object(&before, &after2), regions(&[(0, 33)]));
    }

    #[test]
    fn figure2_three_regions() {
        // Figure 2: R1, R2 close together (combine), R3 far away (separate).
        let before = vec![0u8; 200];
        let mut after = before.clone();
        after[0..8].fill(1); // R1
        after[12..20].fill(2); // R2: gap 4 → combine with R1
        after[120..128].fill(3); // R3: gap 100 → separate
        assert_eq!(diff_object(&before, &after), regions(&[(0, 20), (120, 128)]));
    }

    #[test]
    fn whole_object_changed() {
        let before = vec![0u8; 256];
        let after = vec![1u8; 256];
        assert_eq!(diff_object(&before, &after), regions(&[(0, 256)]));
    }

    #[test]
    fn greedy_matches_brute_force_on_tricky_layouts() {
        // Several region layouts around the threshold; the greedy result
        // must always equal the exhaustive optimum.
        let layouts: &[&[(usize, usize)]] = &[
            &[(0, 4), (8, 12), (40, 44)],
            &[(0, 2), (27, 29), (56, 58), (85, 87)],
            &[(0, 10), (11, 21), (60, 61)],
            &[(5, 6), (32, 33), (59, 60), (86, 87), (113, 114)],
            &[(0, 1), (26, 27), (53, 54)],
        ];
        for l in layouts {
            let runs = regions(l);
            let greedy = combine_regions(&runs, LOG_HEADER_SIZE);
            assert_eq!(
                log_bytes(&greedy, LOG_HEADER_SIZE),
                brute_force_min_log_bytes(&runs, LOG_HEADER_SIZE),
                "layout {l:?}"
            );
        }
    }

    #[test]
    fn kernel_matches_scalar_on_word_boundary_patterns() {
        // Hand-picked adversarial layouts; the seeded property loop in
        // tests/prop_diff.rs covers the general case.
        let n = 64;
        let before = vec![0u8; n];
        let layouts: &[&[usize]] = &[
            &[],
            &[0],
            &[7],
            &[8],
            &[15, 16],                 // run straddling a word boundary
            &[6, 7, 8, 9],             // run across words 0 and 1
            &[0, 1, 2, 3, 4, 5, 6, 7], // exactly one full word
            &[31, 32, 33],
            &[56, 63],         // last word, both edges
            &[60, 61, 62, 63], // tail-adjacent
        ];
        for l in layouts {
            let mut after = before.clone();
            for &i in *l {
                after[i] ^= 0xA5;
            }
            assert_eq!(
                raw_modified_runs(&before, &after),
                raw_modified_runs_scalar(&before, &after),
                "layout {l:?}"
            );
        }
        // All-diff and all-equal whole pages.
        let a = vec![1u8; 8192];
        let b = vec![2u8; 8192];
        assert_eq!(raw_modified_runs(&a, &b), raw_modified_runs_scalar(&a, &b));
        assert_eq!(raw_modified_runs(&a, &a), Vec::new());
    }

    #[test]
    fn append_merges_contiguous_runs_across_calls() {
        // Diffing adjacent sub-ranges (the SD block path) must yield the
        // same maximal runs as diffing the whole span at once.
        let before = vec![0u8; 128];
        let mut after = before.clone();
        after[60..68].fill(9); // straddles the 64-byte split below
        let mut split = Vec::new();
        append_modified_runs(&before[..64], &after[..64], 0, &mut split);
        append_modified_runs(&before[64..], &after[64..], 64, &mut split);
        assert_eq!(split, raw_modified_runs_scalar(&before, &after));
    }

    #[test]
    fn diff_object_into_reuses_scratch() {
        let before = vec![0u8; 256];
        let mut after = before.clone();
        after[10..14].fill(1);
        after[200..210].fill(2);
        let mut runs = Vec::new();
        let mut out = Vec::new();
        for _ in 0..3 {
            diff_object_into(&before, &after, &mut runs, &mut out);
            assert_eq!(out, diff_object(&before, &after));
        }
    }

    #[test]
    fn density_stats() {
        let rs = regions(&[(0, 4), (60, 68), (128, 192)]);
        assert_eq!(after_bytes(&rs), 4 + 8 + 64);
        assert_eq!(redo_only_log_bytes(&rs, 50), 3 * 50 + 76);
        // Blocks of 64: region 1 → block 0; region 2 → blocks 0–1 (block 0
        // already counted); region 3 → block 2.
        assert_eq!(distinct_blocks(&rs, 64), 3);
        assert_eq!(block_rounded_log_bytes(&rs, 50, 64), 3 * (50 + 128));
        assert_eq!(distinct_blocks(&[], 64), 0);
        // A region ending exactly on a block boundary stays in its block.
        assert_eq!(distinct_blocks(&regions(&[(0, 64)]), 64), 1);
        assert_eq!(distinct_blocks(&regions(&[(63, 65)]), 64), 2);
    }

    #[test]
    fn block_alignment_expands_and_merges() {
        let mut out = Vec::new();
        // Two regions inside the same block collapse into it; the third
        // touches the adjacent block, so the whole span merges into one
        // record clipped to the object length.
        block_align_regions(&regions(&[(2, 6), (10, 12), (70, 100)]), 64, 90, &mut out);
        assert_eq!(out, regions(&[(0, 90)]));
        // Adjacent aligned spans merge into one.
        block_align_regions(&regions(&[(0, 4), (66, 68)]), 64, 128, &mut out);
        assert_eq!(out, regions(&[(0, 128)]));
        // Distant regions stay separate.
        block_align_regions(&regions(&[(0, 4), (200, 204)]), 64, 512, &mut out);
        assert_eq!(out, regions(&[(0, 64), (192, 256)]));
        block_align_regions(&[], 64, 512, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn regions_cover_all_raw_runs() {
        let before: Vec<u8> = (0..255u8).collect();
        let mut after = before.clone();
        for i in (0..255).step_by(17) {
            after[i] ^= 0xFF;
        }
        let combined = diff_object(&before, &after);
        for run in raw_modified_runs(&before, &after) {
            assert!(
                combined.iter().any(|r| r.start <= run.start && run.end <= r.end),
                "run {run:?} not covered"
            );
        }
    }
}
