//! QuickStore: a memory-mapped object store with pluggable crash-recovery
//! strategies — a from-scratch reproduction of the system studied in
//! White & DeWitt, *"Implementing Crash Recovery in QuickStore: A
//! Performance Study"* (SIGMOD 1995).
//!
//! The store gives applications access to persistent objects through
//! virtual-memory mapping (simulated deterministically by `qs-vmem`): reads
//! run at memory speed; the *first* update to a page is intercepted —
//! either by a write-protection fault (page differencing, whole-page
//! logging, redo-at-server) or by a compiler-inserted update function
//! (sub-page differencing/logging) — to enable recovery for that page.
//!
//! Crate map:
//!
//! * [`avl`] — the height-balanced tree behind the descriptor table.
//! * [`descriptor`] — page descriptors + address-indexed table (Fig. 1).
//! * [`recovery_buffer`] — FIFO-managed before-image memory (Fig. 1/3).
//! * [`diff`] — the region-combining diff algorithm (Fig. 2), provably
//!   minimal in log bytes.
//! * [`config`] — the paper's software versions (Table 3).
//! * [`store`] — the [`Store`] API: `begin/commit/abort`, `read`,
//!   `write` (hardware detection), `update` (software detection),
//!   `allocate`.
//!
//! ```
//! use quickstore::{Store, SystemConfig};
//! use qs_esm::{ClientConn, Server, ServerConfig, RecoveryFlavor};
//! use qs_sim::Meter;
//! use qs_types::ClientId;
//! use std::sync::Arc;
//!
//! let meter = Meter::new();
//! let cfg = SystemConfig::pd_esm().with_memory(2.0, 0.5);
//! let server = Arc::new(Server::format(
//!     ServerConfig::new(RecoveryFlavor::EsmAries).with_pool_mb(1.0).with_log_mb(8.0)
//!         .with_volume_pages(64),
//!     Arc::clone(&meter),
//! ).unwrap());
//! let client = ClientConn::new(ClientId(0), server, cfg.client_pool_pages(), meter);
//! let mut store = Store::new(client, cfg).unwrap();
//!
//! store.begin().unwrap();
//! let oid = store.allocate(b"hello, persistent world").unwrap();
//! store.commit().unwrap();
//!
//! store.begin().unwrap();
//! assert_eq!(store.read(oid).unwrap(), b"hello, persistent world");
//! store.modify(oid, 0, b"HELLO").unwrap();
//! store.commit().unwrap();
//! ```

pub mod adaptive;
pub mod avl;
pub mod config;
pub mod descriptor;
pub mod diff;
pub mod recovery_buffer;
pub mod store;

pub use adaptive::AdaptiveSplit;
pub use config::{LogGeneration, SystemConfig};
pub use store::Store;
