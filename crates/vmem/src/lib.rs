//! Simulated virtual memory: the substrate QuickStore's memory-mapped
//! architecture stands on.
//!
//! The real QuickStore `mmap`s database pages into 8 KB *virtual frames*
//! and manipulates per-page protection so that the first write to a frame
//! raises SIGSEGV and lands in the QuickStore fault handler (paper §3.2.1).
//! This crate reproduces that mechanism deterministically in software:
//!
//! * an address space of frames, each [`qs_types::PAGE_SIZE`] bytes;
//! * per-frame protection bits ([`Prot`]);
//! * access *checks* ([`Mmu::check_read`] / [`Mmu::check_write`]) that
//!   classify an access exactly the way the MMU + signal machinery would:
//!   fine, mapping fault, or write-protection fault.
//!
//! The store layered above performs the check before every object access
//! and runs its fault handler on a fault — the same control flow as
//! hardware delivery, minus the signal trampoline (whose CPU cost is
//! carried by the performance model's `fault_overhead_instr`).
//!
//! Substitution note (DESIGN.md §2): using real `mmap`/`mprotect` would add
//! nothing to the algorithms under study and would make the crash tests
//! nondeterministic and platform-bound.

use qs_trace::{TraceCat, Tracer};
use qs_types::{FrameId, QsError, QsResult, VAddr, PAGE_SIZE};
use std::sync::Arc;

/// Per-frame protection, mirroring `PROT_NONE` / `PROT_READ` /
/// `PROT_READ|PROT_WRITE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Prot {
    /// Not mapped (or mapped with no access): any touch faults.
    #[default]
    None,
    /// Read-only: reads pass, writes raise a protection fault. This is the
    /// state QuickStore leaves a freshly mapped page in, so that the first
    /// update can be intercepted to enable recovery.
    Read,
    /// Full access: the page has recovery enabled (or the scheme does not
    /// need write interception).
    ReadWrite,
}

/// How an access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessFault {
    /// The frame is not mapped (`Prot::None`): QuickStore must fetch and
    /// map the page (a *read fault* in the paper's terminology).
    Unmapped(FrameId),
    /// The frame is mapped read-only and the access is a write: QuickStore
    /// must enable recovery for the page (a *write fault*).
    WriteProtected(FrameId),
}

/// The software MMU: an allocatable space of protected frames.
///
/// The MMU knows nothing about pages or buffers — it is pure protection
/// state. The store above owns the mapping frame ↔ database page.
#[derive(Debug, Default)]
pub struct Mmu {
    prot: Vec<Prot>,
    free: Vec<FrameId>,
    /// Protection changes performed (each models an `mprotect` call).
    protect_calls: u64,
    /// Observability hook (disabled by default: one branch per fault).
    tracer: Arc<Tracer>,
}

impl Mmu {
    pub fn new() -> Mmu {
        Mmu::default()
    }

    /// Route fault events into `tracer` (the store installs this).
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = tracer;
    }

    /// Number of frames ever allocated (address-space size).
    pub fn frame_count(&self) -> usize {
        self.prot.len()
    }

    /// `mprotect` calls performed so far (performance-model input).
    pub fn protect_calls(&self) -> u64 {
        self.protect_calls
    }

    /// Reserve a frame (fresh or recycled), initially `Prot::None`.
    pub fn alloc_frame(&mut self) -> FrameId {
        if let Some(f) = self.free.pop() {
            self.prot[f.index()] = Prot::None;
            return f;
        }
        let f = FrameId(self.prot.len() as u32);
        self.prot.push(Prot::None);
        f
    }

    /// Release a frame for reuse (the page it mapped was evicted).
    pub fn free_frame(&mut self, frame: FrameId) {
        if let Some(p) = self.prot.get_mut(frame.index()) {
            *p = Prot::None;
            self.free.push(frame);
        }
    }

    /// Change a frame's protection (models `mprotect`).
    pub fn protect(&mut self, frame: FrameId, prot: Prot) -> QsResult<()> {
        let slot = self.prot.get_mut(frame.index()).ok_or(QsError::UnmappedAddress {
            detail: format!("frame {frame:?} beyond address space"),
        })?;
        *slot = prot;
        self.protect_calls += 1;
        Ok(())
    }

    pub fn prot(&self, frame: FrameId) -> Prot {
        self.prot.get(frame.index()).copied().unwrap_or(Prot::None)
    }

    fn frame_of_access(&self, va: VAddr, len: usize) -> QsResult<FrameId> {
        if len == 0 || len > PAGE_SIZE {
            return Err(QsError::UnmappedAddress { detail: format!("access of {len} bytes") });
        }
        let first = va.frame();
        let last = va.add(len - 1).frame();
        if first != last {
            return Err(QsError::CrossesFrameBoundary);
        }
        if first.index() >= self.prot.len() {
            return Err(QsError::UnmappedAddress { detail: format!("{va} beyond address space") });
        }
        Ok(first)
    }

    /// Classify a read access: `Ok(frame)` if it would succeed, a fault
    /// otherwise. Errors are genuine program errors (wild pointers).
    pub fn check_read(&self, va: VAddr, len: usize) -> QsResult<Result<FrameId, AccessFault>> {
        let frame = self.frame_of_access(va, len)?;
        Ok(match self.prot(frame) {
            Prot::None => {
                self.tracer.event(TraceCat::Fault, "read_unmapped", frame.index() as u64, 0);
                Err(AccessFault::Unmapped(frame))
            }
            Prot::Read | Prot::ReadWrite => Ok(frame),
        })
    }

    /// Classify a write access.
    pub fn check_write(&self, va: VAddr, len: usize) -> QsResult<Result<FrameId, AccessFault>> {
        let frame = self.frame_of_access(va, len)?;
        Ok(match self.prot(frame) {
            Prot::None => {
                self.tracer.event(TraceCat::Fault, "write_unmapped", frame.index() as u64, 1);
                Err(AccessFault::Unmapped(frame))
            }
            Prot::Read => {
                self.tracer.event(TraceCat::Fault, "write_protected", frame.index() as u64, 1);
                Err(AccessFault::WriteProtected(frame))
            }
            Prot::ReadWrite => Ok(frame),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_protect_check_cycle() {
        let mut mmu = Mmu::new();
        let f = mmu.alloc_frame();
        let va = VAddr::new(f, 100);
        // Unmapped: both accesses fault.
        assert_eq!(mmu.check_read(va, 4).unwrap(), Err(AccessFault::Unmapped(f)));
        assert_eq!(mmu.check_write(va, 4).unwrap(), Err(AccessFault::Unmapped(f)));
        // Read-only: reads pass, writes raise a protection fault. This is
        // the paper's recovery-interception hook.
        mmu.protect(f, Prot::Read).unwrap();
        assert_eq!(mmu.check_read(va, 4).unwrap(), Ok(f));
        assert_eq!(mmu.check_write(va, 4).unwrap(), Err(AccessFault::WriteProtected(f)));
        // Read-write: everything passes.
        mmu.protect(f, Prot::ReadWrite).unwrap();
        assert_eq!(mmu.check_write(va, 4).unwrap(), Ok(f));
        assert_eq!(mmu.protect_calls(), 2);
    }

    #[test]
    fn frames_recycle_with_none_protection() {
        let mut mmu = Mmu::new();
        let f = mmu.alloc_frame();
        mmu.protect(f, Prot::ReadWrite).unwrap();
        mmu.free_frame(f);
        let g = mmu.alloc_frame();
        assert_eq!(g, f, "freed frame is reused");
        assert_eq!(mmu.prot(g), Prot::None, "reused frame starts unmapped");
        assert_eq!(mmu.frame_count(), 1);
    }

    #[test]
    fn cross_frame_access_rejected() {
        let mut mmu = Mmu::new();
        let f = mmu.alloc_frame();
        let _g = mmu.alloc_frame();
        let near_end = VAddr::new(f, PAGE_SIZE - 2);
        assert!(matches!(mmu.check_read(near_end, 4), Err(QsError::CrossesFrameBoundary)));
        // Exactly to the end is fine.
        assert!(mmu.check_read(near_end, 2).is_ok());
    }

    #[test]
    fn wild_addresses_are_errors_not_faults() {
        let mmu = Mmu::new();
        let va = VAddr::new(FrameId(99), 0);
        assert!(matches!(mmu.check_read(va, 4), Err(QsError::UnmappedAddress { .. })));
        let mut mmu = Mmu::new();
        let f = mmu.alloc_frame();
        assert!(mmu.check_read(VAddr::new(f, 0), 0).is_err(), "zero-length access");
        assert!(mmu.protect(FrameId(5), Prot::Read).is_err());
    }

    #[test]
    fn whole_frame_access_allowed() {
        let mut mmu = Mmu::new();
        let f = mmu.alloc_frame();
        mmu.protect(f, Prot::ReadWrite).unwrap();
        assert!(mmu.check_write(VAddr::new(f, 0), PAGE_SIZE).unwrap().is_ok());
        assert!(mmu.check_write(VAddr::new(f, 0), PAGE_SIZE + 1).is_err());
    }
}
