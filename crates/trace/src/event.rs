//! Trace events: what happened, when (in simulated time), and two small
//! payload words. Events are `Copy` and fixed-size so the ring buffer's
//! cost per record is a few stores.

/// Event category — coarse routing key for filters and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceCat {
    /// Client commit protocol (span end; `a` = pages shipped).
    Commit,
    /// A page (data or log-record page) left the client for the server.
    Ship,
    /// Diff ran over a page (`a` = bytes compared, `b` = records produced).
    Diff,
    /// Recovery-buffer overflow eviction (`a` = victims flushed early).
    RbufEvict,
    /// Virtual-memory fault dispatch (`a` = frame, `b` = 0 read / 1 write).
    Fault,
    /// Lock acquisition that had to wait at the server (`a` = page).
    LockWait,
    /// Subsystem mutex released (`a` = held ns, `b` = wait ns; wall clock).
    LockHold,
    /// Log-manager append (`a` = LSN, `b` = record bytes).
    WalAppend,
    /// Log-manager force (`a` = pages written, `b` = 1 if it was a no-op).
    WalForce,
    /// Server checkpoint (`a` = dirty pages flushed).
    Checkpoint,
    /// Restart-recovery phase marker (`a`/`b` phase-specific).
    Restart,
    /// Reactor run-queue activity (`a` = worker, `b` = queue depth).
    Queue,
    /// Admission control shed a request (`a` = client, `b` = the load
    /// figure that tripped the shed: in-flight count or queue depth).
    Shed,
    /// Background flusher activity (`a`/`b` label-specific: batch pages
    /// written, or nanoseconds stalled claiming a shard).
    Flusher,
}

impl TraceCat {
    pub fn name(self) -> &'static str {
        match self {
            TraceCat::Commit => "commit",
            TraceCat::Ship => "ship",
            TraceCat::Diff => "diff",
            TraceCat::RbufEvict => "rbuf_evict",
            TraceCat::Fault => "fault",
            TraceCat::LockWait => "lock_wait",
            TraceCat::LockHold => "lock_hold",
            TraceCat::WalAppend => "wal_append",
            TraceCat::WalForce => "wal_force",
            TraceCat::Checkpoint => "checkpoint",
            TraceCat::Restart => "restart",
            TraceCat::Queue => "queue",
            TraceCat::Shed => "shed",
            TraceCat::Flusher => "flusher",
        }
    }
}

/// One recorded event. `seq` is a per-tracer monotonic sequence number;
/// `sim_us` is the simulated-clock timestamp in microseconds (the priced
/// cost of everything the meter had counted when the event fired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub seq: u64,
    pub sim_us: u64,
    pub cat: TraceCat,
    pub label: &'static str,
    pub a: u64,
    pub b: u64,
}

impl TraceEvent {
    /// Append this event as a JSON object under way in `w`.
    pub fn write_json(&self, w: &mut qs_sim::JsonWriter) {
        w.begin_object();
        w.field_u64("seq", self.seq);
        w.field_u64("sim_us", self.sim_us);
        w.field_str("cat", self.cat.name());
        w.field_str("label", self.label);
        w.field_u64("a", self.a);
        w.field_u64("b", self.b);
        w.end_object();
    }

    /// One-line rendering for the flight-recorder dump.
    pub fn render(&self) -> String {
        format!(
            "#{:<6} t={:>10}us {:<10} {:<18} a={} b={}",
            self.seq,
            self.sim_us,
            self.cat.name(),
            self.label,
            self.a,
            self.b
        )
    }
}
