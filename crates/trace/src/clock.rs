//! The simulated clock: "now" is the priced cost of everything the meter
//! has counted so far. No wall clock anywhere — two identical runs get
//! identical timestamps, so traces are as replayable as the engine itself.

use qs_sim::{HardwareModel, Meter, MeterSnapshot};
use std::sync::Arc;

/// Prices the meter's running totals into simulated seconds.
#[derive(Clone)]
pub struct SimClock {
    meter: Arc<Meter>,
    hw: HardwareModel,
}

impl SimClock {
    pub fn new(meter: Arc<Meter>, hw: HardwareModel) -> SimClock {
        SimClock { meter, hw }
    }

    pub fn hardware(&self) -> &HardwareModel {
        &self.hw
    }

    /// Simulated seconds elapsed: the single-client total service time of
    /// every event counted so far (client CPU + server CPU + network +
    /// data disk + log disk).
    pub fn now_secs(&self) -> f64 {
        Self::price(&self.meter.snapshot(), &self.hw)
    }

    /// Price an arbitrary snapshot window with this clock's model.
    pub fn price(s: &MeterSnapshot, hw: &HardwareModel) -> f64 {
        hw.client_cpu_secs(s.client_cpu_instr(hw))
            + hw.server_cpu_secs(s.server_cpu_instr(hw))
            + hw.network_secs(s.net_msgs, s.net_bytes)
            + hw.data_disk_secs(s.data_reads + s.data_writes)
            + hw.log_disk_secs(s.log_pages_written, s.log_pages_read, s.log_forces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_the_meter_only() {
        let meter = Meter::new();
        let clock = SimClock::new(Arc::clone(&meter), HardwareModel::paper_1995());
        assert_eq!(clock.now_secs(), 0.0);
        meter.client_cpu(20_000_000); // 1 simulated second at 20 MIPS
        let t1 = clock.now_secs();
        assert!((t1 - 1.0).abs() < 1e-9);
        // No meter activity → no time passes.
        assert_eq!(clock.now_secs(), t1);
        meter.net(8192);
        assert!(clock.now_secs() > t1);
    }
}
