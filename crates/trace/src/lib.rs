//! Simulated-time tracing for the QuickStore reproduction.
//!
//! The engine is *time-free*: it counts events on a [`qs_sim::Meter`] and
//! prices them with the 1995 [`qs_sim::HardwareModel`]. This crate adds the
//! observability layer on top, without perturbing the counts:
//!
//! * [`SimClock`] — a clock that reads the meter and prices the run so far,
//!   giving every trace event a *simulated* timestamp (no wall clock);
//! * [`TraceEvent`] / [`TraceSink`] — spans and events with a monotonic
//!   sequence number, recorded through a sink: [`NullSink`] (tracing off,
//!   zero work beyond one branch), or [`RingSink`] (a fixed-capacity flight
//!   recorder in the black-box tradition);
//! * [`LogHistogram`] — hand-rolled HDR-style log-bucketed histograms for
//!   latencies and sizes, with p50/p90/p99/max and lossless merge;
//! * [`Tracer`] — the shared handle the whole stack carries ([`Tracer`] is
//!   cheap to clone via `Arc` and every method takes `&self`);
//! * [`RestartReport`] / [`FlightRecording`] — the headline consumers: a
//!   per-phase restart breakdown (analysis/redo/undo for ARIES,
//!   backward-scan/table-rebuild for WPL) and the last-N-events snapshot a
//!   crash leaves behind for the restarting server to print.
//!
//! Everything is std-only and exported as JSON through the existing
//! [`qs_sim::JsonWriter`], keeping the workspace hermetic.

pub mod clock;
pub mod event;
pub mod hist;
pub mod restart;
pub mod sink;
pub mod tlock;
pub mod tracer;

pub use clock::SimClock;
pub use event::{TraceCat, TraceEvent};
pub use hist::{HistSummary, LogHistogram};
pub use restart::{FlightRecording, PhaseStat, RestartReport};
pub use sink::{NullSink, RingSink, TraceSink};
pub use tlock::{TracedGuard, TracedMutex};
pub use tracer::Tracer;
