//! [`TracedMutex`]: a subsystem mutex that can report how long it was
//! held and how long acquirers waited for it.
//!
//! The decomposed server wraps each independently locked subsystem (buffer
//! shards, volume, txn table, ...) in one of these. When the owning
//! tracer's lock stats are off — the default, and the configuration every
//! deterministic figure run uses — `lock(tracer)` is exactly a plain
//! `Mutex::lock` plus one branch, so no wall-clock reads perturb anything.
//! When they are on, each release records wall-clock hold (and, if the
//! acquire contended, wait) nanoseconds via [`Tracer::record_lock`].

use crate::tracer::Tracer;
use qs_types::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// A named mutex whose guard reports hold/wait times to a [`Tracer`].
#[derive(Debug)]
pub struct TracedMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

/// Guard for [`TracedMutex`]; records timings on drop when measuring.
pub struct TracedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    timing: Option<Timing<'a>>,
}

struct Timing<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    acquired: Instant,
    wait_ns: Option<u64>,
}

impl<T> TracedMutex<T> {
    pub fn new(name: &'static str, value: T) -> TracedMutex<T> {
        TracedMutex { name, inner: Mutex::new(value) }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire the lock. Measurement only happens when `tracer` has lock
    /// stats enabled; otherwise this is a plain blocking lock.
    pub fn lock<'a>(&'a self, tracer: &'a Tracer) -> TracedGuard<'a, T> {
        if !tracer.lock_stats_enabled() {
            return TracedGuard { guard: self.inner.lock(), timing: None };
        }
        // Fast path: uncontended try_lock records a hold but no wait.
        let (guard, wait_ns) = match self.inner.try_lock() {
            Some(g) => (g, None),
            None => {
                let t0 = Instant::now();
                let g = self.inner.lock();
                (g, Some(t0.elapsed().as_nanos() as u64))
            }
        };
        let timing = Timing { tracer, name: self.name, acquired: Instant::now(), wait_ns };
        TracedGuard { guard, timing: Some(timing) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T> std::ops::Deref for TracedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for TracedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TracedGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(t) = self.timing.take() {
            t.tracer.record_lock(t.name, t.acquired.elapsed().as_nanos() as u64, t.wait_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_sim::{HardwareModel, Meter};
    use std::sync::Arc;

    #[test]
    fn untraced_lock_is_plain() {
        let t = Tracer::disabled();
        let m = TracedMutex::new("x", 1u32);
        *m.lock(&t) += 1;
        assert_eq!(*m.lock(&t), 2);
        assert_eq!(m.name(), "x");
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn measured_lock_records_hold_and_contended_wait() {
        let meter = Meter::new();
        let tracer = Tracer::flight(Arc::clone(&meter), HardwareModel::paper_1995(), 16);
        tracer.set_lock_stats(true);
        let m = Arc::new(TracedMutex::new("shard", 0u32));

        // Uncontended: hold recorded, no wait sample.
        *m.lock(&tracer) += 1;
        assert_eq!(tracer.histogram("lock_hold:shard").unwrap().count(), 1);
        assert!(tracer.histogram("lock_wait:shard").is_none());

        // Contended: the second thread must block, producing a wait sample.
        let m2 = Arc::clone(&m);
        let t2 = Arc::clone(&tracer);
        let started = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let started2 = Arc::clone(&started);
        let held = m.lock(&tracer);
        let h = std::thread::spawn(move || {
            started2.store(true, std::sync::atomic::Ordering::SeqCst);
            *m2.lock(&t2) += 1;
        });
        while !started.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(held);
        h.join().unwrap();
        assert_eq!(tracer.histogram("lock_wait:shard").unwrap().count(), 1);
        assert!(tracer.histogram("lock_hold:shard").unwrap().count() >= 3);
    }
}
