//! Restart observability: the per-phase breakdown `Server::restart` emits
//! (analysis / redo / undo for the ARIES flavors, backward-scan /
//! table-rebuild for WPL) and the crash flight recording — the last N ring
//! events snapshotted into the stable parts so a restarting server can
//! print what the system was doing when it died.

use crate::event::TraceEvent;
use qs_sim::{HardwareModel, JsonWriter};

/// One restart phase: raw work counts plus their priced simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStat {
    pub name: &'static str,
    /// Log records processed (scanned, applied, or undone).
    pub records: u64,
    /// Log pages read while scanning / fetching images.
    pub pages_read: u64,
    /// Data pages read from the volume.
    pub data_reads: u64,
    /// Data pages written back to the volume.
    pub data_writes: u64,
    /// Simulated seconds this phase costs on the paper's hardware.
    pub sim_s: f64,
}

impl PhaseStat {
    /// Price the phase's counts: sequential log reads, random data I/O,
    /// and per-record server CPU.
    pub fn priced(mut self, hw: &HardwareModel) -> PhaseStat {
        self.sim_s = hw.log_disk_secs(0, self.pages_read, 0)
            + hw.data_disk_secs(self.data_reads + self.data_writes)
            + hw.server_cpu_secs(self.records * hw.server_log_append_instr);
        self
    }

    /// Fold another phase's raw counts into this one. The parallel
    /// restart engine tallies per-worker stats and merges them in worker-
    /// index order, so the summed counts are deterministic; `sim_s` is
    /// intentionally not summed — the merged phase is priced once,
    /// afterwards, exactly like a serially-tallied phase.
    pub fn absorb(&mut self, other: &PhaseStat) {
        self.records += other.records;
        self.pages_read += other.pages_read;
        self.data_reads += other.data_reads;
        self.data_writes += other.data_writes;
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("phase", self.name);
        w.field_u64("records", self.records);
        w.field_u64("log_pages_read", self.pages_read);
        w.field_u64("data_reads", self.data_reads);
        w.field_u64("data_writes", self.data_writes);
        w.field_f64("sim_s", self.sim_s);
        w.end_object();
    }
}

/// What a restarting server reports: which algorithm ran, the per-phase
/// breakdown, and the flight recording recovered from the crash.
#[derive(Debug, Clone, Default)]
pub struct RestartReport {
    /// Recovery flavor name ("ESM", "REDO", "WPL").
    pub flavor: &'static str,
    pub phases: Vec<PhaseStat>,
    /// What the crashed server was doing when it died (may be empty).
    pub flight: FlightRecording,
}

impl RestartReport {
    pub fn total_sim_s(&self) -> f64 {
        self.phases.iter().map(|p| p.sim_s).sum()
    }

    pub fn total_records(&self) -> u64 {
        self.phases.iter().map(|p| p.records).sum()
    }

    /// Append this report as a JSON object under way in `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("flavor", self.flavor);
        w.key("phases");
        w.begin_array();
        for p in &self.phases {
            p.write_json(w);
        }
        w.end_array();
        w.field_f64("total_sim_s", self.total_sim_s());
        w.field_u64("total_records", self.total_records());
        w.key("flight");
        self.flight.write_json(w);
        w.end_object();
    }

    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Multi-line human rendering for the `trace` binary and logs.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("restart breakdown ({})\n", self.flavor));
        out.push_str("  phase           records  log-pages  data-r  data-w     sim-time\n");
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<14} {:>8} {:>10} {:>7} {:>7} {:>10.6}s\n",
                p.name, p.records, p.pages_read, p.data_reads, p.data_writes, p.sim_s
            ));
        }
        out.push_str(&format!(
            "  {:<14} {:>8} {:>10} {:>7} {:>7} {:>10.6}s\n",
            "total",
            self.total_records(),
            self.phases.iter().map(|p| p.pages_read).sum::<u64>(),
            self.phases.iter().map(|p| p.data_reads).sum::<u64>(),
            self.phases.iter().map(|p| p.data_writes).sum::<u64>(),
            self.total_sim_s()
        ));
        if !self.flight.events.is_empty() {
            out.push_str(&self.flight.render_text());
        }
        out
    }
}

/// The last N trace events, snapshotted out of the ring buffer by
/// `Server::crash` and carried inside the stable parts across the crash.
#[derive(Debug, Clone, Default)]
pub struct FlightRecording {
    pub events: Vec<TraceEvent>,
}

impl FlightRecording {
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_array();
        for ev in &self.events {
            ev.write_json(w);
        }
        w.end_array();
    }

    /// "What was the system doing when it died?" — one line per event.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  flight recorder ({} events before the crash):\n",
            self.events.len()
        ));
        for ev in &self.events {
            out.push_str("    ");
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceCat;

    fn report() -> RestartReport {
        let hw = HardwareModel::paper_1995();
        RestartReport {
            flavor: "ESM",
            phases: vec![
                PhaseStat { name: "analysis", records: 10, pages_read: 4, ..Default::default() }
                    .priced(&hw),
                PhaseStat {
                    name: "redo",
                    records: 6,
                    data_reads: 3,
                    data_writes: 1,
                    ..Default::default()
                }
                .priced(&hw),
                PhaseStat { name: "undo", records: 2, ..Default::default() }.priced(&hw),
            ],
            flight: FlightRecording {
                events: vec![TraceEvent {
                    seq: 41,
                    sim_us: 12,
                    cat: TraceCat::WalForce,
                    label: "commit",
                    a: 1,
                    b: 0,
                }],
            },
        }
    }

    #[test]
    fn absorb_merges_worker_counts_then_prices_once() {
        let hw = HardwareModel::paper_1995();
        // Four workers' local tallies, merged in worker-index order…
        let mut merged = PhaseStat { name: "redo", ..Default::default() };
        for w in 0..4u64 {
            merged.absorb(&PhaseStat {
                name: "redo",
                records: 10 + w,
                data_reads: 2,
                data_writes: w % 2,
                ..Default::default()
            });
        }
        // …must equal one serial tally of the same totals.
        let serial = PhaseStat {
            name: "redo",
            records: 46,
            data_reads: 8,
            data_writes: 2,
            ..Default::default()
        };
        assert_eq!(merged, serial);
        assert!((merged.priced(&hw).sim_s - serial.priced(&hw).sim_s).abs() < 1e-15);
    }

    #[test]
    fn pricing_reflects_counts() {
        let r = report();
        assert!(r.phases[0].sim_s > 0.0, "log reads cost time");
        assert!(r.phases[1].sim_s > r.phases[2].sim_s, "data I/O dominates undo CPU");
        assert_eq!(r.total_records(), 18);
        assert!((r.total_sim_s() - r.phases.iter().map(|p| p.sim_s).sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn json_shape_is_sane() {
        let j = report().to_json();
        assert!(j.contains("\"flavor\":\"ESM\""));
        assert!(j.contains("\"phase\":\"analysis\""));
        assert!(j.contains("\"total_records\":18"));
        assert!(j.contains("\"cat\":\"wal_force\""));
        // Balanced braces/brackets — cheap structural check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn text_rendering_includes_flight() {
        let t = report().render_text();
        assert!(t.contains("restart breakdown (ESM)"));
        assert!(t.contains("analysis"));
        assert!(t.contains("flight recorder (1 events"));
    }
}
