//! Trace sinks: where events go. [`NullSink`] is the tracing-off path (one
//! branch, no work); [`RingSink`] is the flight recorder — a fixed-capacity
//! ring that always holds the most recent events, mutex-guarded because the
//! recorder is written from whichever thread the engine runs on.

use crate::event::TraceEvent;
use qs_types::sync::Mutex;

/// Destination for trace events.
pub trait TraceSink: Send + Sync {
    /// When false, the tracer short-circuits before building the event.
    fn enabled(&self) -> bool {
        true
    }
    fn record(&self, ev: &TraceEvent);
}

/// Tracing disabled: events are never constructed, let alone stored.
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _ev: &TraceEvent) {}
}

struct Ring {
    buf: Vec<TraceEvent>,
    /// Next write position (buf is a circular window once full).
    next: usize,
    /// Events ever recorded (>= buf.len()).
    total: u64,
}

/// Fixed-capacity flight recorder: keeps the last `capacity` events.
pub struct RingSink {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl RingSink {
    pub fn new(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            ring: Mutex::new(Ring { buf: Vec::with_capacity(capacity), next: 0, total: 0 }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events recorded over the sink's lifetime (not just those retained).
    pub fn total_recorded(&self) -> u64 {
        self.ring.lock().total
    }

    /// The most recent `n` events, oldest first.
    pub fn last(&self, n: usize) -> Vec<TraceEvent> {
        let ring = self.ring.lock();
        let len = ring.buf.len();
        let take = n.min(len);
        let mut out = Vec::with_capacity(take);
        // Chronological order: start `take` slots behind the write cursor.
        let start = (ring.next + len - take) % len.max(1);
        for i in 0..take {
            out.push(ring.buf[(start + i) % len]);
        }
        out
    }
}

impl TraceSink for RingSink {
    fn record(&self, ev: &TraceEvent) {
        let mut ring = self.ring.lock();
        if ring.buf.len() < self.capacity {
            ring.buf.push(*ev);
            ring.next = ring.buf.len() % self.capacity;
        } else {
            let at = ring.next;
            ring.buf[at] = *ev;
            ring.next = (at + 1) % self.capacity;
        }
        ring.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceCat;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent { seq, sim_us: seq * 10, cat: TraceCat::Ship, label: "t", a: 0, b: 0 }
    }

    #[test]
    fn ring_keeps_last_events_in_order() {
        let sink = RingSink::new(4);
        for i in 0..10 {
            sink.record(&ev(i));
        }
        assert_eq!(sink.total_recorded(), 10);
        let last = sink.last(4);
        assert_eq!(last.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        let last2 = sink.last(2);
        assert_eq!(last2.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![8, 9]);
        // Asking for more than retained returns what's there.
        assert_eq!(sink.last(100).len(), 4);
    }

    #[test]
    fn ring_before_wraparound() {
        let sink = RingSink::new(8);
        for i in 0..3 {
            sink.record(&ev(i));
        }
        assert_eq!(sink.last(8).iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn null_sink_reports_disabled() {
        assert!(!NullSink.enabled());
        let sink = RingSink::new(2);
        assert!(sink.enabled());
    }
}
