//! Hand-rolled HDR-style histogram: logarithmic buckets with linear
//! sub-buckets, so relative error is bounded (~6% with 16 sub-buckets)
//! across the full `u64` range while storage stays fixed.
//!
//! Values are dimensionless `u64`s; by convention the tracer records
//! latencies in simulated nanoseconds and sizes in bytes.

/// Linear sub-buckets per power of two: 2^SUB_BITS.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Rows: row 0 holds values `0..SUB` exactly; rows 1..=60 each split one
/// power-of-two range `[16<<(r-1), 32<<(r-1))` into `SUB` sub-buckets.
const ROWS: usize = (64 - SUB_BITS as usize) + 1;
/// Total bucket count (976 with 16 sub-buckets).
pub const BUCKETS: usize = ROWS * SUB;

/// A log-bucketed histogram with p50/p90/p99/max readout and lossless
/// merge. `merge(a, b)` is exactly `record` over the union of the inputs
/// (bucket counts add; max/count/sum combine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram { counts: vec![0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

/// Bucket index for a value: row 0 is exact, higher rows keep the top
/// `SUB_BITS` bits below the most significant bit.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let row = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    row * SUB + sub
}

/// Smallest value mapping to bucket `idx` (monotone in `idx`).
pub fn bucket_low(idx: usize) -> u64 {
    let row = idx / SUB;
    let sub = (idx % SUB) as u64;
    if row == 0 {
        return sub;
    }
    (SUB as u64 + sub) << (row - 1)
}

/// Largest value mapping to bucket `idx`.
pub fn bucket_high(idx: usize) -> u64 {
    if idx + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_low(idx + 1) - 1
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at or below which `p` percent of recorded values fall,
    /// reported as the containing bucket's upper bound clamped to the
    /// observed maximum — so `percentile(100.0) == max()` exactly and
    /// `p50 <= p90 <= p99 <= max` always holds.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(idx).min(self.max);
            }
        }
        self.max
    }

    /// Add every recorded value of `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            max: self.max,
        }
    }
}

/// Percentile digest of one histogram, for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistSummary {
    pub count: u64,
    pub mean: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

impl HistSummary {
    /// Append this summary as a JSON object under way in `w`.
    pub fn write_json(&self, w: &mut qs_sim::JsonWriter) {
        w.begin_object();
        w.field_u64("count", self.count);
        w.field_f64("mean", self.mean);
        w.field_u64("p50", self.p50);
        w.field_u64("p90", self.p90);
        w.field_u64("p99", self.p99);
        w.field_u64("max", self.max);
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_prng::Prng;

    #[test]
    fn bucket_boundaries_are_monotone_and_consistent() {
        for idx in 0..BUCKETS - 1 {
            assert!(bucket_low(idx) < bucket_low(idx + 1), "low({idx}) >= low({})", idx + 1);
            assert_eq!(bucket_high(idx), bucket_low(idx + 1) - 1);
        }
        // Every value lands in the bucket whose [low, high] range holds it.
        let mut rng = Prng::seed_from_u64(0x5EED_0001);
        for _ in 0..10_000 {
            let shift = rng.gen_below(64) as u32;
            let v = rng.next_u64() >> shift;
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v && v <= bucket_high(idx), "v={v} idx={idx}");
        }
        // Exact low-range behaviour and row seams.
        for v in 0..(SUB as u64) {
            assert_eq!(bucket_low(bucket_index(v)), v);
        }
        for &v in &[16u64, 31, 32, 63, 64, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v && v <= bucket_high(idx));
        }
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut rng = Prng::seed_from_u64(0x5EED_0002);
        let mut h = LogHistogram::new();
        for _ in 0..5_000 {
            // Mix of magnitudes: exercise several rows.
            let v = rng.next_u64() >> rng.gen_below(56);
            h.record(v);
        }
        let s = h.summary();
        assert!(s.p50 <= s.p90, "{s:?}");
        assert!(s.p90 <= s.p99, "{s:?}");
        assert!(s.p99 <= s.max, "{s:?}");
        assert_eq!(h.percentile(100.0), h.max());
        assert_eq!(s.count, 5_000);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let mut rng = Prng::seed_from_u64(0x5EED_0003);
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut union = LogHistogram::new();
        for i in 0..4_000 {
            let v = rng.next_u64() >> rng.gen_below(48);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            union.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, union, "merge(a, b) must equal recording the union");
    }

    #[test]
    fn empty_and_single_value() {
        let h = LogHistogram::new();
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.summary(), HistSummary::default());
        let mut h = LogHistogram::new();
        h.record(42);
        assert_eq!(h.percentile(50.0), 42);
        assert_eq!(h.max(), 42);
        assert!((h.mean() - 42.0).abs() < 1e-12);
    }
}
