//! The [`Tracer`]: the one handle the whole stack carries. Every method
//! takes `&self`; disabled tracers cost a single branch per call site.

use crate::clock::SimClock;
use crate::event::{TraceCat, TraceEvent};
use crate::hist::{HistSummary, LogHistogram};
use crate::sink::{NullSink, RingSink, TraceSink};
use qs_sim::{HardwareModel, Meter};
use qs_types::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared tracing handle: a sink for events, a simulated clock for
/// timestamps, and a family of named histograms.
pub struct Tracer {
    enabled: bool,
    sink: Arc<dyn TraceSink>,
    /// Kept alongside `sink` so the flight recorder can be snapshotted
    /// without downcasting.
    ring: Option<Arc<RingSink>>,
    clock: Option<SimClock>,
    seq: AtomicU64,
    hists: Mutex<BTreeMap<String, LogHistogram>>,
    /// Opt-in for wall-clock lock-hold/lock-wait measurement. Off by
    /// default even on enabled tracers: hold times are nondeterministic
    /// wall-clock values, and the default trace outputs must stay
    /// byte-reproducible. The contention benchmarks flip this on.
    lock_stats: AtomicBool,
}

impl Default for Tracer {
    /// A disabled tracer (the `NullSink` configuration).
    fn default() -> Tracer {
        Tracer {
            enabled: false,
            sink: Arc::new(NullSink),
            ring: None,
            clock: None,
            seq: AtomicU64::new(0),
            hists: Mutex::new(BTreeMap::new()),
            lock_stats: AtomicBool::new(false),
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .field("events_recorded", &self.events_recorded())
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// Tracing off: every instrumented call site reduces to one branch.
    pub fn disabled() -> Arc<Tracer> {
        Arc::new(Tracer::default())
    }

    /// The flight-recorder configuration: events go to a fixed-capacity
    /// ring, timestamps come from pricing `meter` with `hw`.
    pub fn flight(meter: Arc<Meter>, hw: HardwareModel, ring_capacity: usize) -> Arc<Tracer> {
        let ring = Arc::new(RingSink::new(ring_capacity));
        Arc::new(Tracer {
            enabled: true,
            sink: Arc::clone(&ring) as Arc<dyn TraceSink>,
            ring: Some(ring),
            clock: Some(SimClock::new(meter, hw)),
            seq: AtomicU64::new(0),
            hists: Mutex::new(BTreeMap::new()),
            lock_stats: AtomicBool::new(false),
        })
    }

    /// Custom sink (histograms and the clock still live in the tracer).
    pub fn with_sink(sink: Arc<dyn TraceSink>, clock: Option<SimClock>) -> Arc<Tracer> {
        let enabled = sink.enabled();
        Arc::new(Tracer {
            enabled,
            sink,
            ring: None,
            clock,
            seq: AtomicU64::new(0),
            hists: Mutex::new(BTreeMap::new()),
            lock_stats: AtomicBool::new(false),
        })
    }

    /// Turn wall-clock lock-hold measurement on or off (see `lock_stats`).
    pub fn set_lock_stats(&self, on: bool) {
        self.lock_stats.store(on, Ordering::Relaxed);
    }

    /// True when lock instrumentation should measure (enabled + opted in).
    #[inline]
    pub fn lock_stats_enabled(&self) -> bool {
        self.enabled && self.lock_stats.load(Ordering::Relaxed)
    }

    /// Record one lock acquisition+release of the subsystem mutex `name`:
    /// wall-clock nanoseconds held and spent waiting go to the
    /// `lock_hold:<name>` / `lock_wait:<name>` histograms plus one
    /// [`TraceCat::LockHold`] event. Wait time is only recorded when the
    /// lock was actually contended, so an untouched `lock_wait:*`
    /// histogram is itself evidence of independence.
    pub fn record_lock(&self, name: &'static str, held_ns: u64, wait_ns: Option<u64>) {
        if !self.lock_stats_enabled() {
            return;
        }
        self.record(&format!("lock_hold:{name}"), held_ns);
        if let Some(w) = wait_ns {
            self.record(&format!("lock_wait:{name}"), w);
        }
        self.event(TraceCat::LockHold, name, held_ns, wait_ns.unwrap_or(0));
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Simulated "now" in seconds (0.0 with no clock, e.g. when disabled).
    pub fn now_secs(&self) -> f64 {
        self.clock.as_ref().map(SimClock::now_secs).unwrap_or(0.0)
    }

    pub fn hardware(&self) -> Option<&HardwareModel> {
        self.clock.as_ref().map(SimClock::hardware)
    }

    /// Record one event (no-op when disabled).
    pub fn event(&self, cat: TraceCat, label: &'static str, a: u64, b: u64) {
        if !self.enabled {
            return;
        }
        let ev = TraceEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            sim_us: (self.now_secs() * 1e6) as u64,
            cat,
            label,
            a,
            b,
        };
        self.sink.record(&ev);
    }

    /// Record a value into the named histogram (no-op when disabled).
    pub fn record(&self, hist: &str, v: u64) {
        if !self.enabled {
            return;
        }
        let mut hists = self.hists.lock();
        match hists.get_mut(hist) {
            Some(h) => h.record(v),
            None => hists.entry(hist.to_string()).or_default().record(v),
        }
    }

    /// Record a simulated duration, stored in nanoseconds.
    pub fn record_secs(&self, hist: &str, secs: f64) {
        if !self.enabled {
            return;
        }
        self.record(hist, (secs.max(0.0) * 1e9) as u64);
    }

    /// Clone of one named histogram, if it has been recorded into.
    pub fn histogram(&self, name: &str) -> Option<LogHistogram> {
        self.hists.lock().get(name).cloned()
    }

    /// Digest of every histogram, sorted by name.
    pub fn summaries(&self) -> Vec<(String, HistSummary)> {
        self.hists.lock().iter().map(|(k, v)| (k.clone(), v.summary())).collect()
    }

    /// The flight recorder's most recent `n` events (oldest first), empty
    /// when the tracer has no ring sink.
    pub fn flight_snapshot(&self, n: usize) -> Vec<TraceEvent> {
        self.ring.as_ref().map(|r| r.last(n)).unwrap_or_default()
    }

    /// Events recorded since construction (enabled tracers only).
    pub fn events_recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_does_no_work() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.event(TraceCat::Commit, "x", 1, 2);
        t.record("h", 5);
        t.record_secs("h", 1.0);
        assert_eq!(t.events_recorded(), 0);
        assert!(t.histogram("h").is_none());
        assert!(t.flight_snapshot(10).is_empty());
        assert_eq!(t.now_secs(), 0.0);
    }

    #[test]
    fn flight_tracer_records_events_and_hists() {
        let meter = Meter::new();
        let t = Tracer::flight(Arc::clone(&meter), HardwareModel::paper_1995(), 8);
        meter.client_cpu(20_000_000); // 1 simulated second
        t.event(TraceCat::WalForce, "force", 3, 0);
        t.record("force_pages", 3);
        let evs = t.flight_snapshot(8);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].cat, TraceCat::WalForce);
        assert!(evs[0].sim_us >= 999_999, "simulated timestamp, got {}", evs[0].sim_us);
        assert_eq!(t.histogram("force_pages").unwrap().count(), 1);
        let sums = t.summaries();
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].0, "force_pages");
    }

    #[test]
    fn lock_stats_gated_off_by_default() {
        let meter = Meter::new();
        let t = Tracer::flight(Arc::clone(&meter), HardwareModel::paper_1995(), 8);
        assert!(t.is_enabled() && !t.lock_stats_enabled());
        t.record_lock("pool_shard", 100, Some(40));
        assert!(t.histogram("lock_hold:pool_shard").is_none(), "gated off");
        t.set_lock_stats(true);
        assert!(t.lock_stats_enabled());
        t.record_lock("pool_shard", 100, Some(40));
        t.record_lock("pool_shard", 200, None);
        assert_eq!(t.histogram("lock_hold:pool_shard").unwrap().count(), 2);
        assert_eq!(t.histogram("lock_wait:pool_shard").unwrap().count(), 1);
        let held = t.flight_snapshot(8);
        assert!(held.iter().any(|e| e.cat == TraceCat::LockHold && e.label == "pool_shard"));
        // A disabled tracer ignores the flag entirely.
        let off = Tracer::disabled();
        off.set_lock_stats(true);
        assert!(!off.lock_stats_enabled());
    }

    #[test]
    fn tracing_never_touches_the_meter() {
        let meter = Meter::new();
        let before = meter.snapshot();
        let t = Tracer::flight(Arc::clone(&meter), HardwareModel::paper_1995(), 8);
        t.event(TraceCat::Diff, "d", 1, 1);
        t.record("h", 9);
        let _ = t.now_secs();
        assert_eq!(meter.snapshot(), before, "tracer must only read the meter");
    }
}
