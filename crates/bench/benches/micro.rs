//! Criterion micro-benchmarks for the core mechanisms the paper's analysis
//! hinges on: the region-combining diff, recovery-buffer copies, the AVL
//! descriptor index, buffer-pool replacement, log append/force, and the
//! per-update cost of hardware vs software detection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qs_esm::{BufferPool, ClientConn, LockManager, LockMode, Server, ServerConfig};
use qs_sim::Meter;
use qs_storage::{MemDisk, Page, StableMedia};
use qs_types::{ClientId, Lsn, Oid, PageId, TxnId, PAGE_SIZE};
use qs_wal::{LogManager, LogRecord};
use quickstore::avl::AvlMap;
use quickstore::diff;
use quickstore::{Store, SystemConfig};
use std::sync::Arc;

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    for density in [1usize, 16, 128] {
        let before = vec![0u8; PAGE_SIZE];
        let mut after = before.clone();
        for i in 0..density {
            let at = (i * PAGE_SIZE / density.max(1)) % (PAGE_SIZE - 8);
            after[at..at + 8].fill(7);
        }
        g.throughput(Throughput::Bytes(PAGE_SIZE as u64));
        g.bench_with_input(
            BenchmarkId::new("page", format!("{density}_regions")),
            &density,
            |b, _| b.iter(|| diff::diff_object(&before, &after)),
        );
    }
    g.finish();
}

fn bench_avl(c: &mut Criterion) {
    let mut g = c.benchmark_group("avl_descriptor_index");
    let mut map: AvlMap<u64, u32> = AvlMap::new();
    for i in 0..4096u64 {
        map.insert(i * PAGE_SIZE as u64, i as u32);
    }
    g.bench_function("floor_lookup_4096_frames", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 123_457) % (4096 * PAGE_SIZE as u64);
            map.floor(&addr)
        })
    });
    g.bench_function("insert_remove_cycle", |b| {
        let mut k = 1u64 << 40;
        b.iter(|| {
            k += PAGE_SIZE as u64;
            map.insert(k, 1);
            map.remove(&k);
        })
    });
    g.finish();
}

fn bench_buffer_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_pool");
    g.bench_function("hit_get", |b| {
        let mut bp = BufferPool::new(1024);
        for i in 0..1024u32 {
            bp.insert(PageId(i), Page::new(), false).unwrap();
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7) % 1024;
            bp.get(PageId(i)).is_some()
        })
    });
    g.bench_function("miss_insert_evict", |b| {
        let mut bp = BufferPool::new(256);
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            bp.insert(PageId(i), Page::new(), false).unwrap()
        })
    });
    g.finish();
}

fn bench_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");
    let media: Arc<dyn StableMedia> =
        Arc::new(MemDisk::new(LogManager::required_bytes(64 << 20)));
    let log = LogManager::format(media, 64 << 20).unwrap();
    let rec = LogRecord::Update {
        txn: TxnId(1),
        prev: Lsn::NULL,
        page: PageId(1),
        slot: 0,
        offset: 0,
        before: vec![0u8; 16],
        after: vec![1u8; 16],
    };
    g.throughput(Throughput::Bytes(rec.encoded_len() as u64));
    g.bench_function("append_update_record", |b| {
        let mut since_truncate = 0u32;
        b.iter(|| {
            let l = log.append(&rec).unwrap();
            // Keep the circular window bounded: drain every ~50k records
            // (≈6 MB of the 64 MB body).
            since_truncate += 1;
            if since_truncate == 50_000 {
                since_truncate = 0;
                log.force(log.tail_lsn()).unwrap();
                log.truncate_to(log.durable_lsn()).unwrap();
            }
            l
        })
    });
    g.bench_function("encode_decode_round_trip", |b| {
        b.iter(|| {
            let e = rec.encode();
            LogRecord::decode(&e).unwrap()
        })
    });
    g.finish();
}

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_manager");
    g.bench_function("uncontended_x_lock_release", |b| {
        let lm = LockManager::new();
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            lm.lock(TxnId(1), PageId(i % 512), LockMode::X).unwrap();
            if i.is_multiple_of(512) {
                lm.release_all(TxnId(1));
            }
        })
    });
    g.finish();
}

/// End-to-end update cost per scheme: hardware (fault-driven) vs software
/// (update-function) detection — the §3.2-vs-§3.3 tradeoff.
fn bench_update_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("update_path");
    g.sample_size(20);
    for cfg in [
        SystemConfig::pd_esm().with_memory(2.0, 0.5),
        SystemConfig::sd_esm().with_memory(2.0, 0.5),
        SystemConfig::wpl().with_memory(2.0, 0.0),
    ] {
        let name = cfg.name();
        let meter = Meter::new();
        let server = Arc::new(
            Server::format(
                ServerConfig::new(cfg.flavor)
                    .with_pool_mb(4.0)
                    .with_volume_pages(512)
                    .with_log_mb(64.0),
                Arc::clone(&meter),
            )
            .unwrap(),
        );
        let pids = server.bulk_allocate(64).unwrap();
        let mut oids = Vec::new();
        for &pid in &pids {
            let mut p = Page::new();
            for _ in 0..32 {
                oids.push(Oid::new(pid, p.insert(pid, &[0u8; 128]).unwrap()));
            }
            server.bulk_write(pid, &p).unwrap();
        }
        server.bulk_sync().unwrap();
        let client = ClientConn::new(ClientId(0), server, cfg.client_pool_pages(), meter);
        let mut store = Store::new(client, cfg).unwrap();
        g.bench_function(BenchmarkId::new("txn_64pages_2048_updates", name), |b| {
            b.iter(|| {
                store.begin().unwrap();
                for (i, &oid) in oids.iter().enumerate() {
                    store.modify(oid, (i % 16) * 8, &[i as u8; 8]).unwrap();
                }
                store.commit().unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_diff,
    bench_avl,
    bench_buffer_pool,
    bench_log,
    bench_locks,
    bench_update_paths
);
criterion_main!(benches);
