//! A minimal JSON well-formedness check, shared by the benchmark
//! binaries' `--validate` modes (the workspace is hermetic, so no parser
//! crate exists). Recursive descent over the RFC 8259 grammar; reports
//! the byte offset where parsing failed.

/// Validate that `text` is a syntactically well-formed JSON value.
pub fn check_json(text: &str) -> Result<(), usize> {
    let b = text.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    check_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i == b.len() {
        Ok(())
    } else {
        Err(i)
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn check_value(b: &[u8], i: &mut usize) -> Result<(), usize> {
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                check_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(*i);
                }
                *i += 1;
                skip_ws(b, i);
                check_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(*i),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                check_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(*i),
                }
            }
        }
        Some(b'"') => check_string(b, i),
        Some(b't') => check_lit(b, i, b"true"),
        Some(b'f') => check_lit(b, i, b"false"),
        Some(b'n') => check_lit(b, i, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => {
            let start = *i;
            if b.get(*i) == Some(&b'-') {
                *i += 1;
            }
            let digits0 = *i;
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
            if *i == digits0 {
                return Err(start);
            }
            if b.get(*i) == Some(&b'.') {
                *i += 1;
                let frac0 = *i;
                while *i < b.len() && b[*i].is_ascii_digit() {
                    *i += 1;
                }
                if *i == frac0 {
                    return Err(*i);
                }
            }
            if matches!(b.get(*i), Some(b'e') | Some(b'E')) {
                *i += 1;
                if matches!(b.get(*i), Some(b'+') | Some(b'-')) {
                    *i += 1;
                }
                let exp0 = *i;
                while *i < b.len() && b[*i].is_ascii_digit() {
                    *i += 1;
                }
                if *i == exp0 {
                    return Err(*i);
                }
            }
            Ok(())
        }
        _ => Err(*i),
    }
}

fn check_string(b: &[u8], i: &mut usize) -> Result<(), usize> {
    if b.get(*i) != Some(&b'"') {
        return Err(*i);
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 2;
            }
            _ => *i += 1,
        }
    }
    Err(*i)
}

fn check_lit(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if b.len() >= *i + lit.len() && &b[*i..*i + lit.len()] == lit {
        *i += lit.len();
        Ok(())
    } else {
        Err(*i)
    }
}

#[cfg(test)]
mod tests {
    use super::check_json;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            r#"{"a":[1,2.5,-3e4],"b":{"c":"d\"e"},"t":true,"n":null}"#,
            "  [ 1 , \"x\" ]  ",
        ] {
            assert!(check_json(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", r#"{"a"}"#, "01x", "\"unterminated", "{} trailing"] {
            assert!(check_json(bad).is_err(), "{bad}");
        }
    }
}
