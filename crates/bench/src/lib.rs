//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§4–5).
//!
//! Methodology (DESIGN.md §2): the functional engine executes each
//! workload for real — OO7 traversals over a bulk-loaded database, with
//! genuine faults, diffs, log records, page shipping, buffer-pool paging,
//! and log-disk forces — while a shared [`qs_sim::Meter`] counts events.
//! Counts are priced by the frozen 1995 hardware model and fed to the
//! exact MVA solver to produce response time and throughput at 1–5
//! clients, mirroring the paper's closed-loop testbed.
//!
//! For the small database (which fits every cache) per-transaction demands
//! are independent of the client count, so one measured run per system
//! yields the whole curve. For the big database the server buffer pool's
//! hit rate depends on how many 24 MB modules are in play, so each client
//! count is measured separately with that many clients interleaving
//! against one server.

pub mod driver;
pub mod experiment;
pub mod figures;
pub mod jsoncheck;
pub mod report;
pub mod tracerun;

pub use experiment::{run_curve, run_point, ExperimentPoint, RunOpts};
pub use report::{render_curve_tables, render_writes_table};
