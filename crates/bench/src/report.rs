//! Rendering of figure data: plain-text tables (one for response time, one
//! for throughput, matching the paper's axes of x = number of clients) and
//! a machine-readable JSON form built with the workspace's hand-rolled
//! [`JsonWriter`] — no serde anywhere in the build.

use crate::experiment::ExperimentPoint;
use qs_sim::JsonWriter;

/// Render the response-time and throughput tables for a set of per-system
/// curves (each a Vec of points at clients = 1..=N).
pub fn render_curve_tables(title: &str, curves: &[Vec<ExperimentPoint>]) -> String {
    let mut out = String::new();
    let n = curves.first().map(|c| c.len()).unwrap_or(0);
    out.push_str(&format!("== {title} ==\n"));
    out.push_str("\nResponse time (seconds)\n");
    out.push_str(&header_row(curves));
    for i in 0..n {
        out.push_str(&format!("{:>8}", curves[0][i].clients));
        for c in curves {
            out.push_str(&format!("{:>12.1}", c[i].response_s));
        }
        out.push('\n');
    }
    out.push_str("\nThroughput (transactions/minute)\n");
    out.push_str(&header_row(curves));
    for i in 0..n {
        out.push_str(&format!("{:>8}", curves[0][i].clients));
        for c in curves {
            out.push_str(&format!("{:>12.3}", c[i].tpm));
        }
        out.push('\n');
    }
    out.push_str("\nBottleneck utilization at max clients\n");
    out.push_str(&header_row(curves));
    out.push_str(&format!("{:>8}", ""));
    for c in curves {
        let last = c.last().unwrap();
        let names = ["net", "scpu", "ddisk", "ldisk"];
        let (k, u) = last
            .utilization
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        out.push_str(&format!("{:>12}", format!("{} {:.0}%", names[k], u * 100.0)));
    }
    out.push('\n');
    out
}

fn header_row(curves: &[Vec<ExperimentPoint>]) -> String {
    let mut s = format!("{:>8}", "#clients");
    for c in curves {
        s.push_str(&format!("{:>12}", c[0].system));
    }
    s.push('\n');
    s
}

/// Render a set of per-system curves as one JSON document:
/// `{"title": ..., "hardware": {...}, "curves": [{"system": ..., "points": [...]}]}`.
/// Embeds the hardware model so a saved report records exactly which
/// constants produced its numbers.
pub fn render_curves_json(title: &str, curves: &[Vec<ExperimentPoint>]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().field_str("title", title).key("hardware");
    w.raw(&qs_sim::HardwareModel::paper_1995().to_json());
    w.key("curves").begin_array();
    for curve in curves {
        w.begin_object()
            .field_str("system", curve.first().map(|p| p.system.as_str()).unwrap_or(""))
            .key("points")
            .begin_array();
        for p in curve {
            w.begin_object()
                .field_u64("clients", p.clients as u64)
                .field_f64("response_s", p.response_s)
                .field_f64("tpm", p.tpm)
                .field_f64("total_pages_shipped_per_txn", p.total_pages_shipped_per_txn)
                .field_f64("log_pages_shipped_per_txn", p.log_pages_shipped_per_txn)
                .field_f64("log_records_per_txn", p.log_records_per_txn)
                .key("utilization")
                .begin_array();
            for &u in &p.utilization {
                w.f64(u);
            }
            w.end_array().end_object();
        }
        w.end_array().end_object();
    }
    w.end_array().end_object();
    w.finish()
}

/// Render the client-writes chart (Figures 9 and 14): pages shipped from a
/// client to the server per transaction, total and log-record pages, keyed
/// by the underlying scheme.
pub fn render_writes_table(title: &str, rows: &[(String, f64, f64)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!("{:<24}{:>14}{:>14}\n", "system", "total writes", "log writes"));
    for (name, total, log) in rows {
        out.push_str(&format!("{name:<24}{total:>14.1}{log:>14.1}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_sim::{Demand, MeterSnapshot};

    fn pt(system: &str, clients: usize, r: f64, x: f64) -> ExperimentPoint {
        ExperimentPoint {
            system: system.into(),
            clients,
            response_s: r,
            tpm: x,
            demand: Demand::default(),
            utilization: [0.1, 0.2, 0.3, 0.4],
            total_pages_shipped_per_txn: 0.0,
            log_pages_shipped_per_txn: 0.0,
            log_records_per_txn: 0.0,
            window: MeterSnapshot::default(),
        }
    }

    #[test]
    fn tables_render_all_systems_and_rows() {
        let curves = vec![
            vec![pt("PD-ESM", 1, 10.0, 6.0), pt("PD-ESM", 2, 11.0, 10.9)],
            vec![pt("WPL", 1, 12.0, 5.0), pt("WPL", 2, 20.0, 6.0)],
        ];
        let s = render_curve_tables("Figure X", &curves);
        assert!(s.contains("PD-ESM") && s.contains("WPL"));
        assert!(s.contains("10.0") && s.contains("20.0"));
        assert!(s.contains("ldisk 40%"));
    }

    #[test]
    fn json_report_contains_curves_and_hardware() {
        let curves = vec![vec![pt("PD-ESM", 1, 10.0, 6.0)], vec![pt("WPL", 1, 12.0, 5.0)]];
        let j = render_curves_json("Figure 4", &curves);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains(r#""title":"Figure 4""#), "{j}");
        assert!(j.contains(r#""system":"PD-ESM""#) && j.contains(r#""system":"WPL""#));
        assert!(j.contains(r#""hardware":{"client_ips":20000000.0"#), "{j}");
        assert!(j.contains(r#""utilization":[0.1,0.2,0.3,0.4]"#), "{j}");
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn writes_table_renders() {
        let s = render_writes_table(
            "Figure 9",
            &[("ESM (T2A)".into(), 440.0, 5.0), ("WPL (T2A)".into(), 435.0, 0.0)],
        );
        assert!(s.contains("ESM (T2A)"));
        assert!(s.contains("435.0"));
    }
}
