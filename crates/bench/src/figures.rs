//! One driver per table/figure of the paper. Each returns the rendered
//! text (the binaries print it; `all_figures` also appends to
//! `results/`).
//!
//! Environment:
//! * `QS_QUICK=1` — cut warm-up/measured transactions and client count for
//!   a fast smoke run (shapes still visible, absolute precision reduced).

use crate::experiment::{run_curve, run_point, ExperimentPoint, RunOpts};
use crate::report::{render_curve_tables, render_writes_table};
use qs_esm::{RecoveryFlavor, Server, ServerConfig};
use qs_oo7::params::{DbSize, Oo7Params};
use qs_oo7::{gen, T2Mode};
use qs_sim::Meter;
use qs_types::QsResult;
use quickstore::{LogGeneration, SystemConfig};

fn quick() -> bool {
    std::env::var("QS_QUICK").map(|v| v == "1").unwrap_or(false)
}

fn max_clients() -> usize {
    if quick() {
        3
    } else {
        5
    }
}

fn opts(db: DbSize, mode: T2Mode) -> RunOpts {
    let mut o = RunOpts::new(db, mode);
    if quick() {
        o.warmup = 1;
        o.measure = 1;
    }
    o
}

/// The shared Table 3 list (`SystemConfig::all_schemes`) at one memory
/// split, reordered so WPL leads — the paper's figure legends start with
/// it. `with_memory` zeroes the recovery buffer for WPL automatically.
fn systems_with_memory(total_mb: f64, recovery_mb: f64) -> Vec<SystemConfig> {
    let mut v: Vec<SystemConfig> = SystemConfig::all_schemes()
        .into_iter()
        .map(|(cfg, _)| cfg.with_memory(total_mb, recovery_mb))
        .collect();
    v.sort_by_key(|cfg| cfg.flavor != RecoveryFlavor::Wpl); // stable: WPL first, rest keep order
    v
}

/// §5.1 systems: 12 MB per client; diffing schemes split 8 MB pool + 4 MB
/// recovery buffer.
fn unconstrained_systems() -> Vec<SystemConfig> {
    systems_with_memory(12.0, 4.0)
}

/// §5.2 systems: 8 MB per client; diffing schemes 7.5 + 0.5.
fn constrained_systems() -> Vec<SystemConfig> {
    systems_with_memory(8.0, 0.5)
}

/// §5.3 systems: 12 MB per client; two pool/recovery-buffer splits. This
/// set stays hand-curated (it compares memory splits of one scheme, not
/// the scheme list), with one row per non-ESM flavor for reference.
fn big_systems() -> Vec<SystemConfig> {
    vec![
        SystemConfig::wpl().with_memory(12.0, 0.0),
        SystemConfig::pd_esm().with_memory(12.0, 4.0).with_buffer_suffix(),
        SystemConfig::pd_esm().with_memory(12.0, 0.5).with_buffer_suffix(),
        SystemConfig::sd_esm().with_memory(12.0, 4.0).with_buffer_suffix(),
        SystemConfig::pd_redo().with_memory(12.0, 4.0).with_buffer_suffix(),
        SystemConfig::pd_rlog().with_memory(12.0, 4.0).with_buffer_suffix(),
    ]
}

/// One system per underlying recovery flavor — the page-diffing variant
/// where a choice exists — drawn from the shared list.
fn per_flavor_systems(total_mb: f64, recovery_mb: f64) -> Vec<SystemConfig> {
    SystemConfig::all_schemes()
        .into_iter()
        .map(|(cfg, _)| cfg)
        .filter(|cfg| matches!(cfg.log_gen, LogGeneration::PageDiff | LogGeneration::WholePage))
        .map(|cfg| cfg.with_memory(total_mb, recovery_mb))
        .collect()
}

fn curves_for(systems: &[SystemConfig], o: &RunOpts) -> QsResult<Vec<Vec<ExperimentPoint>>> {
    systems.iter().map(|cfg| run_curve(cfg, o, max_clients())).collect()
}

/// Figures 4 & 5: T2A, small database, unconstrained cache.
pub fn fig04_05() -> QsResult<String> {
    let curves = curves_for(&unconstrained_systems(), &opts(DbSize::Small, T2Mode::A))?;
    Ok(render_curve_tables(
        "Figures 4 & 5: T2A (sparse updates), small database, unconstrained cache",
        &curves,
    ))
}

/// Figures 4 & 5 as a machine-readable JSON document (same experiment;
/// embeds the hardware model alongside every curve point).
pub fn fig04_05_json() -> QsResult<String> {
    let curves = curves_for(&unconstrained_systems(), &opts(DbSize::Small, T2Mode::A))?;
    Ok(crate::report::render_curves_json(
        "Figures 4 & 5: T2A (sparse updates), small database, unconstrained cache",
        &curves,
    ))
}

/// Figures 6 & 7: T2B, small database, unconstrained cache.
pub fn fig06_07() -> QsResult<String> {
    let curves = curves_for(&unconstrained_systems(), &opts(DbSize::Small, T2Mode::B))?;
    Ok(render_curve_tables(
        "Figures 6 & 7: T2B (dense updates), small database, unconstrained cache",
        &curves,
    ))
}

/// Figure 8: T2C, small database, unconstrained cache.
pub fn fig08() -> QsResult<String> {
    let curves = curves_for(&unconstrained_systems(), &opts(DbSize::Small, T2Mode::C))?;
    Ok(render_curve_tables(
        "Figure 8: T2C (repeated updates), small database, unconstrained cache",
        &curves,
    ))
}

/// Figure 9: client page writes per transaction, small database,
/// unconstrained cache, by underlying recovery scheme.
pub fn fig09() -> QsResult<String> {
    writes_figure(
        "Figure 9: client page writes per transaction (small, unconstrained)",
        &per_flavor_systems(12.0, 4.0),
    )
}

/// Figures 10 & 11: T2A, small database, constrained cache.
pub fn fig10_11() -> QsResult<String> {
    let curves = curves_for(&constrained_systems(), &opts(DbSize::Small, T2Mode::A))?;
    Ok(render_curve_tables(
        "Figures 10 & 11: T2A, small database, constrained cache (0.5 MB recovery buffer)",
        &curves,
    ))
}

/// Figures 12 & 13: T2B, small database, constrained cache.
pub fn fig12_13() -> QsResult<String> {
    let curves = curves_for(&constrained_systems(), &opts(DbSize::Small, T2Mode::B))?;
    Ok(render_curve_tables(
        "Figures 12 & 13: T2B, small database, constrained cache (0.5 MB recovery buffer)",
        &curves,
    ))
}

/// Figure 14: client writes per transaction, constrained cache.
pub fn fig14() -> QsResult<String> {
    // Every scheme with distinct write behavior (SL writes like SD).
    let systems: Vec<SystemConfig> = SystemConfig::all_schemes()
        .into_iter()
        .map(|(cfg, _)| cfg)
        .filter(|cfg| !matches!(cfg.log_gen, LogGeneration::SubPageLog { .. }))
        .map(|cfg| cfg.with_memory(8.0, 0.5))
        .collect();
    writes_figure("Figure 14: client page writes per transaction (small, constrained)", &systems)
}

fn writes_figure(title: &str, systems: &[SystemConfig]) -> QsResult<String> {
    let mut rows = Vec::new();
    for mode in [T2Mode::A, T2Mode::B] {
        for cfg in systems {
            let p = run_point(cfg, &opts(DbSize::Small, mode), 1)?;
            rows.push((
                format!("{} ({})", cfg.name(), mode.name()),
                p.total_pages_shipped_per_txn,
                p.log_pages_shipped_per_txn,
            ));
        }
    }
    Ok(render_writes_table(title, &rows))
}

/// Figures 15 & 16: T2A, big database.
pub fn fig15_16() -> QsResult<String> {
    let curves = curves_for(&big_systems(), &opts(DbSize::Big, T2Mode::A))?;
    Ok(render_curve_tables("Figures 15 & 16: T2A, big database", &curves))
}

/// Figures 17 & 18: T2B, big database.
pub fn fig17_18() -> QsResult<String> {
    let curves = curves_for(&big_systems(), &opts(DbSize::Big, T2Mode::B))?;
    Ok(render_curve_tables("Figures 17 & 18: T2B, big database", &curves))
}

/// Tables 1 & 2: database parameters and measured database sizes.
pub fn table1_2() -> QsResult<String> {
    let mut out = String::new();
    out.push_str("== Table 1: OO7 database parameters ==\n");
    out.push_str(&format!("{:<22}{:>10}{:>10}\n", "Parameter", "Small", "Big"));
    let s = Oo7Params::small();
    let b = Oo7Params::big();
    let rows: Vec<(&str, usize, usize)> = vec![
        ("NumAtomicPerComp", s.num_atomic_per_comp, b.num_atomic_per_comp),
        ("NumConnPerAtomic", s.num_conn_per_atomic, b.num_conn_per_atomic),
        ("DocumentSize", s.document_size, b.document_size),
        ("ManualSize", s.manual_size, b.manual_size),
        ("NumCompPerModule", s.num_comp_per_module, b.num_comp_per_module),
        ("NumAssmPerAssm", s.num_assm_per_assm, b.num_assm_per_assm),
        ("NumAssmLevels", s.num_assm_levels, b.num_assm_levels),
        ("NumCompPerAssm", s.num_comp_per_assm, b.num_comp_per_assm),
        ("NumModules", s.num_modules, b.num_modules),
    ];
    for (name, sv, bv) in rows {
        out.push_str(&format!("{name:<22}{sv:>10}{bv:>10}\n"));
    }

    out.push_str("\n== Table 2: database sizes (MB; paper: small 6.6/33.0, big 24.3/121.5) ==\n");
    for (label, params) in [("small", s), ("big", b)] {
        let meter = Meter::new();
        let server = Server::format(
            ServerConfig::new(RecoveryFlavor::EsmAries)
                .with_pool_mb(8.0)
                .with_volume_pages(20_000)
                .with_log_mb(16.0),
            meter,
        )?;
        let db = gen::generate(&server, &params, 1995)?;
        out.push_str(&format!(
            "{label:<8} module {:>6.1} MB   total {:>7.1} MB   ({} modules, {} pages)\n",
            db.module_mb(),
            db.total_mb(),
            params.num_modules,
            db.total_pages,
        ));
    }
    Ok(out)
}

/// Table 3: software-version naming.
pub fn table3() -> QsResult<String> {
    let mut out = String::new();
    out.push_str("== Table 3: software versions ==\n");
    for (cfg, desc) in SystemConfig::all_schemes() {
        out.push_str(&format!("{:<12}{desc}\n", cfg.name()));
    }
    out.push_str("Suffix = recovery-buffer MB when relevant, e.g. PD-ESM-4, PD-ESM-1/2.\n");
    let suffixed = SystemConfig::pd_redo().with_memory(12.0, 4.0).with_buffer_suffix();
    out.push_str(&format!("Example: {}\n", suffixed.name()));
    Ok(out)
}
