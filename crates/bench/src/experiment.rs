//! Workload execution + demand measurement + MVA.

use qs_esm::{ClientConn, Server, ServerConfig};
use qs_oo7::{gen, params::DbSize, params::Oo7Params, traversal, T2Mode};
use qs_sim::{mva, Demand, HardwareModel, Meter, MeterSnapshot};
use qs_types::{ClientId, QsResult};
use quickstore::{Store, SystemConfig};
use std::sync::Arc;

/// Knobs for one measured run.
#[derive(Debug, Clone)]
pub struct RunOpts {
    pub db: DbSize,
    pub mode: T2Mode,
    /// Warm-up traversals per client (caches reach steady state).
    pub warmup: usize,
    /// Measured traversals per client.
    pub measure: usize,
    /// Database seed.
    pub seed: u64,
}

impl RunOpts {
    pub fn new(db: DbSize, mode: T2Mode) -> RunOpts {
        let (warmup, measure) = match db {
            DbSize::Small => (2, 3),
            DbSize::Big => (1, 2),
        };
        RunOpts { db, mode, warmup, measure, seed: 1995 }
    }
}

/// One measured point: a system at a client count.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    pub system: String,
    pub clients: usize,
    pub response_s: f64,
    pub tpm: f64,
    /// Per-transaction demands at each center.
    pub demand: Demand,
    /// Center utilizations [network, server CPU, data disk, log disk].
    pub utilization: [f64; 4],
    /// Client → server page traffic per transaction (Figures 9 / 14).
    pub total_pages_shipped_per_txn: f64,
    pub log_pages_shipped_per_txn: f64,
    /// Log records generated per transaction.
    pub log_records_per_txn: f64,
    /// Raw counter window for deeper analysis.
    pub window: MeterSnapshot,
}

fn server_config(cfg: &SystemConfig, db: DbSize) -> ServerConfig {
    let (volume_pages, log_mb) = match db {
        DbSize::Small => (6_000, 128.0),
        DbSize::Big => (18_000, 320.0),
    };
    // Paper §4.4: the server has 48 MB; 36 MB serve as its buffer pool.
    ServerConfig::new(cfg.flavor)
        .with_pool_mb(36.0)
        .with_volume_pages(volume_pages)
        .with_log_mb(log_mb)
}

/// Run `clients` interleaved client sessions of the given system
/// configuration and measure per-transaction demands.
pub fn measure_demands(
    cfg: &SystemConfig,
    opts: &RunOpts,
    clients: usize,
) -> QsResult<(Demand, MeterSnapshot, u64)> {
    cfg.validate()?;
    let meter = Meter::new();
    let server = Arc::new(Server::format(server_config(cfg, opts.db), Arc::clone(&meter))?);

    // Each client gets a private module (paper §4.1): generate exactly as
    // many modules as clients.
    let mut params = Oo7Params::of(opts.db);
    params.num_modules = clients;
    let db = gen::generate(&server, &params, opts.seed)?;

    let mut stores: Vec<Store> = (0..clients)
        .map(|c| {
            let conn = ClientConn::new(
                ClientId(c as u16),
                Arc::clone(&server),
                cfg.client_pool_pages(),
                Arc::clone(&meter),
            );
            Store::new(conn, cfg.clone())
        })
        .collect::<QsResult<_>>()?;

    // Warm-up: transactions run but are not measured.
    for _ in 0..opts.warmup {
        for (c, store) in stores.iter_mut().enumerate() {
            store.begin()?;
            traversal::t2(store, &db.modules[c], opts.mode)?;
            store.commit()?;
        }
    }

    let before = meter.snapshot();
    // The measured phase runs every client concurrently (one thread per
    // workstation, like the paper's testbed): with several 24 MB modules
    // in play, interleaved page requests are what put real pressure on the
    // server buffer pool — under REDO in particular, the pages a commit's
    // log records target have usually been evicted by other clients'
    // traffic by the time the records arrive, forcing the server disk
    // reads the paper blames for REDO's poor big-database scalability.
    std::thread::scope(|scope| {
        for (c, store) in stores.iter_mut().enumerate() {
            let db = &db;
            let opts = &opts;
            scope.spawn(move || {
                for _ in 0..opts.measure {
                    store.begin().expect("begin");
                    traversal::t2(store, &db.modules[c], opts.mode).expect("traversal");
                    store.commit().expect("commit");
                }
            });
        }
    });
    let window = meter.snapshot().since(&before);
    let txns = (opts.measure * clients) as u64;
    let hw = HardwareModel::paper_1995();
    Ok((window.per_txn_demand(&hw, txns), window, txns))
}

fn point_from(
    system: &str,
    clients: usize,
    demand: Demand,
    window: MeterSnapshot,
    txns: u64,
) -> ExperimentPoint {
    let solved = mva::solve(demand.into(), clients);
    let at = &solved[clients - 1];
    let t = txns as f64;
    ExperimentPoint {
        system: system.to_string(),
        clients,
        response_s: at.response_time_s,
        tpm: at.throughput_tpm(),
        demand,
        utilization: at.utilization,
        total_pages_shipped_per_txn: (window.dirty_pages_shipped + window.log_record_pages_shipped)
            as f64
            / t,
        log_pages_shipped_per_txn: window.log_record_pages_shipped as f64 / t,
        log_records_per_txn: window.log_records_generated as f64 / t,
        window,
    }
}

/// Measure one system at one client count (big-database methodology).
pub fn run_point(cfg: &SystemConfig, opts: &RunOpts, clients: usize) -> QsResult<ExperimentPoint> {
    let (demand, window, txns) = measure_demands(cfg, opts, clients)?;
    Ok(point_from(&cfg.name(), clients, demand, window, txns))
}

/// Produce the full 1..=max_clients curve for one system.
///
/// Small database: demands are measured once with `max_clients` private
/// modules (every cache still fits) and the MVA recurrence yields every
/// population. Big database: each population is measured separately since
/// server-pool pressure changes with the number of modules in play.
pub fn run_curve(
    cfg: &SystemConfig,
    opts: &RunOpts,
    max_clients: usize,
) -> QsResult<Vec<ExperimentPoint>> {
    match opts.db {
        DbSize::Small => {
            let (demand, window, txns) = measure_demands(cfg, opts, max_clients)?;
            let solved = mva::solve(demand.into(), max_clients);
            let t = txns as f64;
            Ok(solved
                .iter()
                .map(|r| ExperimentPoint {
                    system: cfg.name(),
                    clients: r.clients,
                    response_s: r.response_time_s,
                    tpm: r.throughput_tpm(),
                    demand,
                    utilization: r.utilization,
                    total_pages_shipped_per_txn: (window.dirty_pages_shipped
                        + window.log_record_pages_shipped)
                        as f64
                        / t,
                    log_pages_shipped_per_txn: window.log_record_pages_shipped as f64 / t,
                    log_records_per_txn: window.log_records_generated as f64 / t,
                    window,
                })
                .collect())
        }
        DbSize::Big => (1..=max_clients).map(|n| run_point(cfg, opts, n)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end experiment: not a paper figure, but the same
    /// machinery on the tiny database, checking the pipeline works and the
    /// basic ordering (WPL ships far more bytes than diffing) comes out.
    #[test]
    fn tiny_pipeline_produces_sane_curves() {
        let mut opts = RunOpts::new(DbSize::Small, T2Mode::A);
        opts.warmup = 1;
        opts.measure = 1;
        // Substitute the tiny parameter set by measuring manually.
        let meter = Meter::new();
        let cfg = SystemConfig::pd_esm().with_memory(2.0, 0.5);
        let server =
            Arc::new(Server::format(server_config(&cfg, opts.db), Arc::clone(&meter)).unwrap());
        let mut params = Oo7Params::tiny();
        params.num_modules = 2;
        let db = gen::generate(&server, &params, 3).unwrap();
        let mut stores: Vec<Store> = (0..2)
            .map(|c| {
                Store::new(
                    ClientConn::new(
                        ClientId(c as u16),
                        Arc::clone(&server),
                        cfg.client_pool_pages(),
                        Arc::clone(&meter),
                    ),
                    cfg.clone(),
                )
                .unwrap()
            })
            .collect();
        for (c, store) in stores.iter_mut().enumerate() {
            store.begin().unwrap();
            traversal::t2(store, &db.modules[c], T2Mode::A).unwrap();
            store.commit().unwrap();
        }
        let before = meter.snapshot();
        for (c, store) in stores.iter_mut().enumerate() {
            store.begin().unwrap();
            traversal::t2(store, &db.modules[c], T2Mode::A).unwrap();
            store.commit().unwrap();
        }
        let window = meter.snapshot().since(&before);
        let hw = HardwareModel::paper_1995();
        let demand = window.per_txn_demand(&hw, 2);
        assert!(demand.client_cpu_s > 0.0);
        let solved = mva::solve(demand.into(), 5);
        assert!(solved[4].throughput_tps >= solved[0].throughput_tps);
    }
}
