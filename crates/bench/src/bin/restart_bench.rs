//! Restart (crash-recovery) wall-clock benchmark: how long does the
//! server take to come back after a crash, and how much does the parallel
//! restart engine (`RestartConfig::redo_workers`) buy?
//!
//! For each recovery scheme (PD-ESM, PD-REDO, WPL): bulk-load a scaled
//! OO7 database, run committed T2 update traversals until the log holds a
//! target volume of recovery work, crash (dropping every piece of
//! volatile state), then repeatedly restart from the same frozen media
//! images with `redo_workers` ∈ {1, 2, 4, 8}, timing each restart
//! end-to-end with a wall clock. `redo_workers = 1` runs the original
//! serial recovery code, so the `workers_1` row *is* the pre-existing
//! baseline, measured in the same binary.
//!
//! Every restart's per-phase work counts are asserted identical to the
//! serial run — the speedup must come with identical recovery (the full
//! bit-equivalence check lives in `tests/restart_equivalence.rs`).
//!
//! Results are written to `BENCH_restart.json` in the same shape as
//! `BENCH_micro.json` (see EXPERIMENTS.md).
//!
//! Flags:
//!   --smoke            tiny log target and fewer iterations: exercises
//!                      the harness and JSON output only, the numbers are
//!                      not meaningful
//!   --validate <path>  parse a previously written BENCH_restart.json and
//!                      assert it covers every scheme × worker count;
//!                      exits non-zero on malformed or incomplete files

use qs_esm::{ClientConn, Server, ServerConfig, StableParts};
use qs_oo7::{generate, t2, Oo7Params, T2Mode};
use qs_sim::{JsonWriter, Meter};
use qs_storage::{MemDisk, StableMedia};
use qs_types::ClientId;
use quickstore::{Store, SystemConfig};
use std::sync::Arc;
use std::time::Instant;

/// Worker counts timed for every scheme. 1 is the serial engine.
const WORKER_COUNTS: &[usize] = &[1, 2, 4, 8];

/// OO7 scaled for restart benchmarking: one module, big enough that T2
/// traversals dirty dozens of pages, small enough that building the crash
/// image is a fraction of the time spent restarting from it.
fn bench_params() -> Oo7Params {
    Oo7Params {
        num_atomic_per_comp: 10,
        num_conn_per_atomic: 3,
        document_size: 500,
        manual_size: 4096,
        num_comp_per_module: 50,
        num_assm_per_assm: 3,
        num_assm_levels: 4,
        num_comp_per_assm: 3,
        num_modules: 1,
    }
}

fn server_cfg(cfg: &SystemConfig) -> ServerConfig {
    let mut s =
        ServerConfig::new(cfg.flavor).with_pool_mb(8.0).with_volume_pages(4096).with_log_mb(48.0);
    // The bench wants the whole workload's log present at the crash, so
    // restart has a large scan to chew through: keep watermark
    // maintenance (checkpoint + truncate) from firing mid-run.
    s.log_high_watermark = 0.95;
    s
}

/// Byte image of a stable medium.
fn image(media: &Arc<dyn StableMedia>) -> Vec<u8> {
    let mut buf = vec![0u8; media.len()];
    media.read_at(0, &mut buf).unwrap();
    buf
}

/// A fresh medium holding the given image.
fn disk_from(bytes: &[u8]) -> Arc<dyn StableMedia> {
    let d = MemDisk::new(bytes.len());
    d.write_at(0, bytes).unwrap();
    Arc::new(d)
}

/// Frozen media images of a crashed server plus workload provenance.
struct CrashImage {
    data: Vec<u8>,
    log: Vec<u8>,
    log_used: usize,
    rounds: usize,
}

/// Load OO7, then run committed T2 traversals (alternating the sparse A
/// and dense B variants) until at least `target_log_bytes` of log exists,
/// and crash.
fn build_crash_image(
    cfg: &SystemConfig,
    scfg: &ServerConfig,
    target_log_bytes: usize,
) -> CrashImage {
    let meter = Meter::new();
    let server = Arc::new(Server::format(scfg.clone(), Arc::clone(&meter)).unwrap());
    let db = generate(&server, &bench_params(), 11).unwrap();
    let client = ClientConn::new(ClientId(0), Arc::clone(&server), cfg.client_pool_pages(), meter);
    let mut store = Store::new(client, cfg.clone()).unwrap();
    let mut rounds = 0usize;
    while server.log_used_bytes() < target_log_bytes && rounds < 4000 {
        store.begin().unwrap();
        let mode = if rounds.is_multiple_of(2) { T2Mode::A } else { T2Mode::B };
        t2(&mut store, &db.modules[0], mode).unwrap();
        store.commit().unwrap();
        rounds += 1;
    }
    let log_used = server.log_used_bytes();
    drop(store);
    let parts = Arc::try_unwrap(server).ok().expect("sole owner").crash();
    CrashImage { data: image(&parts.data_media), log: image(&parts.log_media), log_used, rounds }
}

/// One phase's raw work counts: (name, records, log pages read, data
/// reads, data writes) — the counts-identical assertion's unit.
type PhaseCounts = (String, u64, u64, u64, u64);

/// One timed restart: wall-clock nanoseconds plus the restart report's
/// raw work counts (for the counts-identical assertion).
fn timed_restart(img: &CrashImage, scfg: &ServerConfig, workers: usize) -> (f64, Vec<PhaseCounts>) {
    let parts = StableParts {
        data_media: disk_from(&img.data),
        log_media: disk_from(&img.log),
        flight: None,
    };
    let scfg = scfg.clone().with_redo_workers(workers);
    let t0 = Instant::now();
    let server = Server::restart(parts, scfg, Meter::new()).unwrap();
    let ns = t0.elapsed().as_nanos() as f64;
    let report = server.restart_report().expect("restart leaves a report");
    let counts = report
        .phases
        .iter()
        .map(|p| (p.name.to_string(), p.records, p.pages_read, p.data_reads, p.data_writes))
        .collect();
    (ns, counts)
}

struct BenchResult {
    name: String,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

fn ns(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3} s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} µs", v / 1e3)
    } else {
        format!("{v:.1} ns")
    }
}

fn render_json(results: &[BenchResult], smoke: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("benchmark", "restart")
        .field_str("build", if cfg!(debug_assertions) { "debug" } else { "release" })
        .key("smoke")
        .bool(smoke)
        .key("results")
        .begin_array();
    for r in results {
        w.begin_object()
            .field_str("name", &r.name)
            .field_f64("median_ns", r.median_ns)
            .field_f64("min_ns", r.min_ns)
            .field_f64("max_ns", r.max_ns)
            .end_object();
    }
    w.end_array().end_object();
    w.finish()
}

fn schemes() -> Vec<SystemConfig> {
    // The page-diffing variant of every recovery flavor plus WPL, drawn
    // from the shared Table 3 list: new flavors get restart rows (and
    // `--validate` coverage) automatically. The sub-page schemes differ
    // only in how the client generates records, not in restart work.
    SystemConfig::all_schemes()
        .into_iter()
        .map(|(cfg, _)| cfg)
        .filter(|cfg| !cfg.log_gen.software_updates())
        .map(|cfg| cfg.with_memory(8.0, 2.0))
        .collect()
}

/// Every result name the harness emits, for `--validate`.
fn expected_names() -> Vec<String> {
    let mut names = Vec::new();
    for cfg in schemes() {
        for &w in WORKER_COUNTS {
            names.push(format!("restart/{}/workers_{w}", cfg.name()));
        }
    }
    names
}

fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    qs_bench::jsoncheck::check_json(&text)
        .map_err(|at| format!("{path}: malformed JSON at byte {at}"))?;
    let names = expected_names();
    let missing: Vec<&String> =
        names.iter().filter(|name| !text.contains(&format!("\"name\":\"{name}\""))).collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("{path}: missing benchmark results: {missing:?}"))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--validate") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("usage: restart_bench --validate <BENCH_restart.json>");
            std::process::exit(2);
        };
        match validate(path) {
            Ok(()) => {
                println!("{path}: ok ({} results covered)", expected_names().len());
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let (target_log_bytes, iters) = if smoke { (192 << 10, 2) } else { (10 << 20, 5) };
    println!(
        "restart_bench: {} iterations per worker count (build: {}{})",
        iters,
        if cfg!(debug_assertions) { "DEBUG — use --release for real numbers" } else { "release" },
        if smoke { ", SMOKE — numbers not meaningful" } else { "" }
    );

    let mut results: Vec<BenchResult> = Vec::new();
    for cfg in schemes() {
        let name = cfg.name();
        let scfg = server_cfg(&cfg);
        let img = build_crash_image(&cfg, &scfg, target_log_bytes);
        println!(
            "-- {name}: crashed holding {:.1} MB of log after {} committed traversals --",
            img.log_used as f64 / (1 << 20) as f64,
            img.rounds
        );

        let mut baseline_counts: Option<Vec<PhaseCounts>> = None;
        let mut medians: Vec<(usize, f64)> = Vec::new();
        for &workers in WORKER_COUNTS {
            let _ = timed_restart(&img, &scfg, workers); // warmup
            let mut samples: Vec<f64> = Vec::with_capacity(iters);
            for _ in 0..iters {
                let (t, counts) = timed_restart(&img, &scfg, workers);
                match &baseline_counts {
                    None => baseline_counts = Some(counts),
                    Some(base) => assert_eq!(
                        &counts, base,
                        "{name}: workers={workers} changed the restart phase counts"
                    ),
                }
                samples.push(t);
            }
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = samples[samples.len() / 2];
            let (min, max) = (samples[0], samples[samples.len() - 1]);
            let rname = format!("restart/{name}/workers_{workers}");
            println!(
                "{rname:<36} median {:>12}  min {:>12}  max {:>12}",
                ns(median),
                ns(min),
                ns(max)
            );
            medians.push((workers, median));
            results.push(BenchResult { name: rname, median_ns: median, min_ns: min, max_ns: max });
        }
        let base = medians.iter().find(|&&(w, _)| w == 1).unwrap().1;
        for &(w, m) in &medians {
            if w != 1 {
                println!("   workers_{w} vs workers_1: {:.2}x", base / m);
            }
        }
    }
    let json = render_json(&results, smoke);
    std::fs::write("BENCH_restart.json", &json).expect("write BENCH_restart.json");
    println!("wrote BENCH_restart.json ({} results)", results.len());
}
