//! `ckpt_bench`: commit tail latency with a checkpoint in flight —
//! quiesced vs concurrent.
//!
//! Real wall-clock time, like `scale` (not simulated 1995 time). The
//! same disjoint-working-set update workload runs twice against servers
//! whose *data* disk charges a per-page-write device latency and whose
//! log disk charges a per-sync latency. A control thread takes
//! checkpoints in a tight loop for the whole run:
//!
//! * `quiesced` — background-flusher knob off: every checkpoint runs
//!   under `with_quiesced`, holding every subsystem lock while the full
//!   dirty-page table flushes. Commits that land during one wait out the
//!   entire device-time bill.
//! * `concurrent` — knob on: the two-phase fuzzy protocol (begin record
//!   → incremental elevator drain → end record). The control thread
//!   plays the flusher's role so each checkpoint can be timed precisely;
//!   the drain claims batches under one shard lock at a time and writes
//!   with no foreground-blocking lock held, so commits only ever pay the
//!   log sync.
//!
//! Both runs end with a crash + restart under the plain (knob-off)
//! config and re-assert every committed value — the fuzzy media must
//! recover exactly like the quiesced media does.
//!
//! Results go to `BENCH_ckpt.json` (see EXPERIMENTS.md): commit p50/p99,
//! checkpoint count and durations, flusher batch shape, and the headline
//! `p99_ratio` (quiesced p99 / concurrent p99 — the acceptance bar is
//! >= 3).
//!
//! Flags:
//!   --smoke            tiny counts and near-zero latencies: exercises
//!                      the harness and JSON output only
//!   --validate <path>  parse a previously written BENCH_ckpt.json,
//!                      check coverage, and (for non-smoke files) assert
//!                      p99_ratio >= 3; exits non-zero on failure

use qs_bench::driver::{
    assert_workload_applied, build_ckpt_server, drive_threads_commit_latency, ScaleWorkload,
};
use qs_esm::{Server, ServerConfig};
use qs_sim::{HardwareModel, JsonWriter, Meter};
use qs_trace::Tracer;
use quickstore::SystemConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const PAGES_PER_CLIENT: usize = 16;
/// Pool shards, as in the scale bench (the PR-3 decomposition).
const SHARDS: usize = 8;
/// Pause between checkpoints on the control thread — short enough that
/// most commits overlap a checkpoint in flight, which is the regime the
/// bench is about.
const CKPT_GAP: Duration = Duration::from_millis(1);
/// The acceptance bar: concurrent p99 must beat quiesced p99 by this.
const MIN_RATIO: f64 = 3.0;

fn workload(smoke: bool) -> ScaleWorkload {
    ScaleWorkload {
        clients: CLIENTS,
        txns_per_client: if smoke { 12 } else { 80 },
        pages_per_client: PAGES_PER_CLIENT,
        sync_latency: if smoke { Duration::from_micros(20) } else { Duration::from_micros(150) },
    }
}

/// Device time per data-page write: what the quiesced checkpoint
/// serializes every client behind, `dirty pages x this` per checkpoint.
fn data_write_latency(smoke: bool) -> Duration {
    if smoke {
        Duration::from_micros(5)
    } else {
        Duration::from_micros(100)
    }
}

fn server_cfg(w: &ScaleWorkload, fuzzy: bool) -> ServerConfig {
    let flavor = SystemConfig::by_name("PD-ESM").expect("shared scheme list").flavor;
    ServerConfig::new(flavor)
        .with_pool_mb(8.0)
        .with_volume_pages((w.clients * w.pages_per_client * 2).max(1024))
        .with_log_mb(64.0)
        .with_pool_shards(SHARDS)
        .with_background_flusher(fuzzy)
}

struct ModeResult {
    name: String,
    txns: u64,
    commit_p50_ns: u64,
    commit_p99_ns: u64,
    commit_max_ns: u64,
    checkpoints: u64,
    ckpt_mean_ns: u64,
    ckpt_max_ns: u64,
    flusher_batches: u64,
    flusher_pages: u64,
}

impl ModeResult {
    fn pages_per_batch(&self) -> f64 {
        self.flusher_pages as f64 / self.flusher_batches.max(1) as f64
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

/// One full mode: drive the workload with a checkpoint loop in flight,
/// then crash, restart under the plain knob-off config, and re-assert
/// every committed value survived.
fn run_mode(w: &ScaleWorkload, fuzzy: bool, smoke: bool, name: &str) -> ModeResult {
    let tracer = Tracer::flight(Meter::new(), HardwareModel::paper_1995(), 256);
    let (server, sets) =
        build_ckpt_server(server_cfg(w, fuzzy), w, data_write_latency(smoke), Arc::clone(&tracer));

    let stop = AtomicBool::new(false);
    let mut ckpt_durs_ns: Vec<u64> = Vec::new();
    let mut lats: Vec<u64> = Vec::new();
    std::thread::scope(|s| {
        let ckpt = s.spawn(|| {
            let mut durs = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let t0 = Instant::now();
                server.checkpoint().expect("checkpoint in flight");
                durs.push(t0.elapsed().as_nanos() as u64);
                std::thread::sleep(CKPT_GAP);
            }
            durs
        });
        lats = drive_threads_commit_latency(&server, &sets, w.txns_per_client);
        stop.store(true, Ordering::Relaxed);
        ckpt_durs_ns = ckpt.join().expect("checkpoint thread");
    });
    assert_workload_applied(&server, &sets, w.txns_per_client);
    let (flusher_batches, flusher_pages) = server.flusher_stats();

    // Crash and recover under the plain config: the media a fuzzy
    // checkpoint leaves behind must restart exactly like the quiesced
    // media — every committed value back, no stragglers.
    let parts = Arc::try_unwrap(server).ok().expect("sole owner").crash();
    let restarted = Server::restart(parts, server_cfg(w, false), Meter::new())
        .expect("restart after checkpointed run");
    assert_eq!(restarted.active_txns(), 0, "{name}: transactions leaked through restart");
    assert_workload_applied(&restarted, &sets, w.txns_per_client);
    drop(restarted.crash());

    lats.sort_unstable();
    let checkpoints = ckpt_durs_ns.len() as u64;
    let ckpt_mean_ns = ckpt_durs_ns.iter().sum::<u64>() / checkpoints.max(1);
    ModeResult {
        name: name.into(),
        txns: w.total_txns() as u64,
        commit_p50_ns: percentile(&lats, 0.50),
        commit_p99_ns: percentile(&lats, 0.99),
        commit_max_ns: lats.last().copied().unwrap_or(0),
        checkpoints,
        ckpt_mean_ns,
        ckpt_max_ns: ckpt_durs_ns.iter().max().copied().unwrap_or(0),
        flusher_batches,
        flusher_pages,
    }
}

fn expected_names() -> Vec<String> {
    vec!["ckpt/quiesced".into(), "ckpt/concurrent".into()]
}

fn render_json(results: &[ModeResult], ratio: f64, smoke: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("benchmark", "ckpt")
        .field_str("build", if cfg!(debug_assertions) { "debug" } else { "release" })
        .key("smoke")
        .bool(smoke)
        .field_f64("p99_ratio", ratio)
        .key("results")
        .begin_array();
    for r in results {
        w.begin_object()
            .field_str("name", &r.name)
            .field_u64("txns", r.txns)
            .field_u64("commit_p50_ns", r.commit_p50_ns)
            .field_u64("commit_p99_ns", r.commit_p99_ns)
            .field_u64("commit_max_ns", r.commit_max_ns)
            .field_u64("checkpoints", r.checkpoints)
            .field_u64("ckpt_mean_ns", r.ckpt_mean_ns)
            .field_u64("ckpt_max_ns", r.ckpt_max_ns)
            .field_u64("flusher_batches", r.flusher_batches)
            .field_u64("flusher_pages", r.flusher_pages)
            .field_f64("pages_per_batch", r.pages_per_batch())
            .end_object();
    }
    w.end_array().end_object();
    w.finish()
}

fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    qs_bench::jsoncheck::check_json(&text)
        .map_err(|at| format!("{path}: malformed JSON at byte {at}"))?;
    let names = expected_names();
    let missing: Vec<&String> =
        names.iter().filter(|name| !text.contains(&format!("\"name\":\"{name}\""))).collect();
    if !missing.is_empty() {
        return Err(format!("{path}: missing benchmark results: {missing:?}"));
    }
    let ratio = text
        .split("\"p99_ratio\":")
        .nth(1)
        .and_then(|rest| rest.split([',', '}']).next()?.trim().parse::<f64>().ok())
        .ok_or_else(|| format!("{path}: no parseable p99_ratio field"))?;
    if text.contains("\"smoke\":true") {
        println!("{path}: smoke file, skipping the p99_ratio bar (measured {ratio:.2}x)");
        return Ok(());
    }
    if ratio < MIN_RATIO {
        return Err(format!(
            "{path}: p99_ratio {ratio:.2} below the acceptance bar {MIN_RATIO:.1}"
        ));
    }
    Ok(())
}

fn print_row(r: &ModeResult) {
    println!(
        "{:<16} commit p50 {:>8.1?} p99 {:>8.1?} max {:>8.1?}  | {:>4} ckpts, mean {:>8.1?} max {:>8.1?}  | {:.1} pages/batch",
        r.name,
        Duration::from_nanos(r.commit_p50_ns),
        Duration::from_nanos(r.commit_p99_ns),
        Duration::from_nanos(r.commit_max_ns),
        r.checkpoints,
        Duration::from_nanos(r.ckpt_mean_ns),
        Duration::from_nanos(r.ckpt_max_ns),
        r.pages_per_batch(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--validate") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("usage: ckpt_bench --validate <BENCH_ckpt.json>");
            std::process::exit(2);
        };
        match validate(path) {
            Ok(()) => {
                println!("{path}: ok ({} results covered)", expected_names().len());
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let w = workload(smoke);
    println!(
        "qs-ckpt: commit tail latency with a checkpoint in flight (build: {}{})",
        if cfg!(debug_assertions) { "DEBUG — use --release for real numbers" } else { "release" },
        if smoke { ", SMOKE — numbers not meaningful" } else { "" }
    );
    println!(
        "-- {} clients x {} txns x {} pages, log sync {:?}, data write {:?} --",
        w.clients,
        w.txns_per_client,
        w.pages_per_client,
        w.sync_latency,
        data_write_latency(smoke)
    );

    let quiesced = run_mode(&w, false, smoke, "ckpt/quiesced");
    print_row(&quiesced);
    let concurrent = run_mode(&w, true, smoke, "ckpt/concurrent");
    print_row(&concurrent);

    let ratio = quiesced.commit_p99_ns as f64 / concurrent.commit_p99_ns.max(1) as f64;
    println!("   quiesced p99 / concurrent p99: {ratio:.2}x (bar: >= {MIN_RATIO:.1}x)");
    if !smoke && ratio < MIN_RATIO {
        eprintln!("WARNING: below the acceptance bar — rerun with --release on a quiet host");
    }

    let json = render_json(&[quiesced, concurrent], ratio, smoke);
    std::fs::write("BENCH_ckpt.json", &json).expect("write BENCH_ckpt.json");
    println!("wrote BENCH_ckpt.json (2 results)");
}
