//! Regenerates the paper's table1_2 output. See DESIGN.md §4.

fn main() {
    match qs_bench::figures::table1_2() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
