//! Regenerates the paper's fig15_16 output. See DESIGN.md §4.

fn main() {
    match qs_bench::figures::fig15_16() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
