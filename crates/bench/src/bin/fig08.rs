//! Regenerates the paper's fig08 output. See DESIGN.md §4.

fn main() {
    match qs_bench::figures::fig08() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
