//! Regenerates the paper's fig04_05 output. See DESIGN.md §4.

fn main() {
    match qs_bench::figures::fig04_05() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
