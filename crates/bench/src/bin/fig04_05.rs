//! Regenerates the paper's fig04_05 output. See DESIGN.md §4.
//!
//! Pass `--json` for the machine-readable form (hand-rolled writer — the
//! workspace has no serde).

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let result =
        if json { qs_bench::figures::fig04_05_json() } else { qs_bench::figures::fig04_05() };
    match result {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
