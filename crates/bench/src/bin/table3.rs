//! Regenerates the paper's table3 output. See DESIGN.md §4.

fn main() {
    match qs_bench::figures::table3() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
