//! Regenerates the paper's fig10_11 output. See DESIGN.md §4.

fn main() {
    match qs_bench::figures::fig10_11() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
