//! Ablation for the paper's §7 future-work proposal: dynamically varying
//! the client's buffer-pool / recovery-buffer split across transactions.
//!
//! Workload: T2A on one small module with only 8 MB of client memory —
//! exactly the constrained-cache setting where the static PD split
//! (7.5 + 0.5) thrashes the recovery buffer (Figures 10/14). The adaptive
//! controller starts from the same bad split and is allowed to move memory
//! between transactions.

use qs_bench::experiment::RunOpts;
use qs_esm::{ClientConn, Server, ServerConfig};
use qs_oo7::{gen, params::DbSize, params::Oo7Params, traversal, T2Mode};
use qs_sim::Meter;
use qs_types::ClientId;
use quickstore::{AdaptiveSplit, Store, SystemConfig};
use std::sync::Arc;

fn main() {
    let opts = RunOpts::new(DbSize::Small, T2Mode::A);
    for adaptive in [false, true] {
        let cfg = SystemConfig::pd_esm().with_memory(8.0, 0.5);
        let meter = Meter::new();
        let server = Arc::new(
            Server::format(
                ServerConfig::new(cfg.flavor)
                    .with_pool_mb(36.0)
                    .with_volume_pages(6000)
                    .with_log_mb(128.0),
                Arc::clone(&meter),
            )
            .unwrap(),
        );
        let mut params = Oo7Params::small();
        params.num_modules = 1;
        let db = gen::generate(&server, &params, opts.seed).unwrap();
        let client =
            ClientConn::new(ClientId(0), server, cfg.client_pool_pages(), Arc::clone(&meter));
        let mut store = Store::new(client, cfg).unwrap();
        let mut controller = AdaptiveSplit::new(8.0, 0.5);

        println!(
            "\n== PD-ESM, 8 MB client, T2A — {} split ==",
            if adaptive { "ADAPTIVE" } else { "static 7.5+0.5" }
        );
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>10}",
            "txn", "log pages", "overflows", "evictions", "rbuf MB"
        );
        let mut last = meter.snapshot();
        for round in 1..=8 {
            store.begin().unwrap();
            traversal::t2(&mut store, &db.modules[0], opts.mode).unwrap();
            store.commit().unwrap();
            let now = meter.snapshot();
            let w = now.since(&last);
            last = now;
            println!(
                "{:>5} {:>12} {:>12} {:>12} {:>10.1}",
                round,
                w.log_record_pages_shipped,
                w.recovery_buffer_overflows,
                w.client_evictions,
                controller.recovery_mb,
            );
            if adaptive {
                controller.apply(&mut store, &w).unwrap();
            }
        }
    }
    println!("\nThe adaptive controller grows the recovery buffer until growing it\nfurther would cause paging, cutting the early log records the static\n0.5 MB split keeps paying for — the tradeoff §7 hypothesizes.");
}
