//! Ablation for the two adaptive controllers, isolating what each one
//! buys on the same constrained-cache workload:
//!
//! * `AdaptiveSplit` (§7 future work) — moves client memory between the
//!   buffer pool and the recovery buffer across transactions.
//! * `AdaptiveScheme` (§6g) — elects the cheapest recovery scheme per
//!   transaction from the priced write set.
//!
//! Workload: T2A on one small module with only 8 MB of client memory —
//! exactly the setting where the static PD split (7.5 + 0.5) thrashes
//! the recovery buffer (Figures 10/14). Four variants: the static
//! baseline, each controller alone, and both together. T2A's scattered
//! 8-byte updates are the sparse shape, so the scheme elector drops to
//! REDO-only logical records while the split controller grows the
//! recovery buffer until overflows stop — independent wins that compose.
//!
//! Emits `ABLATION_adaptive.json` (validated in-process with
//! `qs_bench::jsoncheck`) plus the per-round table on stdout.

use qs_bench::experiment::RunOpts;
use qs_bench::jsoncheck;
use qs_esm::{ClientConn, Server, ServerConfig};
use qs_oo7::{gen, params::DbSize, params::Oo7Params, traversal, T2Mode};
use qs_sim::{JsonWriter, Meter};
use qs_types::ClientId;
use quickstore::{AdaptiveSplit, Store, SystemConfig};
use std::sync::Arc;

const ROUNDS: usize = 8;

struct Variant {
    name: &'static str,
    split: bool,
    scheme: bool,
}

const VARIANTS: [Variant; 4] = [
    Variant { name: "static", split: false, scheme: false },
    Variant { name: "split", split: true, scheme: false },
    Variant { name: "scheme", split: false, scheme: true },
    Variant { name: "both", split: true, scheme: true },
];

struct Round {
    log_pages: u64,
    overflows: u64,
    evictions: u64,
    rbuf_mb: f64,
}

struct VariantResult {
    name: &'static str,
    rounds: Vec<Round>,
    log_pages_total: u64,
    elected: [u64; 4],
    scheme_switches: u64,
}

fn run_variant(v: &Variant, opts: &RunOpts) -> VariantResult {
    // Same 8 MB client and the same deliberately bad 0.5 MB recovery
    // buffer for everyone: the controllers have to earn their way out.
    let cfg = if v.scheme { SystemConfig::adaptive() } else { SystemConfig::pd_esm() }
        .with_memory(8.0, 0.5);
    let meter = Meter::new();
    let server = Arc::new(
        Server::format(
            ServerConfig::new(cfg.flavor)
                .with_pool_mb(36.0)
                .with_volume_pages(6000)
                .with_log_mb(128.0),
            Arc::clone(&meter),
        )
        .unwrap(),
    );
    let mut params = Oo7Params::small();
    params.num_modules = 1;
    let db = gen::generate(&server, &params, opts.seed).unwrap();
    let client = ClientConn::new(ClientId(0), server, cfg.client_pool_pages(), Arc::clone(&meter));
    let mut store = Store::new(client, cfg).unwrap();
    let mut controller = AdaptiveSplit::new(8.0, 0.5);

    println!(
        "\n== PD base, 8 MB client, T2A — {} (split {}, scheme {}) ==",
        v.name,
        if v.split { "ADAPTIVE" } else { "static" },
        if v.scheme { "ELECTED" } else { "fixed" },
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>10}",
        "txn", "log pages", "overflows", "evictions", "rbuf MB"
    );
    let start = meter.snapshot();
    let mut last = start;
    let mut rounds = Vec::new();
    for round in 1..=ROUNDS {
        store.begin().unwrap();
        traversal::t2(&mut store, &db.modules[0], opts.mode).unwrap();
        store.commit().unwrap();
        let now = meter.snapshot();
        let w = now.since(&last);
        last = now;
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>10.1}",
            round,
            w.log_record_pages_shipped,
            w.recovery_buffer_overflows,
            w.client_evictions,
            controller.recovery_mb,
        );
        rounds.push(Round {
            log_pages: w.log_record_pages_shipped,
            overflows: w.recovery_buffer_overflows,
            evictions: w.client_evictions,
            rbuf_mb: controller.recovery_mb,
        });
        if v.split {
            controller.apply(&mut store, &w).unwrap();
        }
    }
    let total = meter.snapshot().since(&start);
    VariantResult {
        name: v.name,
        rounds,
        log_pages_total: total.log_record_pages_shipped,
        elected: [total.txns_pd, total.txns_sd, total.txns_wpl, total.txns_rlog],
        scheme_switches: total.scheme_switches,
    }
}

fn render_json(results: &[VariantResult]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("benchmark", "ablation_adaptive")
        .field_str("workload", "t2a_small_8mb")
        .field_u64("rounds", ROUNDS as u64)
        .key("variants")
        .begin_array();
    for r in results {
        w.begin_object()
            .field_str("name", r.name)
            .field_u64("log_pages_total", r.log_pages_total)
            .field_u64("txns_pd", r.elected[0])
            .field_u64("txns_sd", r.elected[1])
            .field_u64("txns_wpl", r.elected[2])
            .field_u64("txns_rlog", r.elected[3])
            .field_u64("scheme_switches", r.scheme_switches)
            .key("rounds")
            .begin_array();
        for round in &r.rounds {
            w.begin_object()
                .field_u64("log_pages", round.log_pages)
                .field_u64("overflows", round.overflows)
                .field_u64("evictions", round.evictions)
                .field_f64("rbuf_mb", round.rbuf_mb)
                .end_object();
        }
        w.end_array().end_object();
    }
    w.end_array().end_object();
    w.finish()
}

fn main() {
    let opts = RunOpts::new(DbSize::Small, T2Mode::A);
    let results: Vec<VariantResult> = VARIANTS.iter().map(|v| run_variant(v, &opts)).collect();

    println!(
        "\n{:>8} {:>16} {:>24} {:>10}",
        "variant", "total log pages", "elected pd/sd/wpl/rlog", "switches"
    );
    for r in &results {
        println!(
            "{:>8} {:>16} {:>24} {:>10}",
            r.name,
            r.log_pages_total,
            format!("{}/{}/{}/{}", r.elected[0], r.elected[1], r.elected[2], r.elected[3]),
            r.scheme_switches,
        );
    }

    // The ablation must show each controller earning something alone,
    // and the electing variants must actually elect.
    let by_name = |n: &str| results.iter().find(|r| r.name == n).expect("variant present");
    let (stat, split, scheme, both) =
        (by_name("static"), by_name("split"), by_name("scheme"), by_name("both"));
    assert!(scheme.elected[3] > 0, "scheme variant never elected RLOG");
    assert!(both.elected[3] > 0, "both variant never elected RLOG");
    assert!(stat.elected.iter().all(|&n| n == 0), "fixed variant fed the election meters");
    assert!(
        scheme.log_pages_total < stat.log_pages_total,
        "scheme election did not cut log pages ({} vs {})",
        scheme.log_pages_total,
        stat.log_pages_total
    );
    assert!(
        split.rounds.last().unwrap().overflows <= split.rounds[0].overflows,
        "split controller never reduced overflows"
    );
    assert!(
        both.log_pages_total <= scheme.log_pages_total,
        "composing both controllers regressed log pages"
    );

    let json = render_json(&results);
    jsoncheck::check_json(&json).expect("ablation JSON malformed");
    std::fs::write("ABLATION_adaptive.json", &json).expect("write ABLATION_adaptive.json");
    println!("\nwrote ABLATION_adaptive.json ({} variants)", results.len());
    println!(
        "The split controller grows the recovery buffer until growing it further\nwould cause paging; the scheme elector independently drops T2A's scattered\n8-byte updates to REDO-only logical records. The wins compose."
    );
}
